// micro_trace: the cost of the trace/span layer (docs/observability.md) on the fused
// streaming generate+screen workload.
//
// Emits one JSON object per line so runs can be diffed mechanically. Grid: phase
// "generate_screen" under
//   disabled -- PopulationConfig/ScreeningConfig carry trace = nullptr; every hook is a
//               null-pointer check and no per-shard trace buffers are allocated.
//   enabled  -- a TraceRecorder is attached; per-shard deltas record generate.shard and
//               screen.subshard spans plus one detection instant (with provenance args)
//               per detection, merged in shard order.
// each at 1/2/8 worker threads. The closing "summary" line reports the enabled/disabled
// wall-time ratio at one thread; the binary asserts the tracing-enabled run stays within
// 5% of the disabled run (the zero-cost-when-detached contract's measurable half) and
// that the enabled run recorded a nonempty sim timeline whose detection instants match
// the screening stats, exiting non-zero otherwise.
//
// Usage: micro_trace [processor_count] [repeats]
// Defaults: 1,000,000 processors, best-of-5.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>

#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stream.h"
#include "src/telemetry/trace.h"
#include "src/toolchain/registry.h"

namespace sdc {
namespace {

constexpr double kMaxEnabledOverhead = 1.05;

double WallSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

int Main(int argc, char** argv) {
  const uint64_t processors =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'000'000ull;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 5;
  std::printf("# micro_trace: %llu processors, best of %d\n",
              static_cast<unsigned long long>(processors), repeats);

  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  double disabled_t1 = 0.0;
  double enabled_t1 = 0.0;
  bool consistent = true;

  for (int threads : {1, 2, 8}) {
    auto run_once = [&](TraceRecorder* recorder) {
      PopulationConfig population_config;
      population_config.processor_count = processors;
      population_config.threads = threads;
      population_config.trace = recorder;
      ScreeningConfig screening_config;
      screening_config.threads = threads;
      screening_config.trace = recorder;
      const FleetShardStream stream(population_config);
      StreamingScreen screen(&pipeline, screening_config);
      stream.Drive({&screen});
      return screen.TakeStats();
    };

    // Consistency is checked on an untimed run; the timed passes measure only the
    // pipeline itself.
    uint64_t sim_events = 0;
    uint64_t detections = 0;
    {
      TraceRecorder recorder;
      const ScreeningStats stats = run_once(&recorder);
      const TraceSnapshot snapshot = recorder.Snapshot();
      sim_events = snapshot.sim.size();
      uint64_t instants = 0;
      for (const TraceEvent& event : snapshot.sim) {
        if (event.phase == 'i') {
          ++instants;
        }
      }
      detections = stats.total_detected();
      consistent &= instants == detections && detections == stats.provenance.size();
    }

    // Interleave the two configurations repeat by repeat so scheduler noise and clock
    // drift (this is often a single-hardware-thread host) hit both arms equally; the
    // reported figure is best-of-repeats per arm.
    double disabled_wall = 1e300;
    double enabled_wall = 1e300;
    for (int i = 0; i < repeats; ++i) {
      disabled_wall =
          std::min(disabled_wall, WallSeconds([&] { (void)run_once(nullptr); }));
      enabled_wall = std::min(enabled_wall, WallSeconds([&] {
                                TraceRecorder recorder;
                                (void)run_once(&recorder);
                              }));
    }
    std::printf("{\"bench\": \"generate_screen\", \"trace\": \"disabled\", "
                "\"threads\": %d, \"processors\": %llu, \"wall_seconds\": %.6f, "
                "\"ns_per_processor\": %.2f}\n",
                threads, static_cast<unsigned long long>(processors), disabled_wall,
                disabled_wall * 1e9 / static_cast<double>(processors));
    std::fflush(stdout);
    std::printf("{\"bench\": \"generate_screen\", \"trace\": \"enabled\", "
                "\"threads\": %d, \"processors\": %llu, \"wall_seconds\": %.6f, "
                "\"ns_per_processor\": %.2f, \"sim_events\": %llu, "
                "\"detection_instants\": %llu}\n",
                threads, static_cast<unsigned long long>(processors), enabled_wall,
                enabled_wall * 1e9 / static_cast<double>(processors),
                static_cast<unsigned long long>(sim_events),
                static_cast<unsigned long long>(detections));
    std::fflush(stdout);
    consistent &= sim_events > 0;

    if (threads == 1) {
      disabled_t1 = disabled_wall;
      enabled_t1 = enabled_wall;
    }
  }

  const double ratio = disabled_t1 > 0.0 ? enabled_t1 / disabled_t1 : 0.0;
  std::printf("{\"bench\": \"summary\", \"enabled_vs_disabled_t1\": %.3f, "
              "\"overhead_bound\": %.2f, \"consistent\": %s}\n",
              ratio, kMaxEnabledOverhead, consistent ? "true" : "false");
  if (!consistent) {
    std::fprintf(stderr, "FAIL: trace events diverged from screening stats\n");
    return 1;
  }
  if (ratio > kMaxEnabledOverhead) {
    std::fprintf(stderr, "FAIL: tracing overhead %.3f exceeds bound %.2f\n", ratio,
                 kMaxEnabledOverhead);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sdc

int main(int argc, char** argv) { return sdc::Main(argc, argv); }
