// Extension experiment: regular-test cadence vs SDC exposure (Observation 2's tension:
// "services continue to be exposed... as it is not feasible to perform regular SDC tests
// frequently"). Sweeps the regular period and measures (a) mean months a wear-out defect
// sits undetected in production and (b) the testing overhead that cadence costs under the
// baseline's 10.55 h rounds and under Farron's prioritized ~1 h rounds.
//
// Runs as ONE batched fused generate->screen pass (docs/performance.md): the four
// cadences form a ScenarioBatch, so the 400k-processor fleet is generated and scanned
// once instead of once per period, with a per-scenario WearoutExposureObserver deriving
// each cadence's exposure windows shard by shard -- the fleet is never materialized. The
// records are identical to four independent passes (tests/stream_test.cc pins the
// batched/independent equivalence bitwise).

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/farron/longitudinal.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stream.h"

int main() {
  using namespace sdc;
  PrintExperimentHeader("Cadence", "regular-test period vs SDC exposure window");

  PopulationConfig population_config;
  population_config.processor_count = 400000;
  const FleetShardStream stream(population_config);
  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);

  const std::vector<double> periods = {1.0, 2.0, 3.0, 6.0};
  ScenarioBatch batch;
  for (double period : periods) {
    ScreeningConfig config;
    config.regular_period_months = period;
    batch.scenarios.push_back(config);
  }
  StreamingScreen screen(&pipeline, batch);
  std::vector<WearoutExposureObserver> exposure(periods.size());
  for (size_t k = 0; k < periods.size(); ++k) {
    screen.AddObserver(&exposure[k], k);
  }
  stream.Drive({&screen});

  TextTable table({"period (months)", "regular detections", "mean exposure (months)",
                   "baseline test overhead", "Farron test overhead"});
  for (size_t k = 0; k < periods.size(); ++k) {
    const double period = periods[k];
    std::vector<double> exposures;
    exposures.reserve(exposure[k].exposures().size());
    for (const WearoutExposure& record : exposure[k].exposures()) {
      exposures.push_back(record.exposure_months());
    }
    const double period_seconds = period * 30.44 * 24.0 * 3600.0;
    table.AddRow({FormatDouble(period, 0), std::to_string(exposures.size()),
                  FormatDouble(Mean(exposures), 2),
                  FormatPercent(10.55 * 3600.0 / period_seconds, 3),
                  FormatPercent(1.02 * 3600.0 / period_seconds, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nreading: shorter periods shrink the exposure window but the baseline's\n"
               "10.55 h rounds make frequent testing expensive -- Farron's ~1 h rounds\n"
               "move the achievable point of that trade-off (Sections 3.1 and 7.2).\n";
  return 0;
}
