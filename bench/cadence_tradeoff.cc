// Extension experiment: regular-test cadence vs SDC exposure (Observation 2's tension:
// "services continue to be exposed... as it is not feasible to perform regular SDC tests
// frequently"). Sweeps the regular period and measures (a) mean months a wear-out defect
// sits undetected in production and (b) the testing overhead that cadence costs under the
// baseline's 10.55 h rounds and under Farron's prioritized ~1 h rounds.
//
// Runs on the streaming shard pipeline (docs/streaming.md): each period's sweep is one
// fused generate->screen pass with a WearoutExposureObserver deriving the exposure
// windows shard by shard, so the 400k-processor fleet is never materialized. The records
// are identical to the old materialized fleet.DefectsOf scan (tests/stream_test.cc pins
// that equivalence bitwise).

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/farron/longitudinal.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stream.h"

int main() {
  using namespace sdc;
  PrintExperimentHeader("Cadence", "regular-test period vs SDC exposure window");

  PopulationConfig population_config;
  population_config.processor_count = 400000;
  const FleetShardStream stream(population_config);
  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);

  TextTable table({"period (months)", "regular detections", "mean exposure (months)",
                   "baseline test overhead", "Farron test overhead"});
  for (double period : {1.0, 2.0, 3.0, 6.0}) {
    ScreeningConfig config;
    config.regular_period_months = period;
    StreamingScreen screen(&pipeline, config);
    WearoutExposureObserver exposure;
    screen.AddObserver(&exposure);
    stream.Drive({&screen});
    std::vector<double> exposures;
    exposures.reserve(exposure.exposures().size());
    for (const WearoutExposure& record : exposure.exposures()) {
      exposures.push_back(record.exposure_months());
    }
    const double period_seconds = period * 30.44 * 24.0 * 3600.0;
    table.AddRow({FormatDouble(period, 0), std::to_string(exposures.size()),
                  FormatDouble(Mean(exposures), 2),
                  FormatPercent(10.55 * 3600.0 / period_seconds, 3),
                  FormatPercent(1.02 * 3600.0 / period_seconds, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nreading: shorter periods shrink the exposure window but the baseline's\n"
               "10.55 h rounds make frequent testing expensive -- Farron's ~1 h rounds\n"
               "move the achievable point of that trade-off (Sections 3.1 and 7.2).\n";
  return 0;
}
