// Shared helpers for the experiment harnesses in bench/. Each binary regenerates one of the
// paper's tables or figures and prints the paper's reported values next to the measured
// ones, so the reproduction can be eyeballed row by row.

#ifndef SDC_BENCH_BENCH_UTIL_H_
#define SDC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <set>
#include <string>

#include "src/fault/machine.h"
#include "src/toolchain/framework.h"

namespace sdc {

// Full-suite "adequate" sweep: hot (burn-in, all cores simultaneously), long slices --
// the ground-truth run that enumerates a faulty part's known failing testcases.
inline RunReport AdequateSweep(const TestSuite& suite, FaultyMachine& machine,
                               double per_case_seconds = 60.0, uint64_t seed = 3) {
  TestFramework framework(&suite);
  TestRunConfig config;
  config.time_scale = 2e7;
  config.simultaneous_cores = true;
  config.burn_in_seconds = 300.0;
  config.seed = seed;
  config.max_records = 100000;
  return framework.RunPlan(machine, framework.EqualPlan(per_case_seconds), config);
}

// Runs one (testcase, pcore) setting at a pinned temperature and returns the SDC records.
// The moderate time scale keeps per-op corruption probabilities well below saturation so
// occurrence statistics stay faithful.
inline std::vector<SdcRecord> CollectRecords(const TestSuite& suite, FaultyMachine& machine,
                                             const std::string& testcase_id, int pcore,
                                             double temperature_celsius,
                                             double duration_seconds, uint64_t seed = 9) {
  const int index = suite.IndexOf(testcase_id);
  if (index < 0) {
    return {};
  }
  TestFramework framework(&suite);
  TestRunConfig config;
  config.time_scale = 1e5;
  config.pin_temperature_celsius = temperature_celsius;
  config.pcores_under_test = {pcore};
  config.seed = seed;
  const RunReport report =
      framework.RunPlan(machine, {{static_cast<size_t>(index), duration_seconds}}, config);
  return report.records;
}

// Kernel family of a testcase id: "loop.int_mul.i32.n96" -> "loop.int_mul"; used to compare
// failed-testcase counts against Table 3's #err despite this suite's parametric redundancy.
inline std::string KernelFamily(const std::string& testcase_id) {
  size_t first = testcase_id.find('.');
  size_t second = first == std::string::npos ? first : testcase_id.find('.', first + 1);
  return second == std::string::npos ? testcase_id : testcase_id.substr(0, second);
}

inline std::set<std::string> FailedFamilies(const RunReport& report) {
  std::set<std::string> families;
  for (const std::string& id : report.failed_testcase_ids()) {
    families.insert(KernelFamily(id));
  }
  return families;
}

inline void PrintExperimentHeader(const std::string& id, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s -- %s\n", id.c_str(), description.c_str());
  std::printf("(paper: \"Understanding Silent Data Corruptions in a Large\n");
  std::printf(" Production CPU Population\", SOSP 2023)\n");
  std::printf("==============================================================\n");
}

}  // namespace sdc

#endif  // SDC_BENCH_BENCH_UTIL_H_
