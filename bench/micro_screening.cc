// micro_screening: throughput of fleet generation and fleet screening under the
// defect-arena layout and the memoized detection model (docs/performance.md).
//
// Emits one JSON object per line so runs can be diffed and checked mechanically
// (tools/check_screening_json.py). Phases: "generate" (arena fleet build),
// "screen" and "generate_screen", each at 1/2/8 worker threads; "screen" and
// "generate_screen" run under both models:
//   cached    -- the production path: per-defect survive terms memoized once per
//                faulty processor, clean parts streamed via the packed byte columns.
//   reference -- the pre-memoization implementation kept behind
//                ScreeningConfig::use_reference_model, recomputing
//                MatchingTestcases/ExpectedErrors at every probe.
// The binary asserts that both models, at every thread count, produce identical
// ScreeningStats (counters and the detections vector, months compared bitwise) and
// exits non-zero on any divergence; the closing "summary" line reports the
// cached-vs-reference screening speedup at one thread.
//
// "generate" likewise runs under both models: cached is the blocked SIMD generator
// (GenerationPlan + bulk uniform fill + branchless classify, docs/performance.md),
// reference the original per-processor loop kept behind
// PopulationConfig::use_reference_generator. The binary asserts the two fleets are
// byte-identical -- columns, faulty index, defect arena (doubles compared bitwise),
// per-arch tallies -- at every thread count, and the summary reports the blocked
// generator's speedup at one thread.
//
// Further row families cover the batched engine and the SIMD kernels
// (docs/performance.md):
//   "screen_scalar"   -- the cached model with ScreeningConfig::simd pinned to the
//                        scalar fallback, so the vector kernel's contribution is
//                        measurable.
//   "generate_scalar" -- the blocked generator with PopulationConfig::simd pinned to
//                        scalar; its fleet too must match the golden fleet bitwise.
//   "screen_series"   -- the cached screen with a SeriesRecorder attached; the ratio to
//                        the plain "screen" row is the live-telemetry overhead, bounded
//                        by tools/check_screening_json.py (docs/observability.md).
//   "screen_batch"    -- ScreeningPipeline::RunBatch over K in {1,2,4,8} scenarios
//                        (seeds 77+k, periods cycling {3,1,2,6} months) at 1/2/8
//                        threads; the figure of merit is ns_per_processor_scenario =
//                        wall * 1e9 / (processors * K). The binary asserts every
//                        batched slot is bitwise identical to that scenario's
//                        independent run.
// The leading "env" line records the resolved SIMD level, whether the build compiled the
// vector kernels out (-DSDC_FORCE_SCALAR), and the host's hardware thread count, so
// checked-in results are interpretable.
//
// Usage: micro_screening [processor_count] [repeats]
// Defaults: 1,000,000 processors, best-of-5. CI smoke runs use a small count.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/simd.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/telemetry/series.h"
#include "src/toolchain/registry.h"

namespace sdc {
namespace {

double BestWallSeconds(int repeats, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

void EmitJson(const char* phase, const char* model, int threads, double wall_seconds,
              uint64_t processors) {
  const double ns_per_processor = wall_seconds * 1e9 / static_cast<double>(processors);
  const double fleets_per_second = wall_seconds > 0.0 ? 1.0 / wall_seconds : 0.0;
  std::printf("{\"bench\": \"%s\", \"model\": \"%s\", \"threads\": %d, "
              "\"processors\": %llu, \"wall_seconds\": %.6f, \"ns_per_processor\": %.2f, "
              "\"fleets_per_second\": %.2f}\n",
              phase, model, threads, static_cast<unsigned long long>(processors),
              wall_seconds, ns_per_processor, fleets_per_second);
  std::fflush(stdout);
}

void EmitBatchJson(int threads, int k_count, double wall_seconds, uint64_t processors) {
  const double ns_per_processor_scenario =
      wall_seconds * 1e9 /
      (static_cast<double>(processors) * static_cast<double>(k_count));
  std::printf("{\"bench\": \"screen_batch\", \"model\": \"cached\", \"threads\": %d, "
              "\"k\": %d, \"processors\": %llu, \"wall_seconds\": %.6f, "
              "\"ns_per_processor_scenario\": %.2f}\n",
              threads, k_count, static_cast<unsigned long long>(processors), wall_seconds,
              ns_per_processor_scenario);
  std::fflush(stdout);
}

// Scenario k of the bench batch: distinct seed and cadence so the batched pass cannot
// cheat by sharing per-scenario state (the same spread the equivalence tests use).
ScreeningConfig BatchScenario(int k) {
  static constexpr double kPeriods[] = {3.0, 1.0, 2.0, 6.0};
  ScreeningConfig config;
  config.seed = 77 + static_cast<uint64_t>(k);
  config.regular_period_months = kPeriods[k % 4];
  return config;
}

// Bitwise equality of two screening results: every counter and every detection,
// including the exact bit pattern of the detection-month doubles.
bool IdenticalStats(const ScreeningStats& a, const ScreeningStats& b) {
  if (a.tested != b.tested || a.faulty != b.faulty ||
      a.detected_by_stage != b.detected_by_stage || a.tested_by_arch != b.tested_by_arch ||
      a.detected_by_arch != b.detected_by_arch ||
      a.detections.size() != b.detections.size()) {
    return false;
  }
  for (size_t i = 0; i < a.detections.size(); ++i) {
    const ProcessorOutcome& x = a.detections[i];
    const ProcessorOutcome& y = b.detections[i];
    if (x.serial != y.serial || x.arch_index != y.arch_index || x.detected != y.detected ||
        x.stage != y.stage ||
        std::memcmp(&x.month, &y.month, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

bool SameBits(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

bool IdenticalDefects(const Defect& a, const Defect& b) {
  if (a.id != b.id || a.feature != b.feature || a.affected_ops != b.affected_ops ||
      a.affected_types != b.affected_types || a.affected_pcores != b.affected_pcores ||
      a.semantics != b.semantics ||
      a.pcore_rate_scale.size() != b.pcore_rate_scale.size() ||
      a.pattern_sets.size() != b.pattern_sets.size()) {
    return false;
  }
  for (size_t i = 0; i < a.pcore_rate_scale.size(); ++i) {
    if (!SameBits(a.pcore_rate_scale[i], b.pcore_rate_scale[i])) {
      return false;
    }
  }
  if (!SameBits(a.min_trigger_celsius, b.min_trigger_celsius) ||
      !SameBits(a.base_log10_rate, b.base_log10_rate) ||
      !SameBits(a.temp_slope, b.temp_slope) ||
      !SameBits(a.intensity_ref, b.intensity_ref) ||
      !SameBits(a.intensity_exponent, b.intensity_exponent) ||
      !SameBits(a.pattern_probability, b.pattern_probability) ||
      !SameBits(a.multi_flip_probability, b.multi_flip_probability) ||
      !SameBits(a.extra_flip_probability, b.extra_flip_probability) ||
      !SameBits(a.onset_months, b.onset_months)) {
    return false;
  }
  for (size_t s = 0; s < a.pattern_sets.size(); ++s) {
    const PatternSet& x = a.pattern_sets[s];
    const PatternSet& y = b.pattern_sets[s];
    if (x.type != y.type || x.patterns.size() != y.patterns.size()) {
      return false;
    }
    for (size_t p = 0; p < x.patterns.size(); ++p) {
      if (x.patterns[p].mask.lo != y.patterns[p].mask.lo ||
          x.patterns[p].mask.hi != y.patterns[p].mask.hi ||
          !SameBits(x.patterns[p].weight, y.patterns[p].weight)) {
        return false;
      }
    }
  }
  return true;
}

// Byte-identity of two fleets: packed columns, sparse faulty index, arena ranges, every
// defect field (doubles bitwise), and the merged per-arch tallies -- the contract the
// blocked generator makes against the reference loop (docs/performance.md).
bool IdenticalFleets(const FleetPopulation& a, const FleetPopulation& b) {
  if (a.size() != b.size() || a.arch_bytes() != b.arch_bytes() ||
      a.flag_bytes() != b.flag_bytes() || a.faulty_serials() != b.faulty_serials() ||
      a.faulty_ranges().size() != b.faulty_ranges().size() ||
      a.defect_arena().size() != b.defect_arena().size()) {
    return false;
  }
  for (size_t i = 0; i < a.faulty_ranges().size(); ++i) {
    if (a.faulty_ranges()[i].offset != b.faulty_ranges()[i].offset ||
        a.faulty_ranges()[i].count != b.faulty_ranges()[i].count) {
      return false;
    }
  }
  for (int arch = 0; arch < kArchCount; ++arch) {
    if (a.CountByArch(arch) != b.CountByArch(arch)) {
      return false;
    }
  }
  for (size_t i = 0; i < a.defect_arena().size(); ++i) {
    if (!IdenticalDefects(a.defect_arena()[i], b.defect_arena()[i])) {
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  const uint64_t processors =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'000'000ull;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 5;
  std::printf("# micro_screening: %llu processors, best of %d\n",
              static_cast<unsigned long long>(processors), repeats);

  std::printf("{\"bench\": \"env\", \"simd\": \"%s\", \"forced_scalar\": %s, "
              "\"hardware_threads\": %u}\n",
              SimdLevelName(ResolveSimdLevel(SimdLevel::kAuto)).c_str(),
#if defined(SDC_FORCE_SCALAR)
              "true",
#else
              "false",
#endif
              std::thread::hardware_concurrency());
  std::fflush(stdout);

  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  bool deterministic = true;
  double cached_screen_t1 = 0.0;
  double reference_screen_t1 = 0.0;
  double scalar_screen_t1 = 0.0;
  double series_screen_t1 = 0.0;
  double batch_k1_t1 = 0.0;
  double batch_k8_t1 = 0.0;
  double blocked_generate_t1 = 0.0;
  double reference_generate_t1 = 0.0;

  // Ground truth for the determinism assertions: the blocked generator and the cached
  // screening model at one thread. Every other (generator, dispatch, threads) variant
  // must reproduce this fleet and these stats bitwise.
  PopulationConfig golden_population;
  golden_population.processor_count = processors;
  golden_population.threads = 1;
  const FleetPopulation golden_fleet = FleetPopulation::Generate(golden_population);
  const ScreeningStats golden = pipeline.Run(golden_fleet, ScreeningConfig{.threads = 1});

  for (int threads : {1, 2, 8}) {
    PopulationConfig population_config;
    population_config.processor_count = processors;
    population_config.threads = threads;

    const double generate_wall = BestWallSeconds(repeats, [&] {
      (void)FleetPopulation::Generate(population_config);
    });
    EmitJson("generate", "cached", threads, generate_wall, processors);

    // The pre-blocking per-processor loop, and the blocked kernel pinned to scalar
    // dispatch: three generators, one fleet, asserted byte-identical below.
    PopulationConfig reference_population = population_config;
    reference_population.use_reference_generator = true;
    deterministic &=
        IdenticalFleets(golden_fleet, FleetPopulation::Generate(reference_population));
    const double generate_reference_wall = BestWallSeconds(repeats, [&] {
      (void)FleetPopulation::Generate(reference_population);
    });
    EmitJson("generate", "reference", threads, generate_reference_wall, processors);

    PopulationConfig scalar_population = population_config;
    scalar_population.simd = SimdLevel::kScalar;
    deterministic &=
        IdenticalFleets(golden_fleet, FleetPopulation::Generate(scalar_population));
    const double generate_scalar_wall = BestWallSeconds(repeats, [&] {
      (void)FleetPopulation::Generate(scalar_population);
    });
    EmitJson("generate_scalar", "cached", threads, generate_scalar_wall, processors);

    if (threads == 1) {
      blocked_generate_t1 = generate_wall;
      reference_generate_t1 = generate_reference_wall;
    }

    const FleetPopulation fleet = FleetPopulation::Generate(population_config);
    deterministic &= IdenticalFleets(golden_fleet, fleet);
    for (const bool use_reference : {false, true}) {
      ScreeningConfig screening_config;
      screening_config.threads = threads;
      screening_config.use_reference_model = use_reference;
      const char* model = use_reference ? "reference" : "cached";

      deterministic &= IdenticalStats(golden, pipeline.Run(fleet, screening_config));

      const double screen_wall = BestWallSeconds(repeats, [&] {
        (void)pipeline.Run(fleet, screening_config);
      });
      EmitJson("screen", model, threads, screen_wall, processors);
      if (threads == 1) {
        (use_reference ? reference_screen_t1 : cached_screen_t1) = screen_wall;
      }

      const double both_wall = BestWallSeconds(repeats, [&] {
        const FleetPopulation f = FleetPopulation::Generate(population_config);
        (void)pipeline.Run(f, screening_config);
      });
      EmitJson("generate_screen", model, threads, both_wall, processors);
    }

    // The same cached screen with the vector kernel pinned off: the delta against the
    // "screen" row above is the SIMD clean-path contribution. Output must not move a bit.
    ScreeningConfig scalar_config;
    scalar_config.threads = threads;
    scalar_config.simd = SimdLevel::kScalar;
    deterministic &= IdenticalStats(golden, pipeline.Run(fleet, scalar_config));
    const double scalar_wall = BestWallSeconds(repeats, [&] {
      (void)pipeline.Run(fleet, scalar_config);
    });
    EmitJson("screen_scalar", "cached", threads, scalar_wall, processors);
    if (threads == 1) {
      scalar_screen_t1 = scalar_wall;
    }

    // The cached screen with a live SeriesRecorder attached: sampling happens only at
    // shard boundaries in the serial fold, so the delta against the "screen" row is the
    // whole observability tax. Output (and the recorded sim series) must not move a bit.
    {
      ScreeningConfig series_config;
      series_config.threads = threads;
      SeriesRecorder check_recorder;
      series_config.series = &check_recorder;
      deterministic &= IdenticalStats(golden, pipeline.Run(fleet, series_config));
      const double series_wall = BestWallSeconds(repeats, [&] {
        SeriesRecorder recorder;
        ScreeningConfig timed = series_config;
        timed.series = &recorder;
        (void)pipeline.Run(fleet, timed);
      });
      EmitJson("screen_series", "cached", threads, series_wall, processors);
      if (threads == 1) {
        series_screen_t1 = series_wall;
      }
    }

    // Batched engine: one pass over the fleet for K scenarios. Every slot must be
    // bitwise identical to that scenario's independent run before timing means anything.
    for (const int k_count : {1, 2, 4, 8}) {
      ScenarioBatch batch;
      batch.threads = threads;
      for (int k = 0; k < k_count; ++k) {
        batch.scenarios.push_back(BatchScenario(k));
      }
      const std::vector<ScreeningStats> batched = pipeline.RunBatch(fleet, batch);
      for (int k = 0; k < k_count; ++k) {
        ScreeningConfig independent = batch.scenarios[static_cast<size_t>(k)];
        independent.threads = threads;
        deterministic &=
            IdenticalStats(batched[static_cast<size_t>(k)], pipeline.Run(fleet, independent));
      }
      const double batch_wall = BestWallSeconds(repeats, [&] {
        (void)pipeline.RunBatch(fleet, batch);
      });
      EmitBatchJson(threads, k_count, batch_wall, processors);
      if (threads == 1 && k_count == 1) {
        batch_k1_t1 = batch_wall;
      }
      if (threads == 1 && k_count == 8) {
        batch_k8_t1 = batch_wall;
      }
    }
  }

  const double speedup =
      cached_screen_t1 > 0.0 ? reference_screen_t1 / cached_screen_t1 : 0.0;
  // How much one batched pass beats K independent passes: K * wall(K=1) / wall(K=8),
  // both at one thread. The SIMD speedup compares the auto-dispatched clean path to the
  // scalar fallback (~1.0 by construction in -DSDC_FORCE_SCALAR builds).
  const double batch_amortization =
      batch_k8_t1 > 0.0 ? 8.0 * batch_k1_t1 / batch_k8_t1 : 0.0;
  const double simd_speedup =
      cached_screen_t1 > 0.0 ? scalar_screen_t1 / cached_screen_t1 : 0.0;
  // Blocked vs reference generator at one thread -- the generate acceptance bound
  // tools/check_screening_json.py enforces (relative, so flaky CI hosts cannot fail it
  // on absolute wall time alone).
  const double generate_speedup =
      blocked_generate_t1 > 0.0 ? reference_generate_t1 / blocked_generate_t1 : 0.0;
  // Attached-series wall over plain wall at one thread: the telemetry overhead ratio
  // tools/check_screening_json.py bounds (<= 1.02 at fleet scale; looser at CI smoke
  // sizes where a single timer tick moves the ratio).
  const double series_overhead =
      cached_screen_t1 > 0.0 ? series_screen_t1 / cached_screen_t1 : 0.0;
  std::printf("{\"bench\": \"summary\", \"screen_speedup_cached_vs_reference\": %.2f, "
              "\"batch_amortization_k8\": %.2f, \"screen_simd_speedup\": %.2f, "
              "\"generate_speedup_blocked_vs_reference\": %.2f, "
              "\"series_overhead\": %.4f, "
              "\"deterministic\": %s}\n",
              speedup, batch_amortization, simd_speedup, generate_speedup,
              series_overhead, deterministic ? "true" : "false");
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: generator/model/scalar/batch paths diverged from the golden run "
                 "(see docs/performance.md)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sdc

int main(int argc, char** argv) { return sdc::Main(argc, argv); }
