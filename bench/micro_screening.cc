// micro_screening: throughput of fleet generation and fleet screening under the
// defect-arena layout and the memoized detection model (docs/performance.md).
//
// Emits one JSON object per line so runs can be diffed and checked mechanically
// (tools/check_screening_json.py). Phases: "generate" (arena fleet build),
// "screen" and "generate_screen", each at 1/2/8 worker threads; "screen" and
// "generate_screen" run under both models:
//   cached    -- the production path: per-defect survive terms memoized once per
//                faulty processor, clean parts streamed via the packed byte columns.
//   reference -- the pre-memoization implementation kept behind
//                ScreeningConfig::use_reference_model, recomputing
//                MatchingTestcases/ExpectedErrors at every probe.
// The binary asserts that both models, at every thread count, produce identical
// ScreeningStats (counters and the detections vector, months compared bitwise) and
// exits non-zero on any divergence; the closing "summary" line reports the
// cached-vs-reference screening speedup at one thread.
//
// Usage: micro_screening [processor_count] [repeats]
// Defaults: 1,000,000 processors, best-of-5. CI smoke runs use a small count.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>

#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/toolchain/registry.h"

namespace sdc {
namespace {

double BestWallSeconds(int repeats, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

void EmitJson(const char* phase, const char* model, int threads, double wall_seconds,
              uint64_t processors) {
  const double ns_per_processor = wall_seconds * 1e9 / static_cast<double>(processors);
  const double fleets_per_second = wall_seconds > 0.0 ? 1.0 / wall_seconds : 0.0;
  std::printf("{\"bench\": \"%s\", \"model\": \"%s\", \"threads\": %d, "
              "\"processors\": %llu, \"wall_seconds\": %.6f, \"ns_per_processor\": %.2f, "
              "\"fleets_per_second\": %.2f}\n",
              phase, model, threads, static_cast<unsigned long long>(processors),
              wall_seconds, ns_per_processor, fleets_per_second);
  std::fflush(stdout);
}

// Bitwise equality of two screening results: every counter and every detection,
// including the exact bit pattern of the detection-month doubles.
bool IdenticalStats(const ScreeningStats& a, const ScreeningStats& b) {
  if (a.tested != b.tested || a.faulty != b.faulty ||
      a.detected_by_stage != b.detected_by_stage || a.tested_by_arch != b.tested_by_arch ||
      a.detected_by_arch != b.detected_by_arch ||
      a.detections.size() != b.detections.size()) {
    return false;
  }
  for (size_t i = 0; i < a.detections.size(); ++i) {
    const ProcessorOutcome& x = a.detections[i];
    const ProcessorOutcome& y = b.detections[i];
    if (x.serial != y.serial || x.arch_index != y.arch_index || x.detected != y.detected ||
        x.stage != y.stage ||
        std::memcmp(&x.month, &y.month, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  const uint64_t processors =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'000'000ull;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 5;
  std::printf("# micro_screening: %llu processors, best of %d\n",
              static_cast<unsigned long long>(processors), repeats);

  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  bool deterministic = true;
  double cached_screen_t1 = 0.0;
  double reference_screen_t1 = 0.0;

  // Ground truth for the determinism assertion: the cached model at one thread.
  ScreeningStats golden;
  {
    PopulationConfig population_config;
    population_config.processor_count = processors;
    population_config.threads = 1;
    const FleetPopulation fleet = FleetPopulation::Generate(population_config);
    golden = pipeline.Run(fleet, ScreeningConfig{.threads = 1});
  }

  for (int threads : {1, 2, 8}) {
    PopulationConfig population_config;
    population_config.processor_count = processors;
    population_config.threads = threads;

    const double generate_wall = BestWallSeconds(repeats, [&] {
      (void)FleetPopulation::Generate(population_config);
    });
    EmitJson("generate", "cached", threads, generate_wall, processors);

    const FleetPopulation fleet = FleetPopulation::Generate(population_config);
    for (const bool use_reference : {false, true}) {
      ScreeningConfig screening_config;
      screening_config.threads = threads;
      screening_config.use_reference_model = use_reference;
      const char* model = use_reference ? "reference" : "cached";

      deterministic &= IdenticalStats(golden, pipeline.Run(fleet, screening_config));

      const double screen_wall = BestWallSeconds(repeats, [&] {
        (void)pipeline.Run(fleet, screening_config);
      });
      EmitJson("screen", model, threads, screen_wall, processors);
      if (threads == 1) {
        (use_reference ? reference_screen_t1 : cached_screen_t1) = screen_wall;
      }

      const double both_wall = BestWallSeconds(repeats, [&] {
        const FleetPopulation f = FleetPopulation::Generate(population_config);
        (void)pipeline.Run(f, screening_config);
      });
      EmitJson("generate_screen", model, threads, both_wall, processors);
    }
  }

  const double speedup =
      cached_screen_t1 > 0.0 ? reference_screen_t1 / cached_screen_t1 : 0.0;
  std::printf("{\"bench\": \"summary\", \"screen_speedup_cached_vs_reference\": %.2f, "
              "\"deterministic\": %s}\n",
              speedup, deterministic ? "true" : "false");
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: cached and reference models diverged (see docs/performance.md)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sdc

int main(int argc, char** argv) { return sdc::Main(argc, argv); }
