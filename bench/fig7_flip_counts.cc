// Figure 7: number of flipped bits per SDC among records of pattern-bearing settings.
// Paper: mostly one bit (0.72 .. 0.98 depending on datatype), some two, a few more.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/bitflip.h"
#include "src/common/table.h"
#include "src/fault/catalog.h"

namespace {

using namespace sdc;

struct Source {
  const char* cpu_id;
  const char* testcase_id;
  int pcore;
};

}  // namespace

int main() {
  using namespace sdc;
  PrintExperimentHeader("Figure 7", "number of flipped bits in SDCs with bitflip patterns");
  const TestSuite suite = TestSuite::BuildFull();

  const struct {
    DataType type;
    std::vector<Source> sources;
    const char* paper;
  } rows[] = {
      {DataType::kFloat32,
       {{"SIMD1", "vec.vec_fma_f32.f32.l8.n128", 5}, {"MIX1", "vec.vec_fma_f32.f32.l4.n32", 0}},
       "0.98 / 0.02 / 0"},
      {DataType::kFloat64,
       {{"FPU1", "lib.math.fp_arctan.f64.n256", 1}, {"FPU3", "loop.fp_mul.f64.n480", 11}},
       "0.90 / 0.08 / 0.02"},
      {DataType::kFloat80,
       {{"FPU1", "lib.math.fp_arctan.f64x.n256", 1}, {"FPU2", "lib.math.fp_arctan.f64x.n1024", 0}},
       "0.72 / 0.20 / 0.08"},
      {DataType::kInt32,
       {{"MIX1", "loop.int_mul.i32.n480", 0}, {"MIX2", "loop.int_mul.i32.n224", 1}},
       "0.91 / 0.09 / 0"},
      {DataType::kByte,
       {{"MIX1", "lib.string.transform.b1024", 0}, {"MIX2", "loop.popcount.byte.n480", 2}},
       "0.96 / 0.04 / 0 (bin8)"},
  };

  TextTable table({"datatype", "records", "1 flip", "2 flips", ">2 flips", "paper"});
  for (const auto& row : rows) {
    std::vector<SdcRecord> records;
    for (const Source& source : row.sources) {
      FaultyMachine machine(FindInCatalog(source.cpu_id), 91);
      const auto batch =
          CollectRecords(suite, machine, source.testcase_id, source.pcore, 58.0, 600.0);
      records.insert(records.end(), batch.begin(), batch.end());
    }
    const auto distribution = FlipCountDistribution(records, row.type);
    size_t count = 0;
    for (const SdcRecord& record : records) {
      count += record.type == row.type ? 1 : 0;
    }
    table.AddRow({DataTypeName(row.type), std::to_string(count),
                  FormatDouble(distribution[0], 2), FormatDouble(distribution[1], 2),
                  FormatDouble(distribution[2], 2), row.paper});
  }
  table.Print(std::cout);
  return 0;
}
