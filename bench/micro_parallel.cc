// Wall-clock scaling of the ThreadPool-based hot paths: fleet generation, fleet
// screening, and parallel plan execution, each at 1/2/4/<hardware> threads. Emits one
// JSON line per run so speedup curves can be scraped from a run log:
//   {"bench": "fleet_generate", "threads": 2, "wall_seconds": 0.41, "speedup": 1.9}
// Determinism is asserted as a side effect: every thread count must reproduce the
// single-thread checksum of its workload.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "src/common/parallel.h"
#include "src/fault/catalog.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/toolchain/framework.h"
#include "src/toolchain/registry.h"

namespace sdc {
namespace {

double WallSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

std::vector<int> ThreadCounts() {
  std::vector<int> counts = {1, 2, 4};
  const int hw = HardwareThreads();
  bool seen = false;
  for (int count : counts) {
    seen = seen || count == hw;
  }
  if (!seen) {
    counts.push_back(hw);
  }
  return counts;
}

void EmitJson(const std::string& bench, int threads, double wall_seconds,
              double serial_seconds) {
  std::printf("{\"bench\": \"%s\", \"threads\": %d, \"wall_seconds\": %.6f, "
              "\"speedup\": %.2f}\n",
              bench.c_str(), threads, wall_seconds,
              wall_seconds > 0.0 ? serial_seconds / wall_seconds : 0.0);
  std::fflush(stdout);
}

int Main() {
  std::printf("# micro_parallel: ThreadPool scaling on %d hardware thread(s)\n",
              HardwareThreads());

  // --- Fleet generation ---
  {
    PopulationConfig config;
    config.processor_count = 1'000'000;
    config.seed = 20230901;
    double serial_seconds = 0.0;
    uint64_t serial_faulty = 0;
    for (int threads : ThreadCounts()) {
      config.threads = threads;
      uint64_t faulty = 0;
      const double wall = WallSeconds([&] {
        const FleetPopulation fleet = FleetPopulation::Generate(config);
        faulty = fleet.faulty_count();
      });
      if (threads == 1) {
        serial_seconds = wall;
        serial_faulty = faulty;
      } else if (faulty != serial_faulty) {
        std::fprintf(stderr, "DETERMINISM VIOLATION: generate faulty_count %llu != %llu\n",
                     static_cast<unsigned long long>(faulty),
                     static_cast<unsigned long long>(serial_faulty));
        return 1;
      }
      EmitJson("fleet_generate", threads, wall, serial_seconds);
    }
  }

  // --- Fleet screening ---
  {
    PopulationConfig population_config;
    population_config.processor_count = 2'000'000;
    population_config.seed = 20230901;
    const FleetPopulation fleet = FleetPopulation::Generate(population_config);
    const TestSuite suite = TestSuite::BuildFull();
    ScreeningPipeline pipeline(&suite);
    ScreeningConfig config;
    double serial_seconds = 0.0;
    uint64_t serial_detected = 0;
    for (int threads : ThreadCounts()) {
      config.threads = threads;
      uint64_t detected = 0;
      const double wall = WallSeconds([&] {
        const ScreeningStats stats = pipeline.Run(fleet, config);
        detected = stats.total_detected();
      });
      if (threads == 1) {
        serial_seconds = wall;
        serial_detected = detected;
      } else if (detected != serial_detected) {
        std::fprintf(stderr, "DETERMINISM VIOLATION: screening detected %llu != %llu\n",
                     static_cast<unsigned long long>(detected),
                     static_cast<unsigned long long>(serial_detected));
        return 1;
      }
      EmitJson("fleet_screening", threads, wall, serial_seconds);
    }
  }

  // --- Parallel plan execution ---
  {
    const TestSuite suite = TestSuite::BuildSampled(3);
    TestFramework framework(&suite);
    FaultyMachine machine(FindInCatalog("MIX2"), 77);
    const std::vector<TestPlanEntry> plan = framework.EqualPlan(5.0);
    TestRunConfig config;
    config.time_scale = 2e7;
    config.simultaneous_cores = true;
    config.seed = 11;
    config.parallel_plan_entries = true;
    double serial_seconds = 0.0;
    uint64_t serial_errors = 0;
    for (int threads : ThreadCounts()) {
      config.threads = threads;
      uint64_t errors = 0;
      const double wall = WallSeconds([&] {
        const RunReport report = framework.RunPlan(machine, plan, config);
        errors = report.total_errors();
      });
      if (threads == 1) {
        serial_seconds = wall;
        serial_errors = errors;
      } else if (errors != serial_errors) {
        std::fprintf(stderr, "DETERMINISM VIOLATION: plan errors %llu != %llu\n",
                     static_cast<unsigned long long>(errors),
                     static_cast<unsigned long long>(serial_errors));
        return 1;
      }
      EmitJson("run_plan", threads, wall, serial_seconds);
    }
  }
  return 0;
}

}  // namespace
}  // namespace sdc

int main() { return sdc::Main(); }
