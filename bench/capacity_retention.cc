// Extension experiment: fleet capacity retained by fine-grained decommission vs the
// baseline's whole-processor deprecation (Observation 4 / Section 7.1; the fail-in-place
// direction the paper cites via Hyrax). Replays the screening pipeline's in-production
// detections over the 32-month horizon against both policies.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/fleet/capacity.h"

int main() {
  using namespace sdc;
  PrintExperimentHeader("Capacity", "cores retained: fine-grained decommission vs baseline");

  PopulationConfig population_config;
  population_config.processor_count = 1'000'000;
  const FleetPopulation fleet = FleetPopulation::Generate(population_config);
  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  const ScreeningConfig config;
  const ScreeningStats stats = pipeline.Run(fleet, config);
  const CapacityReport report = SimulateCapacityRetention(fleet, stats, config);

  TextTable table({"month", "baseline cores lost", "fine-grained cores lost"});
  for (const CapacityPoint& point : report.timeline) {
    if (static_cast<int>(point.month) % 6 == 0) {
      table.AddRow({FormatDouble(point.month, 0),
                    std::to_string(point.baseline_cores_lost),
                    std::to_string(point.fine_grained_cores_lost)});
    }
  }
  table.Print(std::cout);

  std::cout << "\nfleet: " << report.fleet_cores << " cores; " << report.production_detections
            << " faulty parts flagged during production\n";
  std::cout << "baseline policy discards " << report.baseline_cores_lost
            << " cores; fine-grained discards " << report.fine_grained_cores_lost << " ("
            << report.parts_deprecated_fine
            << " parts still deprecated by the >2-defective-cores rule)\n";
  std::cout << "cores kept in service by fine-grained decommission: " << report.cores_saved()
            << " (" << FormatDouble(report.RetentionFactor(), 1) << "x fewer cores lost)\n";
  std::cout << "\npaper hook: Section 3.2 -- \"it could be worthwhile to investigate the\n"
               "feasibility of continuing to utilize the unaffected cores\" [Hyrax, 56].\n";
  return 0;
}
