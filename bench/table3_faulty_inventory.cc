// Table 3: hardware details and error information of the named faulty processors. For each
// part the harness runs a full-suite adequate sweep and reports the measured defective-core
// count, failed-testcase count (raw and by kernel family -- this suite is parametrically
// redundant, so the family count is the number comparable to the paper's #err), SDC type,
// impacted workloads, and impacted datatypes.

#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/fault/catalog.h"

int main() {
  using namespace sdc;
  PrintExperimentHeader("Table 3", "faulty processor inventory (named Table 3 parts)");
  const TestSuite suite = TestSuite::BuildFull();

  TextTable table({"CPU id", "arch", "age(Y)", "#pcore", "#err", "#err-fam", "SDC type",
                   "impacted datatypes"});
  for (const char* cpu_id : {"MIX1", "MIX2", "SIMD1", "SIMD2", "FPU1", "FPU2", "FPU3",
                             "FPU4", "CNST1", "CNST2"}) {
    const FaultyProcessorInfo info = FindInCatalog(cpu_id);
    FaultyMachine machine(info, 1234);
    const RunReport report = AdequateSweep(suite, machine, 30.0);

    std::set<int> defective_pcores;
    for (const TestcaseResult& result : report.results) {
      for (size_t pcore = 0; pcore < result.errors_per_pcore.size(); ++pcore) {
        if (result.errors_per_pcore[pcore] > 0) {
          defective_pcores.insert(static_cast<int>(pcore));
        }
      }
    }
    // Impacted datatypes: checked datatypes of failed testcases that the part's defects can
    // corrupt (record storage is capped, so records alone under-report the spread).
    std::set<std::string> datatypes;
    for (const TestcaseResult& result : report.results) {
      if (!result.failed()) {
        continue;
      }
      const int index = suite.IndexOf(result.testcase_id);
      for (DataType type : suite.info(index).types) {
        for (const Defect& defect : info.defects) {
          if (defect.type() == SdcType::kComputation && defect.AffectsType(type) &&
              !defect.affected_types.empty()) {
            datatypes.insert(DataTypeName(type));
          }
        }
      }
    }
    std::string datatype_list;
    for (const std::string& name : datatypes) {
      datatype_list += name + ";";
    }
    table.AddRow({info.cpu_id, info.arch, FormatDouble(info.age_years, 2),
                  std::to_string(defective_pcores.size()),
                  std::to_string(report.failed_testcase_ids().size()),
                  std::to_string(FailedFamilies(report).size()),
                  SdcTypeName(info.sdc_type()), datatype_list});
  }
  table.Print(std::cout);

  std::cout << "\nimpacted workload families per part:\n";
  for (const char* cpu_id : {"MIX1", "FPU1", "CNST1"}) {
    FaultyMachine machine(FindInCatalog(cpu_id), 1234);
    const RunReport report = AdequateSweep(suite, machine, 30.0);
    std::cout << "  " << cpu_id << ": ";
    for (const std::string& family : FailedFamilies(report)) {
      std::cout << family << " ";
    }
    std::cout << "\n";
  }
  std::cout << "\npaper reference (#pcore / #err): MIX1 16/25, MIX2 16/24, SIMD1 1/5,\n"
               "SIMD2 1/1, FPU1 1/3, FPU2 1/3, FPU3 1/2, FPU4 1/1, CNST1 1/9, CNST2 24/8\n";
  return 0;
}
