// Microbenchmarks (google-benchmark) for the simulation substrate: testcase batch
// execution on healthy vs defective machines (the corruption hook's overhead), thermal
// stepping, and the coherent-bus handoff path.

#include <benchmark/benchmark.h>

#include "src/fault/catalog.h"
#include "src/fault/machine.h"
#include "src/toolchain/registry.h"

namespace sdc {
namespace {

void RunKernelOnce(const TestSuite& suite, FaultyMachine& machine, int index, Rng& rng,
                   std::vector<SdcRecord>& records) {
  TestContext context;
  context.machine = &machine;
  context.rng = &rng;
  context.records = &records;
  context.max_records = 16;
  context.cpu_id = machine.info().cpu_id;
  context.lcores = {0};
  if (suite.info(index).multithreaded) {
    context.lcores.push_back(machine.cpu().spec().threads_per_core);
  }
  suite.at(index).RunBatch(context);
}

void BM_KernelHealthy(benchmark::State& state, const char* testcase_id) {
  static const TestSuite suite = TestSuite::BuildFull();
  FaultyMachine machine(MakeArchSpec("M2"));
  const int index = suite.IndexOf(testcase_id);
  Rng rng(1);
  std::vector<SdcRecord> records;
  for (auto _ : state) {
    RunKernelOnce(suite, machine, index, rng, records);
    records.clear();
  }
}
BENCHMARK_CAPTURE(BM_KernelHealthy, matmul_f64, "app.matmul.f64.n16.l8");
BENCHMARK_CAPTURE(BM_KernelHealthy, crc_vector, "lib.crc32.vector.b4096");
BENCHMARK_CAPTURE(BM_KernelHealthy, arctan, "lib.math.fp_arctan.f64.n256");
BENCHMARK_CAPTURE(BM_KernelHealthy, tx_invariant, "mt.tx.invariant.r50");

void BM_KernelFaulty(benchmark::State& state, const char* testcase_id) {
  static const TestSuite suite = TestSuite::BuildFull();
  FaultyMachine machine(FindInCatalog("MIX1"), 5);
  machine.cpu().SetTimeScale(1e5);
  const int index = suite.IndexOf(testcase_id);
  Rng rng(1);
  std::vector<SdcRecord> records;
  for (auto _ : state) {
    RunKernelOnce(suite, machine, index, rng, records);
    records.clear();
  }
}
BENCHMARK_CAPTURE(BM_KernelFaulty, matmul_f64, "app.matmul.f64.n16.l8");
BENCHMARK_CAPTURE(BM_KernelFaulty, crc_vector, "lib.crc32.vector.b4096");

void BM_ThermalAdvance(benchmark::State& state) {
  ThermalModel thermal(static_cast<int>(state.range(0)));
  std::vector<double> utilization(static_cast<size_t>(state.range(0)), 0.7);
  for (auto _ : state) {
    thermal.Advance(1.0, utilization);
    benchmark::DoNotOptimize(thermal.core_temperature(0));
  }
}
BENCHMARK(BM_ThermalAdvance)->Arg(8)->Arg(32);

void BM_CoherentHandoff(benchmark::State& state) {
  FaultyMachine machine(MakeArchSpec("M2"));
  CoherentBus& bus = machine.bus();
  uint64_t value = 0;
  for (auto _ : state) {
    bus.Write(0, 1, ++value);
    benchmark::DoNotOptimize(bus.Read(2, 1));
  }
}
BENCHMARK(BM_CoherentHandoff);

void BM_FullSuiteBuild(benchmark::State& state) {
  for (auto _ : state) {
    TestSuite suite = TestSuite::BuildFull();
    benchmark::DoNotOptimize(suite.size());
  }
}
BENCHMARK(BM_FullSuiteBuild);

}  // namespace
}  // namespace sdc

BENCHMARK_MAIN();
