// Capstone harness: the paper's twelve observations, each re-measured on the simulated
// substrate and stamped with a verdict. This is the one binary to run to see the whole
// reproduction at a glance; the per-figure benches provide the detailed versions.

#include <cmath>
#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "src/analysis/bitflip.h"
#include "src/analysis/patterns.h"
#include "src/analysis/repro.h"
#include "src/common/table.h"
#include "src/fleet/capacity.h"
#include "src/fleet/stats.h"
#include "src/tolerance/evaluation.h"

namespace {

using namespace sdc;

struct Verdict {
  std::string id;
  std::string claim;
  std::string measured;
  bool reproduced = false;
};

}  // namespace

int main() {
  using namespace sdc;
  PrintExperimentHeader("Observations 1-12", "the paper's findings, re-measured");
  std::vector<Verdict> verdicts;

  const TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  const auto catalog = StudyCatalog();

  // A mid-size fleet shared by the fleet-level observations.
  PopulationConfig population_config;
  population_config.processor_count = 300000;
  const FleetPopulation fleet = FleetPopulation::Generate(population_config);
  ScreeningPipeline pipeline(&suite);
  const ScreeningStats stats = pipeline.Run(fleet, ScreeningConfig());

  {  // Obs 1: overall failure rate ~3.61 permyriad.
    const double rate = stats.TotalRate() * 1e4;
    verdicts.push_back({"Obs 1", "3.61 permyriad of CPUs cause SDCs",
                        FormatDouble(rate, 2) + " permyriad", rate > 2.5 && rate < 4.8});
  }
  {  // Obs 2: pre-production ~3.262, regular ~0.348 permyriad.
    const double pre = stats.PreProductionRate() * 1e4;
    const double regular = stats.StageRate(TestStage::kRegular) * 1e4;
    verdicts.push_back({"Obs 2", "pre-production 3.262 / regular 0.348 permyriad",
                        FormatDouble(pre, 2) + " / " + FormatDouble(regular, 2),
                        pre > 2.0 && regular > 0.1 && pre > 5.0 * regular});
  }
  {  // Obs 3: SDCs across all micro-architectures.
    int affected = 0;
    for (int arch = 0; arch < kArchCount; ++arch) {
      affected += stats.detected_by_arch[arch] > 0 ? 1 : 0;
    }
    verdicts.push_back({"Obs 3", "faulty parts in every micro-architecture",
                        std::to_string(affected) + "/9 arches", affected >= 8});
  }
  {  // Obs 4: about half the faulty parts have a single defective core.
    int single = 0;
    for (const auto& info : catalog) {
      single += info.defective_pcore_count() == 1 ? 1 : 0;
    }
    const double share = static_cast<double>(single) / catalog.size();
    verdicts.push_back({"Obs 4", "~half of faulty parts: one defective core",
                        FormatPercent(share, 0) + " single-core",
                        share > 0.3 && share < 0.7});
  }
  {  // Obs 5: five vulnerable features.
    std::set<Feature> features;
    for (const auto& info : catalog) {
      for (const Defect& defect : info.defects) {
        features.insert(defect.feature);
      }
    }
    verdicts.push_back({"Obs 5", "ALU, VecUnit, FPU, Cache, TrxMem all vulnerable",
                        std::to_string(features.size()) + "/5 features",
                        features.size() == 5});
  }
  {  // Obs 6: all datatypes impacted, floats most.
    int f64_count = 0;
    int i32_count = 0;
    std::set<DataType> types;
    for (const auto& info : catalog) {
      bool f64_hit = false;
      bool i32_hit = false;
      for (const Defect& defect : info.defects) {
        for (DataType type : defect.affected_types) {
          types.insert(type);
        }
        f64_hit |= defect.type() == SdcType::kComputation &&
                   !defect.affected_types.empty() && defect.AffectsType(DataType::kFloat64);
        i32_hit |= defect.type() == SdcType::kComputation &&
                   !defect.affected_types.empty() && defect.AffectsType(DataType::kInt32);
      }
      f64_count += f64_hit ? 1 : 0;
      i32_count += i32_hit ? 1 : 0;
    }
    verdicts.push_back({"Obs 6", "all datatypes impacted; floating point most",
                        std::to_string(types.size()) + " types, f64 " +
                            std::to_string(f64_count) + " vs i32 " +
                            std::to_string(i32_count) + " parts",
                        types.size() >= 9 && f64_count >= i32_count});
  }
  {  // Obs 7: float flips in the fraction part; tiny losses.
    FaultyMachine machine(FindInCatalog("FPU1"), 7);
    const auto records =
        CollectRecords(suite, machine, "lib.math.fp_arctan.f64.n256", 1, 55.0, 600.0);
    const BitflipStats flips = AnalyzeBitflips(records, DataType::kFloat64);
    const auto losses = PrecisionLosses(records, DataType::kFloat64);
    const double small = FractionAtOrBelow(losses, 2e-4);
    verdicts.push_back({"Obs 7", "fraction-part flips; 99.9% of f64 losses < 0.02%",
                        FormatPercent(flips.FractionPartShare(), 1) + " in fraction, " +
                            FormatPercent(small, 1) + " small losses",
                        flips.FractionPartShare() > 0.95 && small > 0.98});
  }
  {  // Obs 8: fixed bitflip patterns per setting.
    FaultyMachine machine(FindInCatalog("SIMD1"), 8);
    const auto records =
        CollectRecords(suite, machine, "vec.vec_fma_f32.f32.l8.n128", 5, 58.0, 300.0);
    const PatternAnalysis analysis = MinePatterns(records, 0.05);
    verdicts.push_back({"Obs 8", "bitflips recur at fixed positions (patterns)",
                        FormatPercent(analysis.patterned_record_fraction, 1) +
                            " patterned on SIMD1",
                        analysis.patterned_record_fraction > 0.5});
  }
  {  // Obs 9: ~51% of settings reproduce more than once per minute.
    const auto points = CollectTriggerPoints(catalog);
    int reproducible = 0;
    for (const auto& point : points) {
      reproducible += point.frequency_per_minute > 1.0 ? 1 : 0;
    }
    const double share = static_cast<double>(reproducible) / points.size();
    verdicts.push_back({"Obs 9", "51.2% of settings > 1 error/min",
                        FormatPercent(share, 1), share > 0.35 && share < 0.75});
  }
  {  // Obs 10: exponential temperature dependence (and trigger thresholds).
    FaultyMachine machine(FindInCatalog("FPU2"), 10);
    const int index = suite.IndexOf("lib.math.fp_arctan.f64.n256");
    std::vector<TemperaturePoint> points;
    for (double temperature : {49.0, 51.0, 53.0, 55.0, 57.0}) {
      TemperaturePoint point;
      point.temperature_celsius = temperature;
      point.frequency_per_minute = MeasureOccurrenceFrequency(
          machine, framework, static_cast<size_t>(index), 0, temperature, 3600.0, 11, 1e6);
      points.push_back(point);
    }
    const LinearFit fit = FitLogFrequencyVsTemperature(points);
    const double below_trigger = MeasureOccurrenceFrequency(
        machine, framework, static_cast<size_t>(index), 0, 47.0, 3600.0, 11, 1e6);
    verdicts.push_back({"Obs 10", "frequency exponential in temperature, with thresholds",
                        "r = " + FormatDouble(fit.r, 3) + ", zero below trigger: " +
                            (below_trigger == 0.0 ? "yes" : "no"),
                        fit.r > 0.75 && below_trigger == 0.0});
  }
  {  // Obs 11: most testcases never detect anything.
    PopulationConfig small_config;
    small_config.processor_count = 30000;
    small_config.seed = 123;
    const FleetPopulation small = FleetPopulation::Generate(small_config);
    const TestcaseEffectiveness effectiveness =
        ComputeTestcaseEffectiveness(suite, small, ScreeningConfig().stages[3]);
    verdicts.push_back({"Obs 11", "560/633 testcases never detect a fault",
                        std::to_string(effectiveness.ineffective_testcases()) + "/633 idle",
                        effectiveness.ineffective_testcases() > 633 / 2});
  }
  {  // Obs 12: existing tolerance diminished (checksum-after-compute misses everything).
    FaultyProcessorInfo threat = FindInCatalog("FPU1");
    FaultyMachine machine(threat, 12);
    const int lcore =
        threat.defects.front().affected_pcores.front() * threat.spec.threads_per_core;
    const TechniqueEvaluation checksum =
        EvaluateChecksumAfterCompute(machine, lcore, 5000, 13);
    FaultyMachine machine2(threat, 14);
    const TechniqueEvaluation range =
        EvaluateRangeDetector(machine2, lcore, DataType::kFloat64, 5000, 15);
    verdicts.push_back({"Obs 12", "checksums/prediction miss CPU SDCs",
                        "checksum " + FormatPercent(checksum.DetectionRate(), 0) +
                            ", f64 range " + FormatPercent(range.DetectionRate(), 0) +
                            " detected",
                        checksum.detected == 0 && range.DetectionRate() < 0.2});
  }

  TextTable table({"", "paper claim", "measured", "verdict"});
  int reproduced = 0;
  for (const Verdict& verdict : verdicts) {
    table.AddRow({verdict.id, verdict.claim, verdict.measured,
                  verdict.reproduced ? "REPRODUCED" : "DIVERGES"});
    reproduced += verdict.reproduced ? 1 : 0;
  }
  table.Print(std::cout);
  std::cout << "\n" << reproduced << " / " << verdicts.size() << " observations reproduced\n";
  return reproduced == static_cast<int>(verdicts.size()) ? 0 : 1;
}
