// micro_stream: the streaming shard pipeline (docs/streaming.md) against the
// materialize-then-scan baseline, on the fused generate+screen workload.
//
// Emits one JSON object per line so runs can be diffed and checked mechanically
// (tools/check_stream_json.py validates the same invariants against sdcctl). Grid:
// phase "generate_screen" under
//   materialized -- FleetPopulation::Generate, then ScreeningPipeline::Run over the
//                   materialized columns.
//   streaming    -- FleetShardStream driving a StreamingScreen: the fleet is never
//                   materialized and scratch peaks at O(lanes * shard) bytes.
// each at 1/2/8 worker threads. Streaming rows carry "peak_scratch_bytes" (the summed
// per-lane buffer high-water mark from StreamReport) next to the bytes a materialized
// fleet of the same size holds, so the memory win is in the same line as the time cost.
// The binary asserts that every combination produces ScreeningStats identical to the
// materialized one-thread run (counters and detections, months compared bitwise) and
// exits non-zero on divergence; the closing "summary" line reports the streaming/
// materialized ns-per-processor ratio at one thread (the acceptance bound is <= 1.2).
//
// Usage: micro_stream [processor_count] [repeats]
// Defaults: 1,000,000 processors, best-of-5. CI smoke runs use a small count.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>

#include "src/common/context.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stream.h"
#include "src/toolchain/registry.h"

namespace sdc {
namespace {

double BestWallSeconds(int repeats, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

// Bitwise equality of two screening results: every counter and every detection,
// including the exact bit pattern of the detection-month doubles.
bool IdenticalStats(const ScreeningStats& a, const ScreeningStats& b) {
  if (a.tested != b.tested || a.faulty != b.faulty ||
      a.detected_by_stage != b.detected_by_stage || a.tested_by_arch != b.tested_by_arch ||
      a.detected_by_arch != b.detected_by_arch ||
      a.detections.size() != b.detections.size()) {
    return false;
  }
  for (size_t i = 0; i < a.detections.size(); ++i) {
    const ProcessorOutcome& x = a.detections[i];
    const ProcessorOutcome& y = b.detections[i];
    if (x.serial != y.serial || x.arch_index != y.arch_index || x.detected != y.detected ||
        x.stage != y.stage ||
        std::memcmp(&x.month, &y.month, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  const uint64_t processors =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'000'000ull;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 5;
  std::printf("# micro_stream: %llu processors, best of %d\n",
              static_cast<unsigned long long>(processors), repeats);

  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  bool deterministic = true;
  double materialized_t1 = 0.0;
  double streaming_t1 = 0.0;

  // Ground truth for the determinism assertion, and the memory yardstick: what a
  // materialized fleet of this size actually holds (columns + faulty index + arena).
  ScreeningStats golden;
  uint64_t materialized_bytes = 0;
  {
    PopulationConfig population_config;
    population_config.processor_count = processors;
    population_config.threads = 1;
    const FleetPopulation fleet = FleetPopulation::Generate(population_config);
    golden = pipeline.Run(fleet, ScreeningConfig{.threads = 1});
    materialized_bytes =
        fleet.arch_bytes().capacity() + fleet.flag_bytes().capacity() +
        fleet.faulty_serials().capacity() * sizeof(uint64_t) +
        fleet.faulty_ranges().capacity() * sizeof(DefectRange) +
        fleet.defect_arena().capacity() * sizeof(Defect);
  }

  for (int threads : {1, 2, 8}) {
    PopulationConfig population_config;
    population_config.processor_count = processors;
    population_config.threads = threads;
    ScreeningConfig screening_config;
    screening_config.threads = threads;

    // Materialized baseline: build the fleet, scan it.
    deterministic &= IdenticalStats(
        golden, pipeline.Run(FleetPopulation::Generate(population_config),
                             screening_config));
    const double materialized_wall = BestWallSeconds(repeats, [&] {
      const FleetPopulation fleet = FleetPopulation::Generate(population_config);
      (void)pipeline.Run(fleet, screening_config);
    });
    std::printf("{\"bench\": \"generate_screen\", \"mode\": \"materialized\", "
                "\"threads\": %d, \"processors\": %llu, \"wall_seconds\": %.6f, "
                "\"ns_per_processor\": %.2f, \"fleet_bytes\": %llu}\n",
                threads, static_cast<unsigned long long>(processors), materialized_wall,
                materialized_wall * 1e9 / static_cast<double>(processors),
                static_cast<unsigned long long>(materialized_bytes));
    std::fflush(stdout);

    // Streaming: one fused pass, no fleet, driven on an explicit EngineContext so the
    // lane pool is built once and reused across every repeat at this width.
    const FleetShardStream stream(population_config);
    EngineContext context(EngineOptions{.threads = threads});
    uint64_t peak_scratch = 0;
    {
      StreamingScreen screen(&pipeline, screening_config);
      const StreamReport report = stream.Drive({&screen}, context);
      peak_scratch = report.peak_scratch_bytes;
      deterministic &= IdenticalStats(golden, screen.TakeStats());
    }
    const double streaming_wall = BestWallSeconds(repeats, [&] {
      StreamingScreen screen(&pipeline, screening_config);
      (void)stream.Drive({&screen}, context);
      (void)screen.TakeStats();
    });
    std::printf("{\"bench\": \"generate_screen\", \"mode\": \"streaming\", "
                "\"threads\": %d, \"processors\": %llu, \"wall_seconds\": %.6f, "
                "\"ns_per_processor\": %.2f, \"peak_scratch_bytes\": %llu, "
                "\"fleet_bytes\": %llu}\n",
                threads, static_cast<unsigned long long>(processors), streaming_wall,
                streaming_wall * 1e9 / static_cast<double>(processors),
                static_cast<unsigned long long>(peak_scratch),
                static_cast<unsigned long long>(materialized_bytes));
    std::fflush(stdout);

    if (threads == 1) {
      materialized_t1 = materialized_wall;
      streaming_t1 = streaming_wall;
    }
  }

  const double ratio = materialized_t1 > 0.0 ? streaming_t1 / materialized_t1 : 0.0;
  std::printf("{\"bench\": \"summary\", \"streaming_vs_materialized_t1\": %.3f, "
              "\"deterministic\": %s}\n",
              ratio, deterministic ? "true" : "false");
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: streaming and materialized runs diverged (see docs/streaming.md)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sdc

int main(int argc, char** argv) { return sdc::Main(argc, argv); }
