// Extension experiment: the full 32-month lifecycle of a processor with a wear-out defect
// (onset after deployment, Observation 2's "passed pre-production tests and some have even
// passed several rounds of regular tests"). Shows the paper's story end to end: clean
// pre-production, clean early rounds, defect onset, detection at the next round,
// fine-grained masking, and the application continuing on the remaining cores.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/farron/longitudinal.h"

int main() {
  using namespace sdc;
  PrintExperimentHeader("Lifecycle", "32 months of one processor with a wear-out defect");

  // A part whose single FPU core starts failing 10 months into production.
  FaultyProcessorInfo info = FindInCatalog("FPU1");
  info.cpu_id = "FPU1-wearout";
  info.defects[0].onset_months = 10.0;
  FaultyMachine machine(info, 777);

  const TestSuite suite = TestSuite::BuildFull();
  FarronConfig config;
  Farron farron(&suite, &machine, config);

  LifecycleConfig lifecycle;
  lifecycle.app_hours_per_interval = 2.0;
  lifecycle.workload.kernel_case_index =
      static_cast<size_t>(suite.IndexOf("lib.math.fp_arctan.f64.n256"));
  lifecycle.workload.base_utilization = 0.5;
  lifecycle.workload.preferred_pcore = info.defects[0].affected_pcores.front();
  lifecycle.app_features = {Feature::kFpu};

  const LifecycleReport report = RunLifecycle(farron, machine, suite, lifecycle);

  TextTable table({"month", "tested", "detected", "app SDC events", "masked cores",
                   "deprecated"});
  for (const LifecyclePeriod& period : report.periods) {
    table.AddRow({FormatDouble(period.month, 0), period.tested ? "yes" : "",
                  period.detected ? "YES" : "", std::to_string(period.app_sdc_events),
                  std::to_string(period.masked_cores), period.deprecated ? "yes" : ""});
  }
  table.Print(std::cout);

  std::cout << "\ndefect onset: month 10; first detection: month "
            << FormatDouble(report.first_detection_month, 0) << " (exposure "
            << FormatDouble(report.DetectionLatencyMonths(10.0), 0) << " months)\n";
  std::cout << "application corruptions over the horizon: " << report.total_app_sdc_events
            << "; cores masked: " << report.final_masked_cores << "/"
            << info.spec.physical_cores << "; deprecated: "
            << (report.deprecated ? "yes" : "no") << "\n";
  std::cout << "\nreading: pre-production and early rounds are clean (the defect does not\n"
               "exist yet); after onset the next regular round catches it, the core is\n"
               "masked, and later periods run clean on the remaining cores -- Figure 10's\n"
               "workflow over a part's actual life.\n";
  return 0;
}
