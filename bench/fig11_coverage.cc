// Figure 11: one-round regular-testing SDC coverage, Farron vs the Alibaba baseline, for
// the named faulty processors. Coverage = failing testcases detected this round / total
// known failing testcases (from an adequate hot sweep). Also prints the round-duration
// headline: Farron averages ~1.02 h per round vs the baseline's 10.55 h.
//
// Why Farron wins: suspected/active testcases keep full slices (Observation 11), and the
// burn-in + all-cores-simultaneous environment reaches application-level temperatures that
// the baseline's sequential per-core testing never does (Observation 10).

#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/farron/baseline.h"
#include "src/farron/farron.h"

namespace {

using namespace sdc;

double Coverage(const std::set<std::string>& known, const RunReport& report) {
  if (known.empty()) {
    return 0.0;
  }
  size_t hit = 0;
  for (const std::string& id : report.failed_testcase_ids()) {
    hit += known.count(id);
  }
  return static_cast<double>(hit) / static_cast<double>(known.size());
}

}  // namespace

int main() {
  using namespace sdc;
  PrintExperimentHeader("Figure 11", "regular testing coverage: Farron vs baseline");
  const TestSuite suite = TestSuite::BuildFull();

  TextTable table({"CPU", "known failing cases", "Farron coverage", "baseline coverage",
                   "Farron round (h)", "baseline round (h)"});
  double farron_hours_total = 0.0;
  int rows = 0;
  for (const char* cpu_id : {"MIX1", "SIMD1", "FPU1", "FPU2", "CNST1", "CNST2"}) {
    const FaultyProcessorInfo info = FindInCatalog(cpu_id);

    // Ground truth: the part's known failing testcases (adequate hot sweep).
    FaultyMachine ground_truth_machine(info, 200);
    const RunReport ground_truth = AdequateSweep(suite, ground_truth_machine, 60.0, 7);
    std::set<std::string> known;
    for (const std::string& id : ground_truth.failed_testcase_ids()) {
      known.insert(id);
    }

    // Baseline: equal time, sequential cores, no burn-in.
    FaultyMachine baseline_machine(info, 201);
    BaselinePolicy baseline(&suite, BaselineConfig());
    const RunReport baseline_report = baseline.RunRegularRound(baseline_machine);

    // Farron: suspected list accumulated from earlier detections, hot prioritized round.
    FaultyMachine farron_machine(info, 201);
    FarronConfig config;
    Farron farron(&suite, &farron_machine, config);
    farron.MarkSuspectedTestcases({known.begin(), known.end()});
    const FarronRoundSummary farron_round = farron.RunRegularRound({});

    const double farron_hours = farron_round.plan_seconds / 3600.0;
    farron_hours_total += farron_hours;
    ++rows;
    table.AddRow({cpu_id, std::to_string(known.size()),
                  FormatDouble(Coverage(known, farron_round.report), 3),
                  FormatDouble(Coverage(known, baseline_report), 3),
                  FormatDouble(farron_hours, 2),
                  FormatDouble(baseline.RoundDurationSeconds() / 3600.0, 2)});
  }
  table.Print(std::cout);
  std::cout << "\naverage Farron round: " << FormatDouble(farron_hours_total / rows, 2)
            << " h (paper: 1.02 h); baseline: 10.55 h\n";
  std::cout << "paper Figure 11: Farron coverage exceeds baseline on every part, with some\n"
               "errors only coverable via temperature control rather than testing.\n";
  return 0;
}
