// Figure 2: proportion of faulty processors with each defective feature, over the 27
// studied processors. Proportions sum to more than 1 because one part can have defects in
// several features (Observation 5). Paper values (read off the figure): ALU ~0.30,
// VecUnit ~0.33, FPU ~0.41, Cache ~0.26, TrxMem ~0.22.

#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/fault/catalog.h"

int main() {
  using namespace sdc;
  PrintExperimentHeader("Figure 2", "proportion of processors with a faulty feature");

  const auto catalog = StudyCatalog();
  int counts[kFeatureCount] = {};
  for (const FaultyProcessorInfo& info : catalog) {
    std::set<Feature> features;
    for (const Defect& defect : info.defects) {
      features.insert(defect.feature);
    }
    for (Feature feature : features) {
      ++counts[static_cast<int>(feature)];
    }
  }

  const double paper[kFeatureCount] = {0.30, 0.33, 0.41, 0.26, 0.22};
  TextTable table({"feature", "faulty processors", "measured proportion", "paper (approx)"});
  double total_proportion = 0.0;
  for (int feature = 0; feature < kFeatureCount; ++feature) {
    const double proportion = static_cast<double>(counts[feature]) / catalog.size();
    total_proportion += proportion;
    table.AddRow({FeatureName(static_cast<Feature>(feature)), std::to_string(counts[feature]),
                  FormatDouble(proportion, 3), FormatDouble(paper[feature], 2)});
  }
  table.Print(std::cout);
  std::cout << "\nsum of proportions: " << FormatDouble(total_proportion, 3)
            << " (> 1 because defects span multiple features, Observation 5)\n";
  return 0;
}
