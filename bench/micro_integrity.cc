// Microbenchmarks (google-benchmark) for the integrity substrate: CRC32, FNV hashing,
// SECDED ECC, and Reed-Solomon erasure coding.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/rng.h"
#include "src/integrity/crc32.h"
#include "src/integrity/ecc.h"
#include "src/integrity/erasure.h"
#include "src/integrity/hash.h"

namespace sdc {
namespace {

std::vector<uint8_t> RandomBytes(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(size);
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

void BM_Crc32Table(benchmark::State& state) {
  const auto data = RandomBytes(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32Table)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Crc32Bitwise(benchmark::State& state) {
  const auto data = RandomBytes(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32Bitwise(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32Bitwise)->Arg(1024);

void BM_Fnv1a64(benchmark::State& state) {
  const auto data = RandomBytes(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fnv1a64(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Fnv1a64)->Arg(64)->Arg(4096);

void BM_EccEncode(benchmark::State& state) {
  uint64_t value = 0x0123456789abcdefull;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EccEncode(value));
    ++value;
  }
}
BENCHMARK(BM_EccEncode);

void BM_EccDecodeCorrect(benchmark::State& state) {
  EccWord word = EccEncode(0xdeadbeefcafef00dull);
  EccFlipBit(word, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EccDecode(word));
  }
}
BENCHMARK(BM_EccDecodeCorrect);

void BM_RsEncode(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  ReedSolomon rs(k, m);
  std::vector<std::vector<uint8_t>> data(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    data[i] = RandomBytes(4096, 10 + i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Encode(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * k * 4096);
}
BENCHMARK(BM_RsEncode)->Args({4, 2})->Args({10, 4});

void BM_RsReconstruct(benchmark::State& state) {
  ReedSolomon rs(4, 2);
  std::vector<std::vector<uint8_t>> data(4);
  for (int i = 0; i < 4; ++i) {
    data[i] = RandomBytes(4096, 20 + i);
  }
  const auto parity = rs.Encode(data);
  std::vector<std::vector<uint8_t>> shards = {data[0], data[1], data[2], data[3],
                                              parity[0], parity[1]};
  std::vector<bool> present(6, true);
  present[0] = present[2] = false;
  shards[0].clear();
  shards[2].clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Reconstruct(shards, present));
  }
}
BENCHMARK(BM_RsReconstruct);

}  // namespace
}  // namespace sdc

BENCHMARK_MAIN();
