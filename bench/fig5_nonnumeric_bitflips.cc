// Figure 5: bitflip positions of non-numerical datatypes (bin32, bin64). Unlike numerical
// types, all positions carry a comparable amount of flips (Observation 7's caveat).

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/bitflip.h"
#include "src/common/table.h"
#include "src/fault/catalog.h"

namespace {

using namespace sdc;

void Report(const std::vector<SdcRecord>& records, DataType type) {
  const BitflipStats stats = AnalyzeBitflips(records, type);
  std::cout << "\n--- " << DataTypeName(type) << ": " << stats.record_count << " records, "
            << stats.total_flips << " flips ---\n";
  if (stats.total_flips == 0) {
    std::cout << "(no records)\n";
    return;
  }
  const int width = BitWidth(type);
  const int band = width / 8;
  TextTable table({"bit band", "0->1", "1->0", "total"});
  double min_band = 1.0;
  double max_band = 0.0;
  for (int lo = 0; lo < width; lo += band) {
    double up = 0.0;
    double down = 0.0;
    for (int bit = lo; bit < std::min(lo + band, width); ++bit) {
      up += stats.FractionAt(bit, true);
      down += stats.FractionAt(bit, false);
    }
    min_band = std::min(min_band, up + down);
    max_band = std::max(max_band, up + down);
    table.AddRow({"[" + std::to_string(lo) + "," + std::to_string(lo + band) + ")",
                  FormatDouble(up, 3), FormatDouble(down, 3), FormatDouble(up + down, 3)});
  }
  table.Print(std::cout);
  std::cout << "max band / min band: "
            << FormatDouble(min_band > 0 ? max_band / min_band : 0.0, 2)
            << " -- every band carries flips (numeric types leave high bands empty);\n"
            << "residual structure comes from per-defect fixed patterns (Observation 8)\n";
}

}  // namespace

int main() {
  using namespace sdc;
  PrintExperimentHeader("Figure 5", "bitflips of non-numerical datatypes");
  const TestSuite suite = TestSuite::BuildFull();

  {
    FaultyMachine machine(FindInCatalog("MIX1"), 78);
    auto records = CollectRecords(suite, machine, "loop.logic_xor.bin32.n480", 2, 58.0, 900.0);
    FaultyMachine machine2(FindInCatalog("MIX2"), 79);
    auto more = CollectRecords(suite, machine2, "loop.popcount.bin16.n480", 0, 58.0, 600.0);
    records.insert(records.end(), more.begin(), more.end());
    Report(records, DataType::kBin32);
  }
  {
    // bin64 aggregates every catalog part whose computation defects touch bin64 payloads;
    // their fixed patterns land at different positions, so the aggregate is position-
    // uniform the way the paper's cross-processor data is.
    std::vector<SdcRecord> records;
    for (const FaultyProcessorInfo& info : StudyCatalog()) {
      bool affects = false;
      OpKind op = OpKind::kHashStep;
      for (const Defect& defect : info.defects) {
        if (defect.type() == SdcType::kComputation &&
            defect.AffectsType(DataType::kBin64) && !defect.affected_types.empty()) {
          affects = true;
          for (OpKind candidate : {OpKind::kHashStep, OpKind::kLogicXor, OpKind::kLogicOr,
                                   OpKind::kPopcount}) {
            if (defect.AffectsOp(candidate)) {
              op = candidate;
              break;
            }
          }
        }
      }
      if (!affects) {
        continue;
      }
      FaultyMachine machine(info, 80);
      const std::string testcase_id = "loop." + OpKindName(op) + ".bin64.n480";
      auto batch = CollectRecords(suite, machine, testcase_id, 0, 58.0, 600.0);
      records.insert(records.end(), batch.begin(), batch.end());
    }
    Report(records, DataType::kBin64);
  }
  return 0;
}
