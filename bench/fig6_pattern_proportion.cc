// Figure 6: proportion of SDC records carrying a mined bitflip pattern, per setting
// (testcase x faulty processor), for MIX1, MIX2, SIMD1, FPU1, FPU2. A pattern is an XOR
// mask shared by >= 5% of a setting's records (Observation 8). The paper's matrix mixes
// near-zero cells with cells above 0.9; the same spread should appear here.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/patterns.h"
#include "src/common/table.h"
#include "src/fault/catalog.h"

int main() {
  using namespace sdc;
  PrintExperimentHeader("Figure 6", "proportion of SDCs with bitflip patterns per setting");
  const TestSuite suite = TestSuite::BuildFull();

  TextTable table({"processor", "testcase", "records", "patterned share", "#patterns"});
  double low_cells = 0;
  double high_cells = 0;
  int cells = 0;
  for (const char* cpu_id : {"MIX1", "MIX2", "SIMD1", "FPU1", "FPU2"}) {
    const FaultyProcessorInfo info = FindInCatalog(cpu_id);
    // Probe every testcase the part's defects can touch; keep settings with enough records.
    FaultyMachine sweep_machine(info, 55);
    const RunReport sweep = AdequateSweep(suite, sweep_machine, 10.0, 5);
    int settings_for_cpu = 0;
    for (const TestcaseResult& result : sweep.results) {
      if (!result.failed() || settings_for_cpu >= 6) {
        continue;
      }
      FaultyMachine machine(info, 56);
      const int pcore = [&] {
        for (size_t p = 0; p < result.errors_per_pcore.size(); ++p) {
          if (result.errors_per_pcore[p] > 0) {
            return static_cast<int>(p);
          }
        }
        return 0;
      }();
      const auto records =
          CollectRecords(suite, machine, result.testcase_id, pcore, 58.0, 900.0);
      const PatternAnalysis analysis = MinePatterns(records, 0.05);
      if (analysis.record_count < 30) {
        continue;
      }
      ++settings_for_cpu;
      ++cells;
      if (analysis.patterned_record_fraction >= 0.5) {
        ++high_cells;
      }
      if (analysis.patterned_record_fraction <= 0.25) {
        ++low_cells;
      }
      table.AddRow({cpu_id, result.testcase_id, std::to_string(analysis.record_count),
                    FormatDouble(analysis.patterned_record_fraction, 3),
                    std::to_string(analysis.patterns.size())});
    }
  }
  table.Print(std::cout);
  std::cout << "\nspread: " << cells << " settings, " << high_cells
            << " with patterned share >= 0.5 and " << low_cells
            << " with <= 0.25 (paper's matrix spans 0 .. 0.96)\n";
  return 0;
}
