// Figure 4: bitflip position histograms and relative precision-loss CDFs for numerical
// datatypes (int32, float32, float64, float64x). Records are collected from catalog
// settings that corrupt each datatype, at pinned test temperatures.
//
// Paper checkpoints (Observation 7):
//   * bitflips rarely hit the most significant bits; floats flip in the fraction part;
//   * f64x: all precision losses < 0.002%;
//   * f64: 99.9% of losses < 0.02%;
//   * f32: 80.25% of losses < 5%;
//   * i32: 40.2% of losses > 100%;
//   * overall ~51% of flips go 0 -> 1.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/bitflip.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/fault/catalog.h"

namespace {

using namespace sdc;

struct Source {
  const char* cpu_id;
  const char* testcase_id;
  int pcore;
  double temperature;
  double duration;
};

std::vector<SdcRecord> Collect(const TestSuite& suite, const std::vector<Source>& sources) {
  std::vector<SdcRecord> records;
  for (const Source& source : sources) {
    FaultyMachine machine(FindInCatalog(source.cpu_id), 77);
    const auto batch = CollectRecords(suite, machine, source.testcase_id, source.pcore,
                                      source.temperature, source.duration);
    records.insert(records.end(), batch.begin(), batch.end());
  }
  return records;
}

void Report(const std::vector<SdcRecord>& records, DataType type) {
  const BitflipStats stats = AnalyzeBitflips(records, type);
  std::cout << "\n--- " << DataTypeName(type) << ": " << stats.record_count << " records, "
            << stats.total_flips << " flips ---\n";
  if (stats.total_flips == 0) {
    std::cout << "(no records)\n";
    return;
  }
  // Position histogram in 8 bands (proportions of all flips, split by direction).
  const int width = BitWidth(type);
  TextTable table({"bit band", "0->1", "1->0"});
  const int band = (width + 7) / 8;
  for (int lo = 0; lo < width; lo += band) {
    double up = 0.0;
    double down = 0.0;
    for (int bit = lo; bit < std::min(lo + band, width); ++bit) {
      up += stats.FractionAt(bit, true);
      down += stats.FractionAt(bit, false);
    }
    table.AddRow({"[" + std::to_string(lo) + "," + std::to_string(std::min(lo + band, width)) +
                      ")",
                  FormatDouble(up, 3), FormatDouble(down, 3)});
  }
  table.Print(std::cout);
  std::cout << "zero->one share: " << FormatPercent(stats.ZeroToOneFraction(), 2)
            << " (paper overall: 51.08%)\n";
  if (IsFloatingPoint(type)) {
    std::cout << "fraction-part share of flips: "
              << FormatPercent(stats.FractionPartShare(), 2) << "\n";
  }
  const std::vector<double> losses = PrecisionLosses(records, type);
  if (!losses.empty()) {
    switch (type) {
      case DataType::kFloat80:
        std::cout << "losses < 0.002%: " << FormatPercent(FractionAtOrBelow(losses, 2e-5), 2)
                  << " (paper: 100%)\n";
        break;
      case DataType::kFloat64:
        std::cout << "losses < 0.02%: " << FormatPercent(FractionAtOrBelow(losses, 2e-4), 2)
                  << " (paper: 99.9%)\n";
        break;
      case DataType::kFloat32:
        std::cout << "losses < 5%: " << FormatPercent(FractionAtOrBelow(losses, 5e-2), 2)
                  << " (paper: 80.25%)\n";
        break;
      case DataType::kInt32:
        std::cout << "losses > 100%: "
                  << FormatPercent(1.0 - FractionAtOrBelow(losses, 1.0), 2)
                  << " (paper: 40.2%)\n";
        break;
      default:
        break;
    }
    std::cout << "loss quantiles (log10): p50=" << FormatDouble(std::log10(Quantile(losses, 0.5)), 2)
              << " p90=" << FormatDouble(std::log10(Quantile(losses, 0.9)), 2)
              << " p99=" << FormatDouble(std::log10(Quantile(losses, 0.99)), 2) << "\n";
  }
}

}  // namespace

int main() {
  using namespace sdc;
  PrintExperimentHeader("Figure 4", "bitflips and precision losses of numerical datatypes");
  const TestSuite suite = TestSuite::BuildFull();

  // i32 from MIX2 (XOR-flip semantics): popcount results are small integers, so mid-word
  // flips routinely exceed 100% relative loss; products are wide, so theirs rarely do --
  // together they give the paper's heavy >100% tail.
  Report(Collect(suite, {{"MIX2", "loop.popcount.i32.n480", 0, 58.0, 600.0},
                         {"MIX2", "loop.int_mul.i32.n480", 1, 58.0, 600.0}}),
         DataType::kInt32);
  // Corner-case direction bias (Section 4.2: 72.27% of MIX1's 16-bit integer flips go
  // 0 -> 1): MIX1's ALU defect has stuck-at-one semantics.
  {
    const auto records = Collect(suite, {{"MIX1", "loop.int_mul.i32.n480", 0, 58.0, 300.0}});
    const BitflipStats stats = AnalyzeBitflips(records, DataType::kInt32);
    std::cout << "\ncorner case, MIX1 integer flips 0->1 share: "
              << FormatPercent(stats.ZeroToOneFraction(), 2)
              << " (paper: 72.27% on MIX1 i16)\n";
  }
  Report(Collect(suite, {{"SIMD1", "vec.vec_fma_f32.f32.l8.n128", 5, 58.0, 900.0},
                         {"MIX1", "vec.vec_fma_f32.f32.l4.n128", 0, 58.0, 600.0}}),
         DataType::kFloat32);
  Report(Collect(suite, {{"FPU1", "lib.math.fp_arctan.f64.n256", 1, 55.0, 900.0},
                         {"FPU3", "loop.fp_mul.f64.n480", 11, 58.0, 900.0}}),
         DataType::kFloat64);
  Report(Collect(suite, {{"FPU1", "lib.math.fp_arctan.f64x.n256", 1, 55.0, 900.0},
                         {"FPU2", "lib.math.fp_arctan.f64x.n1024", 0, 56.0, 900.0}}),
         DataType::kFloat80);
  return 0;
}
