// Figure 3: proportion of faulty processors whose SDCs affect each operation datatype.
// Observation 6: all datatypes are impacted and floating-point datatypes involve the most
// faulty processors. Proportions are over the 19 computation-type processors of the study
// catalog (consistency SDCs have no datatype).

#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/fault/catalog.h"

int main() {
  using namespace sdc;
  PrintExperimentHeader("Figure 3", "proportion of processors per affected datatype");

  const auto catalog = StudyCatalog();
  const DataType types[] = {DataType::kInt16,   DataType::kInt32, DataType::kUInt32,
                            DataType::kFloat32, DataType::kFloat64, DataType::kBit,
                            DataType::kByte,    DataType::kBin16, DataType::kBin32,
                            DataType::kBin64,   DataType::kFloat80};
  TextTable table({"datatype", "faulty processors", "proportion"});
  double float_share = 0.0;
  double best_int_share = 0.0;
  for (DataType type : types) {
    int count = 0;
    for (const FaultyProcessorInfo& info : catalog) {
      bool affected = false;
      for (const Defect& defect : info.defects) {
        if (defect.type() == SdcType::kComputation && defect.AffectsType(type) &&
            !defect.affected_types.empty()) {
          affected = true;
        }
      }
      count += affected ? 1 : 0;
    }
    const double proportion = static_cast<double>(count) / catalog.size();
    if (type == DataType::kFloat64) {
      float_share = proportion;
    }
    if (type == DataType::kInt32) {
      best_int_share = proportion;
    }
    table.AddRow({DataTypeName(type), std::to_string(count), FormatDouble(proportion, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nObservation 6 check: f64 proportion (" << FormatDouble(float_share, 3)
            << ") >= i32 proportion (" << FormatDouble(best_int_share, 3)
            << ") -- floating point most impacted: "
            << (float_share >= best_int_share ? "yes" : "NO") << "\n";
  return 0;
}
