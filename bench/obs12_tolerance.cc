// Observation 12: "the effectiveness of existing fault tolerance techniques is diminished
// when confronted with CPU SDCs." This harness drives each technique against concrete
// defects and reports detection/correction rates and overheads:
//
//  * checksum-after-compute misses everything -- the corruption happens before encoding
//    (Section 6.2's point 2);
//  * SECDED corrects singles and detects doubles but silently mis-handles the multi-bit
//    flips real defects produce (Observation 8 / Section 6.2's point 3);
//  * DMR/TMR catch essentially everything when one replica core is healthy -- at 2-3x
//    cost (Section 6.2, "too costly to be applied to every application");
//  * range prediction catches large integer deviations but misses the fraction-part float
//    flips that dominate (Observation 7's implication for accuracy-based detection).

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/fault/catalog.h"
#include "src/tolerance/evaluation.h"

namespace {

using namespace sdc;

// An always-on FPU/ALU defect pinned to pcore 0 so every technique faces the same threat.
FaultyProcessorInfo ThreatModel() {
  FaultyProcessorInfo info;
  info.cpu_id = "threat";
  info.arch = "M2";
  info.age_years = 1.0;
  info.spec = MakeArchSpec("M2");
  Defect defect;
  defect.id = "threat-compute";
  defect.feature = Feature::kFpu;
  defect.affected_ops = {OpKind::kFpArctan, OpKind::kIntMul};
  defect.affected_types = {DataType::kFloat64, DataType::kInt32};
  defect.affected_pcores = {0};
  defect.min_trigger_celsius = 0.0;
  defect.base_log10_rate = -7.3;  // ~5% of trials corrupt at time_scale 1e6
  defect.temp_slope = 0.0;
  defect.intensity_ref = 0.0;
  defect.pattern_probability = 0.5;
  Rng rng(404);
  defect.pattern_sets.push_back(
      {DataType::kFloat64, {{MakePatternMask(DataType::kFloat64, 1, rng), 1.0}}});
  defect.pattern_sets.push_back(
      {DataType::kInt32, {{MakePatternMask(DataType::kInt32, 1, rng), 1.0}}});
  info.defects.push_back(std::move(defect));
  return info;
}

void AddRow(TextTable& table, const TechniqueEvaluation& evaluation) {
  table.AddRow({evaluation.technique, std::to_string(evaluation.trials),
                std::to_string(evaluation.corruptions),
                FormatPercent(evaluation.DetectionRate(), 1),
                std::to_string(evaluation.corrected),
                std::to_string(evaluation.silent_escapes()),
                FormatDouble(evaluation.cost_factor, 2) + "x"});
}

}  // namespace

int main() {
  using namespace sdc;
  PrintExperimentHeader("Observation 12", "fault-tolerance techniques vs CPU SDCs");

  constexpr uint64_t kTrials = 40000;
  TextTable table({"technique", "trials", "corruptions", "detected", "corrected",
                   "silent escapes", "cost"});

  {
    FaultyMachine machine(ThreatModel(), 1);
    AddRow(table, EvaluateChecksumAfterCompute(machine, /*lcore=*/0, kTrials, 11));
  }
  {
    // Multi-bit-capable damage: two- and three-bit patterns past SECDED's guarantees.
    Defect defect;
    defect.id = "stored-word-damage";
    defect.feature = Feature::kAlu;
    defect.multi_flip_probability = 0.35;
    defect.extra_flip_probability = 0.3;
    defect.pattern_probability = 0.0;
    AddRow(table, EvaluateSecdedAgainstDefect(defect, kTrials, 13));
  }
  {
    FaultyMachine machine(ThreatModel(), 3);
    // Replica cores: pcore 0 (defective) and pcores 1/2 (healthy).
    AddRow(table, EvaluateDmr(machine, 0, 2, kTrials, 17));
  }
  {
    FaultyMachine machine(ThreatModel(), 3);
    AddRow(table, EvaluateTmr(machine, 0, 2, 4, kTrials, 19));
  }
  {
    // The paper's Section 6.2 closing question, implemented: guard only the vulnerable op
    // kinds (arctangent here) with a shadow core; the 80% unguarded integer mix keeps the
    // cost near 1.2x instead of DMR's 2x.
    FaultyMachine machine(ThreatModel(), 4);
    AddRow(table, EvaluateSelectiveGuard(machine, 0, 2, kTrials, 21));
  }
  {
    FaultyMachine machine(ThreatModel(), 5);
    AddRow(table, EvaluateRangeDetector(machine, 0, DataType::kFloat64, kTrials, 23));
  }
  {
    FaultyMachine machine(ThreatModel(), 7);
    AddRow(table, EvaluateRangeDetector(machine, 0, DataType::kInt32, kTrials, 29));
  }
  table.Print(std::cout);

  std::cout <<
      "\npaper's reading (Section 6.2): checksums certify already-corrupted data; ECC's\n"
      "single/double-bit model under-covers real multi-bit SDCs; redundancy works but\n"
      "costs 2-3x; prediction-based detection cannot see minor precision losses. Hence\n"
      "Farron attacks the *conditions* (testing + temperature) instead of the datapath.\n";
  return 0;
}
