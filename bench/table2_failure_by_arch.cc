// Table 2: SDC failure rate per micro-architecture (M1..M9).
// Paper: 4.619 / 0.352 / 2.649 / 0.082 / 0.759 / 3.251 / 1.599 / 9.29 / 4.646 permyriad,
// average 3.61. Observation 3: every micro-architecture is affected; rates do not fall
// with newer parts.

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/parallel.h"
#include "src/common/table.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/telemetry/metrics.h"

int main() {
  using namespace sdc;
  PrintExperimentHeader("Table 2", "failure rate of different micro-architectures");

  MetricsRegistry metrics;
  const auto start = std::chrono::steady_clock::now();
  PopulationConfig population_config;
  population_config.processor_count = 1'000'000;
  population_config.metrics = &metrics;
  const FleetPopulation fleet = FleetPopulation::Generate(population_config);
  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  ScreeningConfig screening_config;
  screening_config.metrics = &metrics;
  const ScreeningStats stats = pipeline.Run(fleet, screening_config);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

  TextTable table({"arch", "tested", "measured (permyriad)", "paper (permyriad)"});
  int arches_with_detections = 0;
  for (int arch = 0; arch < kArchCount; ++arch) {
    table.AddRow({ArchName(arch), std::to_string(stats.tested_by_arch[arch]),
                  FormatDouble(stats.ArchRate(arch) * 1e4, 3),
                  FormatDouble(fleet.config().detected_rate[arch] * 1e4, 3)});
    arches_with_detections += stats.detected_by_arch[arch] > 0 ? 1 : 0;
  }
  table.AddRow({"avg", std::to_string(stats.tested), FormatDouble(stats.TotalRate() * 1e4, 3),
                "3.610"});
  table.Print(std::cout);
  std::cout << "\nObservation 3 check: " << arches_with_detections << " of " << kArchCount
            << " micro-architectures have detected faulty processors\n";
  std::cout << "wall time: " << FormatDouble(elapsed.count(), 2) << " s (generate + screen, "
            << ResolveThreadCount(0) << " threads; set SDC_THREADS to vary)\n";
  std::cout << "\nmetrics snapshot (counters/gauges/histograms are thread-count"
               " invariant):\n";
  metrics.Snapshot().DumpText(std::cout);
  return 0;
}
