// Figure 9: occurrence frequency (log scale) at the minimum triggering temperature versus
// that trigger temperature, one point per SDC setting across the study catalog.
// Paper: linear fit of log10(frequency) on trigger temperature with Pearson r = -0.8272;
// the split motivates "apparent" (testable) vs "tricky" (temperature-controlled) SDCs.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "src/analysis/repro.h"
#include "src/common/table.h"
#include "src/fault/catalog.h"

int main() {
  using namespace sdc;
  PrintExperimentHeader("Figure 9",
                        "occurrence frequency vs minimum triggering temperature");

  const std::vector<TriggerPoint> points = CollectTriggerPoints(StudyCatalog());
  TextTable table({"cpu", "defect", "min trigger (C)", "freq at trigger (/min)"});
  std::vector<double> triggers;
  std::vector<double> log_frequencies;
  int apparent = 0;
  for (const TriggerPoint& point : points) {
    table.AddRow({point.cpu_id, point.defect_id, FormatDouble(point.min_trigger_celsius, 1),
                  FormatDouble(point.frequency_per_minute, 5)});
    triggers.push_back(point.min_trigger_celsius);
    log_frequencies.push_back(std::log10(point.frequency_per_minute));
    apparent += point.min_trigger_celsius <= 46.0 ? 1 : 0;
  }
  table.Print(std::cout);

  const LinearFit fit = FitLeastSquares(triggers, log_frequencies);
  std::cout << "\n" << points.size() << " settings; " << apparent
            << " apparent (trigger near/below idle), " << points.size() - apparent
            << " tricky\n";
  // Observation 9: "in 51.2% of the settings, the occurrence frequency is higher than once
  // per minute."
  {
    int reproducible = 0;
    for (const TriggerPoint& point : points) {
      reproducible += point.frequency_per_minute > 1.0 ? 1 : 0;
    }
    std::cout << "settings above 1 error/min: "
              << FormatPercent(static_cast<double>(reproducible) /
                               static_cast<double>(points.size()), 1)
              << " (paper Observation 9: 51.2%)\n";
  }
  std::cout << "fit: log10(freq) = " << FormatDouble(fit.slope, 4) << " * T_trigger + "
            << FormatDouble(fit.intercept, 2) << ", Pearson r = " << FormatDouble(fit.r, 4)
            << " (paper: r = -0.8272)\n";
  return 0;
}
