// Observation 11: in a production environment with tens of thousands of CPUs, 560 of the
// 633 testcases never detect an error. This harness evaluates testcase effectiveness over a
// 30,000-CPU production sub-fleet under regular-test settings.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/stats.h"

int main() {
  using namespace sdc;
  PrintExperimentHeader("Observation 11", "testcase effectiveness in a production cluster");

  const TestSuite suite = TestSuite::BuildFull();
  PopulationConfig config;
  config.processor_count = 30000;  // "tens of thousands of CPUs"
  config.seed = 123;
  const FleetPopulation fleet = FleetPopulation::Generate(config);
  const TestcaseEffectiveness effectiveness =
      ComputeTestcaseEffectiveness(suite, fleet, ScreeningConfig().stages[3]);

  TextTable table({"", "measured", "paper"});
  table.AddRow({"testcases", std::to_string(effectiveness.total_testcases), "633"});
  table.AddRow({"effective (found >= 1 fault)",
                std::to_string(effectiveness.effective_testcases), "73"});
  table.AddRow({"never detected anything",
                std::to_string(effectiveness.ineffective_testcases()), "560"});
  table.Print(std::cout);

  std::cout << "\nfaulty parts in this cluster: " << fleet.faulty_count() << "\n";
  std::cout << "effective testcases by kernel family:\n";
  std::set<std::string> families;
  for (const std::string& id : effectiveness.effective_ids) {
    families.insert(KernelFamily(id));
  }
  for (const std::string& family : families) {
    std::cout << "  " << family << "\n";
  }
  std::cout << "\nimplication (Section 6.1): equal-resource testing wastes most of its\n"
               "budget; Farron's priority levels give the effective minority long slices.\n";
  return 0;
}
