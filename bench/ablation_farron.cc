// Ablation study of Farron's design choices (DESIGN.md section 4): each mechanism is
// disabled in turn and its contribution measured on the scenarios it was built for.
//
//   priorities      -> round duration (10.55 h without, ~1 h with)
//   hot testing     -> coverage of temperature-gated defects (FPU2's 48C band)
//   backoff         -> SDC events from MIX1's 59C-gated defect under load bursts
//   adaptive bound  -> spurious backoff on a legitimately warm application
//   fine decommission -> usable cores left after detecting SIMD1's single bad core

#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/farron/baseline.h"
#include "src/farron/farron.h"
#include "src/farron/protection.h"

namespace {

using namespace sdc;

double CoverageOf(const std::set<std::string>& known, const RunReport& report) {
  if (known.empty()) {
    return 0.0;
  }
  size_t hit = 0;
  for (const std::string& id : report.failed_testcase_ids()) {
    hit += known.count(id);
  }
  return static_cast<double>(hit) / static_cast<double>(known.size());
}

}  // namespace

int main() {
  using namespace sdc;
  PrintExperimentHeader("Ablation", "contribution of each Farron mechanism");
  const TestSuite suite = TestSuite::BuildFull();

  // --- 1. Priorities: round duration. ---
  {
    FaultyMachine machine(FindInCatalog("FPU1"), 400);
    FarronConfig with;
    Farron farron(&suite, &machine, with);
    farron.MarkSuspectedTestcases({"lib.math.fp_arctan.f64.n256"});
    const FarronRoundSummary round = farron.RunRegularRound({});
    std::cout << "priorities ON : round = "
              << FormatDouble(round.plan_seconds / 3600.0, 2) << " h\n";
    std::cout << "priorities OFF: round = "
              << FormatDouble(BaselinePolicy(&suite, BaselineConfig()).RoundDurationSeconds() /
                                  3600.0, 2)
              << " h (equal allocation)\n\n";
  }

  // --- 2. Hot testing environment: coverage of FPU2's 48C-gated defect. ---
  {
    const FaultyProcessorInfo info = FindInCatalog("FPU2");
    FaultyMachine ground_truth_machine(info, 401);
    const RunReport ground_truth = AdequateSweep(suite, ground_truth_machine, 60.0, 19);
    std::set<std::string> known;
    for (const std::string& id : ground_truth.failed_testcase_ids()) {
      known.insert(id);
    }
    for (bool hot : {true, false}) {
      FaultyMachine machine(info, 402);
      FarronConfig config;
      config.enable_hot_testing = hot;
      Farron farron(&suite, &machine, config);
      farron.MarkSuspectedTestcases({known.begin(), known.end()});
      const FarronRoundSummary round = farron.RunRegularRound({});
      std::cout << "hot testing " << (hot ? "ON " : "OFF") << ": FPU2 coverage = "
                << FormatDouble(CoverageOf(known, round.report), 3) << " (known "
                << known.size() << " cases)\n";
    }
    std::cout << "\n";
  }

  // --- 3. Backoff: MIX1's tricky 59C defect under load bursts. ---
  {
    WorkloadSpec spec;
    spec.kernel_case_index = static_cast<size_t>(suite.IndexOf("lib.crc32.vector.b4096"));
    spec.base_utilization = 0.45;
    spec.burst_probability = 0.01;
    spec.burst_seconds = 240.0;
    for (bool backoff : {true, false}) {
      FaultyMachine machine(FindInCatalog("MIX1"), 403);
      FarronConfig config;
      config.enable_backoff = backoff;
      config.enable_adaptive_boundary = false;
      Farron farron(&suite, &machine, config);
      const ProtectionReport report =
          SimulateProtectedWorkload(farron, machine, suite, spec, 2.0, true);
      std::cout << "backoff " << (backoff ? "ON " : "OFF") << ": app SDC events = "
                << report.sdc_events << ", max temp = "
                << FormatDouble(report.max_temperature, 1) << " C, backoff = "
                << FormatDouble(report.BackoffSecondsPerHour(), 2) << " s/h\n";
    }
    std::cout << "\n";
  }

  // --- 4. Adaptive boundary: a legitimately warm application. ---
  {
    WorkloadSpec spec;
    spec.kernel_case_index = static_cast<size_t>(suite.IndexOf("lib.crc32.scalar.b1024"));
    spec.base_utilization = 0.75;  // steady temperature above the initial 59C boundary
    spec.burst_probability = 0.0;
    for (bool adaptive : {true, false}) {
      FaultyMachine machine(MakeArchSpec("M2"));
      FarronConfig config;
      config.enable_adaptive_boundary = adaptive;
      Farron farron(&suite, &machine, config);
      const ProtectionReport report =
          SimulateProtectedWorkload(farron, machine, suite, spec, 2.0, true);
      std::cout << "adaptive boundary " << (adaptive ? "ON " : "OFF")
                << ": backoff = " << FormatDouble(report.BackoffSecondsPerHour(), 1)
                << " s/h, final boundary = " << FormatDouble(report.final_boundary, 1)
                << " C\n";
    }
    std::cout << "\n";
  }

  // --- 4b. Cooling control (extension): performance-neutral alternative to backoff. ---
  {
    WorkloadSpec spec;
    spec.kernel_case_index = static_cast<size_t>(suite.IndexOf("lib.crc32.vector.b4096"));
    spec.base_utilization = 0.45;
    spec.burst_probability = 0.01;
    spec.burst_seconds = 240.0;
    for (bool cooling : {false, true}) {
      FaultyMachine machine(FindInCatalog("MIX1"), 406);
      FarronConfig config;
      config.enable_adaptive_boundary = false;
      config.enable_cooling_control = cooling;
      Farron farron(&suite, &machine, config);
      const ProtectionReport report =
          SimulateProtectedWorkload(farron, machine, suite, spec, 2.0, true);
      std::cout << "cooling control " << (cooling ? "ON " : "OFF")
                << ": backoff = " << FormatDouble(report.BackoffSecondsPerHour(), 1)
                << " s/h, cooling boosts = " << report.cooling_boosts
                << ", app SDC events = " << report.sdc_events
                << ", final boost = " << FormatDouble(report.final_cooling_boost, 2)
                << "\n";
    }
    std::cout << "\n";
  }

  // --- 5. Fine-grained decommission: SIMD1's single defective core. ---
  {
    for (bool fine : {true, false}) {
      FaultyMachine machine(FindInCatalog("SIMD1"), 405);
      FarronConfig config;
      config.enable_fine_decommission = fine;
      Farron farron(&suite, &machine, config);
      farron.MarkSuspectedTestcases({"vec.vec_fma_f32.f32.l8.n128"});
      farron.RunRegularRound({});
      std::cout << "fine decommission " << (fine ? "ON " : "OFF") << ": usable cores = "
                << farron.pool().UsableCores().size() << " / 16\n";
    }
  }
  return 0;
}
