// Figure 8: SDC occurrence frequency (log scale) versus core temperature for three
// settings, with least-squares fits of log10(frequency) on temperature.
// Paper: (a) MIX1/pcore0/testcase C, 66-76C, r = 0.7903; (b) MIX2/pcore1/testcase C,
// 56-68C, r = 0.9243; (c) FPU2/pcore8/testcase L, 48-56C, r = 0.8855.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/repro.h"
#include "src/common/table.h"
#include "src/fault/catalog.h"

namespace {

using namespace sdc;

void Sweep(const TestSuite& suite, const char* cpu_id, const char* testcase_id, int pcore,
           double lo, double hi, double duration_seconds, double time_scale,
           double paper_r) {
  FaultyMachine machine(FindInCatalog(cpu_id), 61);
  TestFramework framework(&suite);
  const int index = suite.IndexOf(testcase_id);
  if (index < 0) {
    std::cout << "missing testcase " << testcase_id << "\n";
    return;
  }
  std::cout << "\n--- " << cpu_id << ", pcore" << pcore << ", " << testcase_id << " ("
            << lo << ".." << hi << " C) ---\n";
  std::vector<TemperaturePoint> points;
  TextTable table({"temperature (C)", "frequency (errors/min)"});
  for (double temperature = lo; temperature <= hi + 1e-9; temperature += (hi - lo) / 5.0) {
    TestRunConfig config;
    config.time_scale = time_scale;
    config.pin_temperature_celsius = temperature;
    config.pcores_under_test = {pcore};
    config.seed = 1000 + static_cast<uint64_t>(temperature * 10);
    const RunReport report =
        framework.RunPlan(machine, {{static_cast<size_t>(index), duration_seconds}}, config);
    TemperaturePoint point;
    point.temperature_celsius = temperature;
    point.frequency_per_minute = report.results.front().OccurrenceFrequencyPerMinute();
    points.push_back(point);
    table.AddRow({FormatDouble(temperature, 1), FormatDouble(point.frequency_per_minute, 5)});
  }
  table.Print(std::cout);
  const LinearFit fit = FitLogFrequencyVsTemperature(points);
  std::cout << "fit: log10(freq) = " << FormatDouble(fit.slope, 4) << " * T + "
            << FormatDouble(fit.intercept, 2) << ", Pearson r = " << FormatDouble(fit.r, 4)
            << " (paper: r = " << FormatDouble(paper_r, 4) << ")\n";
}

}  // namespace

int main() {
  using namespace sdc;
  PrintExperimentHeader("Figure 8", "occurrence frequency vs temperature (log-linear)");
  const TestSuite suite = TestSuite::BuildFull();

  // "Testcase C" on MIX1: the vector-CRC checksum kernel gated at 59C; very low frequency,
  // so each point simulates a long test (cheap in simulated time).
  Sweep(suite, "MIX1", "lib.crc32.vector.b4096", 0, 66.0, 76.0, 100000.0, 1e7, 0.7903);
  // "Testcase C" on MIX2: vector FMA f64 kernel on one of the *weakly failing* defective
  // cores (Observation 4: same testcase, rates orders of magnitude apart across cores).
  {
    const FaultyProcessorInfo mix2 = FindInCatalog("MIX2");
    const Defect* vec_defect = &mix2.defects.front();
    int weak_pcore = 1;
    double best_distance = 1e9;
    for (int pcore = 0; pcore < mix2.spec.physical_cores; ++pcore) {
      const double scale = vec_defect->PcoreScale(pcore);
      if (scale <= 0.0) {
        continue;
      }
      const double distance = std::abs(std::log10(scale) + 2.0);  // aim near 1e-2
      if (distance < best_distance) {
        best_distance = distance;
        weak_pcore = pcore;
      }
    }
    Sweep(suite, "MIX2", "vec.vec_fma_f64.f64.l8.n128", weak_pcore, 56.0, 68.0, 2000.0, 1e6,
          0.9243);
  }
  // "Testcase L" on FPU2: the arctangent library kernel in its 48-56C band.
  Sweep(suite, "FPU2", "lib.math.fp_arctan.f64.n256", 0, 48.0, 56.0, 3600.0, 1e6, 0.8855);
  return 0;
}
