// Table 1: SDC failure rate by test timing over a one-million-CPU fleet.
// Paper: factory 0.776, datacenter 0.18, re-install 2.306, regular 0.348, total 3.61
// (all in permyriad = 1e-4).

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/parallel.h"
#include "src/common/table.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/telemetry/metrics.h"

int main() {
  using namespace sdc;
  PrintExperimentHeader("Table 1", "failure rate of different test timings");

  MetricsRegistry metrics;
  const auto start = std::chrono::steady_clock::now();
  PopulationConfig population_config;
  population_config.processor_count = 1'000'000;
  population_config.metrics = &metrics;
  const FleetPopulation fleet = FleetPopulation::Generate(population_config);
  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  ScreeningConfig screening_config;
  screening_config.metrics = &metrics;
  const ScreeningStats stats = pipeline.Run(fleet, screening_config);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

  const double paper[] = {0.776, 0.180, 2.306, 0.348};
  TextTable table({"timing", "measured (permyriad)", "paper (permyriad)"});
  for (int stage = 0; stage < kStageCount; ++stage) {
    table.AddRow({StageName(static_cast<TestStage>(stage)),
                  FormatDouble(stats.StageRate(static_cast<TestStage>(stage)) * 1e4, 3),
                  FormatDouble(paper[stage], 3)});
  }
  table.AddRow({"total", FormatDouble(stats.TotalRate() * 1e4, 3), "3.610"});
  table.Print(std::cout);

  std::cout << "\nfleet: " << fleet.size() << " processors, "
            << fleet.faulty_count() << " with latent defects; "
            << stats.total_detected() << " detected\n";
  std::cout << "pre-production share of detections: "
            << FormatPercent(stats.PreProductionRate() / stats.TotalRate(), 2)
            << " (paper: 90.36%)\n";
  std::cout << "wall time: " << FormatDouble(elapsed.count(), 2) << " s (generate + screen, "
            << ResolveThreadCount(0) << " threads; set SDC_THREADS to vary)\n";
  std::cout << "\nmetrics snapshot (counters/gauges/histograms are thread-count"
               " invariant):\n";
  metrics.Snapshot().DumpText(std::cout);
  return 0;
}
