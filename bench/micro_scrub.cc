// micro_scrub: the fleet-wide budgeted scrubber (docs/scrubbing.md) as a
// budget-sweep benchmark plus a determinism matrix.
//
// Emits one JSON object per line so runs can be diffed and checked mechanically
// (tools/check_scrub_json.py validates related invariants against sdcctl). Grid:
//   phase "budget"      -- budget fractions {1e-6, 1e-5, 1e-4} at one thread: what the
//                          cycles buy (detections, coverage, mean time-to-detect) and
//                          what they cost (utilization, wall seconds). The binary
//                          asserts spend never exceeds budget. Coverage is reported as
//                          data, not asserted monotone: with full plans, the funding
//                          order shifts which month a session's rounds land in, so
//                          individual sample paths can cross even though the expected
//                          curve rises with budget.
//   phase "determinism" -- one budget at 1/2/8 worker threads x streaming/materialized
//                          discovery. The binary asserts every cell's report JSON is
//                          byte-identical to the one-thread streaming run and exits
//                          non-zero on divergence (the scrub determinism contract).
// The closing "summary" line reports coverage at the top budget and the determinism
// verdict. Each cell is timed as the single run that produced its report (a scrub run
// is seconds, not microseconds; best-of repetition would double a cost that is already
// dominated by deterministic simulation, not scheduler noise).
//
// Usage: micro_scrub [processor_count]
// Defaults: 50,000 processors. CI smoke runs use a small count.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "src/report/exporters.h"
#include "src/scrub/scrubber.h"
#include "src/toolchain/registry.h"

namespace sdc {
namespace {

// The determinism fingerprint is the exported document itself: if any counter, any
// provenance field, or any hexfloat-exact double differs, the JSON differs.
std::string ReportJson(const ScrubReport& report) {
  std::ostringstream out;
  WriteScrubReportJson(out, report);
  return out.str();
}

ScrubConfig BaseConfig(uint64_t processors) {
  ScrubConfig config;
  config.population.processor_count = processors;
  config.population.seed = 2024;
  config.horizon_months = 6.0;
  // Full prioritized plans at a coarse sim scale: rounds that can actually reach the
  // exposing testcase within the horizon, cheap enough on the host to sweep budgets.
  config.max_cases_per_round = 0;
  config.farron.time_scale = 1e9;
  config.workload_sample_hours = 0.02;
  return config;
}

int Main(int argc, char** argv) {
  const uint64_t processors =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000ull;
  std::printf("# micro_scrub: %llu processors\n",
              static_cast<unsigned long long>(processors));

  const TestSuite suite = TestSuite::BuildFull();
  const FleetScrubber scrubber(&suite);
  bool ok = true;

  // Budget sweep: the tradeoff curve the scrubber exists to measure.
  double top_coverage = 0.0;
  for (const double budget : {1e-6, 1e-5, 1e-4}) {
    ScrubConfig config = BaseConfig(processors);
    config.budget_fraction = budget;
    config.threads = 1;
    const auto start = std::chrono::steady_clock::now();
    const ScrubReport report = scrubber.Run(config);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double wall = elapsed.count();
    std::printf(
        "{\"bench\": \"scrub_budget\", \"budget_fraction\": %.1e, \"threads\": 1, "
        "\"processors\": %llu, \"wall_seconds\": %.6f, \"sessions\": %llu, "
        "\"detections\": %zu, \"coverage\": %.4f, \"utilization\": %.4f, "
        "\"mean_ttd_months\": %.3f, \"spent_seconds\": %.1f, "
        "\"budget_seconds\": %.1f}\n",
        budget, static_cast<unsigned long long>(processors), wall,
        static_cast<unsigned long long>(report.sessions), report.detections.size(),
        report.coverage(), report.utilization(), report.MeanTimeToDetectMonths(),
        report.total_spent_seconds(), report.total_budget_seconds);
    std::fflush(stdout);
    if (report.total_spent_seconds() > report.total_budget_seconds * 1.0000001) {
      std::fprintf(stderr, "FAIL: spend exceeds budget at fraction %.1e\n", budget);
      ok = false;
    }
    top_coverage = report.coverage();
  }

  // Determinism matrix: the report must not depend on the thread count or on how the
  // escapes were discovered.
  std::string golden;
  for (const bool stream : {true, false}) {
    for (const int threads : {1, 2, 8}) {
      ScrubConfig config = BaseConfig(processors);
      config.budget_fraction = 1e-5;
      config.stream_discovery = stream;
      config.threads = threads;
      const auto start = std::chrono::steady_clock::now();
      const ScrubReport report = scrubber.Run(config);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      const double wall = elapsed.count();
      const std::string json = ReportJson(report);
      if (golden.empty()) {
        golden = json;
      } else if (json != golden) {
        std::fprintf(stderr, "FAIL: report diverged at threads=%d stream=%d\n", threads,
                     stream ? 1 : 0);
        ok = false;
      }
      std::printf(
          "{\"bench\": \"scrub_determinism\", \"mode\": \"%s\", \"threads\": %d, "
          "\"processors\": %llu, \"wall_seconds\": %.6f, \"report_bytes\": %zu}\n",
          stream ? "streaming" : "materialized", threads,
          static_cast<unsigned long long>(processors), wall, json.size());
      std::fflush(stdout);
    }
  }

  std::printf("{\"bench\": \"summary\", \"deterministic\": %s, "
              "\"coverage_at_max_budget\": %.4f}\n",
              ok ? "true" : "false", top_coverage);
  if (!ok) {
    std::fprintf(stderr, "FAIL: scrub invariants violated (see docs/scrubbing.md)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sdc

int main(int argc, char** argv) { return sdc::Main(argc, argv); }
