// Table 4: Farron overhead (testing + temperature control) vs the baseline, per faulty
// processor. Test overhead = one prioritized round over the three-month regular period;
// control overhead = workload-backoff time over a protected application run. Paper values:
// MIX1 0.051%+0.049%, SIMD1 0.115%+0.031%, FPU1/FPU2 0.017%+0, CNST1 0.033%+0.013%,
// CNST2 0.027%+0; baseline 0.488% testing for every part.

#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/farron/baseline.h"
#include "src/farron/farron.h"
#include "src/farron/protection.h"

namespace {

using namespace sdc;

// Workload kernel per processor: the toolchain case simulating the impacted application
// (Section 2.3's "impacted workload simulator" role).
const char* WorkloadKernel(const std::string& cpu_id) {
  if (cpu_id == "MIX1") {
    return "lib.crc32.vector.b4096";  // checksum path over the tricky VecCrc defect
  }
  if (cpu_id == "SIMD1") {
    return "app.matmul.f32.n16.l8";
  }
  if (cpu_id == "FPU1" || cpu_id == "FPU2") {
    return "lib.math.fp_arctan.f64.n256";
  }
  if (cpu_id == "CNST1") {
    return "mt.coherence.handoff.b256.r50";
  }
  return "mt.tx.invariant.r50";  // CNST2
}

}  // namespace

int main() {
  using namespace sdc;
  PrintExperimentHeader("Table 4", "Farron overhead vs baseline per faulty processor");
  const TestSuite suite = TestSuite::BuildFull();
  BaselinePolicy baseline(&suite, BaselineConfig());

  const struct {
    const char* cpu_id;
    const char* paper;
  } rows[] = {
      {"MIX1", "0.051% + 0.049% = 0.100%"}, {"SIMD1", "0.115% + 0.031% = 0.145%"},
      {"FPU1", "0.017% + 0 = 0.017%"},      {"FPU2", "0.017% + 0 = 0.017%"},
      {"CNST1", "0.033% + 0.013% = 0.046%"}, {"CNST2", "0.027% + 0 = 0.027%"},
  };

  TextTable table({"CPU", "test", "control", "total", "paper (test+control)",
                   "baseline test"});
  for (const auto& row : rows) {
    const FaultyProcessorInfo info = FindInCatalog(row.cpu_id);

    // Known failing testcases seed the suspected list (as accumulated in production).
    FaultyMachine ground_truth_machine(info, 300);
    const RunReport ground_truth = AdequateSweep(suite, ground_truth_machine, 30.0, 17);

    FaultyMachine machine(info, 301);
    FarronConfig config;
    config.enable_fine_decommission = true;
    Farron farron(&suite, &machine, config);
    farron.MarkSuspectedTestcases(ground_truth.failed_testcase_ids());
    const FarronRoundSummary round = farron.RunRegularRound({});
    const double test_overhead =
        round.plan_seconds / (config.regular_period_months * 30.44 * 24.0 * 3600.0);

    // Temperature-control overhead over a protected 4-hour application run on a fresh
    // (unmasked) part -- control substitutes for decommission on the tricky defects.
    FaultyMachine app_machine(info, 302);
    Farron controller(&suite, &app_machine, config);
    // Production-like load: steady below the boundary with a few short, moderate bursts per
    // hour -- the regime where the paper measures 0.864 s/hour of backoff.
    WorkloadSpec spec;
    spec.kernel_case_index = static_cast<size_t>(suite.IndexOf(WorkloadKernel(row.cpu_id)));
    spec.base_utilization = 0.474;
    spec.burst_probability = 3.3e-4;
    spec.burst_seconds = 8.0;
    spec.burst_utilization = 1.0;
    const ProtectionReport protection =
        SimulateProtectedWorkload(controller, app_machine, suite, spec, 4.0, true);
    const double control_overhead = protection.backoff_seconds / (4.0 * 3600.0);

    table.AddRow({row.cpu_id, FormatPercent(test_overhead, 3),
                  FormatPercent(control_overhead, 3),
                  FormatPercent(test_overhead + control_overhead, 3), row.paper,
                  FormatPercent(baseline.TestOverhead(), 3)});
  }
  table.Print(std::cout);
  std::cout << "\nbaseline: one 10.55 h full-suite round per 3 months = "
            << FormatPercent(baseline.TestOverhead(), 3) << " (paper: 0.488%)\n";
  return 0;
}
