// Hamming(72,64) SECDED: single-error-correcting, double-error-detecting code over a 64-bit
// word, the scheme processor caches and register files use (Observation 12 discusses why it
// is insufficient against CPU SDCs: corruption before encoding is invisible, and multi-bit
// flips exceed its correction capability).

#ifndef SDC_SRC_INTEGRITY_ECC_H_
#define SDC_SRC_INTEGRITY_ECC_H_

#include <cstdint>

namespace sdc {

// A 72-bit codeword: 64 data bits + 8 check bits.
struct EccWord {
  uint64_t data = 0;
  uint8_t check = 0;

  friend bool operator==(const EccWord&, const EccWord&) = default;
};

enum class EccStatus {
  kClean,           // no error detected
  kCorrected,       // single-bit error corrected
  kDoubleDetected,  // two-bit error detected, uncorrectable
};

struct EccDecodeResult {
  EccStatus status = EccStatus::kClean;
  uint64_t data = 0;  // corrected data (valid for kClean and kCorrected)
};

// Encodes 64 data bits into a SECDED codeword.
EccWord EccEncode(uint64_t data);

// Decodes a (possibly corrupted) codeword.
EccDecodeResult EccDecode(const EccWord& word);

// Flips bit `position` (0..71) of a codeword: 0..63 address data bits, 64..71 check bits.
void EccFlipBit(EccWord& word, int position);

}  // namespace sdc

#endif  // SDC_SRC_INTEGRITY_ECC_H_
