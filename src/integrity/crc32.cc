#include "src/integrity/crc32.h"

#include <array>

namespace sdc {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;  // reflected IEEE 802.3

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

inline uint32_t Step(uint32_t crc, uint8_t byte) {
  return (crc >> 8) ^ Table()[(crc ^ byte) & 0xffu];
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) {
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    crc = Step(crc, byte);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32Bitwise(std::span<const uint8_t> data) {
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32OnProcessor(Processor& cpu, int lcore, std::span<const uint8_t> data) {
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    crc = cpu.ExecuteU32(lcore, OpKind::kCrc32Step, Step(crc, byte));
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32VectorOnProcessor(Processor& cpu, int lcore, std::span<const uint8_t> data) {
  uint32_t crc = 0xFFFFFFFFu;
  size_t index = 0;
  while (index + 8 <= data.size()) {
    uint32_t block_crc = crc;
    for (size_t i = 0; i < 8; ++i) {
      block_crc = Step(block_crc, data[index + i]);
    }
    crc = cpu.ExecuteU32(lcore, OpKind::kVecCrc, block_crc);
    index += 8;
  }
  for (; index < data.size(); ++index) {
    crc = cpu.ExecuteU32(lcore, OpKind::kCrc32Step, Step(crc, data[index]));
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace sdc
