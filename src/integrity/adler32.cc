#include "src/integrity/adler32.h"

#include <array>

namespace sdc {
namespace {

constexpr uint32_t kAdlerModulus = 65521;
constexpr uint64_t kCrc64Polynomial = 0xC96C5795D7870F42ull;  // ECMA-182, reflected

std::array<uint64_t, 256> BuildCrc64Table() {
  std::array<uint64_t, 256> table{};
  for (uint64_t i = 0; i < 256; ++i) {
    uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kCrc64Polynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint64_t, 256>& Crc64Table() {
  static const std::array<uint64_t, 256> table = BuildCrc64Table();
  return table;
}

}  // namespace

uint32_t Adler32(std::span<const uint8_t> data) {
  uint32_t a = 1;
  uint32_t b = 0;
  for (uint8_t byte : data) {
    a = (a + byte) % kAdlerModulus;
    b = (b + a) % kAdlerModulus;
  }
  return (b << 16) | a;
}

uint32_t Adler32OnProcessor(Processor& cpu, int lcore, std::span<const uint8_t> data) {
  uint32_t a = 1;
  uint32_t b = 0;
  size_t in_block = 0;
  for (uint8_t byte : data) {
    a = (a + byte) % kAdlerModulus;
    b = (b + a) % kAdlerModulus;
    if (++in_block == 16) {
      // Route the running pair once per block, like an unrolled SIMD implementation.
      const uint32_t packed = (b << 16) | a;
      const uint32_t routed = cpu.ExecuteU32(lcore, OpKind::kIntAdd, packed);
      a = routed & 0xffffu;
      b = routed >> 16;
      in_block = 0;
    }
  }
  return (b << 16) | a;
}

uint64_t Crc64(std::span<const uint8_t> data) {
  uint64_t crc = ~uint64_t{0};
  for (uint8_t byte : data) {
    crc = (crc >> 8) ^ Crc64Table()[(crc ^ byte) & 0xffu];
  }
  return ~crc;
}

uint64_t Crc64OnProcessor(Processor& cpu, int lcore, std::span<const uint8_t> data) {
  uint64_t crc = ~uint64_t{0};
  size_t index = 0;
  while (index < data.size()) {
    const size_t block_end = std::min(index + 8, data.size());
    for (; index < block_end; ++index) {
      crc = (crc >> 8) ^ Crc64Table()[(crc ^ data[index]) & 0xffu];
    }
    crc = cpu.ExecuteRaw(lcore, OpKind::kCrc32Step, crc, DataType::kBin64);
  }
  return ~crc;
}

}  // namespace sdc
