#include "src/integrity/hash.h"

namespace sdc {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

}  // namespace

uint64_t Fnv1a64(std::span<const uint8_t> data) {
  uint64_t hash = kFnvOffset;
  for (uint8_t byte : data) {
    hash = (hash ^ byte) * kFnvPrime;
  }
  return hash;
}

uint64_t MurmurMix64(uint64_t key) {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdull;
  key ^= key >> 33;
  key *= 0xc4ceb9fe1a85ec53ull;
  key ^= key >> 33;
  return key;
}

uint64_t Fnv1a64OnProcessor(Processor& cpu, int lcore, std::span<const uint8_t> data) {
  uint64_t hash = kFnvOffset;
  size_t index = 0;
  while (index < data.size()) {
    const size_t block_end = std::min(index + 8, data.size());
    for (; index < block_end; ++index) {
      hash = (hash ^ data[index]) * kFnvPrime;
    }
    hash = cpu.ExecuteRaw(lcore, OpKind::kHashStep, hash, DataType::kBin64);
  }
  return hash;
}

}  // namespace sdc
