#include "src/integrity/ecc.h"

#include <array>

namespace sdc {
namespace {

// Internal layout: Hamming positions 1..71, with parity bits at the powers of two
// (1, 2, 4, 8, 16, 32, 64) and data bits filling the remaining 64 positions in ascending
// order. Position 0 holds the overall (SECDED) parity over positions 1..71.
constexpr int kCodeBits = 72;

bool IsPowerOfTwo(int value) { return value > 0 && (value & (value - 1)) == 0; }

using CodeArray = std::array<uint8_t, kCodeBits>;

CodeArray ToArray(const EccWord& word) {
  CodeArray bits{};
  int data_index = 0;
  for (int position = 1; position < kCodeBits; ++position) {
    if (!IsPowerOfTwo(position)) {
      bits[position] = static_cast<uint8_t>((word.data >> data_index) & 1u);
      ++data_index;
    }
  }
  bits[0] = word.check & 1u;
  int check_index = 1;
  for (int position = 1; position < kCodeBits; position <<= 1) {
    bits[position] = static_cast<uint8_t>((word.check >> check_index) & 1u);
    ++check_index;
  }
  return bits;
}

EccWord FromArray(const CodeArray& bits) {
  EccWord word;
  int data_index = 0;
  for (int position = 1; position < kCodeBits; ++position) {
    if (!IsPowerOfTwo(position)) {
      word.data |= static_cast<uint64_t>(bits[position]) << data_index;
      ++data_index;
    }
  }
  word.check = bits[0] & 1u;
  int check_index = 1;
  for (int position = 1; position < kCodeBits; position <<= 1) {
    word.check = static_cast<uint8_t>(word.check | (bits[position] & 1u) << check_index);
    ++check_index;
  }
  return word;
}

int Syndrome(const CodeArray& bits) {
  int syndrome = 0;
  for (int position = 1; position < kCodeBits; ++position) {
    if (bits[position]) {
      syndrome ^= position;
    }
  }
  return syndrome;
}

uint8_t OverallParity(const CodeArray& bits) {
  uint8_t parity = 0;
  for (int position = 0; position < kCodeBits; ++position) {
    parity ^= bits[position];
  }
  return parity;
}

}  // namespace

EccWord EccEncode(uint64_t data) {
  EccWord raw;
  raw.data = data;
  raw.check = 0;
  CodeArray bits = ToArray(raw);
  // Set each Hamming parity bit so the syndrome over its covered positions is zero.
  for (int parity_position = 1; parity_position < kCodeBits; parity_position <<= 1) {
    uint8_t parity = 0;
    for (int position = 1; position < kCodeBits; ++position) {
      if ((position & parity_position) != 0 && position != parity_position) {
        parity ^= bits[position];
      }
    }
    bits[parity_position] = parity;
  }
  // Overall parity makes the whole 72-bit word even.
  bits[0] = 0;
  bits[0] = OverallParity(bits);
  return FromArray(bits);
}

EccDecodeResult EccDecode(const EccWord& word) {
  CodeArray bits = ToArray(word);
  const int syndrome = Syndrome(bits);
  const uint8_t parity = OverallParity(bits);
  EccDecodeResult result;
  if (syndrome == 0 && parity == 0) {
    result.status = EccStatus::kClean;
    result.data = word.data;
    return result;
  }
  if (parity != 0) {
    if (syndrome >= kCodeBits) {
      // Odd parity with a syndrome outside the codeword: an odd (>= 3) number of flips.
      // Uncorrectable; report as detected.
      result.status = EccStatus::kDoubleDetected;
      result.data = word.data;
      return result;
    }
    // Odd overall parity: a single-bit error at `syndrome` (0 means the overall parity bit).
    bits[syndrome] ^= 1u;
    result.status = EccStatus::kCorrected;
    result.data = FromArray(bits).data;
    return result;
  }
  // Even parity with a non-zero syndrome: two bits flipped; uncorrectable.
  result.status = EccStatus::kDoubleDetected;
  result.data = word.data;
  return result;
}

void EccFlipBit(EccWord& word, int position) {
  if (position < 64) {
    word.data ^= (uint64_t{1} << position);
  } else {
    word.check = static_cast<uint8_t>(word.check ^ (1u << (position - 64)));
  }
}

}  // namespace sdc
