// Non-cryptographic hashing: FNV-1a (byte-serial) and a Murmur3-style 64-bit mixer, plus a
// processor-routed variant used by the hash-map testcases (the "defective hashing" incident
// of Section 2.2).

#ifndef SDC_SRC_INTEGRITY_HASH_H_
#define SDC_SRC_INTEGRITY_HASH_H_

#include <cstdint>
#include <span>

#include "src/sim/processor.h"

namespace sdc {

// FNV-1a over bytes.
uint64_t Fnv1a64(std::span<const uint8_t> data);

// Murmur3-style avalanche of a 64-bit key.
uint64_t MurmurMix64(uint64_t key);

// FNV-1a routed through the simulated processor: one kHashStep op per 8-byte block.
uint64_t Fnv1a64OnProcessor(Processor& cpu, int lcore, std::span<const uint8_t> data);

}  // namespace sdc

#endif  // SDC_SRC_INTEGRITY_HASH_H_
