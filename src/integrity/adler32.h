// Adler-32 (RFC 1950) and CRC-64/ECMA checksums: lighter and heavier companions to CRC32
// in the integrity substrate, each with a processor-routed variant for the toolchain's
// checksum testcases.

#ifndef SDC_SRC_INTEGRITY_ADLER32_H_
#define SDC_SRC_INTEGRITY_ADLER32_H_

#include <cstdint>
#include <span>

#include "src/sim/processor.h"

namespace sdc {

// Adler-32 over `data` (initial value 1).
uint32_t Adler32(std::span<const uint8_t> data);

// Adler-32 with the per-block running sums routed through the simulated processor.
uint32_t Adler32OnProcessor(Processor& cpu, int lcore, std::span<const uint8_t> data);

// CRC-64/ECMA-182 (reflected, init/final 0xFFFF...).
uint64_t Crc64(std::span<const uint8_t> data);

// CRC-64 with one routed op per 8-byte block.
uint64_t Crc64OnProcessor(Processor& cpu, int lcore, std::span<const uint8_t> data);

}  // namespace sdc

#endif  // SDC_SRC_INTEGRITY_ADLER32_H_
