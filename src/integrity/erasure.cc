#include "src/integrity/erasure.h"

#include <array>
#include <cstdlib>

namespace sdc {
namespace gf256 {
namespace {

constexpr int kPolynomial = 0x11D;

struct Tables {
  std::array<uint8_t, 512> exp{};
  std::array<int, 256> log{};

  Tables() {
    int value = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(value);
      log[value] = i;
      value <<= 1;
      if (value & 0x100) {
        value ^= kPolynomial;
      }
    }
    for (int i = 255; i < 512; ++i) {
      exp[i] = exp[i - 255];
    }
    log[0] = -1;
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint8_t Mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return T().exp[T().log[a] + T().log[b]];
}

uint8_t Inv(uint8_t a) {
  if (a == 0) {
    std::abort();  // inverse of zero is a programming error
  }
  return T().exp[255 - T().log[a]];
}

uint8_t Div(uint8_t a, uint8_t b) { return Mul(a, Inv(b)); }

}  // namespace gf256

ReedSolomon::ReedSolomon(int data_shards, int parity_shards)
    : k_(data_shards), m_(parity_shards) {
  if (k_ < 1 || m_ < 0 || k_ + m_ > 128) {
    std::abort();  // construction bound violated
  }
}

std::vector<uint8_t> ReedSolomon::MatrixRow(int row) const {
  std::vector<uint8_t> out(static_cast<size_t>(k_), 0);
  if (row < k_) {
    out[row] = 1;  // identity: data shards pass through
    return out;
  }
  // Cauchy block: element (i, j) = 1 / (x_i ^ y_j) with x_i = k + i, y_j = j. All x and y
  // values are distinct in [0, k+m), so every square subselection is invertible.
  const uint8_t x = static_cast<uint8_t>(row);
  for (int j = 0; j < k_; ++j) {
    out[j] = gf256::Inv(static_cast<uint8_t>(x ^ static_cast<uint8_t>(j)));
  }
  return out;
}

std::vector<std::vector<uint8_t>> ReedSolomon::Encode(
    const std::vector<std::vector<uint8_t>>& data) const {
  const size_t shard_size = data.empty() ? 0 : data[0].size();
  std::vector<std::vector<uint8_t>> parity(static_cast<size_t>(m_),
                                           std::vector<uint8_t>(shard_size, 0));
  for (int p = 0; p < m_; ++p) {
    const std::vector<uint8_t> row = MatrixRow(k_ + p);
    for (int j = 0; j < k_; ++j) {
      const uint8_t coefficient = row[j];
      const std::vector<uint8_t>& shard = data[j];
      for (size_t b = 0; b < shard_size; ++b) {
        parity[p][b] ^= gf256::Mul(coefficient, shard[b]);
      }
    }
  }
  return parity;
}

std::vector<std::vector<uint8_t>> ReedSolomon::EncodeOnProcessor(
    Processor& cpu, int lcore, const std::vector<std::vector<uint8_t>>& data) const {
  const size_t shard_size = data.empty() ? 0 : data[0].size();
  std::vector<std::vector<uint8_t>> parity(static_cast<size_t>(m_),
                                           std::vector<uint8_t>(shard_size, 0));
  for (int p = 0; p < m_; ++p) {
    const std::vector<uint8_t> row = MatrixRow(k_ + p);
    for (int j = 0; j < k_; ++j) {
      const uint8_t coefficient = row[j];
      const std::vector<uint8_t>& shard = data[j];
      for (size_t b = 0; b < shard_size; ++b) {
        const uint8_t product = gf256::Mul(coefficient, shard[b]);
        const uint8_t routed = static_cast<uint8_t>(
            cpu.ExecuteRaw(lcore, OpKind::kVecGf256, product, DataType::kByte));
        parity[p][b] ^= routed;
      }
    }
  }
  return parity;
}

std::optional<std::vector<std::vector<uint8_t>>> ReedSolomon::Reconstruct(
    const std::vector<std::vector<uint8_t>>& shards, const std::vector<bool>& present) const {
  // Pick the first k surviving shards and build the k x k system they satisfy.
  std::vector<int> rows;
  for (int i = 0; i < k_ + m_ && static_cast<int>(rows.size()) < k_; ++i) {
    if (present[i]) {
      rows.push_back(i);
    }
  }
  if (static_cast<int>(rows.size()) < k_) {
    return std::nullopt;
  }
  size_t shard_size = 0;
  for (int row : rows) {
    shard_size = shards[row].size();
    break;
  }
  // Invert the submatrix by Gauss-Jordan over GF(256).
  std::vector<std::vector<uint8_t>> matrix(static_cast<size_t>(k_));
  std::vector<std::vector<uint8_t>> inverse(static_cast<size_t>(k_),
                                            std::vector<uint8_t>(static_cast<size_t>(k_), 0));
  for (int i = 0; i < k_; ++i) {
    matrix[i] = MatrixRow(rows[i]);
    inverse[i][i] = 1;
  }
  for (int column = 0; column < k_; ++column) {
    int pivot = -1;
    for (int row = column; row < k_; ++row) {
      if (matrix[row][column] != 0) {
        pivot = row;
        break;
      }
    }
    if (pivot < 0) {
      return std::nullopt;  // unreachable with a Cauchy construction
    }
    std::swap(matrix[column], matrix[pivot]);
    std::swap(inverse[column], inverse[pivot]);
    const uint8_t inv_pivot = gf256::Inv(matrix[column][column]);
    for (int j = 0; j < k_; ++j) {
      matrix[column][j] = gf256::Mul(matrix[column][j], inv_pivot);
      inverse[column][j] = gf256::Mul(inverse[column][j], inv_pivot);
    }
    for (int row = 0; row < k_; ++row) {
      if (row == column || matrix[row][column] == 0) {
        continue;
      }
      const uint8_t factor = matrix[row][column];
      for (int j = 0; j < k_; ++j) {
        matrix[row][j] ^= gf256::Mul(factor, matrix[column][j]);
        inverse[row][j] ^= gf256::Mul(factor, inverse[column][j]);
      }
    }
  }
  // data = inverse * surviving, row by row.
  std::vector<std::vector<uint8_t>> data(static_cast<size_t>(k_),
                                         std::vector<uint8_t>(shard_size, 0));
  for (int i = 0; i < k_; ++i) {
    for (int j = 0; j < k_; ++j) {
      const uint8_t coefficient = inverse[i][j];
      if (coefficient == 0) {
        continue;
      }
      const std::vector<uint8_t>& shard = shards[rows[j]];
      for (size_t b = 0; b < shard_size; ++b) {
        data[i][b] ^= gf256::Mul(coefficient, shard[b]);
      }
    }
  }
  return data;
}

}  // namespace sdc
