// CRC32 (IEEE 802.3 polynomial, reflected) with three implementations:
//  * Crc32(): table-driven host computation (the reference).
//  * Crc32Bitwise(): bit-serial computation used to cross-check the table.
//  * Crc32OnProcessor() / Crc32VectorOnProcessor(): the same computation routed through a
//    simulated processor's scalar or vector datapath, so a defective part corrupts checksum
//    results exactly like the production incidents of Section 2.2 (and like Observation 12's
//    warning that checksum code itself engages vulnerable features).

#ifndef SDC_SRC_INTEGRITY_CRC32_H_
#define SDC_SRC_INTEGRITY_CRC32_H_

#include <cstdint>
#include <span>

#include "src/sim/processor.h"

namespace sdc {

// CRC32 of `data` (initial value 0xFFFFFFFF, final XOR 0xFFFFFFFF).
uint32_t Crc32(std::span<const uint8_t> data);

// Bit-serial reference implementation.
uint32_t Crc32Bitwise(std::span<const uint8_t> data);

// Scalar CRC through the simulated processor: one kCrc32Step op per input byte.
uint32_t Crc32OnProcessor(Processor& cpu, int lcore, std::span<const uint8_t> data);

// Vector-accelerated CRC through the simulated processor: one kVecCrc op per 8-byte block
// (tail bytes go through the scalar path). Mirrors carryless-multiply CRC kernels.
uint32_t Crc32VectorOnProcessor(Processor& cpu, int lcore, std::span<const uint8_t> data);

}  // namespace sdc

#endif  // SDC_SRC_INTEGRITY_CRC32_H_
