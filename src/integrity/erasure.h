// Reed-Solomon erasure coding over GF(256) with a Cauchy generator matrix.
//
// RS(k, m) encodes k data shards into m parity shards; any k of the k+m shards reconstruct
// the data. The paper (Observation 12) warns that EC recovers *lost* data but cannot detect
// *corrupted* data -- and that production EC kernels lean on vector units, one of the
// vulnerable features -- so a CPU SDC during encoding propagates corruption into otherwise
// healthy shards. EncodeOnProcessor() routes the GF multiplies through the simulated
// processor to demonstrate exactly that.

#ifndef SDC_SRC_INTEGRITY_ERASURE_H_
#define SDC_SRC_INTEGRITY_ERASURE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sim/processor.h"

namespace sdc {

// GF(2^8) arithmetic with the 0x11D (AES-unrelated, storage-standard) polynomial.
namespace gf256 {
uint8_t Mul(uint8_t a, uint8_t b);
uint8_t Div(uint8_t a, uint8_t b);  // b must be non-zero
uint8_t Inv(uint8_t a);             // a must be non-zero
}  // namespace gf256

class ReedSolomon {
 public:
  // Requires 1 <= k, 0 <= m, and k + m <= 128 (Cauchy construction bound used here).
  ReedSolomon(int data_shards, int parity_shards);

  int data_shards() const { return k_; }
  int parity_shards() const { return m_; }

  // Computes `m` parity shards from `k` equal-length data shards.
  std::vector<std::vector<uint8_t>> Encode(
      const std::vector<std::vector<uint8_t>>& data) const;

  // Same computation with every GF multiply-accumulate routed through the simulated
  // processor's vector unit (kVecGf256), one op per output byte block.
  std::vector<std::vector<uint8_t>> EncodeOnProcessor(
      Processor& cpu, int lcore, const std::vector<std::vector<uint8_t>>& data) const;

  // Reconstructs the full set of k data shards from any >= k surviving shards.
  // `shards` has k+m entries; a missing shard is an empty vector, mirrored by
  // `present[i] == false`. Returns std::nullopt when fewer than k shards survive.
  std::optional<std::vector<std::vector<uint8_t>>> Reconstruct(
      const std::vector<std::vector<uint8_t>>& shards, const std::vector<bool>& present) const;

 private:
  // Row `row` of the (k+m) x k encoding matrix: identity on top, Cauchy below.
  std::vector<uint8_t> MatrixRow(int row) const;

  int k_;
  int m_;
};

}  // namespace sdc

#endif  // SDC_SRC_INTEGRITY_ERASURE_H_
