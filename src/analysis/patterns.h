// Bitflip-pattern mining (Observation 8 / Figure 6): a pattern is an XOR mask shared by at
// least a threshold share (5% in the paper) of a setting's SDC records, where a setting is a
// (testcase, processor) pair.

#ifndef SDC_SRC_ANALYSIS_PATTERNS_H_
#define SDC_SRC_ANALYSIS_PATTERNS_H_

#include <string>
#include <vector>

#include "src/common/bits.h"
#include "src/toolchain/testcase.h"

namespace sdc {

struct MinedPattern {
  Word128 mask;
  double share = 0.0;  // fraction of the setting's records bearing exactly this mask
};

struct PatternAnalysis {
  uint64_t record_count = 0;
  std::vector<MinedPattern> patterns;      // masks with share >= threshold
  double patterned_record_fraction = 0.0;  // fraction of records matching any mined pattern
};

// Mines patterns over the computation records in `records` (pre-filtered to one setting).
PatternAnalysis MinePatterns(const std::vector<SdcRecord>& records, double threshold = 0.05);

// Convenience: selects the records of one setting (testcase id + optionally one pcore).
std::vector<SdcRecord> FilterSetting(const std::vector<SdcRecord>& records,
                                     const std::string& testcase_id, int pcore = -1);

}  // namespace sdc

#endif  // SDC_SRC_ANALYSIS_PATTERNS_H_
