// Reproducibility analysis (Section 5): occurrence-frequency measurement, pinned-temperature
// sweeps with log-linear fits (Figure 8), minimum-trigger-temperature search, and the
// trigger-temperature/frequency relation (Figure 9).

#ifndef SDC_SRC_ANALYSIS_REPRO_H_
#define SDC_SRC_ANALYSIS_REPRO_H_

#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/fault/machine.h"
#include "src/toolchain/framework.h"

namespace sdc {

// Measures the occurrence frequency (errors/minute) of one testcase on one physical core at
// the given pinned temperature, over `duration_seconds` of simulated testing. `time_scale`
// trades fidelity for speed: per-op corruption probabilities must stay below saturation
// (rate x time_scale << 1) for the frequency to be unbiased, so use larger scales only for
// low-frequency settings.
double MeasureOccurrenceFrequency(FaultyMachine& machine, const TestFramework& framework,
                                  size_t testcase_index, int pcore,
                                  double pinned_temperature_celsius, double duration_seconds,
                                  uint64_t seed, double time_scale = 1e5);

struct TemperaturePoint {
  double temperature_celsius = 0.0;
  double frequency_per_minute = 0.0;
};

// Sweeps the pinned temperature and measures frequency at each step (Figure 8's raw data).
std::vector<TemperaturePoint> TemperatureSweep(FaultyMachine& machine,
                                               const TestFramework& framework,
                                               size_t testcase_index, int pcore,
                                               const std::vector<double>& temperatures,
                                               double duration_seconds, uint64_t seed);

// Least-squares fit of log10(frequency) against temperature over the sweep's non-zero
// points; fit.r is the Pearson coefficient the paper reports (> 0.75 for thermal settings).
LinearFit FitLogFrequencyVsTemperature(const std::vector<TemperaturePoint>& points);

// Finds the lowest pinned temperature (within [lo, hi], at `step` granularity) at which the
// setting reproduces at least one error; returns a negative value when it never does.
double FindMinTriggerTemperature(FaultyMachine& machine, const TestFramework& framework,
                                 size_t testcase_index, int pcore, double lo, double hi,
                                 double step, double duration_seconds, uint64_t seed);

// One point of Figure 9, evaluated from the defect model directly: the defect's minimum
// trigger temperature and its occurrence frequency there under nominal test intensity.
struct TriggerPoint {
  std::string cpu_id;
  std::string defect_id;
  double min_trigger_celsius = 0.0;
  double frequency_per_minute = 0.0;
};

// Enumerates (trigger, frequency) points across a catalog of faulty processors.
std::vector<TriggerPoint> CollectTriggerPoints(
    const std::vector<FaultyProcessorInfo>& catalog);

// --- Suspect-instruction narrowing (the Pin-based study of Section 4.1). ---

struct SuspectScore {
  OpKind op = OpKind::kIntAdd;
  double score = 0.0;          // higher = more suspicious
  double failed_usage = 0.0;   // fraction of failed testcases that execute this op
  double passed_usage = 0.0;   // fraction of passing testcases that execute this op
};

// Ranks op kinds by how exclusively failing testcases execute them.
std::vector<SuspectScore> RankSuspectOps(const RunReport& report);

}  // namespace sdc

#endif  // SDC_SRC_ANALYSIS_REPRO_H_
