#include "src/analysis/patterns.h"

#include <algorithm>
#include <unordered_map>

namespace sdc {

PatternAnalysis MinePatterns(const std::vector<SdcRecord>& records, double threshold) {
  PatternAnalysis analysis;
  std::unordered_map<Word128, uint64_t, Word128Hash> mask_counts;
  for (const SdcRecord& record : records) {
    if (record.sdc_type != SdcType::kComputation) {
      continue;
    }
    ++analysis.record_count;
    ++mask_counts[record.FlipMask()];
  }
  if (analysis.record_count == 0) {
    return analysis;
  }
  uint64_t patterned = 0;
  for (const auto& [mask, count] : mask_counts) {
    const double share =
        static_cast<double>(count) / static_cast<double>(analysis.record_count);
    if (share >= threshold) {
      analysis.patterns.push_back({mask, share});
      patterned += count;
    }
  }
  std::sort(analysis.patterns.begin(), analysis.patterns.end(),
            [](const MinedPattern& a, const MinedPattern& b) { return a.share > b.share; });
  analysis.patterned_record_fraction =
      static_cast<double>(patterned) / static_cast<double>(analysis.record_count);
  return analysis;
}

std::vector<SdcRecord> FilterSetting(const std::vector<SdcRecord>& records,
                                     const std::string& testcase_id, int pcore) {
  std::vector<SdcRecord> out;
  for (const SdcRecord& record : records) {
    if (record.testcase_id == testcase_id && (pcore < 0 || record.pcore == pcore)) {
      out.push_back(record);
    }
  }
  return out;
}

}  // namespace sdc
