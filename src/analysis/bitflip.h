// Bit-level analysis of computation SDC records (Section 4.2): per-bit flip position
// histograms with flip direction (Figures 4 and 5), relative precision losses (Figure 4 CDF
// rows), and flip-count distributions.

#ifndef SDC_SRC_ANALYSIS_BITFLIP_H_
#define SDC_SRC_ANALYSIS_BITFLIP_H_

#include <cstdint>
#include <vector>

#include "src/common/bits.h"
#include "src/toolchain/testcase.h"

namespace sdc {

struct BitflipStats {
  DataType type = DataType::kInt32;
  uint64_t record_count = 0;
  uint64_t total_flips = 0;
  std::vector<uint64_t> zero_to_one;  // per bit index
  std::vector<uint64_t> one_to_zero;  // per bit index

  // Fraction of all flips that went 0 -> 1 (the paper measures 51.08% overall).
  double ZeroToOneFraction() const;
  // Fraction of all flips at `bit`, by direction.
  double FractionAt(int bit, bool zero_to_one_direction) const;
  // Fraction of flips landing in the fraction (mantissa) part; floating types only.
  double FractionPartShare() const;
};

// Computes per-bit flip statistics over the records of datatype `type`.
BitflipStats AnalyzeBitflips(const std::vector<SdcRecord>& records, DataType type);

// Relative precision losses |actual-expected|/|expected| of the records of `type`
// (numeric types only; infinite losses are skipped).
std::vector<double> PrecisionLosses(const std::vector<SdcRecord>& records, DataType type);

// Histogram of flipped-bit counts: index 0 -> 1 flip, 1 -> 2 flips, 2 -> more than 2.
std::vector<double> FlipCountDistribution(const std::vector<SdcRecord>& records,
                                          DataType type);

}  // namespace sdc

#endif  // SDC_SRC_ANALYSIS_BITFLIP_H_
