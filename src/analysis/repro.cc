#include "src/analysis/repro.h"

#include <algorithm>
#include <cmath>

namespace sdc {
namespace {

// Nominal op execution rate used to evaluate model-level occurrence frequencies; matches the
// catalog's calibration rates.
double NominalOpsPerSecond(const Defect& defect) { return defect.intensity_ref; }

}  // namespace

double MeasureOccurrenceFrequency(FaultyMachine& machine, const TestFramework& framework,
                                  size_t testcase_index, int pcore,
                                  double pinned_temperature_celsius, double duration_seconds,
                                  uint64_t seed, double time_scale) {
  TestRunConfig config;
  config.time_scale = time_scale;
  config.pin_temperature_celsius = pinned_temperature_celsius;
  config.pcores_under_test = {pcore};
  config.seed = seed;
  const RunReport report =
      framework.RunPlan(machine, {{testcase_index, duration_seconds}}, config);
  return report.results.front().OccurrenceFrequencyPerMinute();
}

std::vector<TemperaturePoint> TemperatureSweep(FaultyMachine& machine,
                                               const TestFramework& framework,
                                               size_t testcase_index, int pcore,
                                               const std::vector<double>& temperatures,
                                               double duration_seconds, uint64_t seed) {
  std::vector<TemperaturePoint> points;
  points.reserve(temperatures.size());
  for (size_t i = 0; i < temperatures.size(); ++i) {
    TemperaturePoint point;
    point.temperature_celsius = temperatures[i];
    point.frequency_per_minute = MeasureOccurrenceFrequency(
        machine, framework, testcase_index, pcore, temperatures[i], duration_seconds,
        seed + i);
    points.push_back(point);
  }
  return points;
}

LinearFit FitLogFrequencyVsTemperature(const std::vector<TemperaturePoint>& points) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (const TemperaturePoint& point : points) {
    if (point.frequency_per_minute > 0.0) {
      xs.push_back(point.temperature_celsius);
      ys.push_back(std::log10(point.frequency_per_minute));
    }
  }
  return FitLeastSquares(xs, ys);
}

double FindMinTriggerTemperature(FaultyMachine& machine, const TestFramework& framework,
                                 size_t testcase_index, int pcore, double lo, double hi,
                                 double step, double duration_seconds, uint64_t seed) {
  for (double temperature = lo; temperature <= hi + 1e-9; temperature += step) {
    const double frequency = MeasureOccurrenceFrequency(
        machine, framework, testcase_index, pcore, temperature, duration_seconds, seed);
    if (frequency > 0.0) {
      return temperature;
    }
  }
  return -1.0;
}

std::vector<TriggerPoint> CollectTriggerPoints(
    const std::vector<FaultyProcessorInfo>& catalog) {
  std::vector<TriggerPoint> points;
  for (const FaultyProcessorInfo& info : catalog) {
    for (const Defect& defect : info.defects) {
      TriggerPoint point;
      point.cpu_id = info.cpu_id;
      point.defect_id = defect.id;
      point.min_trigger_celsius = defect.min_trigger_celsius;
      // Evaluate just above the trigger on the defect's fastest-failing core.
      int best_pcore = defect.affected_pcores.empty() ? 0 : defect.affected_pcores.front();
      double best_scale = 0.0;
      for (int pcore = 0; pcore < info.spec.physical_cores; ++pcore) {
        const double scale = defect.PcoreScale(pcore);
        if (scale > best_scale) {
          best_scale = scale;
          best_pcore = pcore;
        }
      }
      point.frequency_per_minute = defect.OccurrenceFrequencyPerMinute(
          defect.min_trigger_celsius + 0.01, NominalOpsPerSecond(defect), best_pcore);
      points.push_back(point);
    }
  }
  return points;
}

std::vector<SuspectScore> RankSuspectOps(const RunReport& report) {
  uint64_t failed_cases = 0;
  uint64_t passed_cases = 0;
  std::array<uint64_t, kOpKindCount> used_in_failed{};
  std::array<uint64_t, kOpKindCount> used_in_passed{};
  for (const TestcaseResult& result : report.results) {
    const bool failed = result.failed();
    (failed ? failed_cases : passed_cases) += 1;
    for (int kind = 0; kind < kOpKindCount; ++kind) {
      if (result.op_histogram[kind] > 0) {
        (failed ? used_in_failed : used_in_passed)[kind] += 1;
      }
    }
  }
  std::vector<SuspectScore> scores;
  if (failed_cases == 0) {
    return scores;
  }
  for (int kind = 0; kind < kOpKindCount; ++kind) {
    SuspectScore score;
    score.op = static_cast<OpKind>(kind);
    score.failed_usage =
        static_cast<double>(used_in_failed[kind]) / static_cast<double>(failed_cases);
    score.passed_usage =
        passed_cases == 0 ? 0.0
                          : static_cast<double>(used_in_passed[kind]) /
                                static_cast<double>(passed_cases);
    // High when every failing case uses the op and passing cases mostly do not.
    score.score = score.failed_usage * (1.0 - score.passed_usage);
    if (score.failed_usage > 0.0) {
      scores.push_back(score);
    }
  }
  std::sort(scores.begin(), scores.end(),
            [](const SuspectScore& a, const SuspectScore& b) { return a.score > b.score; });
  return scores;
}

}  // namespace sdc
