#include "src/analysis/bitflip.h"

#include <cmath>

namespace sdc {

double BitflipStats::ZeroToOneFraction() const {
  if (total_flips == 0) {
    return 0.0;
  }
  uint64_t up = 0;
  for (uint64_t count : zero_to_one) {
    up += count;
  }
  return static_cast<double>(up) / static_cast<double>(total_flips);
}

double BitflipStats::FractionAt(int bit, bool zero_to_one_direction) const {
  if (total_flips == 0) {
    return 0.0;
  }
  const auto& counts = zero_to_one_direction ? zero_to_one : one_to_zero;
  return static_cast<double>(counts[bit]) / static_cast<double>(total_flips);
}

double BitflipStats::FractionPartShare() const {
  if (!IsFloatingPoint(type) || total_flips == 0) {
    return 0.0;
  }
  const int fraction_bits = FractionBits(type);
  uint64_t in_fraction = 0;
  for (int bit = 0; bit < fraction_bits; ++bit) {
    in_fraction += zero_to_one[bit] + one_to_zero[bit];
  }
  return static_cast<double>(in_fraction) / static_cast<double>(total_flips);
}

BitflipStats AnalyzeBitflips(const std::vector<SdcRecord>& records, DataType type) {
  BitflipStats stats;
  stats.type = type;
  const int width = BitWidth(type);
  stats.zero_to_one.assign(static_cast<size_t>(width), 0);
  stats.one_to_zero.assign(static_cast<size_t>(width), 0);
  for (const SdcRecord& record : records) {
    if (record.sdc_type != SdcType::kComputation || record.type != type) {
      continue;
    }
    ++stats.record_count;
    const Word128 mask = record.FlipMask();
    for (int bit = 0; bit < width; ++bit) {
      if (!mask.GetBit(bit)) {
        continue;
      }
      ++stats.total_flips;
      if (record.expected.GetBit(bit)) {
        ++stats.one_to_zero[bit];
      } else {
        ++stats.zero_to_one[bit];
      }
    }
  }
  return stats;
}

std::vector<double> PrecisionLosses(const std::vector<SdcRecord>& records, DataType type) {
  std::vector<double> losses;
  for (const SdcRecord& record : records) {
    if (record.sdc_type != SdcType::kComputation || record.type != type) {
      continue;
    }
    const double loss = RelativePrecisionLoss(type, record.expected, record.actual);
    if (std::isfinite(loss)) {
      losses.push_back(loss);
    }
  }
  return losses;
}

std::vector<double> FlipCountDistribution(const std::vector<SdcRecord>& records,
                                          DataType type) {
  uint64_t counts[3] = {0, 0, 0};
  uint64_t total = 0;
  for (const SdcRecord& record : records) {
    if (record.sdc_type != SdcType::kComputation || record.type != type) {
      continue;
    }
    const int flips = record.FlipMask().Popcount();
    if (flips <= 0) {
      continue;
    }
    ++total;
    if (flips == 1) {
      ++counts[0];
    } else if (flips == 2) {
      ++counts[1];
    } else {
      ++counts[2];
    }
  }
  std::vector<double> distribution(3, 0.0);
  if (total > 0) {
    for (int i = 0; i < 3; ++i) {
      distribution[i] = static_cast<double>(counts[i]) / static_cast<double>(total);
    }
  }
  return distribution;
}

}  // namespace sdc
