// Prediction-based SDC detection (Section 6.2, "Prediction").
//
// HPC detectors in the paper's related work predict a plausible interval for each new value
// from recent history and assert a silent error when a value falls outside it. This is the
// standard running-statistics variant: an exponentially-weighted mean/variance per monitored
// stream, with a k-sigma acceptance band (plus a relative guard band for streams whose
// variance collapses).
//
// Observation 7's implication, which the obs12 bench quantifies: real floating-point SDCs
// mostly flip fraction bits, producing relative errors far inside any usable acceptance
// band, so range detectors catch integer-style large deviations but miss the dominant
// small-loss float corruption.

#ifndef SDC_SRC_TOLERANCE_RANGE_DETECTOR_H_
#define SDC_SRC_TOLERANCE_RANGE_DETECTOR_H_

#include <cstdint>

namespace sdc {

struct RangeDetectorConfig {
  double smoothing = 0.05;        // EW update weight for mean/variance
  double sigma_band = 4.0;        // accept mean +/- sigma_band * stddev
  double relative_guard = 0.02;   // also accept within +/-2% of the mean
  uint64_t warmup_samples = 32;   // no verdicts until this many samples are absorbed
};

class RangeDetector {
 public:
  explicit RangeDetector(RangeDetectorConfig config = RangeDetectorConfig());

  // Absorbs `value` and returns true when it is flagged as a suspected SDC. Flagged values
  // are NOT absorbed into the statistics (they would poison the predictor).
  bool ObserveAndCheck(double value);

  double mean() const { return mean_; }
  double stddev() const;
  uint64_t samples() const { return samples_; }
  uint64_t flagged() const { return flagged_; }

 private:
  bool InBand(double value) const;

  RangeDetectorConfig config_;
  double mean_ = 0.0;
  double variance_ = 0.0;
  uint64_t samples_ = 0;
  uint64_t flagged_ = 0;
};

}  // namespace sdc

#endif  // SDC_SRC_TOLERANCE_RANGE_DETECTOR_H_
