#include "src/tolerance/range_detector.h"

#include <cmath>

namespace sdc {

RangeDetector::RangeDetector(RangeDetectorConfig config) : config_(config) {}

double RangeDetector::stddev() const { return std::sqrt(variance_); }

bool RangeDetector::InBand(double value) const {
  const double band = config_.sigma_band * stddev();
  const double deviation = std::fabs(value - mean_);
  if (deviation <= band) {
    return true;
  }
  return deviation <= config_.relative_guard * std::fabs(mean_);
}

bool RangeDetector::ObserveAndCheck(double value) {
  if (samples_ < config_.warmup_samples) {
    // Warmup: absorb unconditionally.
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(samples_ + 1);
    variance_ += (delta * (value - mean_) - variance_) / static_cast<double>(samples_ + 1);
    ++samples_;
    return false;
  }
  if (!InBand(value)) {
    ++flagged_;
    return true;  // rejected values do not update the predictor
  }
  const double delta = value - mean_;
  mean_ += config_.smoothing * delta;
  variance_ = (1.0 - config_.smoothing) * (variance_ + config_.smoothing * delta * delta);
  ++samples_;
  return false;
}

}  // namespace sdc
