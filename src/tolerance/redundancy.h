// Redundant execution for SDC detection and tolerance (Section 6.2, "Redundancy").
//
// Dual modular redundancy (DMR) runs the same computation on two cores and flags any
// disagreement; triple modular redundancy (TMR) adds majority voting so single-core
// corruption is not just detected but corrected. Both are implemented over the simulated
// processor: the kernel is a function of (lcore) -> result bits, so each replica routes its
// operations through a different physical core and a defective core disagrees with healthy
// ones. The paper's verdict -- too costly for everything, right for a small set of critical
// computations -- is what the obs12 bench quantifies.

#ifndef SDC_SRC_TOLERANCE_REDUNDANCY_H_
#define SDC_SRC_TOLERANCE_REDUNDANCY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/bits.h"
#include "src/sim/processor.h"

namespace sdc {

// A replicable computation: given a logical core, produce the result's bit image. The
// callable must be deterministic in everything except injected corruption.
using ReplicatedKernel = std::function<Word128(int lcore)>;

struct DmrOutcome {
  bool mismatch = false;  // replicas disagreed: an SDC was caught (or one just happened)
  Word128 first;
  Word128 second;
};

struct TmrOutcome {
  // Voted result; nullopt when all three replicas disagree pairwise (uncorrectable).
  std::optional<Word128> voted;
  bool disagreement = false;  // at least one replica differed from the vote
  int dissenting_replica = -1;
};

class RedundantExecutor {
 public:
  // `lcores` are the logical cores replicas run on; must contain at least 2 (DMR) or
  // 3 (TMR) entries on distinct physical cores for the redundancy to be meaningful.
  RedundantExecutor(Processor* cpu, std::vector<int> lcores);

  // Runs the kernel on the first two cores and compares.
  DmrOutcome RunDmr(const ReplicatedKernel& kernel) const;

  // Runs the kernel on the first three cores and majority-votes.
  TmrOutcome RunTmr(const ReplicatedKernel& kernel) const;

  // Total ops executed across replicas divided by ops of a single run -- the overhead
  // factor (2.0 for DMR, 3.0 for TMR plus comparison costs).
  static double DmrCostFactor() { return 2.0; }
  static double TmrCostFactor() { return 3.0; }

 private:
  Processor* cpu_;
  std::vector<int> lcores_;
};

}  // namespace sdc

#endif  // SDC_SRC_TOLERANCE_REDUNDANCY_H_
