// Quantitative evaluation of fault-tolerance techniques against CPU SDCs (Observation 12).
//
// Each evaluator drives a concrete datapath against the defect model and counts how many
// injected corruptions the technique detects, corrects, or silently passes:
//  * checksum-after-compute: CRC protects data in flight, but a value corrupted *before*
//    encoding gets a matching checksum -- the checksum certifies corrupted data;
//  * SECDED ECC: corrects single flips, detects doubles, and mis-handles the multi-bit
//    flips real defects produce (Observation 8);
//  * DMR/TMR: catches computation SDCs whenever replicas land on cores that do not fail
//    identically, at 2-3x cost;
//  * range prediction: flags large numeric deviations, but Observation 7's fraction-part
//    flips sit deep inside any usable acceptance band.

#ifndef SDC_SRC_TOLERANCE_EVALUATION_H_
#define SDC_SRC_TOLERANCE_EVALUATION_H_

#include <cstdint>
#include <string>

#include "src/fault/defect.h"
#include "src/fault/machine.h"
#include "src/tolerance/range_detector.h"

namespace sdc {

struct TechniqueEvaluation {
  std::string technique;
  uint64_t trials = 0;
  uint64_t corruptions = 0;      // trials where an SDC actually struck
  uint64_t detected = 0;         // ...and the technique raised an alarm
  uint64_t corrected = 0;        // ...and the technique restored the right value
  uint64_t false_alarms = 0;     // alarms on clean trials
  double cost_factor = 1.0;      // execution overhead relative to the bare computation

  double DetectionRate() const {
    return corruptions == 0 ? 0.0
                            : static_cast<double>(detected) / static_cast<double>(corruptions);
  }
  uint64_t silent_escapes() const { return corruptions - detected; }
};

// A storage write path on a machine whose CPU corrupts checksum-input values: the writer
// computes a value through the (defective) core, then checksums the already-corrupted
// bytes; the reader's CRC check passes and the corruption sails through.
TechniqueEvaluation EvaluateChecksumAfterCompute(FaultyMachine& machine, int lcore,
                                                 uint64_t trials, uint64_t seed);

// SECDED words damaged with `defect`'s bitflip model (as if the corruption hit the stored
// word after encoding): counts corrected singles, detected doubles, and >2-bit escapes
// (miscorrections or clean-aliases).
TechniqueEvaluation EvaluateSecdedAgainstDefect(const Defect& defect, uint64_t trials,
                                                uint64_t seed);

// DMR and TMR of an arctangent kernel with one replica pinned to `defective_lcore` and the
// other(s) on `healthy_lcore(s)`.
TechniqueEvaluation EvaluateDmr(FaultyMachine& machine, int defective_lcore,
                                int healthy_lcore, uint64_t trials, uint64_t seed);
TechniqueEvaluation EvaluateTmr(FaultyMachine& machine, int defective_lcore,
                                int healthy_lcore_a, int healthy_lcore_b, uint64_t trials,
                                uint64_t seed);

// Selective redundancy (Section 6.2's closing question): only the vulnerable op kinds run
// twice (primary + shadow core). The workload mixes ~20% vulnerable arctangent ops with
// ~80% unguarded integer ops, so the measured cost factor sits near 1.2 instead of DMR's
// 2.0 while catching the vulnerable-feature corruptions.
TechniqueEvaluation EvaluateSelectiveGuard(FaultyMachine& machine, int primary_lcore,
                                           int shadow_lcore, uint64_t trials,
                                           uint64_t seed);

// Range-prediction detector fed a smooth stream computed through the defective core.
// `type` selects the stream: kFloat64 exercises fraction-flip corruption (mostly missed),
// kInt32 exercises integer corruption with large relative deviations (mostly caught).
TechniqueEvaluation EvaluateRangeDetector(FaultyMachine& machine, int lcore, DataType type,
                                          uint64_t trials, uint64_t seed,
                                          RangeDetectorConfig config = RangeDetectorConfig());

}  // namespace sdc

#endif  // SDC_SRC_TOLERANCE_EVALUATION_H_
