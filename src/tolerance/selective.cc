#include "src/tolerance/selective.h"

namespace sdc {

GuardedExecutor::GuardedExecutor(Processor* cpu, std::set<OpKind> guarded_ops,
                                 int primary_lcore, int shadow_lcore)
    : cpu_(cpu), guarded_ops_(std::move(guarded_ops)), primary_lcore_(primary_lcore),
      shadow_lcore_(shadow_lcore) {}

double GuardedExecutor::ExecuteF64(OpKind op, double golden) {
  ++total_;
  const double primary = cpu_->ExecuteF64(primary_lcore_, op, golden);
  if (!Guarded(op)) {
    return primary;
  }
  ++guarded_;
  const double shadow = cpu_->ExecuteF64(shadow_lcore_, op, golden);
  if (BitsOfDouble(primary) == BitsOfDouble(shadow)) {
    return primary;
  }
  ++alarms_;
  return shadow;
}

int32_t GuardedExecutor::ExecuteI32(OpKind op, int32_t golden) {
  ++total_;
  const int32_t primary = cpu_->ExecuteI32(primary_lcore_, op, golden);
  if (!Guarded(op)) {
    return primary;
  }
  ++guarded_;
  const int32_t shadow = cpu_->ExecuteI32(shadow_lcore_, op, golden);
  if (primary == shadow) {
    return primary;
  }
  ++alarms_;
  return shadow;
}

uint64_t GuardedExecutor::ExecuteRaw(OpKind op, uint64_t golden, DataType type) {
  ++total_;
  const uint64_t primary = cpu_->ExecuteRaw(primary_lcore_, op, golden, type);
  if (!Guarded(op)) {
    return primary;
  }
  ++guarded_;
  const uint64_t shadow = cpu_->ExecuteRaw(shadow_lcore_, op, golden, type);
  if (primary == shadow) {
    return primary;
  }
  ++alarms_;
  return shadow;
}

}  // namespace sdc
