// Selective redundancy targeting the vulnerable features (the paper's closing question in
// Section 6.2: "considering only a small number of features or instructions are vulnerable,
// can we design techniques targeting those vulnerable features?").
//
// GuardedExecutor wraps a processor's execute calls: operations whose kind belongs to the
// configured vulnerable set are executed twice -- on the primary core and on a shadow
// core -- and a disagreement raises an alarm before the value escapes. Everything else runs
// once. The cost is therefore 1 + (vulnerable share of the instruction mix) instead of
// full DMR's 2x, and Observation 5 says that share is small for most workloads.

#ifndef SDC_SRC_TOLERANCE_SELECTIVE_H_
#define SDC_SRC_TOLERANCE_SELECTIVE_H_

#include <cstdint>
#include <set>

#include "src/sim/processor.h"

namespace sdc {

class GuardedExecutor {
 public:
  // Vulnerable `guarded_ops` run on both `primary_lcore` and `shadow_lcore` (which must
  // map to a different physical core for the guard to be meaningful).
  GuardedExecutor(Processor* cpu, std::set<OpKind> guarded_ops, int primary_lcore,
                  int shadow_lcore);

  // Execute with guarding: returns the primary result; a shadow disagreement increments
  // alarms() and, when the shadow is trusted (healthy-by-construction deployments pin it
  // to a verified core), the shadow value is returned instead.
  double ExecuteF64(OpKind op, double golden);
  int32_t ExecuteI32(OpKind op, int32_t golden);
  uint64_t ExecuteRaw(OpKind op, uint64_t golden, DataType type);

  uint64_t alarms() const { return alarms_; }
  uint64_t guarded_executions() const { return guarded_; }
  uint64_t total_executions() const { return total_; }

  // Measured overhead: extra executions / total executions (1.0 would be full DMR).
  double OverheadShare() const {
    return total_ == 0 ? 0.0 : static_cast<double>(guarded_) / static_cast<double>(total_);
  }

 private:
  bool Guarded(OpKind op) const { return guarded_ops_.count(op) > 0; }

  Processor* cpu_;
  std::set<OpKind> guarded_ops_;
  int primary_lcore_;
  int shadow_lcore_;
  uint64_t alarms_ = 0;
  uint64_t guarded_ = 0;
  uint64_t total_ = 0;
};

}  // namespace sdc

#endif  // SDC_SRC_TOLERANCE_SELECTIVE_H_
