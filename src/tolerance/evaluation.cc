#include "src/tolerance/evaluation.h"

#include <cmath>
#include <cstring>

#include "src/common/rng.h"
#include "src/integrity/crc32.h"
#include "src/integrity/ecc.h"
#include "src/tolerance/redundancy.h"
#include "src/tolerance/selective.h"

namespace sdc {
namespace {

// A smooth kernel whose output stream is friendly to range prediction: a slowly drifting
// arctangent evaluated through the simulated (possibly defective) core.
double SmoothF64Sample(Processor& cpu, int lcore, double phase) {
  const double golden = std::atan(1.0 + 0.05 * std::sin(phase)) * 100.0;
  return cpu.ExecuteF64(lcore, OpKind::kFpArctan, golden);
}

int32_t SmoothI32Sample(Processor& cpu, int lcore, double phase, Rng& rng) {
  const auto golden =
      static_cast<int32_t>(1000.0 + 50.0 * std::sin(phase) + rng.NextDouble() * 4.0);
  return cpu.ExecuteI32(lcore, OpKind::kIntMul, golden);
}

}  // namespace

TechniqueEvaluation EvaluateChecksumAfterCompute(FaultyMachine& machine, int lcore,
                                                 uint64_t trials, uint64_t seed) {
  TechniqueEvaluation evaluation;
  evaluation.technique = "checksum-after-compute";
  evaluation.trials = trials;
  evaluation.cost_factor = 1.05;  // CRC over 8 bytes is negligible next to the compute
  Processor& cpu = machine.cpu();
  cpu.SetTimeScale(1e6);
  Rng rng(seed);
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const double x = rng.NextDouble() * 4.0 - 2.0;
    const double golden = std::atan(x);
    // Writer: compute through the (defective) core, then checksum the result bytes.
    const double computed = cpu.ExecuteF64(lcore, OpKind::kFpArctan, golden);
    uint8_t bytes[sizeof(double)];
    std::memcpy(bytes, &computed, sizeof(bytes));
    const uint32_t stored_crc = Crc32(bytes);
    // Reader: verify CRC over the stored bytes.
    double read_back = 0.0;
    std::memcpy(&read_back, bytes, sizeof(read_back));
    uint8_t read_bytes[sizeof(double)];
    std::memcpy(read_bytes, &read_back, sizeof(read_bytes));
    const bool crc_alarm = Crc32(read_bytes) != stored_crc;
    const bool corrupted = computed != golden;
    evaluation.corruptions += corrupted ? 1 : 0;
    if (crc_alarm) {
      (corrupted ? evaluation.detected : evaluation.false_alarms) += 1;
    }
    cpu.AdvanceSeconds(1e-3);
  }
  return evaluation;
}

TechniqueEvaluation EvaluateSecdedAgainstDefect(const Defect& defect, uint64_t trials,
                                                uint64_t seed) {
  TechniqueEvaluation evaluation;
  evaluation.technique = "SECDED ECC";
  evaluation.trials = trials;
  evaluation.cost_factor = 1.125;  // 8 check bits per 64 data bits
  Rng rng(seed);
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const uint64_t golden = rng.Next();
    EccWord word = EccEncode(golden);
    // Corruption strikes the stored data bits with the defect's damage model.
    const Word128 damaged =
        defect.Corrupt(BitsOfRaw(word.data, 64), DataType::kBin64, rng);
    word.data = RawFromBits(damaged);
    ++evaluation.corruptions;
    const EccDecodeResult decoded = EccDecode(word);
    switch (decoded.status) {
      case EccStatus::kCorrected:
        if (decoded.data == golden) {
          ++evaluation.detected;
          ++evaluation.corrected;
        }
        // A >2-bit flip "corrected" to a wrong value is a silent escape: the consumer gets
        // bad data with a clean status.
        break;
      case EccStatus::kDoubleDetected:
        ++evaluation.detected;
        break;
      case EccStatus::kClean:
        break;  // aliased to a valid codeword: silent
    }
  }
  return evaluation;
}

namespace {

TechniqueEvaluation EvaluateRedundancy(FaultyMachine& machine, std::vector<int> lcores,
                                       bool tmr, uint64_t trials, uint64_t seed) {
  TechniqueEvaluation evaluation;
  evaluation.technique = tmr ? "TMR (vote)" : "DMR (compare)";
  evaluation.trials = trials;
  evaluation.cost_factor = tmr ? RedundantExecutor::TmrCostFactor()
                               : RedundantExecutor::DmrCostFactor();
  Processor& cpu = machine.cpu();
  cpu.SetTimeScale(1e6);
  RedundantExecutor executor(&cpu, lcores);
  Rng rng(seed);
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const double x = rng.NextDouble() * 4.0 - 2.0;
    const double golden = std::atan(x);
    const Word128 golden_bits = BitsOfDouble(golden);
    ReplicatedKernel kernel = [&](int lcore) {
      return BitsOfDouble(cpu.ExecuteF64(lcore, OpKind::kFpArctan, golden));
    };
    if (tmr) {
      const TmrOutcome outcome = executor.RunTmr(kernel);
      const bool corrupted = outcome.disagreement ||
                             (outcome.voted.has_value() && !(*outcome.voted == golden_bits));
      evaluation.corruptions += corrupted ? 1 : 0;
      if (corrupted && outcome.disagreement) {
        ++evaluation.detected;
        if (outcome.voted.has_value() && *outcome.voted == golden_bits) {
          ++evaluation.corrected;
        }
      }
    } else {
      const DmrOutcome outcome = executor.RunDmr(kernel);
      const bool corrupted =
          !(outcome.first == golden_bits) || !(outcome.second == golden_bits);
      evaluation.corruptions += corrupted ? 1 : 0;
      if (outcome.mismatch && corrupted) {
        ++evaluation.detected;
      }
    }
    cpu.AdvanceSeconds(1e-3);
  }
  return evaluation;
}

}  // namespace

TechniqueEvaluation EvaluateDmr(FaultyMachine& machine, int defective_lcore,
                                int healthy_lcore, uint64_t trials, uint64_t seed) {
  return EvaluateRedundancy(machine, {defective_lcore, healthy_lcore}, false, trials, seed);
}

TechniqueEvaluation EvaluateTmr(FaultyMachine& machine, int defective_lcore,
                                int healthy_lcore_a, int healthy_lcore_b, uint64_t trials,
                                uint64_t seed) {
  return EvaluateRedundancy(machine, {defective_lcore, healthy_lcore_a, healthy_lcore_b},
                            true, trials, seed);
}

TechniqueEvaluation EvaluateSelectiveGuard(FaultyMachine& machine, int primary_lcore,
                                           int shadow_lcore, uint64_t trials,
                                           uint64_t seed) {
  TechniqueEvaluation evaluation;
  evaluation.technique = "selective DMR (vulnerable ops)";
  evaluation.trials = trials;
  Processor& cpu = machine.cpu();
  cpu.SetTimeScale(1e6);
  GuardedExecutor guard(&cpu, {OpKind::kFpArctan}, primary_lcore, shadow_lcore);
  Rng rng(seed);
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const uint64_t alarms_before = guard.alarms();
    bool corrupted = false;
    if (rng.NextBernoulli(0.2)) {
      // The vulnerable 20%: arctangent through the guarded path.
      const double golden = std::atan(rng.NextDouble() * 4.0 - 2.0);
      const double value = guard.ExecuteF64(OpKind::kFpArctan, golden);
      corrupted = value != golden || guard.alarms() > alarms_before;
    } else {
      // The unguarded 80%: integer adds the defect does not touch.
      const auto golden = static_cast<int32_t>(rng.NextInRange(-100000, 100000));
      const int32_t value = guard.ExecuteI32(OpKind::kIntAdd, golden);
      corrupted = value != golden;
    }
    evaluation.corruptions += corrupted ? 1 : 0;
    if (guard.alarms() > alarms_before) {
      ++evaluation.detected;
      ++evaluation.corrected;  // the trusted shadow value replaces the corrupted one
    }
    cpu.AdvanceSeconds(1e-3);
  }
  evaluation.cost_factor = 1.0 + guard.OverheadShare();
  return evaluation;
}

TechniqueEvaluation EvaluateRangeDetector(FaultyMachine& machine, int lcore, DataType type,
                                          uint64_t trials, uint64_t seed,
                                          RangeDetectorConfig config) {
  TechniqueEvaluation evaluation;
  evaluation.technique =
      std::string("range prediction (") + DataTypeName(type) + ")";
  evaluation.trials = trials;
  evaluation.cost_factor = 1.01;  // two EW updates per value
  Processor& cpu = machine.cpu();
  cpu.SetTimeScale(1e6);
  RangeDetector detector(config);
  Rng rng(seed);
  double phase = 0.0;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    phase += 0.01;
    bool corrupted = false;
    double observed = 0.0;
    if (type == DataType::kFloat64) {
      const double golden = std::atan(1.0 + 0.05 * std::sin(phase)) * 100.0;
      observed = SmoothF64Sample(cpu, lcore, phase);
      corrupted = observed != golden;
    } else {
      Rng value_rng = rng.Fork(trial);
      Rng check_rng = value_rng;  // same stream: golden uses identical draws
      const auto golden = static_cast<int32_t>(
          1000.0 + 50.0 * std::sin(phase) + check_rng.NextDouble() * 4.0);
      const int32_t sample = SmoothI32Sample(cpu, lcore, phase, value_rng);
      observed = sample;
      corrupted = sample != golden;
    }
    const bool flagged = detector.ObserveAndCheck(observed);
    evaluation.corruptions += corrupted ? 1 : 0;
    if (flagged) {
      (corrupted ? evaluation.detected : evaluation.false_alarms) += 1;
    }
    cpu.AdvanceSeconds(1e-3);
  }
  return evaluation;
}

}  // namespace sdc
