#include "src/tolerance/redundancy.h"

#include <cstdlib>

namespace sdc {

RedundantExecutor::RedundantExecutor(Processor* cpu, std::vector<int> lcores)
    : cpu_(cpu), lcores_(std::move(lcores)) {
  if (lcores_.size() < 2) {
    std::abort();  // redundancy needs at least two replicas
  }
}

DmrOutcome RedundantExecutor::RunDmr(const ReplicatedKernel& kernel) const {
  DmrOutcome outcome;
  outcome.first = kernel(lcores_[0]);
  outcome.second = kernel(lcores_[1]);
  outcome.mismatch = !(outcome.first == outcome.second);
  return outcome;
}

TmrOutcome RedundantExecutor::RunTmr(const ReplicatedKernel& kernel) const {
  if (lcores_.size() < 3) {
    std::abort();  // TMR needs three replicas
  }
  TmrOutcome outcome;
  const Word128 a = kernel(lcores_[0]);
  const Word128 b = kernel(lcores_[1]);
  const Word128 c = kernel(lcores_[2]);
  if (a == b || a == c) {
    outcome.voted = a;
    outcome.dissenting_replica = a == b ? (a == c ? -1 : 2) : 1;
  } else if (b == c) {
    outcome.voted = b;
    outcome.dissenting_replica = 0;
  } else {
    outcome.voted = std::nullopt;  // three-way disagreement
  }
  outcome.disagreement = !(a == b && b == c);
  return outcome;
}

}  // namespace sdc
