#include "src/common/bits.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

namespace sdc {
namespace {

constexpr int kF80ExponentBias = 16383;
constexpr int kF80FractionBits = 63;  // explicit integer bit sits above these

}  // namespace

int BitWidth(DataType type) {
  switch (type) {
    case DataType::kInt16:
      return 16;
    case DataType::kInt32:
      return 32;
    case DataType::kUInt32:
      return 32;
    case DataType::kFloat32:
      return 32;
    case DataType::kFloat64:
      return 64;
    case DataType::kFloat80:
      return 80;
    case DataType::kBit:
      return 1;
    case DataType::kByte:
      return 8;
    case DataType::kBin16:
      return 16;
    case DataType::kBin32:
      return 32;
    case DataType::kBin64:
      return 64;
  }
  return 0;
}

bool IsFloatingPoint(DataType type) {
  return type == DataType::kFloat32 || type == DataType::kFloat64 || type == DataType::kFloat80;
}

bool IsNumeric(DataType type) {
  switch (type) {
    case DataType::kInt16:
    case DataType::kInt32:
    case DataType::kUInt32:
    case DataType::kFloat32:
    case DataType::kFloat64:
    case DataType::kFloat80:
      return true;
    default:
      return false;
  }
}

std::string DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt16:
      return "i16";
    case DataType::kInt32:
      return "i32";
    case DataType::kUInt32:
      return "ui32";
    case DataType::kFloat32:
      return "f32";
    case DataType::kFloat64:
      return "f64";
    case DataType::kFloat80:
      return "f64x";
    case DataType::kBit:
      return "bit";
    case DataType::kByte:
      return "byte";
    case DataType::kBin16:
      return "bin16";
    case DataType::kBin32:
      return "bin32";
    case DataType::kBin64:
      return "bin64";
  }
  return "?";
}

bool Word128::GetBit(int index) const {
  if (index < 64) {
    return (lo >> index) & 1u;
  }
  return (hi >> (index - 64)) & 1u;
}

void Word128::SetBit(int index, bool value) {
  uint64_t& word = index < 64 ? lo : hi;
  const int shift = index < 64 ? index : index - 64;
  if (value) {
    word |= (uint64_t{1} << shift);
  } else {
    word &= ~(uint64_t{1} << shift);
  }
}

void Word128::FlipBit(int index) {
  uint64_t& word = index < 64 ? lo : hi;
  const int shift = index < 64 ? index : index - 64;
  word ^= (uint64_t{1} << shift);
}

int Word128::Popcount() const { return std::popcount(lo) + std::popcount(hi); }

size_t Word128Hash::operator()(const Word128& w) const {
  uint64_t x = w.lo * 0x9e3779b97f4a7c15ull ^ (w.hi + 0xbf58476d1ce4e5b9ull);
  x ^= x >> 31;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 29;
  return static_cast<size_t>(x);
}

Word128 BitsOfInt16(int16_t value) { return {static_cast<uint16_t>(value), 0}; }

Word128 BitsOfInt32(int32_t value) { return {static_cast<uint32_t>(value), 0}; }

Word128 BitsOfUInt32(uint32_t value) { return {value, 0}; }

Word128 BitsOfFloat(float value) {
  uint32_t raw = 0;
  std::memcpy(&raw, &value, sizeof(raw));
  return {raw, 0};
}

Word128 BitsOfDouble(double value) {
  uint64_t raw = 0;
  std::memcpy(&raw, &value, sizeof(raw));
  return {raw, 0};
}

Word128 BitsOfFloat80(long double value) {
  Word128 out;
  const bool negative = std::signbit(value);
  long double magnitude = negative ? -value : value;
  uint16_t high16 = negative ? 0x8000u : 0u;
  if (magnitude == 0.0L) {
    out.hi = high16;
    return out;
  }
  if (std::isinf(magnitude) || std::isnan(magnitude)) {
    high16 = static_cast<uint16_t>(high16 | 0x7fffu);
    out.hi = high16;
    out.lo = std::isnan(magnitude) ? 0xc000000000000000ull : 0x8000000000000000ull;
    return out;
  }
  int exponent = 0;
  // frexpl: magnitude = m * 2^exponent with m in [0.5, 1). x87 wants mantissa in [1, 2).
  long double mantissa = std::frexp(magnitude, &exponent);
  mantissa *= 2.0L;
  exponent -= 1;
  int biased = exponent + kF80ExponentBias;
  if (biased <= 0) {
    // Denormal range: encode as signed zero (the simulation never generates these).
    out.hi = high16;
    return out;
  }
  if (biased >= 0x7fff) {
    out.hi = static_cast<uint64_t>(high16 | 0x7fffu);
    out.lo = 0x8000000000000000ull;
    return out;
  }
  // mantissa in [1, 2); scale to [2^63, 2^64). Exact when long double carries >= 64 mantissa
  // bits (x87); on other platforms this truncates, which only loses sub-representable detail.
  const long double scaled = std::floor(mantissa * 0x1.0p63L);
  out.lo = static_cast<uint64_t>(scaled);
  out.hi = static_cast<uint64_t>(high16 | static_cast<uint16_t>(biased));
  return out;
}

Word128 BitsOfRaw(uint64_t value, int width_bits) {
  const uint64_t mask =
      width_bits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width_bits) - 1);
  return {value & mask, 0};
}

int16_t Int16FromBits(const Word128& bits) { return static_cast<int16_t>(bits.lo & 0xffffu); }

int32_t Int32FromBits(const Word128& bits) {
  return static_cast<int32_t>(static_cast<uint32_t>(bits.lo));
}

uint32_t UInt32FromBits(const Word128& bits) { return static_cast<uint32_t>(bits.lo); }

float FloatFromBits(const Word128& bits) {
  const uint32_t raw = static_cast<uint32_t>(bits.lo);
  float value = 0.0f;
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

double DoubleFromBits(const Word128& bits) {
  double value = 0.0;
  std::memcpy(&value, &bits.lo, sizeof(value));
  return value;
}

long double Float80FromBits(const Word128& bits) {
  const uint16_t high16 = static_cast<uint16_t>(bits.hi & 0xffffu);
  const bool negative = (high16 & 0x8000u) != 0;
  const int biased = high16 & 0x7fffu;
  const uint64_t mantissa = bits.lo;
  long double magnitude = 0.0L;
  if (biased == 0x7fff) {
    magnitude = (mantissa << 1) == 0 ? std::numeric_limits<long double>::infinity()
                                     : std::numeric_limits<long double>::quiet_NaN();
  } else if (biased == 0 && mantissa == 0) {
    magnitude = 0.0L;
  } else {
    magnitude = std::ldexp(static_cast<long double>(mantissa),
                           biased - kF80ExponentBias - kF80FractionBits);
  }
  return negative ? -magnitude : magnitude;
}

uint64_t RawFromBits(const Word128& bits) { return bits.lo; }

int FractionBits(DataType type) {
  switch (type) {
    case DataType::kFloat32:
      return 23;
    case DataType::kFloat64:
      return 52;
    case DataType::kFloat80:
      return kF80FractionBits;
    default:
      return 0;
  }
}

int ExponentBits(DataType type) {
  switch (type) {
    case DataType::kFloat32:
      return 8;
    case DataType::kFloat64:
      return 11;
    case DataType::kFloat80:
      return 15;
    default:
      return 0;
  }
}

double RelativePrecisionLoss(DataType type, const Word128& expected, const Word128& actual) {
  long double expected_value = 0.0L;
  long double actual_value = 0.0L;
  switch (type) {
    case DataType::kInt16:
      expected_value = Int16FromBits(expected);
      actual_value = Int16FromBits(actual);
      break;
    case DataType::kInt32:
      expected_value = Int32FromBits(expected);
      actual_value = Int32FromBits(actual);
      break;
    case DataType::kUInt32:
      expected_value = UInt32FromBits(expected);
      actual_value = UInt32FromBits(actual);
      break;
    case DataType::kFloat32:
      expected_value = FloatFromBits(expected);
      actual_value = FloatFromBits(actual);
      break;
    case DataType::kFloat64:
      expected_value = DoubleFromBits(expected);
      actual_value = DoubleFromBits(actual);
      break;
    case DataType::kFloat80:
      expected_value = Float80FromBits(expected);
      actual_value = Float80FromBits(actual);
      break;
    default:
      return 0.0;
  }
  if (expected_value == actual_value) {
    return 0.0;
  }
  if (expected_value == 0.0L) {
    return std::numeric_limits<double>::infinity();
  }
  const long double loss = std::fabs((actual_value - expected_value) / expected_value);
  return static_cast<double>(loss);
}

}  // namespace sdc
