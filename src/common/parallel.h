// Deterministic data-parallel execution for the SDC library.
//
// ThreadPool is a fixed-size worker pool whose one primitive, ParallelFor, splits an index
// range into consecutive shards of a fixed grain and distributes the shards across the
// workers. The shard layout depends only on (begin, end, grain) -- never on the thread
// count -- so a pipeline that derives all randomness from per-shard Rng::Fork(shard) streams
// and merges per-shard results in shard order produces bit-identical output at any pool
// size. That contract (see docs/parallelism.md) is what lets fleet generation, screening,
// and the toolchain harness scale across cores without perturbing a single table or figure.
//
// Thread-count resolution: 0 means hardware concurrency, 1 means serial execution on the
// calling thread (no workers are spawned), and the SDC_THREADS environment variable
// overrides whatever the caller requested -- handy for benchmarking a binary at several
// widths without recompiling.

#ifndef SDC_SRC_COMMON_PARALLEL_H_
#define SDC_SRC_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace sdc {

// Number of hardware threads, at least 1.
int HardwareThreads();

// Maps a requested worker count to a concrete lane count without consulting the
// environment: 0 maps to HardwareThreads() and anything below 1 clamps to 1.
int ClampThreadCount(int requested);

// Resolves a requested worker count: SDC_THREADS (when set to a non-negative integer)
// replaces `requested`, then ClampThreadCount applies. Engine code calls this exactly
// once, at EngineContext construction (src/common/context.h); a campaign whose context
// already exists can never be re-sized by a later setenv.
int ResolveThreadCount(int requested);

// Already-resolved lane count for the ThreadPool constructor that must not re-read the
// environment. EngineContext resolves SDC_THREADS once and builds its pool through this
// form, which is what makes concurrent campaigns immune to mid-run environment changes.
struct ExactThreadCount {
  int value = 1;
};

class ThreadPool {
 public:
  using ShardFn = std::function<void(uint64_t shard, uint64_t begin, uint64_t end)>;
  // ShardFn plus the execution lane running the shard: lane 0 is the calling thread and
  // lanes 1..thread_count-1 are the workers. Which lane runs which shard is schedule
  // dependent, so lane may only index scratch storage (per-lane buffers), never influence
  // output values -- determinism still comes from the fixed shard layout and per-shard
  // RNG forks (docs/parallelism.md, docs/streaming.md).
  using LaneShardFn =
      std::function<void(int lane, uint64_t shard, uint64_t begin, uint64_t end)>;

  // A pool of `thread_count` execution lanes (resolved via ResolveThreadCount). The calling
  // thread participates in every ParallelFor, so N lanes spawn N-1 workers and a pool of
  // size 1 spawns none.
  explicit ThreadPool(int thread_count = 0);
  // Pool of exactly `resolved.value` lanes (clamped to >= 1); never reads SDC_THREADS.
  explicit ThreadPool(ExactThreadCount resolved);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return thread_count_; }

  // Number of shards ParallelFor produces for this range: ceil((end - begin) / grain).
  static uint64_t ShardCountFor(uint64_t begin, uint64_t end, uint64_t grain);

  // Invokes fn(shard, shard_begin, shard_end) for every shard of [begin, end), where shard
  // s covers [begin + s*grain, min(begin + (s+1)*grain, end)). Blocks until all shards ran.
  // The first exception thrown by fn is rethrown here after the remaining shards are
  // drained (skipped). fn must not call back into the same pool.
  void ParallelFor(uint64_t begin, uint64_t end, uint64_t grain, const ShardFn& fn);

  // ParallelFor variant that also hands fn the lane index, so streaming drivers can reuse
  // one heavyweight scratch buffer per lane across all the shards that lane happens to
  // claim (O(lanes * shard) memory instead of O(shards)). Same shard layout, same blocking
  // and exception semantics as ParallelFor.
  void ParallelStream(uint64_t begin, uint64_t end, uint64_t grain, const LaneShardFn& fn);

  // ParallelFor with one result slot per shard, returned in shard order. Result must be
  // default-constructible; fn(shard, begin, end) -> Result.
  template <typename Result, typename Fn>
  std::vector<Result> ParallelMap(uint64_t begin, uint64_t end, uint64_t grain, Fn&& fn) {
    std::vector<Result> results(ShardCountFor(begin, end, grain));
    ParallelFor(begin, end, grain, [&](uint64_t shard, uint64_t b, uint64_t e) {
      results[shard] = fn(shard, b, e);
    });
    return results;
  }

  // ParallelMap followed by an in-shard-order merge on the calling thread:
  // merge(accumulator, shard_result) is applied for shard 0, 1, 2, ...
  template <typename Result, typename Fn, typename Merge>
  Result ParallelReduce(uint64_t begin, uint64_t end, uint64_t grain, Result accumulator,
                        Fn&& fn, Merge&& merge) {
    std::vector<Result> results =
        ParallelMap<Result>(begin, end, grain, std::forward<Fn>(fn));
    for (Result& shard_result : results) {
      merge(accumulator, shard_result);
    }
    return accumulator;
  }

 private:
  void WorkerLoop(int lane);
  void DrainShards(int lane);

  int thread_count_;
  std::vector<std::thread> workers_;

  // Job publication protocol: the caller writes the job fields and bumps generation_ under
  // mutex_; a worker only enters DrainShards after observing the bump under the same lock
  // (registering in active_drainers_ during that hold), and ParallelFor only returns once
  // every shard finished and active_drainers_ is back to zero -- so job fields are never
  // overwritten while any worker can still read them.
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  bool stopping_ = false;
  uint64_t generation_ = 0;
  int active_drainers_ = 0;

  const LaneShardFn* job_fn_ = nullptr;
  uint64_t job_begin_ = 0;
  uint64_t job_end_ = 0;
  uint64_t job_grain_ = 1;
  uint64_t job_shards_ = 0;
  std::atomic<uint64_t> next_shard_{0};
  std::atomic<uint64_t> finished_shards_{0};
  std::atomic<bool> job_failed_{false};
  std::exception_ptr first_error_;
};

}  // namespace sdc

#endif  // SDC_SRC_COMMON_PARALLEL_H_
