#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

namespace sdc {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void TextTable::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << cell << std::string(widths[i] - std::min(widths[i], cell.size()) + 2, ' ');
    }
    out << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string FormatDouble(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string FormatPermyriad(double fraction, int decimals) {
  return FormatDouble(fraction * 1e4, decimals) + " permyriad";
}

std::string FormatPercent(double fraction, int decimals) {
  return FormatDouble(fraction * 100.0, decimals) + "%";
}

}  // namespace sdc
