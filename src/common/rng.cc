#include "src/common/rng.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace sdc {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t value) {
  uint64_t state = value;
  return SplitMix64(state);
}

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

void Rng::FillBlock(std::span<uint64_t> out) {
  // The state lives in locals for the loop so the compiler keeps it in registers; the
  // update is Next()'s, verbatim.
  uint64_t s0 = state_[0];
  uint64_t s1 = state_[1];
  uint64_t s2 = state_[2];
  uint64_t s3 = state_[3];
  for (uint64_t& value : out) {
    value = Rotl(s1 * 5, 7) * 9;
    const uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = Rotl(s3, 45);
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

void Rng::Skip(uint64_t count) {
  uint64_t s0 = state_[0];
  uint64_t s1 = state_[1];
  uint64_t s2 = state_[2];
  uint64_t s3 = state_[3];
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = Rotl(s3, 45);
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's multiply-shift. Bias is < bound / 2^64, irrelevant at our scales.
  const unsigned __int128 product = static_cast<unsigned __int128>(Next()) * bound;
  return static_cast<uint64_t>(product >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double rate) {
  // -log(1 - u) is in (0, inf); 1 - NextDouble() is in (0, 1].
  return -std::log(1.0 - NextDouble()) / rate;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::NextGaussian(double mean, double stddev) { return mean + stddev * NextGaussian(); }

uint64_t Rng::NextPoisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    const double v = NextGaussian(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(v));
  }
  const double limit = std::exp(-mean);
  uint64_t count = 0;
  double product = NextDouble();
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  // Empty weights short-circuit before any arithmetic: the zero total below would also
  // land here, but being explicit keeps the final clamp (`weights.size() - 1`) reachable
  // only for non-empty vectors -- it used to underflow to SIZE_MAX on an empty vector
  // whose (NaN-polluted) total escaped the `total <= 0` test.
  if (weights.empty()) {
    return 0;
  }
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  if (total <= 0.0) {
    return 0;
  }
  double pick = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t tag) const { return Rng(Mix64(seed_ ^ Mix64(tag))); }

namespace {

// Replays NextWeighted's arithmetic -- the same two roundings NextDouble() * total
// performs, then the same subtraction chain -- for the draw whose 53-bit mantissa is
// `u53`. Kept next to NextWeighted so the two can only diverge by an edit that touches
// both. Requires non-empty weights.
size_t WeightedChainIndex(uint64_t u53, std::span<const double> weights, double total) {
  double pick = static_cast<double>(u53) * 0x1.0p-53 * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

}  // namespace

uint64_t BernoulliThresholdU53(double p) {
  if (!(p > 0.0)) {
    return 0;
  }
  if (p >= 1.0) {
    return kU53End;
  }
  // Monotone predicate: static_cast<double>(u53) * 2^-53 is exact (u53 < 2^53), so
  // "NextDouble() < p" is true exactly on a prefix of u53 space. Find its end.
  uint64_t lo = 0;        // highest u53 known to satisfy the predicate, plus one
  uint64_t hi = kU53End;  // lowest u53 known to fail it (2^53 * 2^-53 == 1.0 >= p)
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (static_cast<double>(mid) * 0x1.0p-53 < p) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

WeightedCdf::WeightedCdf(std::span<const double> weights) : size_(weights.size()) {
  if (weights.empty()) {
    return;  // draws_ = false: NextWeighted returns 0 without drawing
  }
  double total = 0.0;
  bool finite = true;
  for (double w : weights) {
    finite = finite && std::isfinite(w);
    total += w;
  }
  if (!finite || !std::isfinite(total)) {
    // Non-finite weights poison the chain's comparisons (NaN compares false), so the
    // monotonicity the boundary search needs is gone. Keep the weights and run the real
    // chain per draw -- still bit-faithful, just not precomputed.
    exact_ = false;
    draws_ = !(total <= 0.0);  // NaN total: NextWeighted draws (its test is `<= 0`)
    weights_.assign(weights.begin(), weights.end());
    return;
  }
  if (total <= 0.0) {
    return;  // draws_ = false
  }
  draws_ = true;
  // For each index i, find the smallest u53 whose chain index exceeds i. The chain index
  // is nondecreasing in u53 (every step of the chain is monotone in pick), so each
  // boundary is a plain binary search, and they come out ascending by construction.
  bounds_.resize(size_ - 1);
  uint64_t lo = 0;
  for (size_t i = 0; i + 1 < size_; ++i) {
    uint64_t hi = kU53End;  // sentinel: above every possible draw
    while (lo < hi) {
      const uint64_t mid = lo + (hi - lo) / 2;
      if (WeightedChainIndex(mid, weights, total) > i) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    bounds_[i] = lo;  // == hi; next search resumes here (boundaries ascend)
  }
}

size_t WeightedCdf::Sample(Rng& rng) const {
  if (!draws_) {
    return 0;
  }
  if (!exact_) {
    return rng.NextWeighted(weights_);
  }
  return IndexOf(rng.Next());
}

size_t WeightedCdf::IndexOf(uint64_t raw) const {
  const uint64_t u53 = raw >> 11;
  // Small vectors (the 9-arch CDF, a defect's handful of patterns) beat binary search
  // with a branch-free linear count.
  if (bounds_.size() <= 16) {
    size_t index = 0;
    for (uint64_t bound : bounds_) {
      index += bound <= u53 ? 1 : 0;
    }
    return index;
  }
  return static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), u53) - bounds_.begin());
}

}  // namespace sdc
