#include "src/common/rng.h"

#include <cmath>
#include <cstddef>

namespace sdc {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t value) {
  uint64_t state = value;
  return SplitMix64(state);
}

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's multiply-shift. Bias is < bound / 2^64, irrelevant at our scales.
  const unsigned __int128 product = static_cast<unsigned __int128>(Next()) * bound;
  return static_cast<uint64_t>(product >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double rate) {
  // -log(1 - u) is in (0, inf); 1 - NextDouble() is in (0, 1].
  return -std::log(1.0 - NextDouble()) / rate;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::NextGaussian(double mean, double stddev) { return mean + stddev * NextGaussian(); }

uint64_t Rng::NextPoisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    const double v = NextGaussian(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(v));
  }
  const double limit = std::exp(-mean);
  uint64_t count = 0;
  double product = NextDouble();
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  if (total <= 0.0) {
    return 0;
  }
  double pick = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t tag) const { return Rng(Mix64(seed_ ^ Mix64(tag))); }

}  // namespace sdc
