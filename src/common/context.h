// Explicit execution context for the SDC engine (the "exorcise ambient state" refactor).
//
// Before this layer existed, every pipeline entry point rebuilt its execution environment
// from mutable process-wide state on each call: ThreadPool construction re-read
// SDC_THREADS, screening re-read SDC_SIMD, and metric/trace sinks were wired through
// attach-style globals. That is harmless for a one-shot CLI and a latent bug class for a
// long-lived service -- the moment two campaigns share a process, a setenv or an
// AttachMetrics aimed at one campaign silently bleeds into the other.
//
// EngineContext is the fix. It captures everything the engine needs to execute --
// worker lanes (an owned ThreadPool), the vector level for the screening clean path, and
// the optional telemetry sinks (MetricsRegistry, TraceRecorder, EventLog) -- and the
// environment (SDC_THREADS, SDC_SIMD) is consulted exactly once, inside the constructor.
// Every pipeline entry point takes a context (FleetPopulation::Generate,
// FleetShardStream::Drive, ScreeningPipeline::Run/RunBatch, TestFramework::RunPlan,
// Farron via FarronConfig::context); the legacy context-free overloads remain and simply
// construct a fresh context per call, so one-shot callers keep their exact behavior.
// After construction, no engine path reads an environment variable or any other mutable
// process-global -- the invariant the sdcd campaign daemon (docs/daemon.md) and the
// concurrent-campaign tests (tests/context_test.cc) are built on.
//
// Sink lifecycle: Attach*/Detach may be called at any time, from any thread, but engine
// passes PIN the attached sinks once when the pass starts and keep merging per-shard
// deltas into the pinned sink until the pass ends. Detaching between shards therefore
// never drops or double-merges a delta: the in-flight pass completes against the sink it
// started with, and only the NEXT pass observes the new attachment
// (tests/context_test.cc pins this by detaching mid-stream).
//
// Concurrency: one context serves one campaign at a time. Accessors and Attach* are
// thread-safe, but the pool must not be used by two concurrent passes -- campaigns that
// run concurrently each get their own context, which is exactly how sdcd isolates them.

#ifndef SDC_SRC_COMMON_CONTEXT_H_
#define SDC_SRC_COMMON_CONTEXT_H_

#include <mutex>

#include "src/common/parallel.h"
#include "src/common/simd.h"

namespace sdc {

class EventLog;
class MetricsRegistry;
class SeriesRecorder;
class TraceRecorder;

struct EngineOptions {
  // Worker lanes: 0 = hardware concurrency, 1 = serial on the calling thread.
  int threads = 0;
  // Vector level for the screening clean path; kAuto picks the best the host supports.
  SimdLevel simd = SimdLevel::kAuto;
  // Consult SDC_THREADS / SDC_SIMD (once, at construction). The sdcd daemon sets this
  // false so per-campaign lane budgets cannot be overridden by the daemon's environment.
  bool env_overrides = true;
  // Initial sink attachments; all optional (null = disabled) and re-attachable later.
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  EventLog* event_log = nullptr;
  SeriesRecorder* series = nullptr;
};

class EngineContext {
 public:
  explicit EngineContext(const EngineOptions& options = {});

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  // Resolved at construction; immutable for the context's lifetime.
  int threads() const { return threads_; }
  SimdLevel simd() const { return simd_; }
  ThreadPool& pool() { return pool_; }

  // Currently attached sinks (null = disabled). Engine passes call these once at pass
  // start and pin the result; see the header comment for the lifecycle contract.
  MetricsRegistry* metrics() const;
  TraceRecorder* trace() const;
  EventLog* event_log() const;
  SeriesRecorder* series() const;

  // Attach a sink (nullptr detaches); returns the previously attached sink. Thread-safe;
  // in-flight passes keep their pinned sink, the next pass observes the change.
  MetricsRegistry* AttachMetrics(MetricsRegistry* metrics);
  TraceRecorder* AttachTrace(TraceRecorder* trace);
  EventLog* AttachEventLog(EventLog* event_log);
  SeriesRecorder* AttachSeries(SeriesRecorder* series);

 private:
  int threads_;
  SimdLevel simd_;
  ThreadPool pool_;
  mutable std::mutex mutex_;
  MetricsRegistry* metrics_;
  TraceRecorder* trace_;
  EventLog* event_log_;
  SeriesRecorder* series_;
};

}  // namespace sdc

#endif  // SDC_SRC_COMMON_CONTEXT_H_
