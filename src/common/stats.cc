#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace sdc {

double Mean(const std::vector<double>& values) {
  double sum = 0.0;
  size_t finite = 0;
  for (double v : values) {
    if (std::isfinite(v)) {
      sum += v;
      ++finite;
    }
  }
  if (finite == 0) {
    return 0.0;
  }
  return sum / static_cast<double>(finite);
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) {
    sum += (v - mean) * (v - mean);
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) { return std::sqrt(Variance(values)); }

double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    return 0.0;
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

LinearFit FitLeastSquares(const std::vector<double>& xs, const std::vector<double>& ys) {
  LinearFit fit;
  if (xs.size() != ys.size() || xs.size() < 2) {
    return fit;
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  if (sxx <= 0.0) {
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r = PearsonCorrelation(xs, ys);
  return fit;
}

double Quantile(std::vector<double> values, double q) {
  // Non-finite samples would both break std::sort's strict weak ordering (NaN) and poison
  // the interpolation (inf * 0), so they are dropped up front.
  std::erase_if(values, [](double v) { return !std::isfinite(v); });
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(values.size() - 1);
  const size_t below = static_cast<size_t>(position);
  const size_t above = std::min(below + 1, values.size() - 1);
  const double fraction = position - static_cast<double>(below);
  return values[below] * (1.0 - fraction) + values[above] * fraction;
}

double FractionAtOrBelow(const std::vector<double>& values, double threshold) {
  if (values.empty()) {
    return 0.0;
  }
  size_t count = 0;
  for (double v : values) {
    if (v <= threshold) {
      ++count;
    }
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo),
      width_(bins == 0 ? 0.0 : (hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  // Degenerate ranges (hi <= lo, non-finite bounds) collapse to width 0: every sample then
  // lands in an edge bin instead of dividing by zero on each Add.
  if (!std::isfinite(width_) || width_ < 0.0) {
    width_ = 0.0;
  }
}

void Histogram::Add(double value) { AddN(value, 1); }

void Histogram::AddN(double value, uint64_t count) {
  if (counts_.empty()) {
    return;
  }
  size_t bin;
  if (std::isnan(value)) {
    bin = 0;  // deterministic edge bin for NaN samples
  } else if (width_ <= 0.0) {
    bin = value > lo_ ? counts_.size() - 1 : 0;  // degenerate width: split at lo
  } else {
    // position is +-inf for infinite samples; the range checks below clamp it to an edge
    // bin before the (otherwise UB) size_t cast.
    const double position = (value - lo_) / width_;
    if (position <= 0.0) {
      bin = 0;
    } else if (position >= static_cast<double>(counts_.size())) {
      bin = counts_.size() - 1;
    } else {
      bin = static_cast<size_t>(position);
    }
  }
  counts_[bin] += count;
  total_ += count;
}

bool Histogram::SameShape(const Histogram& other) const {
  return lo_ == other.lo_ && width_ == other.width_ &&
         counts_.size() == other.counts_.size();
}

void Histogram::MergeFrom(const Histogram& other) {
  if (!SameShape(other)) {
    return;  // shape mismatch: nothing sensible to add bin-by-bin
  }
  for (size_t bin = 0; bin < counts_.size(); ++bin) {
    counts_[bin] += other.counts_[bin];
  }
  total_ += other.total_;
}

double Histogram::Fraction(size_t bin) const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double Histogram::BinCenter(size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

}  // namespace sdc
