#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace sdc {

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) {
    sum += (v - mean) * (v - mean);
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) { return std::sqrt(Variance(values)); }

double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    return 0.0;
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

LinearFit FitLeastSquares(const std::vector<double>& xs, const std::vector<double>& ys) {
  LinearFit fit;
  if (xs.size() != ys.size() || xs.size() < 2) {
    return fit;
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  if (sxx <= 0.0) {
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r = PearsonCorrelation(xs, ys);
  return fit;
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(values.size() - 1);
  const size_t below = static_cast<size_t>(position);
  const size_t above = std::min(below + 1, values.size() - 1);
  const double fraction = position - static_cast<double>(below);
  return values[below] * (1.0 - fraction) + values[above] * fraction;
}

double FractionAtOrBelow(const std::vector<double>& values, double threshold) {
  if (values.empty()) {
    return 0.0;
  }
  size_t count = 0;
  for (double v : values) {
    if (v <= threshold) {
      ++count;
    }
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {}

void Histogram::Add(double value) { AddN(value, 1); }

void Histogram::AddN(double value, uint64_t count) {
  if (counts_.empty()) {
    return;
  }
  double position = (value - lo_) / width_;
  if (position < 0.0) {
    position = 0.0;
  }
  size_t bin = static_cast<size_t>(position);
  if (bin >= counts_.size()) {
    bin = counts_.size() - 1;
  }
  counts_[bin] += count;
  total_ += count;
}

double Histogram::Fraction(size_t bin) const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double Histogram::BinCenter(size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

}  // namespace sdc
