#include "src/common/parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace sdc {
namespace {

// strtol-family helpers need a NUL-terminated buffer and leave leading-whitespace /
// partial-consumption acceptance to the caller; centralize the strict policy here.
bool Preflight(std::string_view text, std::string& buffer) {
  if (text.empty() || std::isspace(static_cast<unsigned char>(text.front()))) {
    return false;
  }
  buffer.assign(text);
  return true;
}

}  // namespace

std::optional<int64_t> ParseInt64(std::string_view text) {
  std::string buffer;
  if (!Preflight(text, buffer)) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE || end != buffer.c_str() + buffer.size() || end == buffer.c_str()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(value);
}

std::optional<int> ParseInt(std::string_view text) {
  const std::optional<int64_t> value = ParseInt64(text);
  if (!value.has_value() || *value < std::numeric_limits<int>::min() ||
      *value > std::numeric_limits<int>::max()) {
    return std::nullopt;
  }
  return static_cast<int>(*value);
}

std::optional<uint64_t> ParseUint64(std::string_view text) {
  std::string buffer;
  if (!Preflight(text, buffer) || text.front() == '-') {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(buffer.c_str(), &end, 10);
  if (errno == ERANGE || end != buffer.c_str() + buffer.size() || end == buffer.c_str()) {
    return std::nullopt;
  }
  return static_cast<uint64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text) {
  std::string buffer;
  if (!Preflight(text, buffer)) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE || end != buffer.c_str() + buffer.size() || end == buffer.c_str() ||
      !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

}  // namespace sdc
