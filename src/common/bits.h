// Bit-level views of the operand datatypes studied in the paper (Section 4.2).
//
// SDC records compare an expected result with an actual result at the bit level. The paper
// covers integer types (i16, i32, ui32), IEEE-754 floats (f32, f64) plus x87 80-bit extended
// floats (f64x), and non-numerical payloads (bit, byte, bin16/32/64). All values are carried
// in a 128-bit container (`Word128`) so one analysis pipeline serves every type, including the
// 80-bit one.
//
// The 80-bit encoding is produced portably from `long double` with frexpl/ldexpl instead of
// relying on the x87 in-memory layout; the result matches the x87 format (sign, 15-bit biased
// exponent, explicit integer bit, 63 fraction bits) for normal values.

#ifndef SDC_SRC_COMMON_BITS_H_
#define SDC_SRC_COMMON_BITS_H_

#include <cstdint>
#include <string>

namespace sdc {

// Operand datatypes, matching Figure 3's x-axis.
enum class DataType {
  kInt16,
  kInt32,
  kUInt32,
  kFloat32,
  kFloat64,
  kFloat80,  // "float64x" in the paper: x87 extended double
  kBit,
  kByte,
  kBin16,
  kBin32,
  kBin64,
};

// Number of value bits in the representation of `type` (80 for kFloat80).
int BitWidth(DataType type);

// True for IEEE-style floating-point types (f32/f64/f80).
bool IsFloatingPoint(DataType type);

// True for types whose bit positions carry numeric significance (ints + floats). The paper
// calls the rest "non-numerical" (bit/byte/bin*), for which bitflips are position-uniform.
bool IsNumeric(DataType type);

// Short display name matching the paper's figures ("i32", "f64", "bin32", ...).
std::string DataTypeName(DataType type);

// 128-bit little-endian bit container. Bit 0 is the least significant bit of `lo`.
struct Word128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const Word128&, const Word128&) = default;

  Word128 operator^(const Word128& other) const { return {lo ^ other.lo, hi ^ other.hi}; }
  Word128 operator&(const Word128& other) const { return {lo & other.lo, hi & other.hi}; }
  Word128 operator|(const Word128& other) const { return {lo | other.lo, hi | other.hi}; }

  bool GetBit(int index) const;
  void SetBit(int index, bool value);
  void FlipBit(int index);
  int Popcount() const;
  bool IsZero() const { return lo == 0 && hi == 0; }
};

// Hash suitable for using masks as map keys.
struct Word128Hash {
  size_t operator()(const Word128& w) const;
};

// --- Conversions between native values and Word128 bit images. ---

Word128 BitsOfInt16(int16_t value);
Word128 BitsOfInt32(int32_t value);
Word128 BitsOfUInt32(uint32_t value);
Word128 BitsOfFloat(float value);
Word128 BitsOfDouble(double value);
// Encodes into the 80-bit x87 extended format (normal and zero values; infinities and NaNs
// are encoded as the maximum-exponent patterns).
Word128 BitsOfFloat80(long double value);
Word128 BitsOfRaw(uint64_t value, int width_bits);

int16_t Int16FromBits(const Word128& bits);
int32_t Int32FromBits(const Word128& bits);
uint32_t UInt32FromBits(const Word128& bits);
float FloatFromBits(const Word128& bits);
double DoubleFromBits(const Word128& bits);
long double Float80FromBits(const Word128& bits);
uint64_t RawFromBits(const Word128& bits);

// Index of the first fraction (mantissa) bit and the number of fraction bits for a floating
// type, in Word128 bit coordinates. For kFloat80 the explicit integer bit (bit 63) is NOT
// counted as fraction.
int FractionBits(DataType type);
int ExponentBits(DataType type);

// Relative precision loss |actual - expected| / |expected| evaluated in long double; returns
// +inf when expected == 0 and actual != 0, and 0 when both are equal. Only meaningful for
// numeric types.
double RelativePrecisionLoss(DataType type, const Word128& expected, const Word128& actual);

}  // namespace sdc

#endif  // SDC_SRC_COMMON_BITS_H_
