#include "src/common/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace sdc {

int HardwareThreads() {
  const unsigned count = std::thread::hardware_concurrency();
  return count == 0 ? 1 : static_cast<int>(count);
}

int ClampThreadCount(int requested) {
  if (requested == 0) {
    return HardwareThreads();
  }
  return std::max(requested, 1);
}

int ResolveThreadCount(int requested) {
  if (const char* env = std::getenv("SDC_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 0 && parsed <= 4096) {
      requested = static_cast<int>(parsed);
    }
  }
  return ClampThreadCount(requested);
}

uint64_t ThreadPool::ShardCountFor(uint64_t begin, uint64_t end, uint64_t grain) {
  if (end <= begin) {
    return 0;
  }
  const uint64_t span = end - begin;
  const uint64_t g = grain == 0 ? 1 : grain;
  return (span + g - 1) / g;
}

ThreadPool::ThreadPool(int thread_count)
    : ThreadPool(ExactThreadCount{ResolveThreadCount(thread_count)}) {}

ThreadPool::ThreadPool(ExactThreadCount resolved)
    : thread_count_(std::max(resolved.value, 1)) {
  workers_.reserve(static_cast<size_t>(thread_count_ - 1));
  for (int i = 1; i < thread_count_; ++i) {
    workers_.emplace_back([this, lane = i] { WorkerLoop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::DrainShards(int lane) {
  for (;;) {
    const uint64_t shard = next_shard_.fetch_add(1, std::memory_order_relaxed);
    if (shard >= job_shards_) {
      return;
    }
    if (!job_failed_.load(std::memory_order_acquire)) {
      const uint64_t shard_begin = job_begin_ + shard * job_grain_;
      const uint64_t shard_end = std::min(shard_begin + job_grain_, job_end_);
      try {
        (*job_fn_)(lane, shard, shard_begin, shard_end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) {
          first_error_ = std::current_exception();
        }
        job_failed_.store(true, std::memory_order_release);
      }
    }
    if (finished_shards_.fetch_add(1, std::memory_order_acq_rel) + 1 == job_shards_) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop(int lane) {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || generation_ != seen_generation; });
      if (stopping_) {
        return;
      }
      seen_generation = generation_;
      // Registering as a drainer under the lock pairs with ParallelFor's exit condition:
      // the caller cannot return (and the next job cannot overwrite the job fields) while
      // any worker is inside DrainShards.
      ++active_drainers_;
    }
    DrainShards(lane);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_drainers_;
    }
    done_.notify_all();
  }
}

void ThreadPool::ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                             const ShardFn& fn) {
  const LaneShardFn lane_fn = [&fn](int /*lane*/, uint64_t shard, uint64_t shard_begin,
                                    uint64_t shard_end) { fn(shard, shard_begin, shard_end); };
  ParallelStream(begin, end, grain, lane_fn);
}

void ThreadPool::ParallelStream(uint64_t begin, uint64_t end, uint64_t grain,
                                const LaneShardFn& fn) {
  const uint64_t g = grain == 0 ? 1 : grain;
  const uint64_t shards = ShardCountFor(begin, end, g);
  if (shards == 0) {
    return;
  }
  if (thread_count_ == 1 || shards == 1) {
    // Serial lane: same shard layout, same call order, no workers involved.
    for (uint64_t shard = 0; shard < shards; ++shard) {
      const uint64_t shard_begin = begin + shard * g;
      fn(0, shard, shard_begin, std::min(shard_begin + g, end));
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &fn;
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = g;
    job_shards_ = shards;
    finished_shards_.store(0, std::memory_order_relaxed);
    job_failed_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    next_shard_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  wake_.notify_all();

  DrainShards(0);

  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] {
    return finished_shards_.load(std::memory_order_acquire) == shards &&
           active_drainers_ == 0;
  });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace sdc
