#include "src/common/context.h"

namespace sdc {

EngineContext::EngineContext(const EngineOptions& options)
    : threads_(options.env_overrides ? ResolveThreadCount(options.threads)
                                     : ClampThreadCount(options.threads)),
      simd_(options.env_overrides ? ResolveSimdLevel(options.simd)
                                  : ClampSimdLevel(options.simd)),
      pool_(ExactThreadCount{threads_}),
      metrics_(options.metrics),
      trace_(options.trace),
      event_log_(options.event_log),
      series_(options.series) {}

MetricsRegistry* EngineContext::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_;
}

TraceRecorder* EngineContext::trace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trace_;
}

EventLog* EngineContext::event_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return event_log_;
}

SeriesRecorder* EngineContext::series() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_;
}

MetricsRegistry* EngineContext::AttachMetrics(MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsRegistry* previous = metrics_;
  metrics_ = metrics;
  return previous;
}

TraceRecorder* EngineContext::AttachTrace(TraceRecorder* trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceRecorder* previous = trace_;
  trace_ = trace;
  return previous;
}

EventLog* EngineContext::AttachEventLog(EventLog* event_log) {
  std::lock_guard<std::mutex> lock(mutex_);
  EventLog* previous = event_log_;
  event_log_ = event_log;
  return previous;
}

SeriesRecorder* EngineContext::AttachSeries(SeriesRecorder* series) {
  std::lock_guard<std::mutex> lock(mutex_);
  SeriesRecorder* previous = series_;
  series_ = series;
  return previous;
}

}  // namespace sdc
