// Checked numeric parsing for command-line operands and environment values. Unlike atoi /
// bare strtoull, these reject empty input, trailing garbage, overflow, and (for unsigned
// parses) negative numbers, returning nullopt instead of silently coercing to 0 -- a
// screening run over a "0-processor fleet" because of a typo is exactly the kind of silent
// corruption this repository is about.

#ifndef SDC_SRC_COMMON_PARSE_H_
#define SDC_SRC_COMMON_PARSE_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace sdc {

// Base-10 signed integer; rejects anything but an optional sign and digits.
std::optional<int64_t> ParseInt64(std::string_view text);

// ParseInt64 narrowed to int; rejects values outside int's range.
std::optional<int> ParseInt(std::string_view text);

// Base-10 unsigned integer; rejects a leading '-' (strtoull would wrap it).
std::optional<uint64_t> ParseUint64(std::string_view text);

// Finite floating-point value (strtod grammar, full consumption required).
std::optional<double> ParseDouble(std::string_view text);

}  // namespace sdc

#endif  // SDC_SRC_COMMON_PARSE_H_
