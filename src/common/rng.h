// Deterministic pseudo-random number generation for the SDC simulation.
//
// Every stochastic component in the library draws from an explicitly seeded Rng so that
// all experiments (tables, figures, tests) are reproducible bit-for-bit. The generator is
// xoshiro256** seeded through SplitMix64, following the reference implementations by
// Blackman and Vigna. We deliberately avoid <random> engines for speed and for a stable
// cross-platform stream (libstdc++ distributions are not portable across versions).

#ifndef SDC_SRC_COMMON_RNG_H_
#define SDC_SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sdc {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t& state);

// Mixes a 64-bit value into a well-distributed 64-bit hash (one SplitMix64 round).
uint64_t Mix64(uint64_t value);

// xoshiro256** generator with distribution helpers.
class Rng {
 public:
  // Seeds the four state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed);

  // Returns the next raw 64-bit output.
  uint64_t Next();

  // Fills `out` with out.size() consecutive raw outputs -- bit-for-bit the sequence that
  // many Next() calls would return, advancing the state identically. The Gaussian cache
  // is untouched (Next() never reads or writes it), which is what lets the blocked fleet
  // generator bulk-fill uniforms between faulty parts without perturbing a Box-Muller
  // partner cached by an earlier defect draw (docs/performance.md).
  void FillBlock(std::span<uint64_t> out);

  // Discards `count` raw outputs; equivalent to (but faster than) calling Next() that
  // many times. Used to replay a copied Rng forward to a known draw position.
  void Skip(uint64_t count);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound). `bound` must be positive. Uses rejection-free
  // multiply-shift (Lemire); bias is negligible for bound << 2^64.
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Exponential variate with the given rate (mean 1/rate). `rate` must be positive.
  double NextExponential(double rate);

  // Standard normal variate (Box-Muller, one value per call; the pair's partner is cached).
  double NextGaussian();

  // Normal variate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  // Poisson variate with the given mean. Uses Knuth's method for small means and a
  // normal approximation (rounded, clamped at zero) for means above 64.
  uint64_t NextPoisson(double mean);

  // Picks an index in [0, weights.size()) proportionally to non-negative `weights`.
  // Degenerate inputs are defined and draw-free: an empty vector or a non-positive total
  // returns 0 without consuming a draw (callers holding an empty vector must treat the 0
  // as "no choice", not an index). With a positive total exactly one draw is consumed,
  // and rounding at the top of the range clamps to the last index.
  size_t NextWeighted(const std::vector<double>& weights);

  // Creates an independent child stream; deterministic in (parent seed, tag). Reads only
  // the stored seed, so concurrent forks off one parent are safe and the parent's own
  // stream position is never perturbed.
  Rng Fork(uint64_t tag) const;

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
  uint64_t seed_;  // retained for Fork()
};

// The integer draw space of NextDouble: every uniform is (Next() >> 11) * 2^-53, so each
// draw is fully described by its 53-bit mantissa u53 = Next() >> 11 in [0, kU53End).
// kU53End itself is therefore a boundary value strictly above every possible draw.
inline constexpr uint64_t kU53End = uint64_t{1} << 53;

// Smallest u53 for which NextDouble() >= p, i.e. NextBernoulli(p) with p in (0, 1) is
// true exactly for draws with u53 < BernoulliThresholdU53(p). Found by binary search over
// the exact comparison NextBernoulli performs, so the threshold test is bit-equivalent to
// the floating-point one. Returns 0 for p <= 0 (never) and kU53End for p >= 1 (always) --
// but note NextBernoulli consumes no draw in those two regimes.
uint64_t BernoulliThresholdU53(double p);

// Precomputed form of Rng::NextWeighted for a fixed weight vector.
//
// NextWeighted re-sums its weights and walks a subtraction chain on every call. For hot
// paths that draw from the same weights millions of times (the fleet generator's arch
// pick, a defect's pattern choice), WeightedCdf finds the exact boundaries of that chain
// in u53 space once, by binary search over the chain itself -- not by re-deriving them
// with different floating-point arithmetic -- so Sample(rng) returns bit-for-bit the
// index NextWeighted(weights) would have, with identical draw consumption, for every
// possible Rng state. (The chain's index is a monotone step function of the draw, which
// is what makes the boundaries well defined.)
//
// Degenerate inputs follow NextWeighted exactly: empty weights or a non-positive total
// make Sample return 0 without consuming a draw; non-finite weights (whose comparisons
// defeat the monotonicity the search needs) fall back to running the chain per draw.
class WeightedCdf {
 public:
  WeightedCdf() = default;
  explicit WeightedCdf(std::span<const double> weights);

  size_t size() const { return size_; }
  // True when Sample consumes exactly one raw draw; false makes Sample return 0 and
  // leave the Rng untouched (empty weights or total <= 0, as in NextWeighted).
  bool draws() const { return draws_; }
  // True when the u53 boundaries are valid (all weights finite). The blocked fleet
  // generator requires exact() && draws() to classify bulk draws with IndexOf.
  bool exact() const { return exact_; }
  // Chain boundaries for indices 0..size-2, ascending: for a drawing, exact cdf,
  // IndexOf(raw) == number of boundaries <= (raw >> 11).
  std::span<const uint64_t> bounds_u53() const { return bounds_; }

  // Exactly NextWeighted(weights) on `rng`: same index, same draw consumption.
  size_t Sample(Rng& rng) const;

  // Classifies one raw Next() output. Requires exact() && draws().
  size_t IndexOf(uint64_t raw) const;

 private:
  std::vector<uint64_t> bounds_;
  std::vector<double> weights_;  // retained only for the non-finite fallback
  size_t size_ = 0;
  bool draws_ = false;
  bool exact_ = true;
};

}  // namespace sdc

#endif  // SDC_SRC_COMMON_RNG_H_
