// Deterministic pseudo-random number generation for the SDC simulation.
//
// Every stochastic component in the library draws from an explicitly seeded Rng so that
// all experiments (tables, figures, tests) are reproducible bit-for-bit. The generator is
// xoshiro256** seeded through SplitMix64, following the reference implementations by
// Blackman and Vigna. We deliberately avoid <random> engines for speed and for a stable
// cross-platform stream (libstdc++ distributions are not portable across versions).

#ifndef SDC_SRC_COMMON_RNG_H_
#define SDC_SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sdc {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t& state);

// Mixes a 64-bit value into a well-distributed 64-bit hash (one SplitMix64 round).
uint64_t Mix64(uint64_t value);

// xoshiro256** generator with distribution helpers.
class Rng {
 public:
  // Seeds the four state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed);

  // Returns the next raw 64-bit output.
  uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound). `bound` must be positive. Uses rejection-free
  // multiply-shift (Lemire); bias is negligible for bound << 2^64.
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Exponential variate with the given rate (mean 1/rate). `rate` must be positive.
  double NextExponential(double rate);

  // Standard normal variate (Box-Muller, one value per call; the pair's partner is cached).
  double NextGaussian();

  // Normal variate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  // Poisson variate with the given mean. Uses Knuth's method for small means and a
  // normal approximation (rounded, clamped at zero) for means above 64.
  uint64_t NextPoisson(double mean);

  // Picks an index in [0, weights.size()) proportionally to non-negative `weights`.
  // Returns 0 if all weights are zero. `weights` must be non-empty.
  size_t NextWeighted(const std::vector<double>& weights);

  // Creates an independent child stream; deterministic in (parent seed, tag). Reads only
  // the stored seed, so concurrent forks off one parent are safe and the parent's own
  // stream position is never perturbed.
  Rng Fork(uint64_t tag) const;

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
  uint64_t seed_;  // retained for Fork()
};

}  // namespace sdc

#endif  // SDC_SRC_COMMON_RNG_H_
