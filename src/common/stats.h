// Small statistics toolkit used by the analysis library and the experiment harnesses:
// summary statistics, Pearson correlation, ordinary least squares, histograms and CDFs.

#ifndef SDC_SRC_COMMON_STATS_H_
#define SDC_SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sdc {

// Mean of the finite entries of `values`; 0 when none are finite (or the input is empty).
double Mean(const std::vector<double>& values);

// Population variance; 0 for fewer than two samples.
double Variance(const std::vector<double>& values);

double StdDev(const std::vector<double>& values);

// Pearson correlation coefficient of paired samples. Returns 0 when either side is constant
// or the inputs are shorter than two pairs. Inputs must be the same length.
double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys);

// Ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r = 0.0;  // Pearson correlation of the fitted pairs

  double Predict(double x) const { return slope * x + intercept; }
};

// Fits `ys` against `xs`; returns a zero fit when the input is degenerate.
LinearFit FitLeastSquares(const std::vector<double>& xs, const std::vector<double>& ys);

// Linear interpolated quantile (q in [0, 1]) of an unsorted sample. Non-finite entries are
// ignored; 0 when no finite samples remain.
double Quantile(std::vector<double> values, double q);

// Fraction of samples <= threshold; this is the empirical CDF evaluated at `threshold`.
double FractionAtOrBelow(const std::vector<double>& values, double threshold);

// Fixed-width histogram over [lo, hi); samples outside the range are clamped to the edge
// bins. Degenerate construction is safe: bins == 0 accepts (and drops) samples without
// counting them, hi <= lo or non-finite bounds collapse to a zero-width histogram whose
// samples split between the edge bins at lo. Non-finite samples land deterministically on
// an edge bin (NaN and -inf on the first, +inf on the last) rather than invoking UB.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double value);
  void AddN(double value, uint64_t count);

  size_t bin_count() const { return counts_.size(); }
  uint64_t count(size_t bin) const { return counts_[bin]; }
  uint64_t total() const { return total_; }
  double lo() const { return lo_; }
  // Per-bin width; 0 for degenerate construction.
  double width() const { return width_; }
  // Fraction of all samples in `bin`; 0 when the histogram is empty.
  double Fraction(size_t bin) const;
  // Center x-value of `bin`.
  double BinCenter(size_t bin) const;

  // True when `other` has identical bounds and bin count, i.e. counts are addable.
  bool SameShape(const Histogram& other) const;
  // Adds `other`'s per-bin counts; no-op on shape mismatch.
  void MergeFrom(const Histogram& other);

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace sdc

#endif  // SDC_SRC_COMMON_STATS_H_
