#include "src/common/simd.h"

#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SDC_SIMD_X86 1
#endif

#if defined(__aarch64__) || defined(__ARM_NEON)
#include <arm_neon.h>
#define SDC_SIMD_NEON 1
#endif

namespace sdc {
namespace {

// Scalar reference: four interleaved sub-histograms keep the counter increments out of
// each other's store-to-load dependency chains (~4x over a naive scan) -- this is the
// former inline histogram of ScreenShardRange, now the fallback every vector path is
// checked against (tests/simd_test.cc).
void CountBytesScalar(const uint8_t* data, size_t size, int bucket_count,
                      uint64_t* counts) {
  uint64_t hist[4][256] = {};
  size_t i = 0;
  for (; i + 4 <= size; i += 4) {
    ++hist[0][data[i]];
    ++hist[1][data[i + 1]];
    ++hist[2][data[i + 2]];
    ++hist[3][data[i + 3]];
  }
  for (; i < size; ++i) {
    ++hist[0][data[i]];
  }
  for (int v = 0; v < bucket_count; ++v) {
    counts[v] += hist[0][v] + hist[1][v] + hist[2][v] + hist[3][v];
  }
}

// The vector paths count one bucket value per pass: compare-equal produces an all-ones
// (-1) lane per match, subtracting it accumulates matches in 8-bit lanes, and a horizontal
// sum widens to 64 bits before the 8-bit lanes can wrap (every <= 255 iterations). With
// bucket_count <= 16 the column stays L1-resident across the passes, so the extra passes
// cost far less than the scalar load-increment chain.

#if SDC_SIMD_X86 && !defined(SDC_FORCE_SCALAR)

uint64_t CountEqualSse2(const uint8_t* data, size_t size, uint8_t value) {
  const __m128i needle = _mm_set1_epi8(static_cast<char>(value));
  const __m128i zero = _mm_setzero_si128();
  __m128i wide = zero;
  size_t i = 0;
  while (i + 16 <= size) {
    __m128i acc = zero;
    for (int block = 0; block < 255 && i + 16 <= size; ++block, i += 16) {
      const __m128i chunk =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
      acc = _mm_sub_epi8(acc, _mm_cmpeq_epi8(chunk, needle));
    }
    wide = _mm_add_epi64(wide, _mm_sad_epu8(acc, zero));
  }
  uint64_t total = static_cast<uint64_t>(_mm_cvtsi128_si64(wide)) +
                   static_cast<uint64_t>(
                       _mm_cvtsi128_si64(_mm_unpackhi_epi64(wide, wide)));
  for (; i < size; ++i) {
    total += data[i] == value ? 1 : 0;
  }
  return total;
}

__attribute__((target("avx2"))) uint64_t CountEqualAvx2(const uint8_t* data, size_t size,
                                                        uint8_t value) {
  const __m256i needle = _mm256_set1_epi8(static_cast<char>(value));
  const __m256i zero = _mm256_setzero_si256();
  __m256i wide = zero;
  size_t i = 0;
  while (i + 32 <= size) {
    __m256i acc = zero;
    for (int block = 0; block < 255 && i + 32 <= size; ++block, i += 32) {
      const __m256i chunk =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
      acc = _mm256_sub_epi8(acc, _mm256_cmpeq_epi8(chunk, needle));
    }
    wide = _mm256_add_epi64(wide, _mm256_sad_epu8(acc, zero));
  }
  const __m128i halves = _mm_add_epi64(_mm256_castsi256_si128(wide),
                                       _mm256_extracti128_si256(wide, 1));
  uint64_t total = static_cast<uint64_t>(_mm_cvtsi128_si64(halves)) +
                   static_cast<uint64_t>(
                       _mm_cvtsi128_si64(_mm_unpackhi_epi64(halves, halves)));
  for (; i < size; ++i) {
    total += data[i] == value ? 1 : 0;
  }
  return total;
}

#endif  // SDC_SIMD_X86 && !SDC_FORCE_SCALAR

#if SDC_SIMD_NEON && !defined(SDC_FORCE_SCALAR)

uint64_t CountEqualNeon(const uint8_t* data, size_t size, uint8_t value) {
  const uint8x16_t needle = vdupq_n_u8(value);
  uint64_t total = 0;
  size_t i = 0;
  while (i + 16 <= size) {
    uint8x16_t acc = vdupq_n_u8(0);
    for (int block = 0; block < 255 && i + 16 <= size; ++block, i += 16) {
      acc = vsubq_u8(acc, vceqq_u8(vld1q_u8(data + i), needle));
    }
    total += vaddlvq_u8(acc);  // 16 lanes of <= 255 sum into 16 bits without wrapping
  }
  for (; i < size; ++i) {
    total += data[i] == value ? 1 : 0;
  }
  return total;
}

#endif  // SDC_SIMD_NEON && !SDC_FORCE_SCALAR

SimdLevel DetectBestLevel() {
#if defined(SDC_FORCE_SCALAR)
  return SimdLevel::kScalar;
#else
#if SDC_SIMD_X86
  if (__builtin_cpu_supports("avx2")) {
    return SimdLevel::kAVX2;
  }
  return SimdLevel::kSSE2;  // baseline on x86-64
#elif SDC_SIMD_NEON
  return SimdLevel::kNEON;
#else
  return SimdLevel::kScalar;
#endif
#endif
}

// True when this build can execute `level` on this host.
bool LevelSupported(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto:
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSSE2:
#if SDC_SIMD_X86 && !defined(SDC_FORCE_SCALAR)
      return true;
#else
      return false;
#endif
    case SimdLevel::kAVX2:
      return BestSupportedSimdLevel() == SimdLevel::kAVX2;
    case SimdLevel::kNEON:
#if SDC_SIMD_NEON && !defined(SDC_FORCE_SCALAR)
      return true;
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

std::string SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto:
      return "auto";
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSSE2:
      return "sse2";
    case SimdLevel::kAVX2:
      return "avx2";
    case SimdLevel::kNEON:
      return "neon";
  }
  return "?";
}

SimdLevel ParseSimdLevel(const std::string& name) {
  if (name == "scalar") {
    return SimdLevel::kScalar;
  }
  if (name == "sse2") {
    return SimdLevel::kSSE2;
  }
  if (name == "avx2") {
    return SimdLevel::kAVX2;
  }
  if (name == "neon") {
    return SimdLevel::kNEON;
  }
  return SimdLevel::kAuto;
}

SimdLevel BestSupportedSimdLevel() {
  static const SimdLevel best = DetectBestLevel();
  return best;
}

SimdLevel ClampSimdLevel(SimdLevel requested) {
  if (requested == SimdLevel::kAuto || !LevelSupported(requested)) {
    return BestSupportedSimdLevel();
  }
  return requested;
}

SimdLevel ResolveSimdLevel(SimdLevel requested) {
  // Environment override first (read per resolve, not cached: tests and CI toggle it),
  // then kAuto -> best, then clamp anything the host cannot run down to best.
  if (const char* env = std::getenv("SDC_SIMD")) {
    const SimdLevel parsed = ParseSimdLevel(env);
    if (parsed != SimdLevel::kAuto || std::string(env) == "auto") {
      requested = parsed;
    }
  }
  return ClampSimdLevel(requested);
}

void CountBytesByValue(const uint8_t* data, size_t size, int bucket_count,
                       uint64_t* counts, SimdLevel level) {
  if (size == 0 || bucket_count <= 0) {
    return;
  }
  // Last-line clamp so an unresolved request can never execute an unsupported
  // instruction; callers normally pass through ResolveSimdLevel (which also reads
  // SDC_SIMD) once per run.
  if (level == SimdLevel::kAuto || !LevelSupported(level)) {
    level = BestSupportedSimdLevel();
  }
  switch (level) {
#if SDC_SIMD_X86 && !defined(SDC_FORCE_SCALAR)
    case SimdLevel::kSSE2:
      for (int v = 0; v < bucket_count; ++v) {
        counts[v] += CountEqualSse2(data, size, static_cast<uint8_t>(v));
      }
      return;
    case SimdLevel::kAVX2:
      for (int v = 0; v < bucket_count; ++v) {
        counts[v] += CountEqualAvx2(data, size, static_cast<uint8_t>(v));
      }
      return;
#endif
#if SDC_SIMD_NEON && !defined(SDC_FORCE_SCALAR)
    case SimdLevel::kNEON:
      for (int v = 0; v < bucket_count; ++v) {
        counts[v] += CountEqualNeon(data, size, static_cast<uint8_t>(v));
      }
      return;
#endif
    default:
      CountBytesScalar(data, size, bucket_count, counts);
      return;
  }
}

}  // namespace sdc
