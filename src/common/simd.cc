#include "src/common/simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SDC_SIMD_X86 1
#endif

#if defined(__aarch64__) || defined(__ARM_NEON)
#include <arm_neon.h>
#define SDC_SIMD_NEON 1
#endif

namespace sdc {
namespace {

// Scalar reference: four interleaved sub-histograms keep the counter increments out of
// each other's store-to-load dependency chains (~4x over a naive scan) -- this is the
// former inline histogram of ScreenShardRange, now the fallback every vector path is
// checked against (tests/simd_test.cc).
void CountBytesScalar(const uint8_t* data, size_t size, int bucket_count,
                      uint64_t* counts) {
  uint64_t hist[4][256] = {};
  size_t i = 0;
  for (; i + 4 <= size; i += 4) {
    ++hist[0][data[i]];
    ++hist[1][data[i + 1]];
    ++hist[2][data[i + 2]];
    ++hist[3][data[i + 3]];
  }
  for (; i < size; ++i) {
    ++hist[0][data[i]];
  }
  for (int v = 0; v < bucket_count; ++v) {
    counts[v] += hist[0][v] + hist[1][v] + hist[2][v] + hist[3][v];
  }
}

// The vector paths count one bucket value per pass: compare-equal produces an all-ones
// (-1) lane per match, subtracting it accumulates matches in 8-bit lanes, and a horizontal
// sum widens to 64 bits before the 8-bit lanes can wrap (every <= 255 iterations). With
// bucket_count <= 16 the column stays L1-resident across the passes, so the extra passes
// cost far less than the scalar load-increment chain.

#if SDC_SIMD_X86 && !defined(SDC_FORCE_SCALAR)

uint64_t CountEqualSse2(const uint8_t* data, size_t size, uint8_t value) {
  const __m128i needle = _mm_set1_epi8(static_cast<char>(value));
  const __m128i zero = _mm_setzero_si128();
  __m128i wide = zero;
  size_t i = 0;
  while (i + 16 <= size) {
    __m128i acc = zero;
    for (int block = 0; block < 255 && i + 16 <= size; ++block, i += 16) {
      const __m128i chunk =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
      acc = _mm_sub_epi8(acc, _mm_cmpeq_epi8(chunk, needle));
    }
    wide = _mm_add_epi64(wide, _mm_sad_epu8(acc, zero));
  }
  uint64_t total = static_cast<uint64_t>(_mm_cvtsi128_si64(wide)) +
                   static_cast<uint64_t>(
                       _mm_cvtsi128_si64(_mm_unpackhi_epi64(wide, wide)));
  for (; i < size; ++i) {
    total += data[i] == value ? 1 : 0;
  }
  return total;
}

__attribute__((target("avx2"))) uint64_t CountEqualAvx2(const uint8_t* data, size_t size,
                                                        uint8_t value) {
  const __m256i needle = _mm256_set1_epi8(static_cast<char>(value));
  const __m256i zero = _mm256_setzero_si256();
  __m256i wide = zero;
  size_t i = 0;
  while (i + 32 <= size) {
    __m256i acc = zero;
    for (int block = 0; block < 255 && i + 32 <= size; ++block, i += 32) {
      const __m256i chunk =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
      acc = _mm256_sub_epi8(acc, _mm256_cmpeq_epi8(chunk, needle));
    }
    wide = _mm256_add_epi64(wide, _mm256_sad_epu8(acc, zero));
  }
  const __m128i halves = _mm_add_epi64(_mm256_castsi256_si128(wide),
                                       _mm256_extracti128_si256(wide, 1));
  uint64_t total = static_cast<uint64_t>(_mm_cvtsi128_si64(halves)) +
                   static_cast<uint64_t>(
                       _mm_cvtsi128_si64(_mm_unpackhi_epi64(halves, halves)));
  for (; i < size; ++i) {
    total += data[i] == value ? 1 : 0;
  }
  return total;
}

#endif  // SDC_SIMD_X86 && !SDC_FORCE_SCALAR

#if SDC_SIMD_NEON && !defined(SDC_FORCE_SCALAR)

uint64_t CountEqualNeon(const uint8_t* data, size_t size, uint8_t value) {
  const uint8x16_t needle = vdupq_n_u8(value);
  uint64_t total = 0;
  size_t i = 0;
  while (i + 16 <= size) {
    uint8x16_t acc = vdupq_n_u8(0);
    for (int block = 0; block < 255 && i + 16 <= size; ++block, i += 16) {
      acc = vsubq_u8(acc, vceqq_u8(vld1q_u8(data + i), needle));
    }
    total += vaddlvq_u8(acc);  // 16 lanes of <= 255 sum into 16 bits without wrapping
  }
  for (; i < size; ++i) {
    total += data[i] == value ? 1 : 0;
  }
  return total;
}

#endif  // SDC_SIMD_NEON && !SDC_FORCE_SCALAR

// Scalar reference for ClassifyDrawPairs, shared as the vector paths' tail handler:
// classifies pairs [begin, end), ORing faulty bits at their absolute positions (the
// caller zeroes the words). The CDF walk is a fixed-trip branch-free count, so the only
// data-dependent branch left is the rare faulty hit itself.
size_t ClassifyRangeScalar(const uint64_t* draws, size_t begin, size_t end,
                           const DrawClassifyTables& tables, uint8_t* class_out,
                           uint64_t* faulty_bits) {
  const int bounds = tables.class_count - 1;
  size_t faulty = 0;
  for (size_t i = begin; i < end; ++i) {
    const uint64_t a = draws[2 * i] >> 11;
    unsigned cls = 0;
    for (int j = 0; j < bounds; ++j) {
      cls += tables.cdf_bounds_u53[j] <= a ? 1u : 0u;
    }
    class_out[i] = static_cast<uint8_t>(cls);
    const uint64_t f = draws[2 * i + 1] >> 11;
    if (f < tables.fault_thresholds_u53[cls]) {
      faulty_bits[i >> 6] |= uint64_t{1} << (i & 63);
      ++faulty;
    }
  }
  return faulty;
}

#if SDC_SIMD_X86 && !defined(SDC_FORCE_SCALAR)

// Four pairs per iteration: deinterleave the (arch, fault) draw columns, shift both to
// u53 space, then one compare per CDF boundary both accumulates the class and selects
// that class's fault threshold (blend), so the gather the per-class threshold lookup
// would need never materializes. All values are < 2^54 with the sign bit clear, so the
// signed cmpgt is an unsigned compare here; ">= bound" is "cmpgt(bound - 1)", exact even
// for bound == 0 (a >= 0 always holds, and 0 - 1 wraps to -1, which cmpgt also always
// exceeds).
__attribute__((target("avx2"))) size_t ClassifyDrawPairsAvx2(
    const uint64_t* draws, size_t count, const DrawClassifyTables& tables,
    uint8_t* class_out, uint64_t* faulty_bits) {
  const int bounds = tables.class_count - 1;
  const __m128i pick_lane_bytes = _mm_setr_epi8(0, 8, -1, -1, -1, -1, -1, -1,
                                                -1, -1, -1, -1, -1, -1, -1, -1);
  size_t faulty = 0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(draws + 2 * i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(draws + 2 * i + 4));
    const __m256i lo = _mm256_unpacklo_epi64(v0, v1);  // a0 a2 a1 a3
    const __m256i hi = _mm256_unpackhi_epi64(v0, v1);  // f0 f2 f1 f3
    const __m256i a = _mm256_srli_epi64(
        _mm256_permute4x64_epi64(lo, _MM_SHUFFLE(3, 1, 2, 0)), 11);
    const __m256i f = _mm256_srli_epi64(
        _mm256_permute4x64_epi64(hi, _MM_SHUFFLE(3, 1, 2, 0)), 11);
    __m256i cls = _mm256_setzero_si256();
    __m256i th = _mm256_set1_epi64x(
        static_cast<long long>(tables.fault_thresholds_u53[0]));
    for (int j = 0; j < bounds; ++j) {
      const __m256i bound_m1 = _mm256_set1_epi64x(
          static_cast<long long>(tables.cdf_bounds_u53[j] - 1));
      const __m256i ge = _mm256_cmpgt_epi64(a, bound_m1);
      cls = _mm256_sub_epi64(cls, ge);
      const __m256i next_th = _mm256_set1_epi64x(
          static_cast<long long>(tables.fault_thresholds_u53[j + 1]));
      th = _mm256_blendv_epi8(th, next_th, ge);
    }
    const __m128i cls_lo = _mm_shuffle_epi8(_mm256_castsi256_si128(cls),
                                            pick_lane_bytes);
    const __m128i cls_hi = _mm_shuffle_epi8(_mm256_extracti128_si256(cls, 1),
                                            pick_lane_bytes);
    const uint32_t four_bytes =
        (static_cast<uint32_t>(_mm_cvtsi128_si32(cls_lo)) & 0xffffu) |
        (static_cast<uint32_t>(_mm_cvtsi128_si32(cls_hi)) << 16);
    std::memcpy(class_out + i, &four_bytes, 4);
    const __m256i fault_mask = _mm256_cmpgt_epi64(th, f);
    const unsigned mask4 = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(fault_mask)));
    // i is a multiple of 4, so the 4 bits never straddle a 64-bit word.
    faulty_bits[i >> 6] |= static_cast<uint64_t>(mask4) << (i & 63);
    faulty += static_cast<size_t>(__builtin_popcount(mask4));
  }
  return faulty + ClassifyRangeScalar(draws, i, count, tables, class_out, faulty_bits);
}

#endif  // SDC_SIMD_X86 && !SDC_FORCE_SCALAR

#if SDC_SIMD_NEON && !defined(SDC_FORCE_SCALAR)

size_t ClassifyDrawPairsNeon(const uint64_t* draws, size_t count,
                             const DrawClassifyTables& tables, uint8_t* class_out,
                             uint64_t* faulty_bits) {
  const int bounds = tables.class_count - 1;
  size_t faulty = 0;
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const uint64x2x2_t pair = vld2q_u64(draws + 2 * i);  // deinterleaving load
    const uint64x2_t a = vshrq_n_u64(pair.val[0], 11);
    const uint64x2_t f = vshrq_n_u64(pair.val[1], 11);
    uint64x2_t cls = vdupq_n_u64(0);
    uint64x2_t th = vdupq_n_u64(tables.fault_thresholds_u53[0]);
    for (int j = 0; j < bounds; ++j) {
      const uint64x2_t ge = vcgeq_u64(a, vdupq_n_u64(tables.cdf_bounds_u53[j]));
      cls = vsubq_u64(cls, ge);
      th = vbslq_u64(ge, vdupq_n_u64(tables.fault_thresholds_u53[j + 1]), th);
    }
    class_out[i] = static_cast<uint8_t>(vgetq_lane_u64(cls, 0));
    class_out[i + 1] = static_cast<uint8_t>(vgetq_lane_u64(cls, 1));
    const uint64x2_t fault_mask = vcltq_u64(f, th);
    const uint64_t bit0 = vgetq_lane_u64(fault_mask, 0) & 1;
    const uint64_t bit1 = vgetq_lane_u64(fault_mask, 1) & 1;
    // i is even, so the two bits never straddle a 64-bit word.
    faulty_bits[i >> 6] |= (bit0 | (bit1 << 1)) << (i & 63);
    faulty += static_cast<size_t>(bit0 + bit1);
  }
  return faulty + ClassifyRangeScalar(draws, i, count, tables, class_out, faulty_bits);
}

#endif  // SDC_SIMD_NEON && !SDC_FORCE_SCALAR

SimdLevel DetectBestLevel() {
#if defined(SDC_FORCE_SCALAR)
  return SimdLevel::kScalar;
#else
#if SDC_SIMD_X86
  if (__builtin_cpu_supports("avx2")) {
    return SimdLevel::kAVX2;
  }
  return SimdLevel::kSSE2;  // baseline on x86-64
#elif SDC_SIMD_NEON
  return SimdLevel::kNEON;
#else
  return SimdLevel::kScalar;
#endif
#endif
}

// True when this build can execute `level` on this host.
bool LevelSupported(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto:
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSSE2:
#if SDC_SIMD_X86 && !defined(SDC_FORCE_SCALAR)
      return true;
#else
      return false;
#endif
    case SimdLevel::kAVX2:
      return BestSupportedSimdLevel() == SimdLevel::kAVX2;
    case SimdLevel::kNEON:
#if SDC_SIMD_NEON && !defined(SDC_FORCE_SCALAR)
      return true;
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

std::string SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto:
      return "auto";
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSSE2:
      return "sse2";
    case SimdLevel::kAVX2:
      return "avx2";
    case SimdLevel::kNEON:
      return "neon";
  }
  return "?";
}

SimdLevel ParseSimdLevel(const std::string& name) {
  if (name == "scalar") {
    return SimdLevel::kScalar;
  }
  if (name == "sse2") {
    return SimdLevel::kSSE2;
  }
  if (name == "avx2") {
    return SimdLevel::kAVX2;
  }
  if (name == "neon") {
    return SimdLevel::kNEON;
  }
  return SimdLevel::kAuto;
}

SimdLevel BestSupportedSimdLevel() {
  static const SimdLevel best = DetectBestLevel();
  return best;
}

SimdLevel ClampSimdLevel(SimdLevel requested) {
  if (requested == SimdLevel::kAuto || !LevelSupported(requested)) {
    return BestSupportedSimdLevel();
  }
  return requested;
}

SimdLevel ResolveSimdLevel(SimdLevel requested) {
  // Environment override first (read per resolve, not cached: tests and CI toggle it),
  // then kAuto -> best, then clamp anything the host cannot run down to best.
  if (const char* env = std::getenv("SDC_SIMD")) {
    const SimdLevel parsed = ParseSimdLevel(env);
    if (parsed != SimdLevel::kAuto || std::string(env) == "auto") {
      requested = parsed;
    }
  }
  return ClampSimdLevel(requested);
}

void CountBytesByValue(const uint8_t* data, size_t size, int bucket_count,
                       uint64_t* counts, SimdLevel level) {
  if (size == 0 || bucket_count <= 0) {
    return;
  }
  // Last-line clamp so an unresolved request can never execute an unsupported
  // instruction; callers normally pass through ResolveSimdLevel (which also reads
  // SDC_SIMD) once per run.
  if (level == SimdLevel::kAuto || !LevelSupported(level)) {
    level = BestSupportedSimdLevel();
  }
  switch (level) {
#if SDC_SIMD_X86 && !defined(SDC_FORCE_SCALAR)
    case SimdLevel::kSSE2:
      for (int v = 0; v < bucket_count; ++v) {
        counts[v] += CountEqualSse2(data, size, static_cast<uint8_t>(v));
      }
      return;
    case SimdLevel::kAVX2:
      for (int v = 0; v < bucket_count; ++v) {
        counts[v] += CountEqualAvx2(data, size, static_cast<uint8_t>(v));
      }
      return;
#endif
#if SDC_SIMD_NEON && !defined(SDC_FORCE_SCALAR)
    case SimdLevel::kNEON:
      for (int v = 0; v < bucket_count; ++v) {
        counts[v] += CountEqualNeon(data, size, static_cast<uint8_t>(v));
      }
      return;
#endif
    default:
      CountBytesScalar(data, size, bucket_count, counts);
      return;
  }
}

size_t ClassifyDrawPairs(const uint64_t* draws, size_t count,
                         const DrawClassifyTables& tables, uint8_t* class_out,
                         uint64_t* faulty_bits, SimdLevel level) {
  if (count == 0) {
    return 0;
  }
  std::memset(faulty_bits, 0, ((count + 63) / 64) * sizeof(uint64_t));
  if (level == SimdLevel::kAuto || !LevelSupported(level)) {
    level = BestSupportedSimdLevel();
  }
  switch (level) {
#if SDC_SIMD_X86 && !defined(SDC_FORCE_SCALAR)
    case SimdLevel::kAVX2:
      return ClassifyDrawPairsAvx2(draws, count, tables, class_out, faulty_bits);
#endif
#if SDC_SIMD_NEON && !defined(SDC_FORCE_SCALAR)
    case SimdLevel::kNEON:
      return ClassifyDrawPairsNeon(draws, count, tables, class_out, faulty_bits);
#endif
    default:
      // SSE2 has no 64-bit vector compare; it shares the scalar path (still branch-free
      // in the CDF walk), keeping the "any level, same bits" contract trivially true.
      return ClassifyRangeScalar(draws, 0, count, tables, class_out, faulty_bits);
  }
}

}  // namespace sdc
