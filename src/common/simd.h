// Portable SIMD kernels for the packed-byte-column hot paths (docs/performance.md).
//
// The screening clean-path scan reduces to one primitive: count, for every value v below
// a small bound, how many bytes of a column equal v. CountBytesByValue implements that
// primitive with vector compare + accumulate (SSE2/AVX2 on x86-64, NEON on aarch64) and a
// scalar fallback; all implementations produce the same exact integer counts, so picking
// a level is purely a speed decision and never a behavior change -- the determinism
// contract of docs/parallelism.md is untouched by dispatch.
//
// Dispatch layers, strongest wins:
//   1. -DSDC_FORCE_SCALAR (CMake option SDC_FORCE_SCALAR) pins every call to the scalar
//      path at compile time -- the CI matrix leg that proves the fallback end-to-end.
//   2. The SDC_SIMD environment variable ("scalar", "sse2", "avx2", "neon", "auto")
//      overrides whatever the caller requested, clamped to what the host supports.
//   3. The caller's requested level (e.g. ScreeningConfig::simd), kAuto meaning "best
//      supported". Requests above the host's capability clamp down, never fault.

#ifndef SDC_SRC_COMMON_SIMD_H_
#define SDC_SRC_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace sdc {

enum class SimdLevel {
  kAuto = 0,  // resolve to the best supported level
  kScalar,
  kSSE2,
  kAVX2,
  kNEON,
};

// Display name ("auto", "scalar", "sse2", "avx2", "neon").
std::string SimdLevelName(SimdLevel level);

// Parses a SimdLevel name; returns kAuto for unrecognized text.
SimdLevel ParseSimdLevel(const std::string& name);

// Best level this binary can execute on this host (CPUID-checked on x86-64, detected
// once). kScalar when built with SDC_FORCE_SCALAR.
SimdLevel BestSupportedSimdLevel();

// Resolves a requested level against the host alone, without consulting the environment:
// kAuto and anything the host cannot execute map to BestSupportedSimdLevel(). Engine code
// running under an EngineContext (src/common/context.h) uses this form after the context
// resolved SDC_SIMD once at construction.
SimdLevel ClampSimdLevel(SimdLevel requested);

// Resolves a requested level against the environment and the host: SDC_SIMD (when set to
// a recognized name) replaces `requested`; ClampSimdLevel then applies.
SimdLevel ResolveSimdLevel(SimdLevel requested);

// counts[v] += number of bytes in [data, data + size) equal to v, for v in
// [0, bucket_count). Every byte must be < bucket_count (the screening columns guarantee
// arch bytes < kArchCount); bucket_count must be in [1, 256]. `level` kAuto resolves via
// ResolveSimdLevel; any level yields bit-identical counts. Alignment-agnostic: unaligned
// begins and tails shorter than the vector width take the scalar epilogue.
void CountBytesByValue(const uint8_t* data, size_t size, int bucket_count,
                       uint64_t* counts, SimdLevel level = SimdLevel::kAuto);

// Classification tables of the blocked fleet generator (docs/performance.md): the arch
// CDF boundaries and the per-arch faulty-prevalence thresholds, both in the integer draw
// space u53 = raw >> 11 of src/common/rng.h. Entries beyond the used prefix must be
// padded with kClassifyNever (a boundary above every possible draw) so the kernels can
// run fixed-trip-count loops over the full arrays.
inline constexpr int kMaxClassifyClasses = 16;
inline constexpr uint64_t kClassifyNever = uint64_t{1} << 53;

struct DrawClassifyTables {
  int class_count = 0;  // in [1, kMaxClassifyClasses]
  // cdf_bounds_u53[i] = smallest u53 classified above class i; class_count - 1 used.
  uint64_t cdf_bounds_u53[kMaxClassifyClasses - 1];
  // fault_thresholds_u53[c] = faulty iff the second draw's u53 < this; class_count used.
  uint64_t fault_thresholds_u53[kMaxClassifyClasses];
};

// Classifies `count` interleaved draw pairs: for each i, with a = draws[2i] >> 11 and
// f = draws[2i + 1] >> 11,
//   class_out[i]  = number of cdf_bounds_u53 entries <= a  (the branchless CDF walk);
//   bit i of faulty_bits = (f < fault_thresholds_u53[class_out[i]]).
// faulty_bits must hold (count + 63) / 64 words; the kernel zeroes them first. Returns
// the number of set faulty bits. All u53 values and table entries are < 2^54, which is
// what lets the vector paths use signed 64-bit compares. Like CountBytesByValue, every
// level yields bit-identical output; levels without a 64-bit vector compare (SSE2) take
// the scalar path, so dispatch is still never a behavior change.
size_t ClassifyDrawPairs(const uint64_t* draws, size_t count,
                         const DrawClassifyTables& tables, uint8_t* class_out,
                         uint64_t* faulty_bits, SimdLevel level = SimdLevel::kAuto);

}  // namespace sdc

#endif  // SDC_SRC_COMMON_SIMD_H_
