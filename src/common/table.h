// Plain-text table rendering for the experiment harnesses. Each bench binary prints rows in
// the same layout as the paper's tables/figures; this keeps that output aligned and uniform.

#ifndef SDC_SRC_COMMON_TABLE_H_
#define SDC_SRC_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace sdc {

// Column-aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  // Renders with a header underline; short rows are padded with empty cells.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats with the given number of decimals, e.g. FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double value, int decimals);

// Formats a fraction as basis-points-of-percent, the paper's "per ten thousand" unit:
// 3.61e-4 -> "3.610 permyriad".
std::string FormatPermyriad(double fraction, int decimals = 3);

// Formats a fraction as a percentage: 0.0488 -> "4.880%".
std::string FormatPercent(double fraction, int decimals = 3);

}  // namespace sdc

#endif  // SDC_SRC_COMMON_TABLE_H_
