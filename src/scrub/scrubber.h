// Fleet-wide budgeted scrubber (ROADMAP item 4; the deployment story of Section 7).
//
// Farron tests and protects one processor; production needs the fleet shape that "Silent
// Data Corruptions at Scale" (Dixit et al.) runs: a background scrubber that spends a
// bounded slice of fleet cycles -- e.g. 1% -- continuously re-testing live machines, and
// the interesting output is the tradeoff those cycles buy: time-to-detect distributions
// and coverage as a function of budget ("SDC by 10x Test Escapes").
//
// Pipeline. A screening pass over the synthetic fleet decides which faulty parts escape
// the pre-production stages (factory, datacenter, re-install); the scrubber then owns one
// ProtectionSession per escape -- a real FaultyMachine plus Farron -- and replaces the
// screen's modeled regular cadence with budgeted, prioritized in-production test rounds.
// Discovery runs either streaming (a ScrubDiscoveryObserver on the fused
// generate->screen pass, defect spans copied while the shard is alive) or materialized;
// both produce byte-identical candidates.
//
// Scheduler. Each sim-epoch dispenses a global budget of processor-seconds
// (budget_fraction * fleet_size * epoch_seconds) by score
// (ScrubSchedulerParams: arch weight x temperature factor x starvation-free aging).
// The scheduler cannot know who is faulty, so it ranks the whole fleet: tracked sessions
// compete individually, and the clean population is accounted as per-(arch, last-funded)
// buckets of interchangeable parts whose funded rounds consume budget without simulation.
// Funding is strict -- a grant never overdraws the remaining budget -- so total spend
// never exceeds the configured budget (docs/scrubbing.md).
//
// Determinism. Epoch planning is serial over deterministic state; funded sessions then
// execute concurrently on the context's ThreadPool (each session owns its machine, Farron
// and RNG stream, forked per-serial from the scrub seed; the TestSuite is built once and
// shared read-only) and their results fold back in funding order. The report is therefore
// byte-identical at any thread count and across streaming/materialized discovery
// (tests/scrub_test.cc pins 1/2/8 threads x both modes).

#ifndef SDC_SRC_SCRUB_SCRUBBER_H_
#define SDC_SRC_SCRUB_SCRUBBER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/farron/farron.h"
#include "src/farron/priorities.h"
#include "src/farron/protection.h"
#include "src/fault/defect.h"
#include "src/fleet/capacity.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stream.h"
#include "src/toolchain/registry.h"

namespace sdc {

class EngineContext;

// One faulty fleet part and its screening outcome -- the scrubber's working set. The
// defect list is copied out of the shard arena during discovery, so candidates outlive
// the stream pass.
struct ScrubCandidate {
  uint64_t serial = 0;
  int arch_index = 0;
  bool toolchain_detectable = true;
  bool pre_production_detected = false;  // caught at factory/datacenter/re-install
  // Month the screen's own regular cadence would have caught it; < 0 = never. Kept as
  // the comparison baseline for the scrubber's time-to-detect.
  double screen_regular_month = -1.0;
  std::vector<Defect> defects;
};

struct ScrubConfig {
  // The fleet and the pre-production screen that decides who escapes into production.
  PopulationConfig population;
  ScreeningConfig screening;
  // Run discovery on the fused streaming pass (ScrubDiscoveryObserver) instead of a
  // materialized fleet + Run. Candidates are byte-identical either way.
  bool stream_discovery = true;

  // Per-session Farron template. Telemetry sinks and context are ignored -- sessions run
  // sink-free on worker lanes; the scrubber aggregates and emits its own scrub.* delta.
  FarronConfig farron;
  WorkloadSpec workload;
  ScrubSchedulerParams scheduler;

  // Share of total fleet cycles the scrubber may spend on testing: each epoch dispenses
  // budget_fraction * fleet_size * epoch_seconds processor-seconds.
  double budget_fraction = 1e-5;
  double horizon_months = 12.0;
  double epoch_months = 1.0;
  // Funded rounds run this many plan entries as a rotating ripple window over the
  // prioritized plan (SessionOptions::max_cases_per_round); 0 = full plans.
  size_t max_cases_per_round = 48;
  // Simulated workload run per session at deployment: establishes the scheduler's
  // per-part peak-temperature signal and measures pre-detection SDC exposure. 0 skips
  // sampling (temperature factor stays neutral).
  double workload_sample_hours = 0.05;
  // Namespace for all per-session randomness: session serial S draws its workload stream
  // from Rng(seed).Fork(S) and its machine/test seeds from the same fork family.
  uint64_t seed = 4242;

  // Progress and cancellation hook: called once after discovery (epochs_done = 0) and
  // again after every completed epoch. Returning false cancels the run at that epoch
  // boundary -- the scrubber throws ScrubCancelledError and no further budget is spent.
  // The sdcd scrub campaign uses this for its shards_done ledger and Cancel verb.
  std::function<bool(uint64_t epochs_done, uint64_t epochs_total)> epoch_tick;

  // Optional scrub.* metric sink and scrub-track trace sink; with a context form, the
  // context's attachments back whichever is null (config > context > off, pinned at run
  // start -- the PR 7 precedence).
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  // Optional time-series sink: cumulative "scrub.budget" / "scrub.spent" /
  // "scrub.detections" / "scrub.sessions_funded" trajectories, one point per epoch
  // (x = the epoch's end month). The epoch loop is serial, so the series is
  // byte-identical at any thread count and across discovery modes. Resolution follows
  // the other sinks (config > context > off). Null disables sampling.
  SeriesRecorder* series = nullptr;
  // Worker threads for the context-free Run overload: 0 = hardware concurrency.
  int threads = 0;
};

// Thrown when ScrubConfig::epoch_tick vetoes continuing; the partial work is abandoned
// (campaign semantics: a cancelled run publishes no report).
struct ScrubCancelledError {};

// Scheduler provenance of one scrubber detection: which decision bought it (Layer 3 of
// the scrub story -- every detection is attributable without re-running the fleet).
struct ScrubProvenance {
  uint64_t epoch = 0;       // epoch whose grant funded the detecting round
  uint32_t rank = 0;        // position in that epoch's funding order (0 = first funded)
  double score = 0.0;       // scheduler score at grant time
  double granted_seconds = 0.0;
  double consumed_seconds = 0.0;  // what the funded round chunk actually ran
};

struct ScrubDetection {
  uint64_t serial = 0;
  int arch_index = 0;
  double month = 0.0;            // epoch-end month of the detecting round
  uint64_t rounds = 0;           // completed rounds up to and including detection
  double scheduled_seconds = 0.0;  // session budget consumed up to detection
  double screen_regular_month = -1.0;  // the screen cadence's detection month (baseline)
  bool deprecated = false;       // targeted analysis deprecated the whole part
  int masked_cores = 0;          // cores masked by fine-grained decommission
  ScrubProvenance provenance;
};

// One epoch of the budget ledger.
struct ScrubEpochPoint {
  uint64_t epoch = 0;
  double month = 0.0;
  double budget_seconds = 0.0;   // dispensed this epoch
  double session_seconds = 0.0;  // consumed by simulated session rounds
  double sweep_seconds = 0.0;    // consumed by the accounted clean-fleet sweep
  uint64_t sessions_funded = 0;
  uint64_t parts_swept = 0;      // clean parts whose round was funded (accounted only)
  uint64_t detections = 0;

  double spent_seconds() const { return session_seconds + sweep_seconds; }
};

struct ScrubReport {
  // Fleet and discovery.
  uint64_t fleet_processors = 0;
  uint64_t fleet_cores = 0;
  uint64_t faulty = 0;
  uint64_t pre_production_detections = 0;
  uint64_t sessions = 0;               // escapes tracked by the scrubber
  uint64_t undetectable_sessions = 0;  // escapes no testcase can expose (coverage ceiling)

  // Budget ledger.
  double budget_fraction = 0.0;
  double horizon_months = 0.0;
  double epoch_months = 0.0;
  double nominal_round_seconds = 0.0;  // accounted cost of one clean-part round
  double total_budget_seconds = 0.0;
  double session_seconds = 0.0;
  double sweep_seconds = 0.0;
  double diagnosis_seconds = 0.0;  // targeted analysis after failing rounds (not budgeted)
  std::vector<ScrubEpochPoint> timeline;

  // Outcomes.
  std::vector<ScrubDetection> detections;  // ascending by (epoch, funding rank)
  uint64_t workload_sdc_events = 0;        // SDCs reaching sampled workloads pre-detection
  CapacityReport capacity;                 // decommission replay of the detections

  double total_spent_seconds() const { return session_seconds + sweep_seconds; }
  double utilization() const {
    return total_budget_seconds > 0.0 ? total_spent_seconds() / total_budget_seconds : 0.0;
  }
  // Share of tracked escapes detected within the horizon.
  double coverage() const {
    return sessions > 0 ? static_cast<double>(detections.size()) /
                              static_cast<double>(sessions)
                        : 0.0;
  }
  double MeanTimeToDetectMonths() const;
};

// Streaming discovery hook: a ShardOutcomeObserver that walks each shard's faulty index
// against the shard's screening outcomes (both ascending by serial) and copies out one
// ScrubCandidate per faulty part while the defect spans are alive. Per-shard partials
// fold in shard order, so TakeCandidates() is byte-identical to
// CandidatesFromMaterialized at any thread count.
class ScrubDiscoveryObserver : public ShardOutcomeObserver {
 public:
  void BeginStream(const PopulationConfig& population, const ScreeningConfig& screening,
                   uint64_t shard_count) override;
  void ObserveShard(const FleetShard& shard, const ScreeningStats& shard_stats) override;
  void EndStream() override;

  // Candidates ascending by serial plus the fleet-wide arch histogram (needed to size
  // the clean sweep buckets); valid once after EndStream.
  std::vector<ScrubCandidate> TakeCandidates() { return std::move(candidates_); }
  const std::array<uint64_t, kArchCount>& arch_totals() const { return arch_totals_; }

 private:
  struct ShardPartial {
    std::vector<ScrubCandidate> candidates;
    std::array<uint64_t, kArchCount> arch_totals{};
  };

  std::vector<ShardPartial> partials_;
  std::vector<ScrubCandidate> candidates_;
  std::array<uint64_t, kArchCount> arch_totals_{};
};

// Materialized-discovery counterpart: same walk over fleet.faulty_serials() and the
// stats' detections.
std::vector<ScrubCandidate> CandidatesFromMaterialized(const FleetPopulation& fleet,
                                                       const ScreeningStats& stats);

class FleetScrubber {
 public:
  // `suite` is shared read-only by every session (built once per scrub run, never per
  // processor) and must outlive the scrubber.
  explicit FleetScrubber(const TestSuite* suite);

  // Runs discovery plus the budgeted epoch loop. The context-free form builds a fresh
  // EngineContext from config.threads (environment consulted exactly there); the
  // explicit form runs on the caller's context -- its pool supplies the lanes and its
  // attached sinks back any config sink left null, pinned once at run start.
  ScrubReport Run(const ScrubConfig& config) const;
  ScrubReport Run(const ScrubConfig& config, EngineContext& context) const;

 private:
  ScrubReport RunWith(const ScrubConfig& config, EngineContext& context,
                      MetricsRegistry* metrics, TraceRecorder* trace,
                      SeriesRecorder* series) const;

  const TestSuite* suite_;
};

}  // namespace sdc

#endif  // SDC_SRC_SCRUB_SCRUBBER_H_
