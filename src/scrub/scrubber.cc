#include "src/scrub/scrubber.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "src/common/context.h"
#include "src/common/rng.h"
#include "src/farron/session.h"
#include "src/fault/catalog.h"
#include "src/fault/machine.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/series.h"
#include "src/telemetry/trace.h"

namespace sdc {

namespace {

constexpr double kSecondsPerMonth = 30.44 * 24.0 * 3600.0;  // as Farron::TestOverhead

// Walks one shard's faulty index against its screening outcomes (both ascending by
// serial) and appends one candidate per faulty part. Shared by the streaming observer
// and the materialized builder so the two discovery modes cannot diverge.
template <typename FaultyDefectsFn>
void AppendCandidates(std::span<const uint64_t> faulty_serials,
                      const FaultyDefectsFn& defects_of,
                      const std::function<int(uint64_t)>& arch_of,
                      const std::function<bool(uint64_t)>& detectable_of,
                      std::span<const ProcessorOutcome> detections,
                      std::vector<ScrubCandidate>& out) {
  size_t cursor = 0;
  for (size_t ordinal = 0; ordinal < faulty_serials.size(); ++ordinal) {
    const uint64_t serial = faulty_serials[ordinal];
    ScrubCandidate candidate;
    candidate.serial = serial;
    candidate.arch_index = arch_of(serial);
    candidate.toolchain_detectable = detectable_of(serial);
    std::span<const Defect> defects = defects_of(ordinal);
    candidate.defects.assign(defects.begin(), defects.end());
    while (cursor < detections.size() && detections[cursor].serial < serial) {
      ++cursor;
    }
    if (cursor < detections.size() && detections[cursor].serial == serial &&
        detections[cursor].detected) {
      if (detections[cursor].stage == TestStage::kRegular) {
        candidate.screen_regular_month = detections[cursor].month;
      } else {
        candidate.pre_production_detected = true;
      }
    }
    out.push_back(std::move(candidate));
  }
}

// One tracked escape: the session plus its scheduler state. Sessions are only built for
// toolchain-detectable escapes; undetectable ones are scheduled and accounted (they
// consume budget like any other part) but never simulated -- the fleet model already
// states no testcase can expose them, so a simulated round finding errors would
// contradict the screen (docs/scrubbing.md).
struct SessionSlot {
  uint64_t serial = 0;
  int arch_index = 0;
  bool detectable = true;
  double screen_regular_month = -1.0;
  std::unique_ptr<FaultyMachine> machine;
  std::unique_ptr<Farron> farron;
  std::unique_ptr<ProtectionSession> session;
  uint64_t last_funded_epoch = 0;
  bool detected = false;
};

// A scheduler item: one session, or one bucket of interchangeable clean parts sharing
// (arch, last_funded_epoch).
struct ScheduleItem {
  double score = 0.0;
  bool is_bucket = false;
  size_t slot = 0;       // session index, or bucket index
  int arch_index = 0;    // tie-break
  uint64_t tie = 0;      // serial (sessions) / last_funded_epoch (buckets)
};

struct CleanBucket {
  int arch_index = 0;
  uint64_t last_funded_epoch = 0;
  uint64_t count = 0;
};

// A grant issued during epoch planning, executed afterwards.
struct Grant {
  size_t slot = 0;
  uint32_t rank = 0;
  double score = 0.0;
  double granted_seconds = 0.0;
  uint64_t rounds_before = 0;
};

}  // namespace

double ScrubReport::MeanTimeToDetectMonths() const {
  if (detections.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const ScrubDetection& detection : detections) {
    sum += detection.month;
  }
  return sum / static_cast<double>(detections.size());
}

void ScrubDiscoveryObserver::BeginStream(const PopulationConfig& /*population*/,
                                         const ScreeningConfig& /*screening*/,
                                         uint64_t shard_count) {
  partials_.assign(shard_count, {});
  candidates_.clear();
  arch_totals_ = {};
}

void ScrubDiscoveryObserver::ObserveShard(const FleetShard& shard,
                                          const ScreeningStats& shard_stats) {
  ShardPartial& partial = partials_[shard.shard];
  for (int arch = 0; arch < kArchCount; ++arch) {
    partial.arch_totals[arch] = shard.tally->by_arch[arch];
  }
  AppendCandidates(
      shard.faulty_serials, [&](size_t ordinal) { return shard.FaultyDefects(ordinal); },
      [&](uint64_t serial) { return shard.arch_index(serial); },
      [&](uint64_t serial) { return shard.toolchain_detectable(serial); },
      shard_stats.detections, partial.candidates);
}

void ScrubDiscoveryObserver::EndStream() {
  size_t total = 0;
  for (const ShardPartial& partial : partials_) {
    total += partial.candidates.size();
  }
  candidates_.reserve(total);
  for (ShardPartial& partial : partials_) {
    for (ScrubCandidate& candidate : partial.candidates) {
      candidates_.push_back(std::move(candidate));
    }
    for (int arch = 0; arch < kArchCount; ++arch) {
      arch_totals_[arch] += partial.arch_totals[arch];
    }
  }
  partials_.clear();
  partials_.shrink_to_fit();
}

std::vector<ScrubCandidate> CandidatesFromMaterialized(const FleetPopulation& fleet,
                                                       const ScreeningStats& stats) {
  std::vector<ScrubCandidate> candidates;
  candidates.reserve(fleet.faulty_serials().size());
  AppendCandidates(
      fleet.faulty_serials(),
      [&](size_t ordinal) {
        return fleet.processor(fleet.faulty_serials()[ordinal]).defects;
      },
      [&](uint64_t serial) { return fleet.processor(serial).arch_index; },
      [&](uint64_t serial) { return fleet.processor(serial).toolchain_detectable; },
      stats.detections, candidates);
  return candidates;
}

FleetScrubber::FleetScrubber(const TestSuite* suite) : suite_(suite) {}

ScrubReport FleetScrubber::Run(const ScrubConfig& config) const {
  EngineOptions options;
  options.threads = config.threads;
  EngineContext context(options);
  return RunWith(config, context, config.metrics, config.trace, config.series);
}

ScrubReport FleetScrubber::Run(const ScrubConfig& config, EngineContext& context) const {
  // Sink precedence config > context > off, pinned here for the whole run.
  MetricsRegistry* metrics =
      config.metrics != nullptr ? config.metrics : context.metrics();
  TraceRecorder* trace = config.trace != nullptr ? config.trace : context.trace();
  SeriesRecorder* series = config.series != nullptr ? config.series : context.series();
  return RunWith(config, context, metrics, trace, series);
}

ScrubReport FleetScrubber::RunWith(const ScrubConfig& config, EngineContext& context,
                                   MetricsRegistry* metrics, TraceRecorder* trace,
                                   SeriesRecorder* series) const {
  ScrubReport report;
  report.fleet_processors = config.population.processor_count;
  report.budget_fraction = config.budget_fraction;
  report.horizon_months = config.horizon_months;
  report.epoch_months = config.epoch_months;

  // --- Discovery: who escaped pre-production screening. ---
  ScreeningPipeline pipeline(suite_);
  std::vector<ScrubCandidate> candidates;
  std::array<uint64_t, kArchCount> arch_totals{};
  if (config.stream_discovery) {
    FleetShardStream stream(config.population);
    StreamingScreen screen(&pipeline, config.screening);
    ScrubDiscoveryObserver discovery;
    screen.AddObserver(&discovery);
    stream.Drive({&screen}, context);
    candidates = discovery.TakeCandidates();
    arch_totals = discovery.arch_totals();
  } else {
    const FleetPopulation fleet = FleetPopulation::Generate(config.population, context);
    const ScreeningStats stats = pipeline.Run(fleet, config.screening, context);
    candidates = CandidatesFromMaterialized(fleet, stats);
    for (int arch = 0; arch < kArchCount; ++arch) {
      arch_totals[arch] = fleet.CountByArch(arch);
    }
  }
  report.faulty = candidates.size();

  std::array<int, kArchCount> arch_cores{};
  for (int arch = 0; arch < kArchCount; ++arch) {
    arch_cores[arch] = MakeArchSpec(arch).physical_cores;
    report.fleet_cores +=
        arch_totals[arch] * static_cast<uint64_t>(arch_cores[arch]);
  }

  // --- Sessions: one per escape. The suite is shared read-only; every slot owns its
  // machine, Farron, and per-serial forked RNG streams, so funded rounds can execute on
  // any lane in any order without perturbing a bit of output. ---
  const Rng scrub_base(config.seed);
  std::vector<SessionSlot> slots;
  std::array<uint64_t, kArchCount> faulty_by_arch{};
  for (ScrubCandidate& candidate : candidates) {
    faulty_by_arch[static_cast<size_t>(candidate.arch_index)] += 1;
    if (candidate.pre_production_detected) {
      report.pre_production_detections += 1;  // returned to the vendor; not deployed
      continue;
    }
    SessionSlot slot;
    slot.serial = candidate.serial;
    slot.arch_index = candidate.arch_index;
    slot.detectable = candidate.toolchain_detectable;
    slot.screen_regular_month = candidate.screen_regular_month;
    if (slot.detectable) {
      FaultyProcessorInfo info;
      info.cpu_id = "scrub-" + std::to_string(candidate.serial);
      info.arch = ArchName(candidate.arch_index);
      info.spec = MakeArchSpec(candidate.arch_index);
      info.defects = std::move(candidate.defects);
      const uint64_t machine_seed = Mix64(Mix64(config.seed) ^ Mix64(candidate.serial));
      slot.machine = std::make_unique<FaultyMachine>(info, machine_seed);
      FarronConfig farron_config = config.farron;
      farron_config.metrics = nullptr;  // sessions run sink-free on worker lanes
      farron_config.trace = nullptr;
      farron_config.context = nullptr;
      farron_config.seed = Mix64(machine_seed ^ 0x5ec5c5e55c3a11edULL);
      slot.farron =
          std::make_unique<Farron>(suite_, slot.machine.get(), farron_config);
      SessionOptions session_options;
      session_options.protect = true;
      session_options.reseed_workload_each_run = false;  // one forked stream per part
      session_options.max_cases_per_round = config.max_cases_per_round;
      slot.session = std::make_unique<ProtectionSession>(
          slot.farron.get(), slot.machine.get(), suite_, config.workload,
          scrub_base.Fork(candidate.serial), session_options);
    } else {
      report.undetectable_sessions += 1;
    }
    slots.push_back(std::move(slot));
  }
  report.sessions = slots.size();

  ThreadPool& pool = context.pool();

  // Deployment workload sample: establishes each part's peak-temperature signal for the
  // scheduler and measures the SDCs that reach the application before anything detects
  // them. Slot-isolated, so it parallelizes with no fold beyond reading slot state.
  if (config.workload_sample_hours > 0.0 && !slots.empty()) {
    pool.ParallelFor(0, slots.size(), 1, [&](uint64_t, uint64_t begin, uint64_t end) {
      for (uint64_t i = begin; i < end; ++i) {
        SessionSlot& slot = slots[i];
        if (slot.session == nullptr) {
          continue;
        }
        if (slot.machine->injector() != nullptr) {
          slot.machine->injector()->set_age_months(0.0);
        }
        slot.session->BeginWorkload(config.workload_sample_hours);
        while (!slot.session->workload_done()) {
          slot.session->Step(3600.0);
        }
        slot.session->FinishWorkload();
      }
    });
    for (const SessionSlot& slot : slots) {
      if (slot.session != nullptr) {
        report.workload_sdc_events += slot.session->workload_sdc_events();
      }
    }
  }

  // The accounted cost of one funded round on a part we do not simulate: the ripple
  // window swept in best-effort slices.
  const size_t window = config.max_cases_per_round > 0
                            ? std::min(config.max_cases_per_round, suite_->size())
                            : suite_->size();
  report.nominal_round_seconds =
      static_cast<double>(window) * config.farron.plan_params.basic_seconds;
  const double nominal = std::max(report.nominal_round_seconds, 1e-9);

  // Clean parts are interchangeable within (arch, last_funded_epoch): track counts, not
  // identities. Pre-production detections never deploy, so the sweep pool is the clean
  // fleet exactly.
  std::vector<CleanBucket> buckets;
  for (int arch = 0; arch < kArchCount; ++arch) {
    const uint64_t clean = arch_totals[arch] - faulty_by_arch[arch];
    if (clean > 0) {
      buckets.push_back({arch, 0, clean});
    }
  }

  const ScrubSchedulerParams& sched = config.scheduler;
  auto temperature_factor = [&](const SessionSlot& slot) {
    const double peak =
        slot.session != nullptr ? slot.session->last_workload_max_temperature() : 0.0;
    return 1.0 + sched.temperature_weight_per_degree *
                     std::max(0.0, peak - sched.temperature_reference_celsius);
  };

  TraceDelta trace_delta;
  const uint64_t epochs = config.epoch_months > 0.0
                              ? static_cast<uint64_t>(std::ceil(
                                    config.horizon_months / config.epoch_months - 1e-9))
                              : 0;
  if (config.epoch_tick && !config.epoch_tick(0, epochs)) {
    throw ScrubCancelledError{};
  }
  uint64_t sessions_funded_total = 0;  // running total for the series sink

  // --- The epoch loop: serial planning, parallel execution, serial fold. ---
  for (uint64_t epoch = 0; epoch < epochs; ++epoch) {
    const double month_begin = static_cast<double>(epoch) * config.epoch_months;
    const double month_end =
        std::min(month_begin + config.epoch_months, config.horizon_months);
    const double budget_seconds = config.budget_fraction *
                                  static_cast<double>(report.fleet_processors) *
                                  (month_end - month_begin) * kSecondsPerMonth;

    // Plan: score every live session and every clean bucket, fund best-first.
    std::vector<ScheduleItem> items;
    items.reserve(slots.size() + buckets.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      const SessionSlot& slot = slots[i];
      if (slot.detected) {
        continue;
      }
      const double aging = 1.0 + sched.aging_weight_per_epoch *
                                     static_cast<double>(epoch - slot.last_funded_epoch);
      const double score = sched.arch_weight[static_cast<size_t>(slot.arch_index)] *
                           temperature_factor(slot) * aging;
      items.push_back({score, false, i, slot.arch_index, slot.serial});
    }
    for (size_t b = 0; b < buckets.size(); ++b) {
      const CleanBucket& bucket = buckets[b];
      const double aging =
          1.0 + sched.aging_weight_per_epoch *
                    static_cast<double>(epoch - bucket.last_funded_epoch);
      const double score =
          sched.arch_weight[static_cast<size_t>(bucket.arch_index)] * aging;
      items.push_back({score, true, b, bucket.arch_index, bucket.last_funded_epoch});
    }
    std::stable_sort(items.begin(), items.end(),
                     [](const ScheduleItem& a, const ScheduleItem& b) {
                       if (a.score != b.score) {
                         return a.score > b.score;
                       }
                       if (a.is_bucket != b.is_bucket) {
                         return !a.is_bucket;  // sessions win ties: they carry signal
                       }
                       if (a.arch_index != b.arch_index) {
                         return a.arch_index < b.arch_index;
                       }
                       return a.tie < b.tie;
                     });

    ScrubEpochPoint point;
    point.epoch = epoch;
    point.month = month_end;
    point.budget_seconds = budget_seconds;
    double remaining = budget_seconds;
    std::vector<Grant> grants;
    std::vector<CleanBucket> refunded;  // buckets funded this epoch re-enter at epoch
    for (size_t rank = 0; rank < items.size(); ++rank) {
      const ScheduleItem& item = items[rank];
      if (remaining <= 0.0) {
        break;
      }
      if (!item.is_bucket) {
        SessionSlot& slot = slots[item.slot];
        const double price = slot.session != nullptr
                                 ? slot.session->NextRoundPlanSeconds()
                                 : nominal;
        const double granted = std::min(price, remaining);
        if (granted <= 0.0) {
          continue;
        }
        Grant grant;
        grant.slot = item.slot;
        grant.rank = static_cast<uint32_t>(rank);
        grant.score = item.score;
        grant.granted_seconds = granted;
        grant.rounds_before =
            slot.session != nullptr ? slot.session->completed_rounds() : 0;
        grants.push_back(grant);
        // Reserve the grant now; the funded round may consume less (no overdraft), and
        // the shortfall becomes slack rather than retroactively re-ranking the epoch.
        remaining -= granted;
        slot.last_funded_epoch = epoch;
      } else {
        CleanBucket& bucket = buckets[item.slot];
        const uint64_t fundable = static_cast<uint64_t>(remaining / nominal);
        const uint64_t funded = std::min(bucket.count, fundable);
        if (funded == 0) {
          continue;
        }
        bucket.count -= funded;
        refunded.push_back({bucket.arch_index, epoch, funded});
        remaining -= static_cast<double>(funded) * nominal;
        point.sweep_seconds += static_cast<double>(funded) * nominal;
        point.parts_swept += funded;
      }
    }
    // Compact the bucket list: drop emptied buckets, merge the re-funded cohorts.
    buckets.erase(std::remove_if(buckets.begin(), buckets.end(),
                                 [](const CleanBucket& b) { return b.count == 0; }),
                  buckets.end());
    for (const CleanBucket& cohort : refunded) {
      bool merged = false;
      for (CleanBucket& bucket : buckets) {
        if (bucket.arch_index == cohort.arch_index &&
            bucket.last_funded_epoch == cohort.last_funded_epoch) {
          bucket.count += cohort.count;
          merged = true;
          break;
        }
      }
      if (!merged) {
        buckets.push_back(cohort);
      }
    }

    // Execute: funded session rounds run concurrently; each touches only its own slot.
    std::vector<double> consumed(grants.size(), 0.0);
    pool.ParallelFor(0, grants.size(), 1, [&](uint64_t, uint64_t begin, uint64_t end) {
      for (uint64_t g = begin; g < end; ++g) {
        SessionSlot& slot = slots[grants[g].slot];
        if (slot.session == nullptr) {
          consumed[g] = grants[g].granted_seconds;  // accounted, not simulated
          continue;
        }
        if (slot.machine->injector() != nullptr) {
          slot.machine->injector()->set_age_months(month_end);
        }
        consumed[g] = slot.session->RunTestRound(grants[g].granted_seconds);
      }
    });

    // Fold in funding order: budget ledger, detections, provenance.
    for (size_t g = 0; g < grants.size(); ++g) {
      const Grant& grant = grants[g];
      SessionSlot& slot = slots[grant.slot];
      point.sessions_funded += 1;
      point.session_seconds += consumed[g];
      if (slot.session == nullptr) {
        continue;
      }
      const bool completed_round =
          slot.session->completed_rounds() > grant.rounds_before;
      if (!completed_round || !slot.session->last_round_summary()->report.any_error()) {
        continue;
      }
      slot.detected = true;
      ScrubDetection detection;
      detection.serial = slot.serial;
      detection.arch_index = slot.arch_index;
      detection.month = month_end;
      detection.rounds = slot.session->completed_rounds();
      detection.scheduled_seconds = slot.session->scheduled_seconds();
      detection.screen_regular_month = slot.screen_regular_month;
      detection.deprecated = slot.session->last_round_summary()->processor_deprecated;
      detection.masked_cores = slot.farron->pool().masked_count();
      detection.provenance = {epoch, grant.rank, grant.score, grant.granted_seconds,
                              consumed[g]};
      if (trace != nullptr) {
        TraceEvent instant =
            MakeTraceInstant("scrub.detection", "scrub", kTraceTrackScrub,
                             month_end * kSecondsPerMonth * 1e6);
        instant.num_args.emplace_back("serial", static_cast<double>(slot.serial));
        instant.num_args.emplace_back("epoch", static_cast<double>(epoch));
        instant.num_args.emplace_back("rank", static_cast<double>(grant.rank));
        instant.num_args.emplace_back("score", grant.score);
        trace_delta.Add(std::move(instant));
      }
      report.detections.push_back(std::move(detection));
      point.detections += 1;
    }

    report.total_budget_seconds += budget_seconds;
    report.session_seconds += point.session_seconds;
    report.sweep_seconds += point.sweep_seconds;
    if (trace != nullptr) {
      TraceEvent span =
          MakeTraceSpan("scrub.epoch", "scrub", kTraceTrackScrub,
                        month_begin * kSecondsPerMonth * 1e6,
                        (month_end - month_begin) * kSecondsPerMonth * 1e6);
      span.num_args.emplace_back("budget_seconds", point.budget_seconds);
      span.num_args.emplace_back("spent_seconds", point.spent_seconds());
      span.num_args.emplace_back("sessions_funded",
                                 static_cast<double>(point.sessions_funded));
      span.num_args.emplace_back("detections", static_cast<double>(point.detections));
      trace_delta.Add(std::move(span));
    }
    report.timeline.push_back(point);
    if (series != nullptr) {
      // Serial epoch loop: cumulative budget-ledger trajectory, one point per epoch,
      // deterministic at any thread count by construction.
      sessions_funded_total += point.sessions_funded;
      series->Append("scrub.budget", SeriesClock::kSim, point.month,
                     report.total_budget_seconds);
      series->Append("scrub.spent", SeriesClock::kSim, point.month,
                     report.total_spent_seconds());
      series->Append("scrub.detections", SeriesClock::kSim, point.month,
                     static_cast<double>(report.detections.size()));
      series->Append("scrub.sessions_funded", SeriesClock::kSim, point.month,
                     static_cast<double>(sessions_funded_total));
    }
    if (config.epoch_tick && !config.epoch_tick(epoch + 1, epochs)) {
      throw ScrubCancelledError{};
    }
  }

  for (const SessionSlot& slot : slots) {
    if (slot.session != nullptr) {
      report.diagnosis_seconds += slot.session->diagnosis_seconds();
    }
  }

  // Decommission replay of the scrubber's detections (src/fleet/capacity policies): the
  // baseline deprecates every detected part; fine-grained decommission keeps the cores
  // the targeted analysis did not mask.
  report.capacity.fleet_cores = report.fleet_cores;
  report.capacity.production_detections = report.detections.size();
  for (const ScrubDetection& detection : report.detections) {
    const uint64_t cores =
        static_cast<uint64_t>(arch_cores[static_cast<size_t>(detection.arch_index)]);
    report.capacity.baseline_cores_lost += cores;
    if (detection.deprecated) {
      report.capacity.fine_grained_cores_lost += cores;
      report.capacity.parts_deprecated_fine += 1;
    } else {
      report.capacity.fine_grained_cores_lost +=
          static_cast<uint64_t>(detection.masked_cores);
    }
  }
  for (const ScrubEpochPoint& point : report.timeline) {
    CapacityPoint capacity_point;
    capacity_point.month = point.month;
    report.capacity.timeline.push_back(capacity_point);
  }
  {
    size_t cursor = 0;
    uint64_t baseline = 0;
    uint64_t fine = 0;
    for (CapacityPoint& capacity_point : report.capacity.timeline) {
      while (cursor < report.detections.size() &&
             report.detections[cursor].month <= capacity_point.month + 1e-9) {
        const ScrubDetection& detection = report.detections[cursor];
        const uint64_t cores =
            static_cast<uint64_t>(arch_cores[static_cast<size_t>(detection.arch_index)]);
        baseline += cores;
        fine += detection.deprecated ? cores
                                     : static_cast<uint64_t>(detection.masked_cores);
        ++cursor;
      }
      capacity_point.baseline_cores_lost = baseline;
      capacity_point.fine_grained_cores_lost = fine;
    }
  }

  if (metrics != nullptr) {
    MetricsDelta delta;
    delta.Add("scrub.runs");
    delta.Add("scrub.sessions", report.sessions);
    delta.Add("scrub.undetectable_sessions", report.undetectable_sessions);
    delta.Add("scrub.detections", report.detections.size());
    delta.Add("scrub.epochs", report.timeline.size());
    delta.Add("scrub.workload_sdc_events", report.workload_sdc_events);
    delta.Set("scrub.budget_seconds", report.total_budget_seconds);
    delta.Set("scrub.spent_seconds", report.total_spent_seconds());
    delta.Set("scrub.utilization", report.utilization());
    delta.Set("scrub.coverage", report.coverage());
    delta.Set("scrub.mean_time_to_detect_months", report.MeanTimeToDetectMonths());
    delta.Set("scrub.diagnosis_seconds", report.diagnosis_seconds);
    metrics->MergeDelta(delta);
  }
  if (trace != nullptr) {
    trace->MergeDelta(std::move(trace_delta));
  }
  return report;
}

}  // namespace sdc
