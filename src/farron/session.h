// Reentrant per-processor protection sessions.
//
// SimulateProtectedWorkload and the regular-test cycle were run-to-completion loops: one
// call simulated hours of workload (or a whole prioritized round) and returned only when
// finished. That shape cannot be interleaved across a fleet, budgeted, or driven from a
// scheduler. ProtectionSession decomposes both loops into explicit state -- the machine,
// Farron's boundary controller and priority plan, the workload Rng stream, and the
// next-due round time -- plus a Step/RunTestRound API that advances in bounded quanta and
// reports what it consumed.
//
// Equivalence contract: driving a session to completion reproduces the retained reference
// loop byte for byte -- same ProtectionReport, same event-log sequence, same metrics and
// trace deltas -- regardless of the Step quantum (an iteration of the control loop is the
// indivisible unit, and iterations never look at quantum boundaries). The reference
// implementation stays reachable through WorkloadSpec::use_reference_loop, and
// tests/session_test.cc pins the equivalence at several quanta.
//
// The budgeted round path (RunTestRound with a finite budget, optionally with a rotating
// ripple window over the plan) is new capability for the fleet scrubber
// (docs/scrubbing.md); an unbudgeted call is exactly Farron::RunRegularRound.

#ifndef SDC_SRC_FARRON_SESSION_H_
#define SDC_SRC_FARRON_SESSION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/farron/farron.h"
#include "src/farron/protection.h"
#include "src/fault/machine.h"
#include "src/telemetry/trace.h"
#include "src/toolchain/registry.h"
#include "src/toolchain/testcase.h"

namespace sdc {

struct SessionOptions {
  // Run Farron's triggering-condition controller during workload steps (false = the
  // unprotected comparison, as SimulateProtectedWorkload's `protect` argument).
  bool protect = true;
  // Reseed the workload stream from WorkloadSpec::seed at every BeginWorkload -- the
  // legacy per-call behavior of SimulateProtectedWorkload, required for byte-identity
  // with the reference loop. Fleet-scale callers pass false and seed the constructor
  // with a forked per-processor stream instead (Rng(seed).Fork(serial)), so session
  // randomness is deterministic under any lane count and interleaving.
  bool reseed_workload_each_run = true;
  // Funded rounds run at most this many plan entries per round, as a rotating window
  // over the prioritized plan ("opportunistic ripple testing"); 0 = the full plan.
  size_t max_cases_per_round = 0;
  // Application features for plan prioritization, as Farron::RunRegularRound's argument.
  std::vector<Feature> app_features;
};

class ProtectionSession {
 public:
  // `farron`, `machine`, and `suite` must outlive the session, and `machine` must be the
  // instance `farron` was constructed over. `workload_rng` is the session's workload
  // stream: pass Rng(spec.seed) for the legacy reference behavior, or a per-processor
  // fork for fleet-scale determinism (see SessionOptions::reseed_workload_each_run).
  ProtectionSession(Farron* farron, FaultyMachine* machine, const TestSuite* suite,
                    const WorkloadSpec& spec, Rng workload_rng, SessionOptions options);

  ProtectionSession(const ProtectionSession&) = delete;
  ProtectionSession& operator=(const ProtectionSession&) = delete;

  // --- Workload phase (the decomposed SimulateProtectedWorkload loop). ---

  // Starts a workload run of `hours` simulated hours: the reference loop's setup step
  // (time scale, core placement, steady-state thermals). On a deprecated processor the
  // run completes immediately and FinishWorkload returns the reference loop's empty
  // report. Requires no run in flight.
  void BeginWorkload(double hours);

  // Advances the running workload by up to `sim_seconds` simulated seconds and returns
  // what was actually consumed. Control-loop iterations are indivisible, so the last
  // iteration may overshoot the quantum; the iteration sequence -- and therefore every
  // output -- is independent of how the run is cut into steps.
  double Step(double sim_seconds);

  bool workload_active() const { return workload_active_; }
  bool workload_done() const;

  // Completes the run (the reference loop's teardown: restore utilization, emit the
  // metrics/trace delta) and returns the report. Requires workload_done().
  ProtectionReport FinishWorkload();

  // --- Regular-test cycle (the decomposed Farron::RunRegularRound). ---

  // Advances the regular-test cycle by at most `budget_seconds` of scheduled plan time.
  // An unbudgeted call (infinite budget, no round in progress, no ripple window) is
  // exactly Farron::RunRegularRound. Otherwise the due round's plan is built once
  // (emitting kRoundStarted), the longest prefix of remaining entries whose scheduled
  // seconds fit the budget runs, and when the last entry completes the round is finished
  // exactly as RunRegularRound finishes it: failures absorbed into priorities, targeted
  // analysis, kRoundCompleted. Returns the scheduled seconds consumed -- never more than
  // `budget_seconds`; 0 when the budget does not cover the next entry or the processor
  // is deprecated. Targeted-analysis time is diagnosis, not scheduled testing; it is
  // reported via last_round_summary() and diagnosis_seconds(), not charged here.
  double RunTestRound(double budget_seconds);

  bool round_in_progress() const { return round_in_progress_; }
  // Scheduled seconds of the in-progress round still to run (0 when no round is open).
  double PendingRoundSeconds() const;
  // Scheduled seconds of the next funded round: the pending remainder of an open round,
  // or the full plan the next RunTestRound would build. The scrub scheduler prices a
  // grant with this before dispatching budget (docs/scrubbing.md).
  double NextRoundPlanSeconds() const;

  // Summary of the most recently completed round; nullopt until one completes.
  const std::optional<FarronRoundSummary>& last_round_summary() const {
    return last_round_summary_;
  }

  // --- Session clock and scheduler signals. ---

  // Simulated month of the next due regular round (FarronConfig::regular_period_months
  // cadence, first round due one period after deployment). Advanced when a round
  // completes.
  double next_round_due_months() const { return next_round_due_months_; }

  // Hottest core temperature seen by the last finished workload run (0 before any run) --
  // the temperature signal the scrub scheduler weighs (hotter parts trigger more
  // defects, Figures 8-9).
  double last_workload_max_temperature() const { return last_workload_max_temperature_; }

  // Cumulative across the session's lifetime.
  double scheduled_seconds() const { return scheduled_seconds_; }
  double diagnosis_seconds() const { return diagnosis_seconds_; }
  uint64_t completed_rounds() const { return completed_rounds_; }
  uint64_t workload_sdc_events() const { return workload_sdc_events_; }

  const Farron& farron() const { return *farron_; }
  const WorkloadSpec& spec() const { return spec_; }

 private:
  // One indivisible iteration of the protection control loop (the reference loop's
  // body); advances the machine clock and updates the in-flight report.
  void StepOnce();
  // Zeroes all cores then applies `utilization` to the run's usable set (the reference
  // loop's set_utilization).
  void SetUtilization(double utilization);
  // Builds the due round's plan: Farron's prioritized plan (or the ablation baseline),
  // cut to the rotating ripple window when one is configured. `advance_cursor` rotates
  // the window forward (pricing passes false).
  std::vector<TestPlanEntry> BuildRoundPlan(bool advance_cursor);
  // Closes a fully-run round exactly as Farron::RunRegularRound closes it.
  void FinishRound();
  // Targeted-analysis seconds implied by a just-absorbed failing round.
  void AccountDiagnosis(const FarronRoundSummary& summary);

  Farron* farron_;
  FaultyMachine* machine_;
  const TestSuite* suite_;
  WorkloadSpec spec_;
  SessionOptions options_;
  Rng rng_;

  // Workload-run state (valid while workload_active_).
  bool workload_active_ = false;
  bool workload_degenerate_ = false;  // deprecated pool: reference loop's early return
  double end_seconds_ = 0.0;
  double run_start_seconds_ = 0.0;
  double burst_until_ = -1.0;
  bool throttled_ = false;
  std::vector<int> usable_;
  Testcase* kernel_ = nullptr;
  TestContext context_;
  std::vector<SdcRecord> records_;
  ProtectionReport report_;
  TraceRecorder* trace_ = nullptr;  // pinned at BeginWorkload, as the reference loop does
  TraceDelta trace_delta_;

  // Regular-round state.
  bool round_in_progress_ = false;
  std::vector<TestPlanEntry> round_plan_;
  size_t round_next_entry_ = 0;
  RunReport round_report_;
  double round_plan_seconds_ = 0.0;
  size_t ripple_cursor_ = 0;  // rotation origin of the next ripple window
  std::optional<FarronRoundSummary> last_round_summary_;
  double next_round_due_months_ = 0.0;

  // Lifetime accumulators.
  double last_workload_max_temperature_ = 0.0;
  double scheduled_seconds_ = 0.0;
  double diagnosis_seconds_ = 0.0;
  uint64_t completed_rounds_ = 0;
  uint64_t workload_sdc_events_ = 0;
};

}  // namespace sdc

#endif  // SDC_SRC_FARRON_SESSION_H_
