#include "src/farron/farron.h"

#include <algorithm>

#include "src/common/context.h"

namespace sdc {

Farron::Farron(const TestSuite* suite, FaultyMachine* machine, FarronConfig config)
    : suite_(suite),
      machine_(machine),
      config_(config),
      framework_(suite),
      priorities_(suite),
      pool_(machine->cpu().spec().physical_cores),
      boundary_(config.initial_boundary_celsius, config.boundary_window) {
  boundary_.set_adaptive(config_.enable_adaptive_boundary);
  if (config_.context != nullptr) {
    event_log_ = config_.context->event_log();
  }
}

MetricsRegistry* Farron::effective_metrics() const {
  if (config_.metrics != nullptr) {
    return config_.metrics;
  }
  return config_.context != nullptr ? config_.context->metrics() : nullptr;
}

TraceRecorder* Farron::effective_trace() const {
  if (config_.trace != nullptr) {
    return config_.trace;
  }
  return config_.context != nullptr ? config_.context->trace() : nullptr;
}

RunReport Farron::RunPlanOnContext(const std::vector<TestPlanEntry>& plan,
                                   const TestRunConfig& run_config) const {
  if (config_.context != nullptr) {
    return framework_.RunPlan(*machine_, plan, run_config, *config_.context);
  }
  return framework_.RunPlan(*machine_, plan, run_config);
}

TestRunConfig Farron::MakeRunConfig() const {
  TestRunConfig run_config;
  run_config.time_scale = config_.time_scale;
  run_config.simultaneous_cores = config_.enable_hot_testing;
  run_config.burn_in_seconds = config_.enable_hot_testing ? config_.burn_in_seconds : 0.0;
  run_config.seed = config_.seed;
  run_config.pcores_under_test = pool_.UsableCores();
  // Resolve sinks here (config > context > off) instead of passing the raw config
  // pointers: RunPlan's context overload applies the same fallback, but the legacy
  // overload does not, and sessions route chunks through both paths -- resolving once
  // keeps the precedence in one place. Same sink either way.
  run_config.metrics = effective_metrics();
  run_config.trace = effective_trace();
  return run_config;
}

FarronRoundSummary Farron::RunPreProduction() {
  FarronRoundSummary summary;
  const TestRunConfig run_config = MakeRunConfig();
  const std::vector<TestPlanEntry> plan =
      framework_.EqualPlan(config_.pre_production_per_case_seconds);
  summary.report = RunPlanOnContext(plan, run_config);
  summary.plan_seconds = PriorityTracker::PlanSeconds(plan);
  AbsorbFailures(summary.report, summary);
  return summary;
}

void Farron::SetActiveFromHistory(const std::vector<std::string>& testcase_ids) {
  priorities_.MarkActiveFromHistory(testcase_ids);
}

void Farron::MarkSuspectedTestcases(const std::vector<std::string>& testcase_ids) {
  for (const std::string& id : testcase_ids) {
    priorities_.MarkSuspected(id);
  }
}

double Farron::DurationScale() const {
  // Reference point: the paper's 59C boundary maps to scale 1.0. A colder boundary means
  // the backoff controller suppresses more of the tricky range, so testing can shrink; a
  // hotter boundary needs longer testing to cover the exposed temperatures.
  const double scale = 0.5 + 0.5 * (boundary_.boundary_celsius() - 45.0) / 14.0;
  return std::clamp(scale, 0.5, 1.5);
}

FarronRoundSummary Farron::RunRegularRound(const std::vector<Feature>& app_features) {
  FarronRoundSummary summary;
  if (pool_.processor_deprecated()) {
    summary.processor_deprecated = true;
    return summary;
  }
  std::vector<TestPlanEntry> plan;
  if (config_.enable_priorities) {
    PriorityPlanParams params = config_.plan_params;
    params.duration_scale = DurationScale();
    plan = priorities_.BuildRegularPlan(app_features, params);
  } else {
    plan = framework_.EqualPlan(60.0);  // ablation: the baseline's equal allocation
  }
  Emit(EventKind::kRoundStarted, "regular", -1, PriorityTracker::PlanSeconds(plan));
  summary.report = RunPlanOnContext(plan, MakeRunConfig());
  summary.plan_seconds = PriorityTracker::PlanSeconds(plan);
  last_plan_seconds_ = summary.plan_seconds;
  AbsorbFailures(summary.report, summary);
  Emit(EventKind::kRoundCompleted, "regular", -1,
       static_cast<double>(summary.report.total_errors()));
  return summary;
}

BoundaryDecision Farron::ObserveTemperature(double temperature_celsius) {
  if (!config_.enable_backoff) {
    return BoundaryDecision::kNormal;
  }
  return boundary_.Observe(temperature_celsius);
}

Farron::ControlAction Farron::ControlStep(double temperature_celsius) {
  ThermalModel& thermal = machine_->cpu().thermal();
  const BoundaryDecision decision = ObserveTemperature(temperature_celsius);
  switch (decision) {
    case BoundaryDecision::kNormal:
      // Comfortably below the boundary: spin the fans back down one step.
      if (temperature_celsius < boundary_.boundary_celsius() - 3.0 &&
          thermal.cooling_boost() > 1.0) {
        thermal.SetCoolingBoost(thermal.cooling_boost() - config_.cooling_boost_step);
      }
      return ControlAction::kNone;
    case BoundaryDecision::kRaised:
      Emit(EventKind::kBoundaryRaised, machine_->info().cpu_id, -1,
           boundary_.boundary_celsius());
      return ControlAction::kBoundaryRaised;
    case BoundaryDecision::kBackoff:
      if (config_.enable_cooling_control &&
          thermal.cooling_boost() + 1e-9 < config_.max_cooling_boost) {
        thermal.SetCoolingBoost(thermal.cooling_boost() + config_.cooling_boost_step);
        Emit(EventKind::kCoolingBoosted, machine_->info().cpu_id, -1,
             thermal.cooling_boost());
        return ControlAction::kCoolingBoosted;
      }
      return ControlAction::kWorkloadBackoff;
  }
  return ControlAction::kNone;
}

double Farron::TestOverhead() const {
  const double period_seconds = config_.regular_period_months * 30.44 * 24.0 * 3600.0;
  return last_plan_seconds_ / period_seconds;
}

void Farron::Emit(EventKind kind, const std::string& subject, int pcore, double value) {
  if (event_log_ != nullptr) {
    event_log_->Record(kind, machine_->cpu().now_seconds(), subject, pcore, value);
  }
}

void Farron::AbsorbFailures(const RunReport& report, FarronRoundSummary& summary) {
  if (!report.any_error()) {
    return;
  }
  if (event_log_ != nullptr) {
    for (const TestcaseResult& result : report.results) {
      if (result.failed()) {
        Emit(EventKind::kSdcDetected, result.testcase_id, -1,
             static_cast<double>(result.errors));
      }
    }
  }
  priorities_.AbsorbReport(report);
  RunTargetedAnalysis(summary);
}

void Farron::RunTargetedAnalysis(FarronRoundSummary& summary) {
  // Suspected state: rerun this processor's suspected testcases long and hot, so defective
  // sibling cores that fail the same testcases at lower rates also show up (Observation 4).
  const std::vector<size_t> suspected =
      priorities_.IndicesWithPriority(TestPriority::kSuspected);
  if (suspected.empty()) {
    return;
  }
  std::vector<TestPlanEntry> plan;
  plan.reserve(suspected.size());
  for (size_t index : suspected) {
    plan.push_back({index, config_.targeted_per_case_seconds});
  }
  const RunReport report = RunPlanOnContext(plan, MakeRunConfig());
  // Health analysis: mask every physical core that produced errors.
  std::vector<bool> defective(static_cast<size_t>(pool_.total_cores()), false);
  for (const TestcaseResult& result : report.results) {
    for (size_t pcore = 0; pcore < result.errors_per_pcore.size(); ++pcore) {
      if (result.errors_per_pcore[pcore] > 0) {
        defective[pcore] = true;
      }
    }
  }
  for (size_t pcore = 0; pcore < defective.size(); ++pcore) {
    if (!defective[pcore] || pool_.IsMasked(static_cast<int>(pcore))) {
      continue;
    }
    if (config_.enable_fine_decommission) {
      pool_.MaskCore(static_cast<int>(pcore));
      summary.newly_masked_cores.push_back(static_cast<int>(pcore));
      Emit(EventKind::kCoreMasked, machine_->info().cpu_id, static_cast<int>(pcore));
    } else {
      // Ablation / baseline behaviour: one bad core deprecates the whole part.
      for (int core = 0; core < pool_.total_cores(); ++core) {
        pool_.MaskCore(core);
      }
      break;
    }
  }
  summary.processor_deprecated = pool_.processor_deprecated();
  if (summary.processor_deprecated) {
    Emit(EventKind::kProcessorDeprecated, machine_->info().cpu_id);
  }
}

}  // namespace sdc
