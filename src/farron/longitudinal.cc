#include "src/farron/longitudinal.h"

#include <limits>

#include "src/farron/session.h"

namespace sdc {

LifecycleReport RunLifecycle(Farron& farron, FaultyMachine& machine, const TestSuite& suite,
                             const LifecycleConfig& config) {
  LifecycleReport report;
  DefectInjector* injector = machine.injector();

  // The lifecycle is a thin loop over one long-lived session: each interval runs the
  // workload in steps and then an unbudgeted test round (== Farron::RunRegularRound).
  SessionOptions session_options;
  session_options.protect = true;
  session_options.app_features = config.app_features;
  ProtectionSession session(&farron, &machine, &suite, config.workload,
                            Rng(config.workload.seed), session_options);

  // Month 0: pre-production testing (defects with onset 0 are live; wear-out defects are
  // still dormant).
  if (injector != nullptr) {
    injector->set_age_months(0.0);
  }
  const FarronRoundSummary pre_production = farron.RunPreProduction();
  {
    LifecyclePeriod period;
    period.month = 0.0;
    period.tested = true;
    period.detected = pre_production.report.any_error();
    period.masked_cores = farron.pool().masked_count();
    period.deprecated = pre_production.processor_deprecated;
    if (period.detected) {
      report.first_detection_month = 0.0;
    }
    report.periods.push_back(period);
  }

  const double interval = farron.config().regular_period_months;
  for (double month = interval; month <= config.horizon_months + 1e-9; month += interval) {
    LifecyclePeriod period;
    period.month = month;
    if (farron.pool().processor_deprecated()) {
      period.deprecated = true;
      period.masked_cores = farron.pool().masked_count();
      report.periods.push_back(period);
      continue;  // the part is out of service; nothing runs on it
    }
    // The interval's application workload, with defects at the interval's ending age --
    // a defect whose onset falls inside the interval corrupts the application *before*
    // the round at the interval boundary can catch it (Observation 2's exposure window).
    if (injector != nullptr) {
      injector->set_age_months(month);
    }
    ProtectionReport app;
    if (config.workload.use_reference_loop) {
      app = SimulateProtectedWorkloadReference(farron, machine, suite, config.workload,
                                               config.app_hours_per_interval, true);
    } else {
      session.BeginWorkload(config.app_hours_per_interval);
      while (!session.workload_done()) {
        session.Step(3600.0);
      }
      app = session.FinishWorkload();
    }
    period.app_sdc_events = app.sdc_events;
    period.backoff_seconds = app.backoff_seconds;
    report.total_app_sdc_events += app.sdc_events;
    // The regular round at the end of the interval sees defects aged to `month`.
    if (injector != nullptr) {
      injector->set_age_months(month);
    }
    session.RunTestRound(std::numeric_limits<double>::infinity());
    const FarronRoundSummary round = *session.last_round_summary();
    period.tested = true;
    period.detected = round.report.any_error();
    period.masked_cores = farron.pool().masked_count();
    period.deprecated = round.processor_deprecated;
    if (period.detected && report.first_detection_month < 0.0) {
      report.first_detection_month = month;
    }
    report.periods.push_back(period);
  }
  report.deprecated = farron.pool().processor_deprecated();
  report.final_masked_cores = farron.pool().masked_count();
  return report;
}

void WearoutExposureObserver::BeginStream(const PopulationConfig& /*population*/,
                                          const ScreeningConfig& /*screening*/,
                                          uint64_t shard_count) {
  partials_.assign(shard_count, {});
  exposures_.clear();
}

void WearoutExposureObserver::ObserveShard(const FleetShard& shard,
                                           const ScreeningStats& shard_stats) {
  std::vector<WearoutExposure>& partial = partials_[shard.shard];
  for (const ProcessorOutcome& outcome : shard_stats.detections) {
    if (outcome.stage != TestStage::kRegular) {
      continue;
    }
    // Last-in-storage-order active onset, exactly as the materialized cadence derivation
    // walks DefectsOf(serial) -- equivalence is bitwise, so the tie-break must match.
    double onset = 0.0;
    for (const Defect& defect : shard.DefectsOf(outcome.serial)) {
      if (defect.onset_months > 0.0 && defect.onset_months <= outcome.month) {
        onset = defect.onset_months;
      }
    }
    partial.push_back({outcome.serial, onset, outcome.month});
  }
}

void WearoutExposureObserver::EndStream() {
  size_t total = 0;
  for (const std::vector<WearoutExposure>& partial : partials_) {
    total += partial.size();
  }
  exposures_.reserve(total);
  for (const std::vector<WearoutExposure>& partial : partials_) {
    exposures_.insert(exposures_.end(), partial.begin(), partial.end());
  }
  partials_.clear();
  partials_.shrink_to_fit();
}

double WearoutExposureObserver::MeanExposureMonths() const {
  if (exposures_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const WearoutExposure& exposure : exposures_) {
    sum += exposure.exposure_months();
  }
  return sum / static_cast<double>(exposures_.size());
}

}  // namespace sdc
