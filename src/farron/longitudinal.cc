#include "src/farron/longitudinal.h"

namespace sdc {

LifecycleReport RunLifecycle(Farron& farron, FaultyMachine& machine, const TestSuite& suite,
                             const LifecycleConfig& config) {
  LifecycleReport report;
  DefectInjector* injector = machine.injector();

  // Month 0: pre-production testing (defects with onset 0 are live; wear-out defects are
  // still dormant).
  if (injector != nullptr) {
    injector->set_age_months(0.0);
  }
  const FarronRoundSummary pre_production = farron.RunPreProduction();
  {
    LifecyclePeriod period;
    period.month = 0.0;
    period.tested = true;
    period.detected = pre_production.report.any_error();
    period.masked_cores = farron.pool().masked_count();
    period.deprecated = pre_production.processor_deprecated;
    if (period.detected) {
      report.first_detection_month = 0.0;
    }
    report.periods.push_back(period);
  }

  const double interval = farron.config().regular_period_months;
  for (double month = interval; month <= config.horizon_months + 1e-9; month += interval) {
    LifecyclePeriod period;
    period.month = month;
    if (farron.pool().processor_deprecated()) {
      period.deprecated = true;
      period.masked_cores = farron.pool().masked_count();
      report.periods.push_back(period);
      continue;  // the part is out of service; nothing runs on it
    }
    // The interval's application workload, with defects at the interval's ending age --
    // a defect whose onset falls inside the interval corrupts the application *before*
    // the round at the interval boundary can catch it (Observation 2's exposure window).
    if (injector != nullptr) {
      injector->set_age_months(month);
    }
    const ProtectionReport app = SimulateProtectedWorkload(
        farron, machine, suite, config.workload, config.app_hours_per_interval, true);
    period.app_sdc_events = app.sdc_events;
    period.backoff_seconds = app.backoff_seconds;
    report.total_app_sdc_events += app.sdc_events;
    // The regular round at the end of the interval sees defects aged to `month`.
    if (injector != nullptr) {
      injector->set_age_months(month);
    }
    const FarronRoundSummary round = farron.RunRegularRound(config.app_features);
    period.tested = true;
    period.detected = round.report.any_error();
    period.masked_cores = farron.pool().masked_count();
    period.deprecated = round.processor_deprecated;
    if (period.detected && report.first_detection_month < 0.0) {
      report.first_detection_month = month;
    }
    report.periods.push_back(period);
  }
  report.deprecated = farron.pool().processor_deprecated();
  report.final_masked_cores = farron.pool().masked_count();
  return report;
}

}  // namespace sdc
