#include "src/farron/protection.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/rng.h"
#include "src/farron/session.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/toolchain/testcase.h"

namespace sdc {

ProtectionReport SimulateProtectedWorkload(Farron& farron, FaultyMachine& machine,
                                           const TestSuite& suite, const WorkloadSpec& spec,
                                           double hours, bool protect) {
  if (spec.use_reference_loop) {
    return SimulateProtectedWorkloadReference(farron, machine, suite, spec, hours, protect);
  }
  SessionOptions options;
  options.protect = protect;
  ProtectionSession session(&farron, &machine, &suite, spec, Rng(spec.seed),
                            std::move(options));
  session.BeginWorkload(hours);
  // Any quantum works -- the session contract makes the cut invisible; 15 simulated
  // minutes keeps the loop visibly reentrant without measurable overhead.
  while (!session.workload_done()) {
    session.Step(900.0);
  }
  return session.FinishWorkload();
}

ProtectionReport SimulateProtectedWorkloadReference(Farron& farron, FaultyMachine& machine,
                                                    const TestSuite& suite,
                                                    const WorkloadSpec& spec, double hours,
                                                    bool protect) {
  ProtectionReport report;
  report.simulated_hours = hours;
  Processor& cpu = machine.cpu();
  Testcase& kernel = suite.at(spec.kernel_case_index);
  // Batch granularity ~0.5 s of represented execution keeps the control loop fine enough to
  // clip short excursions while staying cheap to simulate.
  cpu.SetTimeScale(2e5);

  std::vector<int> usable = farron.pool().UsableCores();
  if (usable.empty()) {
    // Deprecated processor: the workload would run elsewhere; nothing to simulate.
    return report;
  }
  const int smt = cpu.spec().threads_per_core;
  int app_pcore = usable.front();
  for (int pcore : usable) {
    if (pcore == spec.preferred_pcore) {
      app_pcore = pcore;
    }
  }
  Rng rng(spec.seed);
  std::vector<SdcRecord> records;
  TestContext context;
  context.machine = &machine;
  context.rng = &rng;
  context.records = &records;
  context.max_records = 4096;
  context.cpu_id = machine.info().cpu_id;
  context.lcores = {app_pcore * smt};
  if (kernel.info().multithreaded) {
    int partner = (app_pcore + 1) % cpu.spec().physical_cores;
    for (int pcore : usable) {
      if (pcore != app_pcore) {
        partner = pcore;
        break;
      }
    }
    context.lcores.push_back(partner * smt);
  }

  auto set_utilization = [&](double utilization) {
    machine.SetAllCoreUtilization(0.0);
    for (int pcore : usable) {
      cpu.SetCoreUtilization(pcore, utilization);
    }
  };
  set_utilization(spec.base_utilization);
  cpu.thermal().SettleToSteadyState(
      std::vector<double>(static_cast<size_t>(cpu.spec().physical_cores), 0.0));

  // Sim-domain trace of the serial control loop, accumulated locally and merged once at
  // the end: one span for the whole run on the simulated clock (microseconds), plus one
  // instant per backoff transition. The loop is serial, so the delta is trivially in
  // order; the simulated clock makes it deterministic.
  TraceRecorder* trace = farron.effective_trace();
  TraceDelta trace_delta;
  const double run_start_seconds = cpu.now_seconds();

  const double end_seconds = cpu.now_seconds() + hours * 3600.0;
  double burst_until = -1.0;
  bool throttled = false;
  while (cpu.now_seconds() < end_seconds) {
    // Workload phase: steady load with occasional sustained bursts.
    if (cpu.now_seconds() > burst_until && rng.NextBernoulli(spec.burst_probability)) {
      burst_until = cpu.now_seconds() + spec.burst_seconds;
    }
    const bool bursting = cpu.now_seconds() <= burst_until;
    double base = spec.base_utilization;
    if (spec.diurnal_amplitude > 0.0) {
      base += spec.diurnal_amplitude *
              std::sin(2.0 * M_PI * cpu.now_seconds() / spec.diurnal_period_seconds);
      base = std::clamp(base, 0.0, 1.0);
    }
    double utilization = bursting ? spec.burst_utilization : base;
    if (throttled) {
      utilization = std::min(utilization, farron.backoff_utilization());
    }
    set_utilization(utilization);

    kernel.RunBatch(context);
    double busy = 0.0;
    for (int lcore : context.lcores) {
      busy = std::max(busy, cpu.ConsumeBusySeconds(cpu.pcore_of(lcore)));
    }
    busy = std::max(busy, 1e-8);
    // Throttled or lightly loaded execution stretches the same work over more wall time.
    const double dt = busy * cpu.time_scale() / std::max(utilization, 0.05);
    cpu.AdvanceSeconds(dt);
    if (throttled) {
      report.backoff_seconds += dt;
    }

    double hottest = 0.0;
    for (int pcore : usable) {
      hottest = std::max(hottest, cpu.core_temperature(pcore));
    }
    report.max_temperature = std::max(report.max_temperature, hottest);
    if (protect) {
      const Farron::ControlAction action = farron.ControlStep(hottest);
      const bool should_throttle = action == Farron::ControlAction::kWorkloadBackoff;
      if (action == Farron::ControlAction::kCoolingBoosted) {
        ++report.cooling_boosts;
      }
      if (should_throttle != throttled && farron.event_log() != nullptr) {
        farron.event_log()->Record(
            should_throttle ? EventKind::kBackoffEngaged : EventKind::kBackoffReleased,
            cpu.now_seconds(), machine.info().cpu_id, -1, hottest);
      }
      if (should_throttle != throttled && trace != nullptr) {
        TraceEvent instant = MakeTraceInstant(
            should_throttle ? "backoff.engaged" : "backoff.released", "protection",
            kTraceTrackProtection, cpu.now_seconds() * 1e6);
        instant.num_args.emplace_back("temperature_celsius", hottest);
        trace_delta.Add(std::move(instant));
      }
      if (should_throttle && !throttled) {
        ++report.backoff_engagements;
      }
      throttled = should_throttle;
    }
  }
  report.sdc_events = context.errors_found;
  report.final_boundary = farron.boundary().boundary_celsius();
  report.final_cooling_boost = cpu.thermal().cooling_boost();
  set_utilization(spec.base_utilization);
  // One delta per simulated run: the loop above is serial, so a single end-of-run summary
  // keeps the registry cheap and the values a pure function of (machine, spec, hours).
  // Per-event counters ("events.*") flow separately through EventLog::AttachMetrics.
  if (MetricsRegistry* metrics = farron.effective_metrics(); metrics != nullptr) {
    MetricsDelta delta;
    delta.Add("protection.runs");
    delta.Add("protection.sdc_events", report.sdc_events);
    delta.Add("protection.backoff_engagements", report.backoff_engagements);
    delta.Add("protection.cooling_boosts", report.cooling_boosts);
    delta.Set("protection.max_temperature_celsius", report.max_temperature);
    delta.Set("protection.final_boundary_celsius", report.final_boundary);
    delta.Set("protection.backoff_seconds_per_hour",
              hours > 0.0 ? report.backoff_seconds / hours : 0.0);
    metrics->MergeDelta(delta);
  }
  if (trace != nullptr) {
    TraceEvent span = MakeTraceSpan("protection.run", "protection",
                                    kTraceTrackProtection, run_start_seconds * 1e6,
                                    (cpu.now_seconds() - run_start_seconds) * 1e6);
    span.num_args.emplace_back("sdc_events", static_cast<double>(report.sdc_events));
    span.num_args.emplace_back("backoff_engagements",
                               static_cast<double>(report.backoff_engagements));
    span.num_args.emplace_back("final_boundary_celsius", report.final_boundary);
    TraceDelta run_delta;
    run_delta.Add(std::move(span));
    run_delta.MergeFrom(std::move(trace_delta));  // span first, then the transitions
    trace->MergeDelta(std::move(run_delta));
  }
  return report;
}

}  // namespace sdc
