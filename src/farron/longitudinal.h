// Longitudinal lifecycle simulation: one processor, months of production, regular test
// rounds at the configured cadence, and application workload in between -- the full
// Figure 10 state machine over time. Supports defects that develop mid-life
// (onset_months > 0): the part passes pre-production, serves cleanly, starts corrupting
// after onset, and is caught at the next regular round (or protected by temperature
// control until then).

#ifndef SDC_SRC_FARRON_LONGITUDINAL_H_
#define SDC_SRC_FARRON_LONGITUDINAL_H_

#include <cstdint>
#include <vector>

#include "src/farron/farron.h"
#include "src/farron/protection.h"

namespace sdc {

struct LifecycleConfig {
  double horizon_months = 32.0;
  // Simulated application hours per inter-round interval (a sample of the interval, not
  // wall-clock months -- the defect model is time-invariant between rounds except for
  // onset gating).
  double app_hours_per_interval = 2.0;
  WorkloadSpec workload;
  std::vector<Feature> app_features;
};

struct LifecyclePeriod {
  double month = 0.0;
  bool tested = false;              // a regular round ran at the start of this period
  bool detected = false;            // ...and it found errors
  uint64_t app_sdc_events = 0;      // corruptions reaching the application this period
  double backoff_seconds = 0.0;
  int masked_cores = 0;             // cumulative
  bool deprecated = false;
};

struct LifecycleReport {
  std::vector<LifecyclePeriod> periods;
  uint64_t total_app_sdc_events = 0;
  double first_detection_month = -1.0;  // negative: never detected
  bool deprecated = false;
  int final_masked_cores = 0;

  // Months between the first defect's onset and its detection (the exposure window the
  // cadence trade-off bench studies); negative when never detected or nothing to detect.
  double DetectionLatencyMonths(double onset_months) const {
    return first_detection_month < 0.0 ? -1.0 : first_detection_month - onset_months;
  }
};

// Runs the lifecycle: at every regular-period boundary a prioritized round executes (after
// pre-production at month 0), and between rounds the workload runs under Farron's
// triggering-condition control. The machine's injector age advances with simulated months
// so onset-gated defects activate mid-life.
LifecycleReport RunLifecycle(Farron& farron, FaultyMachine& machine, const TestSuite& suite,
                             const LifecycleConfig& config);

}  // namespace sdc

#endif  // SDC_SRC_FARRON_LONGITUDINAL_H_
