// Longitudinal lifecycle simulation: one processor, months of production, regular test
// rounds at the configured cadence, and application workload in between -- the full
// Figure 10 state machine over time. Supports defects that develop mid-life
// (onset_months > 0): the part passes pre-production, serves cleanly, starts corrupting
// after onset, and is caught at the next regular round (or protected by temperature
// control until then).

#ifndef SDC_SRC_FARRON_LONGITUDINAL_H_
#define SDC_SRC_FARRON_LONGITUDINAL_H_

#include <cstdint>
#include <vector>

#include "src/farron/farron.h"
#include "src/farron/protection.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/stream.h"

namespace sdc {

struct LifecycleConfig {
  double horizon_months = 32.0;
  // Simulated application hours per inter-round interval (a sample of the interval, not
  // wall-clock months -- the defect model is time-invariant between rounds except for
  // onset gating).
  double app_hours_per_interval = 2.0;
  WorkloadSpec workload;
  std::vector<Feature> app_features;
};

struct LifecyclePeriod {
  double month = 0.0;
  bool tested = false;              // a regular round ran at the start of this period
  bool detected = false;            // ...and it found errors
  uint64_t app_sdc_events = 0;      // corruptions reaching the application this period
  double backoff_seconds = 0.0;
  int masked_cores = 0;             // cumulative
  bool deprecated = false;
};

struct LifecycleReport {
  std::vector<LifecyclePeriod> periods;
  uint64_t total_app_sdc_events = 0;
  double first_detection_month = -1.0;  // negative: never detected
  bool deprecated = false;
  int final_masked_cores = 0;

  // Months between the first defect's onset and its detection (the exposure window the
  // cadence trade-off bench studies); negative when never detected or nothing to detect.
  double DetectionLatencyMonths(double onset_months) const {
    return first_detection_month < 0.0 ? -1.0 : first_detection_month - onset_months;
  }
};

// Runs the lifecycle: at every regular-period boundary a prioritized round executes (after
// pre-production at month 0), and between rounds the workload runs under Farron's
// triggering-condition control. The machine's injector age advances with simulated months
// so onset-gated defects activate mid-life.
LifecycleReport RunLifecycle(Farron& farron, FaultyMachine& machine, const TestSuite& suite,
                             const LifecycleConfig& config);

// ---------------------------------------------------------------------------------------
// Fleet-scan consumer for the cadence study (bench/cadence_tradeoff): for every
// regular-round detection, the exposure window between the wear-out onset that armed the
// defect and the month the round caught it.

struct WearoutExposure {
  uint64_t serial = 0;
  // Onset month of the defect that armed the part: the last defect in storage order with
  // 0 < onset_months <= detection_month; 0 when the part failed from manufacturing
  // defects alone (exposed since deployment).
  double onset_months = 0.0;
  double detection_month = 0.0;

  double exposure_months() const { return detection_month - onset_months; }
};

// Streaming derivation of the exposure windows. The materialized cadence study random-
// accesses fleet.DefectsOf(serial) after Run; a streamed fleet has no such access once a
// shard is gone, so this observer derives the same records shard by shard while the
// defect spans are alive. Per-shard lists are concatenated in shard order, so exposures()
// equals the materialized serial-order derivation exactly (tests/stream_test.cc).
class WearoutExposureObserver : public ShardOutcomeObserver {
 public:
  void BeginStream(const PopulationConfig& population, const ScreeningConfig& screening,
                   uint64_t shard_count) override;
  void ObserveShard(const FleetShard& shard, const ScreeningStats& shard_stats) override;
  void EndStream() override;

  // One record per regular-round detection, ascending by serial; valid after EndStream.
  const std::vector<WearoutExposure>& exposures() const { return exposures_; }
  double MeanExposureMonths() const;

 private:
  std::vector<std::vector<WearoutExposure>> partials_;
  std::vector<WearoutExposure> exposures_;
};

}  // namespace sdc

#endif  // SDC_SRC_FARRON_LONGITUDINAL_H_
