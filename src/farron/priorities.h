// Testcase prioritization (Section 7.1 / Observation 11).
//
// Three priority levels: "basic" testcases have never found a fault in large-scale history;
// "active" testcases have proven track records against some defective feature; "suspected"
// testcases have detected errors on this very processor. Regular-test plans allocate most
// resources to suspected and active testcases whose targeted feature the protected
// application actually uses, and sweep the rest in best-effort mode.

#ifndef SDC_SRC_FARRON_PRIORITIES_H_
#define SDC_SRC_FARRON_PRIORITIES_H_

#include <array>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "src/toolchain/framework.h"
#include "src/toolchain/registry.h"

namespace sdc {

enum class TestPriority {
  kBasic,
  kActive,
  kSuspected,
};

std::string TestPriorityName(TestPriority priority);

struct PriorityPlanParams {
  double suspected_seconds = 60.0;
  double active_seconds = 40.0;
  double basic_seconds = 1.3;  // best-effort sweep
  // Global scale on all durations (adaptive test-duration knob: lower temperature
  // boundaries need less testing, Section 7.1).
  double duration_scale = 1.0;
};

// Fleet-level scheduling weights for the budgeted scrubber (src/scrub): the same
// prioritization idea as the per-processor plan above, lifted one level up -- which
// *processors* get the next funded test round, instead of which testcases get the next
// slice. Scores multiply three factors and the scrubber funds the highest first:
//   score = arch_weight[arch] * temperature_factor * (1 + aging_weight * epochs_waiting)
struct ScrubSchedulerParams {
  // Relative weight per micro-architecture M1..M9, defaulting to Table 2's detected
  // failure rates (in permyriad): architectures that historically fail more get their
  // rounds funded sooner (Observation 11 applied across the fleet).
  std::array<double, 9> arch_weight = {4.619, 0.352, 2.649, 0.082, 0.759,
                                       3.251, 1.599, 9.290, 4.646};
  // Temperature factor: 1 + per_degree * max(0, observed_peak - reference). Hotter parts
  // trigger defects at higher rates (Figures 8-9), so their rounds detect more per
  // second of budget. Parts with no observed sample score a neutral 1.0.
  double temperature_reference_celsius = 55.0;
  double temperature_weight_per_degree = 0.05;
  // Starvation-free aging: every epoch a part waits unfunded inflates its score, so any
  // positive-weight part is eventually funded no matter how cold or reliable its arch.
  double aging_weight_per_epoch = 0.5;
};

class PriorityTracker {
 public:
  // `suite` must outlive the tracker. All testcases start as basic.
  explicit PriorityTracker(const TestSuite* suite);

  // Seeds "active" priorities from fleet history (testcase ids that found faults in
  // large-scale tests). Unknown ids are ignored.
  void MarkActiveFromHistory(const std::vector<std::string>& testcase_ids);

  // Promotes a testcase to "suspected" after it failed on this processor.
  void MarkSuspected(const std::string& testcase_id);

  // Promotes every failed testcase of `report` to suspected.
  void AbsorbReport(const RunReport& report);

  TestPriority priority(size_t index) const { return priorities_[index]; }
  size_t CountWithPriority(TestPriority priority) const;
  std::vector<size_t> IndicesWithPriority(TestPriority priority) const;

  // Builds a prioritized regular-test plan: suspected and active testcases whose target
  // feature appears in `app_features` (empty = all features) get full slices, everything
  // else gets the best-effort slice. Suspected cases are scheduled first.
  std::vector<TestPlanEntry> BuildRegularPlan(const std::vector<Feature>& app_features,
                                              const PriorityPlanParams& params) const;

  // Total duration of a plan in seconds.
  static double PlanSeconds(const std::vector<TestPlanEntry>& plan);

  // Persistence: history data is the whole point of prioritization (Observation 11), so
  // priorities survive process restarts. Save writes one "priority<TAB>id" line per
  // non-basic testcase; Load restores them (unknown ids are ignored, and suspected beats
  // active on conflict).
  void Save(std::ostream& out) const;
  void Load(std::istream& in);

 private:
  bool FeatureRelevant(Feature feature, const std::vector<Feature>& app_features) const;

  const TestSuite* suite_;
  std::vector<TestPriority> priorities_;
};

}  // namespace sdc

#endif  // SDC_SRC_FARRON_PRIORITIES_H_
