// Testcase prioritization (Section 7.1 / Observation 11).
//
// Three priority levels: "basic" testcases have never found a fault in large-scale history;
// "active" testcases have proven track records against some defective feature; "suspected"
// testcases have detected errors on this very processor. Regular-test plans allocate most
// resources to suspected and active testcases whose targeted feature the protected
// application actually uses, and sweep the rest in best-effort mode.

#ifndef SDC_SRC_FARRON_PRIORITIES_H_
#define SDC_SRC_FARRON_PRIORITIES_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "src/toolchain/framework.h"
#include "src/toolchain/registry.h"

namespace sdc {

enum class TestPriority {
  kBasic,
  kActive,
  kSuspected,
};

std::string TestPriorityName(TestPriority priority);

struct PriorityPlanParams {
  double suspected_seconds = 60.0;
  double active_seconds = 40.0;
  double basic_seconds = 1.3;  // best-effort sweep
  // Global scale on all durations (adaptive test-duration knob: lower temperature
  // boundaries need less testing, Section 7.1).
  double duration_scale = 1.0;
};

class PriorityTracker {
 public:
  // `suite` must outlive the tracker. All testcases start as basic.
  explicit PriorityTracker(const TestSuite* suite);

  // Seeds "active" priorities from fleet history (testcase ids that found faults in
  // large-scale tests). Unknown ids are ignored.
  void MarkActiveFromHistory(const std::vector<std::string>& testcase_ids);

  // Promotes a testcase to "suspected" after it failed on this processor.
  void MarkSuspected(const std::string& testcase_id);

  // Promotes every failed testcase of `report` to suspected.
  void AbsorbReport(const RunReport& report);

  TestPriority priority(size_t index) const { return priorities_[index]; }
  size_t CountWithPriority(TestPriority priority) const;
  std::vector<size_t> IndicesWithPriority(TestPriority priority) const;

  // Builds a prioritized regular-test plan: suspected and active testcases whose target
  // feature appears in `app_features` (empty = all features) get full slices, everything
  // else gets the best-effort slice. Suspected cases are scheduled first.
  std::vector<TestPlanEntry> BuildRegularPlan(const std::vector<Feature>& app_features,
                                              const PriorityPlanParams& params) const;

  // Total duration of a plan in seconds.
  static double PlanSeconds(const std::vector<TestPlanEntry>& plan);

  // Persistence: history data is the whole point of prioritization (Observation 11), so
  // priorities survive process restarts. Save writes one "priority<TAB>id" line per
  // non-basic testcase; Load restores them (unknown ids are ignored, and suspected beats
  // active on conflict).
  void Save(std::ostream& out) const;
  void Load(std::istream& in);

 private:
  bool FeatureRelevant(Feature feature, const std::vector<Feature>& app_features) const;

  const TestSuite* suite_;
  std::vector<TestPriority> priorities_;
};

}  // namespace sdc

#endif  // SDC_SRC_FARRON_PRIORITIES_H_
