#include "src/farron/session.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "src/telemetry/metrics.h"

namespace sdc {

ProtectionSession::ProtectionSession(Farron* farron, FaultyMachine* machine,
                                     const TestSuite* suite, const WorkloadSpec& spec,
                                     Rng workload_rng, SessionOptions options)
    : farron_(farron),
      machine_(machine),
      suite_(suite),
      spec_(spec),
      options_(std::move(options)),
      rng_(workload_rng),
      next_round_due_months_(farron->config().regular_period_months) {}

void ProtectionSession::SetUtilization(double utilization) {
  machine_->SetAllCoreUtilization(0.0);
  for (int pcore : usable_) {
    machine_->cpu().SetCoreUtilization(pcore, utilization);
  }
}

void ProtectionSession::BeginWorkload(double hours) {
  assert(!workload_active_);
  report_ = ProtectionReport{};
  report_.simulated_hours = hours;
  Processor& cpu = machine_->cpu();
  kernel_ = &suite_->at(spec_.kernel_case_index);
  // Batch granularity ~0.5 s of represented execution keeps the control loop fine enough
  // to clip short excursions while staying cheap to simulate.
  cpu.SetTimeScale(2e5);

  workload_active_ = true;
  usable_ = farron_->pool().UsableCores();
  if (usable_.empty()) {
    // Deprecated processor: the workload would run elsewhere; nothing to simulate.
    workload_degenerate_ = true;
    return;
  }
  workload_degenerate_ = false;
  const int smt = cpu.spec().threads_per_core;
  int app_pcore = usable_.front();
  for (int pcore : usable_) {
    if (pcore == spec_.preferred_pcore) {
      app_pcore = pcore;
    }
  }
  if (options_.reseed_workload_each_run) {
    rng_ = Rng(spec_.seed);
  }
  records_.clear();
  context_ = TestContext{};
  context_.machine = machine_;
  context_.rng = &rng_;
  context_.records = &records_;
  context_.max_records = 4096;
  context_.cpu_id = machine_->info().cpu_id;
  context_.lcores = {app_pcore * smt};
  if (kernel_->info().multithreaded) {
    int partner = (app_pcore + 1) % cpu.spec().physical_cores;
    for (int pcore : usable_) {
      if (pcore != app_pcore) {
        partner = pcore;
        break;
      }
    }
    context_.lcores.push_back(partner * smt);
  }

  SetUtilization(spec_.base_utilization);
  cpu.thermal().SettleToSteadyState(
      std::vector<double>(static_cast<size_t>(cpu.spec().physical_cores), 0.0));

  // Sim-domain trace of the serial control loop, accumulated locally and merged once at
  // the end: one span for the whole run on the simulated clock (microseconds), plus one
  // instant per backoff transition. The loop is serial, so the delta is trivially in
  // order; the simulated clock makes it deterministic.
  trace_ = farron_->effective_trace();
  trace_delta_ = TraceDelta{};
  run_start_seconds_ = cpu.now_seconds();
  end_seconds_ = cpu.now_seconds() + hours * 3600.0;
  burst_until_ = -1.0;
  throttled_ = false;
}

bool ProtectionSession::workload_done() const {
  if (!workload_active_) {
    return false;
  }
  return workload_degenerate_ || machine_->cpu().now_seconds() >= end_seconds_;
}

double ProtectionSession::Step(double sim_seconds) {
  assert(workload_active_);
  if (workload_degenerate_) {
    return 0.0;
  }
  Processor& cpu = machine_->cpu();
  const double step_start = cpu.now_seconds();
  const double step_end = step_start + sim_seconds;
  // An iteration runs exactly when the run isn't over; the quantum only decides when we
  // hand control back, never how far an iteration advances -- so any sequence of Step
  // calls executes the same iterations as the reference loop's single `while`.
  while (cpu.now_seconds() < end_seconds_ && cpu.now_seconds() < step_end) {
    StepOnce();
  }
  return cpu.now_seconds() - step_start;
}

void ProtectionSession::StepOnce() {
  Processor& cpu = machine_->cpu();
  // Workload phase: steady load with occasional sustained bursts.
  if (cpu.now_seconds() > burst_until_ && rng_.NextBernoulli(spec_.burst_probability)) {
    burst_until_ = cpu.now_seconds() + spec_.burst_seconds;
  }
  const bool bursting = cpu.now_seconds() <= burst_until_;
  double base = spec_.base_utilization;
  if (spec_.diurnal_amplitude > 0.0) {
    base += spec_.diurnal_amplitude *
            std::sin(2.0 * M_PI * cpu.now_seconds() / spec_.diurnal_period_seconds);
    base = std::clamp(base, 0.0, 1.0);
  }
  double utilization = bursting ? spec_.burst_utilization : base;
  if (throttled_) {
    utilization = std::min(utilization, farron_->backoff_utilization());
  }
  SetUtilization(utilization);

  kernel_->RunBatch(context_);
  double busy = 0.0;
  for (int lcore : context_.lcores) {
    busy = std::max(busy, cpu.ConsumeBusySeconds(cpu.pcore_of(lcore)));
  }
  busy = std::max(busy, 1e-8);
  // Throttled or lightly loaded execution stretches the same work over more wall time.
  const double dt = busy * cpu.time_scale() / std::max(utilization, 0.05);
  cpu.AdvanceSeconds(dt);
  if (throttled_) {
    report_.backoff_seconds += dt;
  }

  double hottest = 0.0;
  for (int pcore : usable_) {
    hottest = std::max(hottest, cpu.core_temperature(pcore));
  }
  report_.max_temperature = std::max(report_.max_temperature, hottest);
  if (options_.protect) {
    const Farron::ControlAction action = farron_->ControlStep(hottest);
    const bool should_throttle = action == Farron::ControlAction::kWorkloadBackoff;
    if (action == Farron::ControlAction::kCoolingBoosted) {
      ++report_.cooling_boosts;
    }
    if (should_throttle != throttled_ && farron_->event_log() != nullptr) {
      farron_->event_log()->Record(
          should_throttle ? EventKind::kBackoffEngaged : EventKind::kBackoffReleased,
          cpu.now_seconds(), machine_->info().cpu_id, -1, hottest);
    }
    if (should_throttle != throttled_ && trace_ != nullptr) {
      TraceEvent instant = MakeTraceInstant(
          should_throttle ? "backoff.engaged" : "backoff.released", "protection",
          kTraceTrackProtection, cpu.now_seconds() * 1e6);
      instant.num_args.emplace_back("temperature_celsius", hottest);
      trace_delta_.Add(std::move(instant));
    }
    if (should_throttle && !throttled_) {
      ++report_.backoff_engagements;
    }
    throttled_ = should_throttle;
  }
}

ProtectionReport ProtectionSession::FinishWorkload() {
  assert(workload_done());
  workload_active_ = false;
  if (workload_degenerate_) {
    // The reference loop's early return: no teardown, no telemetry.
    return report_;
  }
  Processor& cpu = machine_->cpu();
  report_.sdc_events = context_.errors_found;
  report_.final_boundary = farron_->boundary().boundary_celsius();
  report_.final_cooling_boost = cpu.thermal().cooling_boost();
  SetUtilization(spec_.base_utilization);
  // One delta per simulated run: the loop above is serial, so a single end-of-run summary
  // keeps the registry cheap and the values a pure function of (machine, spec, hours).
  // Per-event counters ("events.*") flow separately through EventLog::AttachMetrics.
  if (MetricsRegistry* metrics = farron_->effective_metrics(); metrics != nullptr) {
    MetricsDelta delta;
    delta.Add("protection.runs");
    delta.Add("protection.sdc_events", report_.sdc_events);
    delta.Add("protection.backoff_engagements", report_.backoff_engagements);
    delta.Add("protection.cooling_boosts", report_.cooling_boosts);
    delta.Set("protection.max_temperature_celsius", report_.max_temperature);
    delta.Set("protection.final_boundary_celsius", report_.final_boundary);
    delta.Set("protection.backoff_seconds_per_hour",
              report_.simulated_hours > 0.0
                  ? report_.backoff_seconds / report_.simulated_hours
                  : 0.0);
    metrics->MergeDelta(delta);
  }
  if (trace_ != nullptr) {
    TraceEvent span = MakeTraceSpan("protection.run", "protection", kTraceTrackProtection,
                                    run_start_seconds_ * 1e6,
                                    (cpu.now_seconds() - run_start_seconds_) * 1e6);
    span.num_args.emplace_back("sdc_events", static_cast<double>(report_.sdc_events));
    span.num_args.emplace_back("backoff_engagements",
                               static_cast<double>(report_.backoff_engagements));
    span.num_args.emplace_back("final_boundary_celsius", report_.final_boundary);
    TraceDelta run_delta;
    run_delta.Add(std::move(span));
    run_delta.MergeFrom(std::move(trace_delta_));  // span first, then the transitions
    trace_->MergeDelta(std::move(run_delta));
  }
  last_workload_max_temperature_ = report_.max_temperature;
  workload_sdc_events_ += report_.sdc_events;
  return report_;
}

std::vector<TestPlanEntry> ProtectionSession::BuildRoundPlan(bool advance_cursor) {
  const FarronConfig& config = farron_->config();
  std::vector<TestPlanEntry> plan;
  if (config.enable_priorities) {
    PriorityPlanParams params = config.plan_params;
    params.duration_scale = farron_->DurationScale();
    plan = farron_->priorities().BuildRegularPlan(options_.app_features, params);
  } else {
    plan = farron_->framework_.EqualPlan(60.0);  // ablation: equal allocation
  }
  const size_t window = options_.max_cases_per_round;
  if (window == 0 || plan.size() <= window) {
    return plan;
  }
  // Opportunistic ripple testing: each round covers the next `window` entries of the
  // prioritized plan, wrapping around, so the whole suite is swept across rounds.
  std::vector<TestPlanEntry> cut;
  cut.reserve(window);
  for (size_t i = 0; i < window; ++i) {
    cut.push_back(plan[(ripple_cursor_ + i) % plan.size()]);
  }
  if (advance_cursor) {
    ripple_cursor_ = (ripple_cursor_ + window) % plan.size();
  }
  return cut;
}

double ProtectionSession::PendingRoundSeconds() const {
  if (!round_in_progress_) {
    return 0.0;
  }
  double pending = 0.0;
  for (size_t i = round_next_entry_; i < round_plan_.size(); ++i) {
    pending += round_plan_[i].duration_seconds;
  }
  return pending;
}

double ProtectionSession::NextRoundPlanSeconds() const {
  if (farron_->pool().processor_deprecated()) {
    return 0.0;
  }
  if (round_in_progress_) {
    return PendingRoundSeconds();
  }
  // Plan building is pure (no RNG, no machine state); pricing must not rotate the window.
  return PriorityTracker::PlanSeconds(
      const_cast<ProtectionSession*>(this)->BuildRoundPlan(/*advance_cursor=*/false));
}

void ProtectionSession::AccountDiagnosis(const FarronRoundSummary& summary) {
  // AbsorbFailures runs the targeted plan only on failing rounds; its plan is exactly the
  // post-absorb suspected set at targeted_per_case_seconds each.
  if (summary.report.any_error()) {
    diagnosis_seconds_ +=
        static_cast<double>(farron_->priorities().CountWithPriority(TestPriority::kSuspected)) *
        farron_->config().targeted_per_case_seconds;
  }
}

double ProtectionSession::RunTestRound(double budget_seconds) {
  const FarronConfig& config = farron_->config();
  if (farron_->pool().processor_deprecated()) {
    FarronRoundSummary summary;
    summary.processor_deprecated = true;
    last_round_summary_ = std::move(summary);
    round_in_progress_ = false;
    return 0.0;
  }
  if (!round_in_progress_) {
    std::vector<TestPlanEntry> plan = BuildRoundPlan(/*advance_cursor=*/true);
    const double plan_seconds = PriorityTracker::PlanSeconds(plan);
    if (options_.max_cases_per_round == 0 && budget_seconds >= plan_seconds) {
      // The budget covers the whole prioritized plan: run the round exactly as Farron
      // does -- one RunPlan (burn-in applied once), identical report and event sequence.
      last_round_summary_ = farron_->RunRegularRound(options_.app_features);
      scheduled_seconds_ += last_round_summary_->plan_seconds;
      AccountDiagnosis(*last_round_summary_);
      ++completed_rounds_;
      next_round_due_months_ += config.regular_period_months;
      return last_round_summary_->plan_seconds;
    }
    round_plan_ = std::move(plan);
    round_plan_seconds_ = plan_seconds;
    round_next_entry_ = 0;
    round_report_ = RunReport{};
    round_in_progress_ = true;
    farron_->Emit(EventKind::kRoundStarted, "regular", -1, round_plan_seconds_);
  }
  // Fund the longest prefix of remaining entries that fits the budget -- never overdraft,
  // so a scheduler dispensing grants can trust consumed <= granted.
  size_t end = round_next_entry_;
  double chunk_seconds = 0.0;
  while (end < round_plan_.size() &&
         chunk_seconds + round_plan_[end].duration_seconds <= budget_seconds + 1e-9) {
    chunk_seconds += round_plan_[end].duration_seconds;
    ++end;
  }
  if (end == round_next_entry_) {
    return 0.0;  // budget does not cover the next entry; the round stays open
  }
  const std::vector<TestPlanEntry> chunk(round_plan_.begin() + round_next_entry_,
                                         round_plan_.begin() + end);
  RunReport chunk_report = farron_->RunPlanOnContext(chunk, farron_->MakeRunConfig());
  round_report_.results.insert(round_report_.results.end(),
                               std::make_move_iterator(chunk_report.results.begin()),
                               std::make_move_iterator(chunk_report.results.end()));
  round_report_.records.insert(round_report_.records.end(),
                               std::make_move_iterator(chunk_report.records.begin()),
                               std::make_move_iterator(chunk_report.records.end()));
  round_report_.total_wall_seconds += chunk_report.total_wall_seconds;
  round_next_entry_ = end;
  scheduled_seconds_ += chunk_seconds;
  if (round_next_entry_ == round_plan_.size()) {
    FinishRound();
  }
  return chunk_seconds;
}

void ProtectionSession::FinishRound() {
  round_in_progress_ = false;
  FarronRoundSummary summary;
  summary.report = std::move(round_report_);
  round_report_ = RunReport{};
  summary.plan_seconds = round_plan_seconds_;
  farron_->last_plan_seconds_ = round_plan_seconds_;  // keeps TestOverhead() coherent
  farron_->AbsorbFailures(summary.report, summary);
  AccountDiagnosis(summary);
  farron_->Emit(EventKind::kRoundCompleted, "regular", -1,
                static_cast<double>(summary.report.total_errors()));
  ++completed_rounds_;
  next_round_due_months_ += farron_->config().regular_period_months;
  last_round_summary_ = std::move(summary);
}

}  // namespace sdc
