// Adaptive temperature boundary (Section 7.1).
//
// Farron keeps a window of recent temperature samples. When a sample exceeds the current
// workload-backoff boundary, the controller checks the window: if more than half of the
// recorded samples exceed the boundary, the temperature is evidently normal for this
// application in this environment, so the boundary is raised instead of punishing the
// workload; otherwise workload backoff engages until the temperature drops back under the
// boundary. This is how Farron "autonomously learns the standard working temperature".

#ifndef SDC_SRC_FARRON_BOUNDARY_H_
#define SDC_SRC_FARRON_BOUNDARY_H_

#include <cstddef>
#include <deque>

namespace sdc {

enum class BoundaryDecision {
  kNormal,   // temperature under the boundary; run at full speed
  kBackoff,  // boundary exceeded abnormally; throttle the workload
  kRaised,   // boundary exceeded persistently; boundary learned upward instead
};

class AdaptiveBoundary {
 public:
  AdaptiveBoundary(double initial_celsius, size_t window_size, double raise_step_celsius = 1.0);

  // Records one temperature sample and returns the control decision.
  BoundaryDecision Observe(double temperature_celsius);

  double boundary_celsius() const { return boundary_celsius_; }
  size_t window_fill() const { return window_.size(); }

  // Disables the adaptive raise (ablation: fixed boundary).
  void set_adaptive(bool adaptive) { adaptive_ = adaptive; }

 private:
  double boundary_celsius_;
  size_t window_size_;
  double raise_step_celsius_;
  bool adaptive_ = true;
  bool backoff_active_ = false;
  // One entry per observation: whether the sample showed boundary pressure (exceeding, or
  // held just below the boundary by an active backoff).
  std::deque<bool> window_;
};

}  // namespace sdc

#endif  // SDC_SRC_FARRON_BOUNDARY_H_
