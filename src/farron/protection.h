// Closed-loop protection simulation (Section 7.2): an application workload replayed against
// a (possibly defective) machine while Farron's triggering-condition controller watches core
// temperatures and applies workload backoff. Used to evaluate how Farron suppresses "tricky"
// SDCs that regular testing cannot cover in one round, and to measure the temperature-control
// overhead (Table 4's Control column, the paper's 0.864 s/hour backoff headline).

#ifndef SDC_SRC_FARRON_PROTECTION_H_
#define SDC_SRC_FARRON_PROTECTION_H_

#include <cstdint>

#include "src/farron/farron.h"
#include "src/fault/machine.h"
#include "src/toolchain/registry.h"

namespace sdc {

struct WorkloadSpec {
  // Toolchain testcase used as the impacted-workload simulator (Section 2.3's second role).
  size_t kernel_case_index = 0;
  // Steady utilization the application imposes on every usable core.
  double base_utilization = 0.45;
  // Diurnal modulation: utilization swings +/- amplitude around the base over one period
  // (production services breathe with the day; 0 disables).
  double diurnal_amplitude = 0.0;
  double diurnal_period_seconds = 86400.0;
  // Occasional sustained load bursts (batch-probability, duration, utilization) that push
  // temperatures over the boundary -- the excursions backoff must clip.
  double burst_probability = 0.002;
  double burst_seconds = 90.0;
  double burst_utilization = 1.0;
  // Physical core the application prefers to run on; -1 = first usable core. If the
  // preferred core was decommissioned, the pool's first usable core is used instead.
  int preferred_pcore = -1;
  uint64_t seed = 5;
  // Escape hatch: run the retained monolithic loop instead of the ProtectionSession
  // decomposition (src/farron/session.h). The two are byte-identical -- report, event
  // log, metrics, trace -- which tests/session_test.cc asserts against this flag.
  bool use_reference_loop = false;
};

struct ProtectionReport {
  double simulated_hours = 0.0;
  uint64_t sdc_events = 0;           // corruptions that reached the application
  double backoff_seconds = 0.0;      // total time spent throttled
  uint64_t backoff_engagements = 0;  // distinct throttle interventions
  uint64_t cooling_boosts = 0;       // performance-neutral fan/pump interventions
  double max_temperature = 0.0;      // hottest core temperature observed
  double final_boundary = 0.0;       // adaptive boundary at the end of the run
  double final_cooling_boost = 1.0;  // cooling boost at the end of the run

  double BackoffSecondsPerHour() const {
    return simulated_hours > 0.0 ? backoff_seconds / simulated_hours : 0.0;
  }
};

// Replays `hours` of the workload on the machine. With `protect` true, Farron's boundary
// controller throttles the workload on temperature excursions; with false, the workload
// runs unchecked (the no-mitigation comparison). Implemented as a thin loop over
// ProtectionSession; WorkloadSpec::use_reference_loop selects the retained original.
ProtectionReport SimulateProtectedWorkload(Farron& farron, FaultyMachine& machine,
                                           const TestSuite& suite, const WorkloadSpec& spec,
                                           double hours, bool protect);

// The pre-session monolithic loop, kept verbatim as the byte-identity reference for the
// session decomposition (and reachable via WorkloadSpec::use_reference_loop).
ProtectionReport SimulateProtectedWorkloadReference(Farron& farron, FaultyMachine& machine,
                                                    const TestSuite& suite,
                                                    const WorkloadSpec& spec, double hours,
                                                    bool protect);

}  // namespace sdc

#endif  // SDC_SRC_FARRON_PROTECTION_H_
