#include "src/farron/boundary.h"

namespace sdc {

AdaptiveBoundary::AdaptiveBoundary(double initial_celsius, size_t window_size,
                                   double raise_step_celsius)
    : boundary_celsius_(initial_celsius), window_size_(window_size),
      raise_step_celsius_(raise_step_celsius) {}

BoundaryDecision AdaptiveBoundary::Observe(double temperature_celsius) {
  const bool exceeds = temperature_celsius > boundary_celsius_;
  // A sample counts as boundary pressure when it exceeds the boundary outright, or when an
  // active backoff is what pins it just below (otherwise throttling would hide a workload
  // whose normal temperature sits above the boundary, and the boundary could never learn).
  constexpr double kRecoveryMargin = 2.0;
  const bool pressure =
      exceeds ||
      (backoff_active_ && temperature_celsius > boundary_celsius_ - kRecoveryMargin);
  window_.push_back(pressure);
  if (window_.size() > window_size_) {
    window_.pop_front();
  }
  if (!exceeds) {
    backoff_active_ = false;
    return BoundaryDecision::kNormal;
  }
  size_t pressured = 0;
  for (bool sample : window_) {
    pressured += sample ? 1 : 0;
  }
  if (adaptive_ && window_.size() >= window_size_ && pressured * 2 > window_.size()) {
    // Persistent pressure: this temperature is normal for the application here; learn it
    // instead of punishing the workload (Section 7.1).
    boundary_celsius_ += raise_step_celsius_;
    backoff_active_ = false;
    return BoundaryDecision::kRaised;
  }
  backoff_active_ = true;
  return BoundaryDecision::kBackoff;
}

}  // namespace sdc
