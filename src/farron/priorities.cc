#include "src/farron/priorities.h"

#include <algorithm>
#include <string>

namespace sdc {

std::string TestPriorityName(TestPriority priority) {
  switch (priority) {
    case TestPriority::kBasic:
      return "basic";
    case TestPriority::kActive:
      return "active";
    case TestPriority::kSuspected:
      return "suspected";
  }
  return "?";
}

PriorityTracker::PriorityTracker(const TestSuite* suite)
    : suite_(suite), priorities_(suite->size(), TestPriority::kBasic) {}

void PriorityTracker::MarkActiveFromHistory(const std::vector<std::string>& testcase_ids) {
  for (const std::string& id : testcase_ids) {
    const int index = suite_->IndexOf(id);
    if (index >= 0 && priorities_[index] == TestPriority::kBasic) {
      priorities_[index] = TestPriority::kActive;
    }
  }
}

void PriorityTracker::MarkSuspected(const std::string& testcase_id) {
  const int index = suite_->IndexOf(testcase_id);
  if (index >= 0) {
    priorities_[index] = TestPriority::kSuspected;
  }
}

void PriorityTracker::AbsorbReport(const RunReport& report) {
  for (const std::string& id : report.failed_testcase_ids()) {
    MarkSuspected(id);
  }
}

size_t PriorityTracker::CountWithPriority(TestPriority priority) const {
  return static_cast<size_t>(
      std::count(priorities_.begin(), priorities_.end(), priority));
}

std::vector<size_t> PriorityTracker::IndicesWithPriority(TestPriority priority) const {
  std::vector<size_t> indices;
  for (size_t i = 0; i < priorities_.size(); ++i) {
    if (priorities_[i] == priority) {
      indices.push_back(i);
    }
  }
  return indices;
}

bool PriorityTracker::FeatureRelevant(Feature feature,
                                      const std::vector<Feature>& app_features) const {
  if (app_features.empty()) {
    return true;
  }
  return std::find(app_features.begin(), app_features.end(), feature) != app_features.end();
}

std::vector<TestPlanEntry> PriorityTracker::BuildRegularPlan(
    const std::vector<Feature>& app_features, const PriorityPlanParams& params) const {
  std::vector<TestPlanEntry> plan;
  plan.reserve(suite_->size());
  // Suspected first, then active, then the best-effort sweep -- so the most likely
  // detections happen earliest in the round.
  for (TestPriority wanted :
       {TestPriority::kSuspected, TestPriority::kActive, TestPriority::kBasic}) {
    for (size_t i = 0; i < priorities_.size(); ++i) {
      if (priorities_[i] != wanted) {
        continue;
      }
      double seconds = params.basic_seconds;
      if (wanted == TestPriority::kSuspected) {
        seconds = params.suspected_seconds;  // always fully tested, feature-relevant or not
      } else if (wanted == TestPriority::kActive &&
                 FeatureRelevant(suite_->info(i).target, app_features)) {
        seconds = params.active_seconds;
      }
      plan.push_back({i, seconds * params.duration_scale});
    }
  }
  return plan;
}

void PriorityTracker::Save(std::ostream& out) const {
  for (size_t i = 0; i < priorities_.size(); ++i) {
    if (priorities_[i] != TestPriority::kBasic) {
      out << TestPriorityName(priorities_[i]) << "\t" << suite_->info(i).id << "\n";
    }
  }
}

void PriorityTracker::Load(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      continue;
    }
    const std::string priority = line.substr(0, tab);
    const std::string id = line.substr(tab + 1);
    if (priority == "suspected") {
      MarkSuspected(id);
    } else if (priority == "active") {
      MarkActiveFromHistory({id});
    }
  }
}

double PriorityTracker::PlanSeconds(const std::vector<TestPlanEntry>& plan) {
  double total = 0.0;
  for (const TestPlanEntry& entry : plan) {
    total += entry.duration_seconds;
  }
  return total;
}

}  // namespace sdc
