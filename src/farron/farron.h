// Farron: the paper's SDC mitigation system (Section 7).
//
// Farron combines four mechanisms, each keyed to one of the study's observations:
//  * prioritized, efficiency-focused regular testing (Observation 11) -- suspected/active
//    testcases get full time slices, the rest a best-effort sweep;
//  * a hot testing environment -- burn-in plus all cores tested simultaneously -- so that
//    regular tests cover the application's execution temperatures (Observation 10);
//  * an adaptive temperature boundary with workload backoff to suppress "tricky" SDCs whose
//    trigger temperatures testing cannot reach economically (Observation 10, Figure 9);
//  * fine-grained core decommission backed by a reliable resource pool (Observation 4).
//
// The workflow follows Figure 10's three states: pre-production (adequate testing), online
// (regular prioritized tests + triggering-condition control), and suspected (targeted tests
// and health analysis feeding the pool).

#ifndef SDC_SRC_FARRON_FARRON_H_
#define SDC_SRC_FARRON_FARRON_H_

#include <string>
#include <vector>

#include "src/farron/boundary.h"
#include "src/farron/pool.h"
#include "src/farron/priorities.h"
#include "src/fault/machine.h"
#include "src/telemetry/event_log.h"
#include "src/toolchain/framework.h"

namespace sdc {

struct FarronConfig {
  PriorityPlanParams plan_params;
  double pre_production_per_case_seconds = 60.0;
  double targeted_per_case_seconds = 120.0;
  double regular_period_months = 3.0;
  double burn_in_seconds = 120.0;
  double initial_boundary_celsius = 59.0;  // workload-backoff boundary (adaptive)
  size_t boundary_window = 120;
  double backoff_utilization = 0.3;
  double time_scale = 1e7;
  uint64_t seed = 99;
  // Cooling-device control (Section 5's performance-neutral alternative): when available,
  // the controller first steps up fan/pump speed and only throttles the workload once the
  // boost is exhausted. Off by default -- the paper notes it "is not widely applicable in
  // Alibaba Cloud yet".
  bool enable_cooling_control = false;
  double max_cooling_boost = 2.0;
  double cooling_boost_step = 0.25;
  // Ablation switches (all on for full Farron).
  bool enable_priorities = true;
  bool enable_hot_testing = true;
  bool enable_adaptive_boundary = true;
  bool enable_backoff = true;
  bool enable_fine_decommission = true;
  // Optional metric sink: forwarded to every test round's TestRunConfig ("toolchain.*")
  // and used by the protection loop ("protection.*", "farron.*"). For per-event counters,
  // attach the same registry to the EventLog (EventLog::AttachMetrics). Null disables
  // instrumentation. Must outlive the Farron instance.
  MetricsRegistry* metrics = nullptr;
  // Optional trace sink: forwarded to every test round's TestRunConfig (toolchain spans)
  // and used by SimulateProtectedWorkload for the "protection.run" sim span plus backoff
  // engage/release instants on the simulated clock. Null disables recording. Must outlive
  // the Farron instance (docs/observability.md).
  TraceRecorder* trace = nullptr;
  // Optional engine context (src/common/context.h): its pool runs every test round, and
  // its attached metrics/trace/event-log back any of the sinks above left null -- read at
  // the start of each round, never mid-round. Null keeps the legacy per-round resolution
  // (a fresh context per parallel plan). Must outlive the Farron instance.
  EngineContext* context = nullptr;
};

// Per-round summary used by the evaluation harnesses.
struct FarronRoundSummary {
  RunReport report;
  double plan_seconds = 0.0;  // scheduled testing time for the round
  std::vector<int> newly_masked_cores;
  bool processor_deprecated = false;
};

class Farron {
 public:
  // `suite` and `machine` must outlive the Farron instance.
  Farron(const TestSuite* suite, FaultyMachine* machine, FarronConfig config);

  // --- Pre-production state. ---

  // Adequate full-suite testing; failures seed "suspected" priorities and the pool.
  FarronRoundSummary RunPreProduction();

  // Seeds "active" priorities from fleet history (Observation 11's guidance data).
  void SetActiveFromHistory(const std::vector<std::string>& testcase_ids);

  // Seeds "suspected" priorities directly (e.g. from an earlier deployment's records),
  // without re-running pre-production testing.
  void MarkSuspectedTestcases(const std::vector<std::string>& testcase_ids);

  // --- Online state. ---

  // One prioritized regular round under the current adaptive duration scale; absorbs
  // failures into priorities and (via the suspected state) the reliable pool.
  FarronRoundSummary RunRegularRound(const std::vector<Feature>& app_features);

  // Temperature-control step for the protected application; returns the decision.
  BoundaryDecision ObserveTemperature(double temperature_celsius);

  // What the triggering-condition controller did on one observation.
  enum class ControlAction {
    kNone,             // temperature within bounds
    kBoundaryRaised,   // persistent pressure: learned the boundary upward
    kCoolingBoosted,   // fan/pump stepped up (performance-neutral)
    kWorkloadBackoff,  // throttle the workload until below the boundary
  };

  // Full control step: consult the adaptive boundary and, when it calls for intervention,
  // prefer cooling control (if enabled and not exhausted) over workload backoff. Relaxes
  // the cooling boost once the temperature is comfortably below the boundary.
  ControlAction ControlStep(double temperature_celsius);

  // Test overhead of the last regular round over the regular period (Table 4).
  double TestOverhead() const;

  // Adaptive test-duration scale derived from the current boundary: a lower boundary means
  // temperature control suppresses more SDCs, so less regular testing is needed.
  double DurationScale() const;

  // --- Suspected state. ---

  // Targeted analysis after failures: reruns suspected testcases long and hot to map which
  // cores are defective, masks them, and decides on deprecation.
  void RunTargetedAnalysis(FarronRoundSummary& summary);

  // --- Telemetry. ---

  // Attaches a telemetry sink; Farron emits round, detection, decommission, and
  // triggering-condition-control events through it. Pass nullptr to detach. The log must
  // outlive the Farron instance. When a FarronConfig::context carries an event log, the
  // constructor attaches it automatically; SetEventLog still overrides.
  void SetEventLog(EventLog* log) { event_log_ = log; }
  EventLog* event_log() const { return event_log_; }

  // Sinks the instance actually writes to: the explicit config sink, else the context's
  // current attachment, else null. Protection and evaluation harnesses route their
  // telemetry through these instead of reading config().metrics / config().trace raw.
  MetricsRegistry* effective_metrics() const;
  TraceRecorder* effective_trace() const;

  // --- State access. ---
  const PriorityTracker& priorities() const { return priorities_; }
  const ReliablePool& pool() const { return pool_; }
  const AdaptiveBoundary& boundary() const { return boundary_; }
  double backoff_utilization() const { return config_.backoff_utilization; }
  const FarronConfig& config() const { return config_; }

 private:
  // Sessions decompose the regular-test cycle into budgeted chunks and need the same
  // internals RunRegularRound uses (plan execution, failure absorption, event emission).
  friend class ProtectionSession;

  TestRunConfig MakeRunConfig() const;
  // Runs a plan on the configured context when one is set (context pool + sink fallback),
  // or through the legacy context-free framework entry point otherwise.
  RunReport RunPlanOnContext(const std::vector<TestPlanEntry>& plan,
                             const TestRunConfig& run_config) const;
  void AbsorbFailures(const RunReport& report, FarronRoundSummary& summary);
  void Emit(EventKind kind, const std::string& subject, int pcore = -1, double value = 0.0);

  const TestSuite* suite_;
  FaultyMachine* machine_;
  FarronConfig config_;
  TestFramework framework_;
  PriorityTracker priorities_;
  ReliablePool pool_;
  AdaptiveBoundary boundary_;
  EventLog* event_log_ = nullptr;
  double last_plan_seconds_ = 0.0;
};

}  // namespace sdc

#endif  // SDC_SRC_FARRON_FARRON_H_
