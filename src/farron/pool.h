// Reliable resource pool with fine-grained decommission (Section 7.1, Observation 4).
//
// Farron masks individual defective physical cores and keeps the remainder in service; a
// processor with more than two defective cores is deprecated entirely, following the
// paper's observation that multi-core defects usually mean a processor-wide problem.

#ifndef SDC_SRC_FARRON_POOL_H_
#define SDC_SRC_FARRON_POOL_H_

#include <vector>

namespace sdc {

class ReliablePool {
 public:
  explicit ReliablePool(int physical_cores);

  // Removes a core from the reliable pool. Idempotent.
  void MaskCore(int pcore);

  bool IsMasked(int pcore) const { return masked_[pcore]; }
  int masked_count() const;
  int total_cores() const { return static_cast<int>(masked_.size()); }

  // More than two defective cores: deprecate the whole processor (Section 7.1).
  bool processor_deprecated() const { return masked_count() > 2; }

  // Cores still considered reliable (empty when the processor is deprecated).
  std::vector<int> UsableCores() const;

 private:
  std::vector<bool> masked_;
};

}  // namespace sdc

#endif  // SDC_SRC_FARRON_POOL_H_
