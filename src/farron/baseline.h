// The Alibaba Cloud baseline strategy (Section 7): regular SDC tests every three months,
// every testcase executed sequentially with equal resources, cores tested one at a time at
// production thermals, and the entire processor deprecated on any detected defect.

#ifndef SDC_SRC_FARRON_BASELINE_H_
#define SDC_SRC_FARRON_BASELINE_H_

#include "src/fault/machine.h"
#include "src/toolchain/framework.h"
#include "src/toolchain/registry.h"

namespace sdc {

struct BaselineConfig {
  double per_case_seconds = 60.0;  // 633 cases x 60 s = the paper's 10.55 h round
  double regular_period_months = 3.0;
  double time_scale = 1e7;
  uint64_t seed = 11;
};

class BaselinePolicy {
 public:
  BaselinePolicy(const TestSuite* suite, BaselineConfig config);

  // One round of regular testing (equal time, sequential cores, no burn-in).
  RunReport RunRegularRound(FaultyMachine& machine) const;

  // Fixed per-round duration: suite size x per-case seconds.
  double RoundDurationSeconds() const;

  // Test overhead: round duration over the regular period (Table 4's baseline column).
  double TestOverhead() const;

  const BaselineConfig& config() const { return config_; }

 private:
  const TestSuite* suite_;
  BaselineConfig config_;
  TestFramework framework_;
};

}  // namespace sdc

#endif  // SDC_SRC_FARRON_BASELINE_H_
