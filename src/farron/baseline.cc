#include "src/farron/baseline.h"

namespace sdc {

BaselinePolicy::BaselinePolicy(const TestSuite* suite, BaselineConfig config)
    : suite_(suite), config_(config), framework_(suite) {}

RunReport BaselinePolicy::RunRegularRound(FaultyMachine& machine) const {
  TestRunConfig run_config;
  run_config.time_scale = config_.time_scale;
  run_config.simultaneous_cores = false;  // cores tested one after another
  run_config.burn_in_seconds = 0.0;
  run_config.seed = config_.seed;
  return framework_.RunPlan(machine, framework_.EqualPlan(config_.per_case_seconds),
                            run_config);
}

double BaselinePolicy::RoundDurationSeconds() const {
  return static_cast<double>(suite_->size()) * config_.per_case_seconds;
}

double BaselinePolicy::TestOverhead() const {
  const double period_seconds = config_.regular_period_months * 30.44 * 24.0 * 3600.0;
  return RoundDurationSeconds() / period_seconds;
}

}  // namespace sdc
