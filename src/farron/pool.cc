#include "src/farron/pool.h"

#include <cstddef>

namespace sdc {

ReliablePool::ReliablePool(int physical_cores)
    : masked_(static_cast<size_t>(physical_cores), false) {}

void ReliablePool::MaskCore(int pcore) { masked_[pcore] = true; }

int ReliablePool::masked_count() const {
  int count = 0;
  for (bool masked : masked_) {
    count += masked ? 1 : 0;
  }
  return count;
}

std::vector<int> ReliablePool::UsableCores() const {
  std::vector<int> cores;
  if (processor_deprecated()) {
    return cores;
  }
  for (size_t pcore = 0; pcore < masked_.size(); ++pcore) {
    if (!masked_[pcore]) {
      cores.push_back(static_cast<int>(pcore));
    }
  }
  return cores;
}

}  // namespace sdc
