#include "src/sim/txmem.h"

namespace sdc {

TxMemory::TxMemory(Processor& cpu, size_t cells)
    : cpu_(cpu), cells_(cells, 0), versions_(cells, 0) {}

int TxMemory::Begin(int lcore) {
  cpu_.MakeContext(lcore, OpKind::kTxBegin, DataType::kBin64);
  // Reuse a finished slot if possible to keep handles dense.
  for (size_t i = 0; i < transactions_.size(); ++i) {
    if (!transactions_[i].active) {
      transactions_[i] = Transaction{};
      transactions_[i].lcore = lcore;
      transactions_[i].start_version = global_version_;
      transactions_[i].active = true;
      return static_cast<int>(i);
    }
  }
  Transaction tx;
  tx.lcore = lcore;
  tx.start_version = global_version_;
  tx.active = true;
  transactions_.push_back(std::move(tx));
  return static_cast<int>(transactions_.size() - 1);
}

uint64_t TxMemory::Read(int tx, size_t addr) {
  Transaction& t = transactions_[tx];
  cpu_.MakeContext(t.lcore, OpKind::kTxRead, DataType::kBin64);
  if (auto it = t.write_set.find(addr); it != t.write_set.end()) {
    return it->second;  // read-own-write
  }
  t.read_versions.emplace(addr, versions_[addr]);
  return cells_[addr];
}

void TxMemory::Write(int tx, size_t addr, uint64_t value) {
  Transaction& t = transactions_[tx];
  cpu_.MakeContext(t.lcore, OpKind::kTxWrite, DataType::kBin64);
  t.write_set[addr] = value;
}

bool TxMemory::Commit(int tx) {
  Transaction& t = transactions_[tx];
  const OpContext context = cpu_.MakeContext(t.lcore, OpKind::kTxCommit, DataType::kBin64);
  bool conflict = false;
  for (const auto& [addr, seen_version] : t.read_versions) {
    if (versions_[addr] != seen_version) {
      conflict = true;
      break;
    }
  }
  if (conflict) {
    CorruptionHook* hook = cpu_.corruption_hook();
    const bool skip_validation = hook != nullptr && hook->OnTxFault(context);
    if (!skip_validation) {
      t.active = false;
      return false;  // proper abort; caller retries
    }
    ++isolation_violations_;  // defective part: commit despite the conflict
  }
  ++global_version_;
  for (const auto& [addr, value] : t.write_set) {
    cells_[addr] = value;
    versions_[addr] = global_version_;
  }
  t.active = false;
  return true;
}

void TxMemory::Abort(int tx) {
  Transaction& t = transactions_[tx];
  cpu_.MakeContext(t.lcore, OpKind::kTxAbort, DataType::kBin64);
  t.active = false;
}

void TxMemory::Reset() {
  for (auto& cell : cells_) {
    cell = 0;
  }
  for (auto& version : versions_) {
    version = 0;
  }
  transactions_.clear();
  global_version_ = 0;
  isolation_violations_ = 0;
}

}  // namespace sdc
