// Lumped-RC thermal model of a multi-core package with a shared heatsink.
//
// The model reproduces the three temperature phenomena the paper reports (Observation 10):
//   * exponential sensitivity hooks: core temperature is exposed per physical core so the
//     defect activation model can gate on it;
//   * busy-neighbour heating: all cores feed heat into one shared heatsink node, so a core's
//     temperature rises when its neighbours are loaded even if it idles;
//   * remaining heat: the heatsink has a large thermal capacitance, so heat from a previous
//     stressful testcase carries over into the next one (test-order effects).
//
// Each physical core i and the heatsink H evolve as
//   C_core * dT_i/dt = P_i - (T_i - H) / R_core
//   C_sink * dH/dt   = sum_i (T_i - H) / R_core - (H - T_ambient) / R_sink
// with P_i = idle_power + utilization_i * active_power. R_sink scales inversely with the core
// count so different package sizes idle at comparable temperatures, as real server parts do.

#ifndef SDC_SRC_SIM_THERMAL_H_
#define SDC_SRC_SIM_THERMAL_H_

#include <vector>

namespace sdc {

struct ThermalParams {
  double ambient_celsius = 25.0;
  double idle_power_watts = 3.0;    // per core
  double active_power_watts = 4.0;  // additional per core at 100% utilization
  double core_resistance = 2.0;     // K/W core-to-sink
  double sink_resistance_16 = 0.3;  // K/W sink-to-ambient for a 16-core package
  double core_capacitance = 15.0;   // J/K (core time constant ~ tens of seconds)
  double sink_capacitance = 600.0;  // J/K (sink time constant ~ minutes)
};

class ThermalModel {
 public:
  ThermalModel(int core_count, const ThermalParams& params = ThermalParams());

  // Advances the model by `dt_seconds` given per-core utilizations in [0, 1]. Internally
  // sub-steps to keep the explicit integration stable.
  void Advance(double dt_seconds, const std::vector<double>& utilization);

  // Jumps directly to the steady state for the given utilizations (used to start experiments
  // from a thermally settled machine).
  void SettleToSteadyState(const std::vector<double>& utilization);

  // Pins every node to `celsius`, emulating external preheat rigs / pinned-temperature
  // experiments (Section 5 uses stress tools to hold target temperatures).
  void ForceUniform(double celsius);

  // Cooling-device control (fan/pump speed): a boost of b >= 1 divides the sink-to-ambient
  // resistance by b, removing heat faster with no effect on application performance --
  // the alternative triggering-condition control of Section 5 that Farron can use where
  // the facility supports it.
  void SetCoolingBoost(double boost);
  double cooling_boost() const { return cooling_boost_; }

  double core_temperature(int core) const { return core_temps_[core]; }
  double sink_temperature() const { return sink_temp_; }
  int core_count() const { return static_cast<int>(core_temps_.size()); }
  const ThermalParams& params() const { return params_; }

  // Idle steady-state core temperature for this package (all utilizations zero).
  double IdleTemperature() const;

 private:
  double SinkResistance() const;
  double CorePower(double utilization) const;

  ThermalParams params_;
  std::vector<double> core_temps_;
  double sink_temp_;
  double cooling_boost_ = 1.0;
};

}  // namespace sdc

#endif  // SDC_SRC_SIM_THERMAL_H_
