#include "src/sim/coherence.h"

namespace sdc {

CoherentBus::CoherentBus(Processor& cpu, size_t cells)
    : cpu_(cpu),
      memory_(cells, 0),
      cached_(static_cast<size_t>(cpu.spec().physical_cores)) {}

void CoherentBus::Write(int lcore, size_t addr, uint64_t value) {
  const OpContext context = cpu_.MakeContext(lcore, OpKind::kStore, DataType::kBin64);
  memory_[addr] = value;
  cached_[context.pcore][addr] = value;
  CorruptionHook* hook = cpu_.corruption_hook();
  const bool drop_invalidation = hook != nullptr && hook->OnCoherenceFault(context);
  if (drop_invalidation) {
    return;  // remote stale copies survive
  }
  for (size_t pcore = 0; pcore < cached_.size(); ++pcore) {
    if (static_cast<int>(pcore) != context.pcore) {
      cached_[pcore].erase(addr);
    }
  }
}

uint64_t CoherentBus::Read(int lcore, size_t addr) {
  const OpContext context = cpu_.MakeContext(lcore, OpKind::kLoad, DataType::kBin64);
  auto& cache = cached_[context.pcore];
  if (auto it = cache.find(addr); it != cache.end()) {
    return it->second;  // may be stale when an invalidation was dropped
  }
  const uint64_t value = memory_[addr];
  cache[addr] = value;
  return value;
}

bool CoherentBus::AtomicCas(int lcore, size_t addr, uint64_t expected, uint64_t desired) {
  const OpContext context = cpu_.MakeContext(lcore, OpKind::kAtomicCas, DataType::kBin64);
  if (memory_[addr] != expected) {
    return false;
  }
  memory_[addr] = desired;
  for (size_t pcore = 0; pcore < cached_.size(); ++pcore) {
    cached_[pcore].erase(addr);
  }
  cached_[context.pcore][addr] = desired;
  return true;
}

void CoherentBus::Fence(int lcore) {
  const OpContext context = cpu_.MakeContext(lcore, OpKind::kFence, DataType::kBin64);
  cached_[context.pcore].clear();
}

void CoherentBus::DirectWrite(size_t addr, uint64_t value) {
  memory_[addr] = value;
  for (auto& cache : cached_) {
    cache.erase(addr);
  }
}

void CoherentBus::Reset() {
  for (auto& cache : cached_) {
    cache.clear();
  }
  for (auto& cell : memory_) {
    cell = 0;
  }
}

}  // namespace sdc
