#include "src/sim/isa.h"

namespace sdc {

std::string FeatureName(Feature feature) {
  switch (feature) {
    case Feature::kAlu:
      return "ALU";
    case Feature::kVecUnit:
      return "VecUnit";
    case Feature::kFpu:
      return "FPU";
    case Feature::kCache:
      return "Cache";
    case Feature::kTxMem:
      return "TrxMem";
  }
  return "?";
}

Feature FeatureOf(OpKind op) {
  switch (op) {
    case OpKind::kIntAdd:
    case OpKind::kIntSub:
    case OpKind::kIntMul:
    case OpKind::kIntDiv:
    case OpKind::kIntShift:
    case OpKind::kLogicAnd:
    case OpKind::kLogicOr:
    case OpKind::kLogicXor:
    case OpKind::kPopcount:
    case OpKind::kCompare:
    case OpKind::kCrc32Step:
    case OpKind::kHashStep:
      return Feature::kAlu;
    case OpKind::kFpAdd:
    case OpKind::kFpSub:
    case OpKind::kFpMul:
    case OpKind::kFpDiv:
    case OpKind::kFpSqrt:
    case OpKind::kFpFma:
    case OpKind::kFpArctan:
    case OpKind::kFpSin:
    case OpKind::kFpLog:
    case OpKind::kFpExp:
      return Feature::kFpu;
    case OpKind::kVecAddF32:
    case OpKind::kVecMulF32:
    case OpKind::kVecFmaF32:
    case OpKind::kVecAddF64:
    case OpKind::kVecMulF64:
    case OpKind::kVecFmaF64:
    case OpKind::kVecAddI32:
    case OpKind::kVecMulI32:
    case OpKind::kVecShuffle:
    case OpKind::kVecCrc:
    case OpKind::kVecGf256:
      return Feature::kVecUnit;
    case OpKind::kLoad:
    case OpKind::kStore:
    case OpKind::kAtomicCas:
    case OpKind::kFence:
      return Feature::kCache;
    case OpKind::kTxBegin:
    case OpKind::kTxRead:
    case OpKind::kTxWrite:
    case OpKind::kTxCommit:
    case OpKind::kTxAbort:
      return Feature::kTxMem;
  }
  return Feature::kAlu;
}

int LatencyCycles(OpKind op) {
  switch (op) {
    case OpKind::kIntAdd:
    case OpKind::kIntSub:
    case OpKind::kIntShift:
    case OpKind::kLogicAnd:
    case OpKind::kLogicOr:
    case OpKind::kLogicXor:
    case OpKind::kCompare:
      return 1;
    case OpKind::kPopcount:
    case OpKind::kCrc32Step:
    case OpKind::kHashStep:
      return 3;
    case OpKind::kIntMul:
      return 3;
    case OpKind::kIntDiv:
      return 22;
    case OpKind::kFpAdd:
    case OpKind::kFpSub:
      return 4;
    case OpKind::kFpMul:
    case OpKind::kFpFma:
      return 5;
    case OpKind::kFpDiv:
      return 14;
    case OpKind::kFpSqrt:
      return 18;
    case OpKind::kFpArctan:
    case OpKind::kFpSin:
    case OpKind::kFpLog:
    case OpKind::kFpExp:
      return 100;
    case OpKind::kVecAddF32:
    case OpKind::kVecAddF64:
    case OpKind::kVecAddI32:
      return 4;
    case OpKind::kVecMulF32:
    case OpKind::kVecMulF64:
    case OpKind::kVecMulI32:
    case OpKind::kVecFmaF32:
    case OpKind::kVecFmaF64:
      return 5;
    case OpKind::kVecShuffle:
      return 1;
    case OpKind::kVecCrc:
    case OpKind::kVecGf256:
      return 7;
    case OpKind::kLoad:
    case OpKind::kStore:
      return 4;
    case OpKind::kAtomicCas:
      return 20;
    case OpKind::kFence:
      return 30;
    case OpKind::kTxBegin:
    case OpKind::kTxCommit:
      return 40;
    case OpKind::kTxRead:
    case OpKind::kTxWrite:
      return 6;
    case OpKind::kTxAbort:
      return 50;
  }
  return 1;
}

std::string OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kIntAdd:
      return "int_add";
    case OpKind::kIntSub:
      return "int_sub";
    case OpKind::kIntMul:
      return "int_mul";
    case OpKind::kIntDiv:
      return "int_div";
    case OpKind::kIntShift:
      return "int_shift";
    case OpKind::kLogicAnd:
      return "logic_and";
    case OpKind::kLogicOr:
      return "logic_or";
    case OpKind::kLogicXor:
      return "logic_xor";
    case OpKind::kPopcount:
      return "popcount";
    case OpKind::kCompare:
      return "compare";
    case OpKind::kCrc32Step:
      return "crc32_step";
    case OpKind::kHashStep:
      return "hash_step";
    case OpKind::kFpAdd:
      return "fp_add";
    case OpKind::kFpSub:
      return "fp_sub";
    case OpKind::kFpMul:
      return "fp_mul";
    case OpKind::kFpDiv:
      return "fp_div";
    case OpKind::kFpSqrt:
      return "fp_sqrt";
    case OpKind::kFpFma:
      return "fp_fma";
    case OpKind::kFpArctan:
      return "fp_arctan";
    case OpKind::kFpSin:
      return "fp_sin";
    case OpKind::kFpLog:
      return "fp_log";
    case OpKind::kFpExp:
      return "fp_exp";
    case OpKind::kVecAddF32:
      return "vec_add_f32";
    case OpKind::kVecMulF32:
      return "vec_mul_f32";
    case OpKind::kVecFmaF32:
      return "vec_fma_f32";
    case OpKind::kVecAddF64:
      return "vec_add_f64";
    case OpKind::kVecMulF64:
      return "vec_mul_f64";
    case OpKind::kVecFmaF64:
      return "vec_fma_f64";
    case OpKind::kVecAddI32:
      return "vec_add_i32";
    case OpKind::kVecMulI32:
      return "vec_mul_i32";
    case OpKind::kVecShuffle:
      return "vec_shuffle";
    case OpKind::kVecCrc:
      return "vec_crc";
    case OpKind::kVecGf256:
      return "vec_gf256";
    case OpKind::kLoad:
      return "load";
    case OpKind::kStore:
      return "store";
    case OpKind::kAtomicCas:
      return "atomic_cas";
    case OpKind::kFence:
      return "fence";
    case OpKind::kTxBegin:
      return "tx_begin";
    case OpKind::kTxRead:
      return "tx_read";
    case OpKind::kTxWrite:
      return "tx_write";
    case OpKind::kTxCommit:
      return "tx_commit";
    case OpKind::kTxAbort:
      return "tx_abort";
  }
  return "?";
}

}  // namespace sdc
