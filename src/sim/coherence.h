// MESI-lite coherent shared memory.
//
// Models the piece of the cache hierarchy the paper's consistency SDCs live in: per-physical-
// core cached copies of shared cells with write-invalidate coherence. A healthy processor
// invalidates every remote copy on a write; a processor with a coherence defect (CNST1-style)
// silently drops the invalidation with some probability, so a subsequent read on another core
// observes stale data -- exactly the client-thread/daemon-thread checksum mismatch of
// Section 2.2. The defect decision is delegated to the processor's CorruptionHook.

#ifndef SDC_SRC_SIM_COHERENCE_H_
#define SDC_SRC_SIM_COHERENCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/sim/processor.h"

namespace sdc {

class CoherentBus {
 public:
  // `cells` is the number of shared 64-bit locations.
  CoherentBus(Processor& cpu, size_t cells);

  // Writes `value` to `addr` from `lcore`, invalidating remote cached copies unless the
  // processor's coherence defect fires (in which case stale copies survive).
  void Write(int lcore, size_t addr, uint64_t value);

  // Reads `addr` from `lcore`. Served from the core's cached copy when present (which may be
  // stale on a defective part); otherwise fetched from memory and cached.
  uint64_t Read(int lcore, size_t addr);

  // Atomic compare-and-swap on `addr`. Atomics use locked bus cycles, so they operate on the
  // authoritative value and always invalidate remote copies (the defect model targets
  // ordinary stores, matching the lock-protected-data failures the paper reports).
  bool AtomicCas(int lcore, size_t addr, uint64_t expected, uint64_t desired);

  // Memory fence on `lcore`: discards the core's cached copies so subsequent reads refetch.
  void Fence(int lcore);

  // Drops all cached copies and zeroes memory.
  void Reset();

  size_t cell_count() const { return memory_.size(); }
  // Authoritative memory value, bypassing caches (for checking, not simulation).
  uint64_t BackingValue(size_t addr) const { return memory_[addr]; }
  // Harness-side initialization of a cell: writes memory and invalidates every cached copy
  // without going through the (possibly defective) simulated store path.
  void DirectWrite(size_t addr, uint64_t value);

 private:
  Processor& cpu_;
  std::vector<uint64_t> memory_;
  // Per-physical-core cached copies: addr -> value.
  std::vector<std::unordered_map<size_t, uint64_t>> cached_;
};

}  // namespace sdc

#endif  // SDC_SRC_SIM_COHERENCE_H_
