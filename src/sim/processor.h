// The simulated processor: SMT topology, simulated clock, per-core activity bookkeeping, and
// the single execution choke point through which silicon defects corrupt results.
//
// Testcases compute golden results natively and call Execute*() with the operation kind and
// datatype; the processor consults an optional CorruptionHook (implemented by the fault
// library) that may replace the result, drop a coherence invalidation, or break transactional
// isolation. The hook receives an OpContext carrying everything the paper identifies as a
// triggering condition: the physical core, its current temperature, its utilization, and the
// recent usage intensity of the operation kind ("instruction usage stress", Section 5).

#ifndef SDC_SRC_SIM_PROCESSOR_H_
#define SDC_SRC_SIM_PROCESSOR_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bits.h"
#include "src/sim/isa.h"
#include "src/sim/thermal.h"

namespace sdc {

// Static description of a processor model.
struct ProcessorSpec {
  std::string arch = "M1";       // micro-architecture id (M1..M9 in Table 2)
  int physical_cores = 16;
  int threads_per_core = 2;      // SMT width; logical core l maps to pcore l / threads_per_core
  double frequency_ghz = 2.5;
  ThermalParams thermal;

  int logical_cores() const { return physical_cores * threads_per_core; }
};

// Context handed to the corruption hook for every simulated operation.
struct OpContext {
  int pcore = 0;
  int lcore = 0;
  OpKind op = OpKind::kIntAdd;
  DataType type = DataType::kInt32;
  double temperature = 0.0;   // physical core temperature, Celsius
  double utilization = 0.0;   // physical core utilization in [0, 1]
  double op_intensity = 0.0;  // recent executions/second of this op kind on this pcore
  double weight = 1.0;        // how many real executions this simulated op stands for
  uint64_t op_index = 0;      // processor-wide monotonically increasing op counter
};

// Implemented by the fault library; a processor without a hook is defect-free.
class CorruptionHook {
 public:
  virtual ~CorruptionHook() = default;

  // May return corrupted result bits for a computational operation; std::nullopt keeps the
  // golden result. `golden` is the correct result's bit image.
  virtual std::optional<Word128> OnExecute(const OpContext& context, const Word128& golden) = 0;

  // Returns true when a cache-coherence invalidation for this operation must be silently
  // dropped (the reader will observe stale data).
  virtual bool OnCoherenceFault(const OpContext& context) = 0;

  // Returns true when a transactional-memory conflict check must be silently skipped (a
  // transaction that should abort will commit).
  virtual bool OnTxFault(const OpContext& context) = 0;
};

class Processor {
 public:
  explicit Processor(ProcessorSpec spec);

  const ProcessorSpec& spec() const { return spec_; }

  // Installs the defect hook. The hook must outlive the processor. Pass nullptr to clear.
  void SetCorruptionHook(CorruptionHook* hook) { hook_ = hook; }
  CorruptionHook* corruption_hook() const { return hook_; }

  // --- Execution (called by testcases / workloads). ---

  // Core entry point: records the operation on `lcore`, advances its busy-cycle account, and
  // returns the (possibly corrupted) result bits.
  Word128 Execute(int lcore, OpKind op, DataType type, const Word128& golden_bits);

  // Typed conveniences.
  int16_t ExecuteI16(int lcore, OpKind op, int16_t golden);
  int32_t ExecuteI32(int lcore, OpKind op, int32_t golden);
  uint32_t ExecuteU32(int lcore, OpKind op, uint32_t golden);
  float ExecuteF32(int lcore, OpKind op, float golden);
  double ExecuteF64(int lcore, OpKind op, double golden);
  long double ExecuteF80(int lcore, OpKind op, long double golden);
  // Non-numerical payloads (bit/byte/bin16/bin32/bin64 depending on width).
  uint64_t ExecuteRaw(int lcore, OpKind op, uint64_t golden, DataType type);

  // Builds the context for a memory-system operation without producing a result value; used
  // by the coherence bus and the transactional memory model.
  OpContext MakeContext(int lcore, OpKind op, DataType type = DataType::kBin64);

  // --- Time and activity. ---

  // Sets the externally imposed utilization of a physical core (tested cores run at 1.0;
  // background stress tools set intermediate values). Utilization feeds the thermal model.
  void SetCoreUtilization(int pcore, double utilization);
  double core_utilization(int pcore) const { return utilization_[pcore]; }

  // Sets how many real executions each simulated operation represents. Testcase loops run
  // their kernel once per batch at op granularity and declare the batch to stand for
  // `scale` identical iterations; corruption probabilities and op intensities are scaled
  // accordingly, and callers advance the clock by (busy seconds x scale).
  void SetTimeScale(double scale) { time_scale_ = scale < 1.0 ? 1.0 : scale; }
  double time_scale() const { return time_scale_; }

  // Advances the simulated clock and the thermal model, and refreshes per-core op-intensity
  // estimates from the operations executed since the previous call.
  void AdvanceSeconds(double dt_seconds);

  // Busy seconds accumulated on `pcore` since this was last called (latency-weighted).
  double ConsumeBusySeconds(int pcore);

  double now_seconds() const { return now_seconds_; }
  double core_temperature(int pcore) const { return thermal_.core_temperature(pcore); }
  ThermalModel& thermal() { return thermal_; }
  const ThermalModel& thermal() const { return thermal_; }

  int pcore_of(int lcore) const { return lcore / spec_.threads_per_core; }

  // --- Instrumentation (the Pin-like counter reads these). ---

  uint64_t op_count(int pcore, OpKind op) const;
  uint64_t total_op_count(OpKind op) const;

 private:
  struct CoreState {
    std::array<uint64_t, kOpKindCount> op_counts{};
    std::array<uint64_t, kOpKindCount> ops_since_advance{};
    std::array<double, kOpKindCount> op_intensity{};  // EMA, ops/second
    uint64_t busy_cycles_unconsumed = 0;
  };

  ProcessorSpec spec_;
  ThermalModel thermal_;
  std::vector<CoreState> cores_;
  std::vector<double> utilization_;
  CorruptionHook* hook_ = nullptr;
  double now_seconds_ = 0.0;
  double time_scale_ = 1.0;
  uint64_t op_index_ = 0;
};

}  // namespace sdc

#endif  // SDC_SRC_SIM_PROCESSOR_H_
