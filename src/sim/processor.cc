#include "src/sim/processor.h"

#include <algorithm>

namespace sdc {

Processor::Processor(ProcessorSpec spec)
    : spec_(std::move(spec)),
      thermal_(spec_.physical_cores, spec_.thermal),
      cores_(static_cast<size_t>(spec_.physical_cores)),
      utilization_(static_cast<size_t>(spec_.physical_cores), 0.0) {}

Word128 Processor::Execute(int lcore, OpKind op, DataType type, const Word128& golden_bits) {
  const int pcore = pcore_of(lcore);
  CoreState& core = cores_[pcore];
  const int kind = static_cast<int>(op);
  core.op_counts[kind] += 1;
  core.ops_since_advance[kind] += 1;
  core.busy_cycles_unconsumed += static_cast<uint64_t>(LatencyCycles(op));
  if (hook_ == nullptr) {
    ++op_index_;
    return golden_bits;
  }
  OpContext context;
  context.pcore = pcore;
  context.lcore = lcore;
  context.op = op;
  context.type = type;
  context.temperature = thermal_.core_temperature(pcore);
  context.utilization = utilization_[pcore];
  context.op_intensity = core.op_intensity[kind];
  context.weight = time_scale_;
  context.op_index = op_index_++;
  if (auto corrupted = hook_->OnExecute(context, golden_bits)) {
    return *corrupted;
  }
  return golden_bits;
}

int16_t Processor::ExecuteI16(int lcore, OpKind op, int16_t golden) {
  return Int16FromBits(Execute(lcore, op, DataType::kInt16, BitsOfInt16(golden)));
}

int32_t Processor::ExecuteI32(int lcore, OpKind op, int32_t golden) {
  return Int32FromBits(Execute(lcore, op, DataType::kInt32, BitsOfInt32(golden)));
}

uint32_t Processor::ExecuteU32(int lcore, OpKind op, uint32_t golden) {
  return UInt32FromBits(Execute(lcore, op, DataType::kUInt32, BitsOfUInt32(golden)));
}

float Processor::ExecuteF32(int lcore, OpKind op, float golden) {
  return FloatFromBits(Execute(lcore, op, DataType::kFloat32, BitsOfFloat(golden)));
}

double Processor::ExecuteF64(int lcore, OpKind op, double golden) {
  return DoubleFromBits(Execute(lcore, op, DataType::kFloat64, BitsOfDouble(golden)));
}

long double Processor::ExecuteF80(int lcore, OpKind op, long double golden) {
  return Float80FromBits(Execute(lcore, op, DataType::kFloat80, BitsOfFloat80(golden)));
}

uint64_t Processor::ExecuteRaw(int lcore, OpKind op, uint64_t golden, DataType type) {
  return RawFromBits(Execute(lcore, op, type, BitsOfRaw(golden, BitWidth(type))));
}

OpContext Processor::MakeContext(int lcore, OpKind op, DataType type) {
  const int pcore = pcore_of(lcore);
  CoreState& core = cores_[pcore];
  const int kind = static_cast<int>(op);
  core.op_counts[kind] += 1;
  core.ops_since_advance[kind] += 1;
  core.busy_cycles_unconsumed += static_cast<uint64_t>(LatencyCycles(op));
  OpContext context;
  context.pcore = pcore;
  context.lcore = lcore;
  context.op = op;
  context.type = type;
  context.temperature = thermal_.core_temperature(pcore);
  context.utilization = utilization_[pcore];
  context.op_intensity = core.op_intensity[kind];
  context.weight = time_scale_;
  context.op_index = op_index_++;
  return context;
}

void Processor::SetCoreUtilization(int pcore, double utilization) {
  utilization_[pcore] = std::clamp(utilization, 0.0, 1.0);
}

void Processor::AdvanceSeconds(double dt_seconds) {
  if (dt_seconds <= 0.0) {
    return;
  }
  now_seconds_ += dt_seconds;
  thermal_.Advance(dt_seconds, utilization_);
  // Blend fresh rates into the per-kind intensity estimates. The blend factor gives a memory
  // of a few advance periods, matching how quickly usage stress builds in practice.
  constexpr double kBlend = 0.5;
  for (CoreState& core : cores_) {
    for (int kind = 0; kind < kOpKindCount; ++kind) {
      const double fresh =
          static_cast<double>(core.ops_since_advance[kind]) * time_scale_ / dt_seconds;
      core.op_intensity[kind] = (1.0 - kBlend) * core.op_intensity[kind] + kBlend * fresh;
      core.ops_since_advance[kind] = 0;
    }
  }
}

double Processor::ConsumeBusySeconds(int pcore) {
  CoreState& core = cores_[pcore];
  const double seconds =
      static_cast<double>(core.busy_cycles_unconsumed) / (spec_.frequency_ghz * 1e9);
  core.busy_cycles_unconsumed = 0;
  return seconds;
}

uint64_t Processor::op_count(int pcore, OpKind op) const {
  return cores_[pcore].op_counts[static_cast<int>(op)];
}

uint64_t Processor::total_op_count(OpKind op) const {
  uint64_t total = 0;
  for (const CoreState& core : cores_) {
    total += core.op_counts[static_cast<int>(op)];
  }
  return total;
}

}  // namespace sdc
