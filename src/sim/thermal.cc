#include "src/sim/thermal.h"

#include <algorithm>
#include <cmath>

namespace sdc {

ThermalModel::ThermalModel(int core_count, const ThermalParams& params)
    : params_(params),
      core_temps_(static_cast<size_t>(core_count), params.ambient_celsius),
      sink_temp_(params.ambient_celsius) {
  SettleToSteadyState(std::vector<double>(static_cast<size_t>(core_count), 0.0));
}

double ThermalModel::SinkResistance() const {
  // Normalize so packages of any core count idle at comparable temperatures; cooling boost
  // lowers the resistance (stronger airflow).
  return params_.sink_resistance_16 * 16.0 /
         (static_cast<double>(core_temps_.size()) * cooling_boost_);
}

void ThermalModel::SetCoolingBoost(double boost) {
  cooling_boost_ = boost < 1.0 ? 1.0 : boost;
}

double ThermalModel::CorePower(double utilization) const {
  const double u = std::clamp(utilization, 0.0, 1.0);
  return params_.idle_power_watts + u * params_.active_power_watts;
}

void ThermalModel::Advance(double dt_seconds, const std::vector<double>& utilization) {
  if (dt_seconds <= 0.0) {
    return;
  }
  const double r_sink = SinkResistance();
  // Explicit Euler with sub-stepping; the core node is the stiffest (tau = R_core * C_core).
  const double core_tau = params_.core_resistance * params_.core_capacitance;
  const double max_step = std::max(core_tau / 10.0, 1e-3);
  double remaining = dt_seconds;
  while (remaining > 0.0) {
    const double step = std::min(remaining, max_step);
    remaining -= step;
    double into_sink = 0.0;
    for (size_t i = 0; i < core_temps_.size(); ++i) {
      const double u = i < utilization.size() ? utilization[i] : 0.0;
      const double to_sink = (core_temps_[i] - sink_temp_) / params_.core_resistance;
      into_sink += to_sink;
      core_temps_[i] += step * (CorePower(u) - to_sink) / params_.core_capacitance;
    }
    const double to_ambient = (sink_temp_ - params_.ambient_celsius) / r_sink;
    sink_temp_ += step * (into_sink - to_ambient) / params_.sink_capacitance;
  }
}

void ThermalModel::SettleToSteadyState(const std::vector<double>& utilization) {
  // In steady state every core passes exactly its own power to the sink, and the sink passes
  // the total power to ambient.
  const double r_sink = SinkResistance();
  double total_power = 0.0;
  std::vector<double> powers(core_temps_.size(), 0.0);
  for (size_t i = 0; i < core_temps_.size(); ++i) {
    powers[i] = CorePower(i < utilization.size() ? utilization[i] : 0.0);
    total_power += powers[i];
  }
  sink_temp_ = params_.ambient_celsius + total_power * r_sink;
  for (size_t i = 0; i < core_temps_.size(); ++i) {
    core_temps_[i] = sink_temp_ + powers[i] * params_.core_resistance;
  }
}

void ThermalModel::ForceUniform(double celsius) {
  sink_temp_ = celsius;
  for (auto& temp : core_temps_) {
    temp = celsius;
  }
}

double ThermalModel::IdleTemperature() const {
  const double total_power =
      params_.idle_power_watts * static_cast<double>(core_temps_.size());
  return params_.ambient_celsius + total_power * SinkResistance() +
         params_.idle_power_watts * params_.core_resistance;
}

}  // namespace sdc
