// Operation-level model of the simulated CPU's instruction set.
//
// The simulator does not interpret machine code. Testcases compute golden results natively in
// C++ and route every (operation kind, datatype, result) triple through the simulated
// processor, which is the single choke point where silicon defects may corrupt results. Each
// operation kind belongs to one of the five processor features the paper identifies as
// vulnerable (Observation 5), and carries a nominal latency used to advance simulated time.

#ifndef SDC_SRC_SIM_ISA_H_
#define SDC_SRC_SIM_ISA_H_

#include <string>

namespace sdc {

// The five vulnerable processor features of Observation 5 / Figure 2.
enum class Feature {
  kAlu,
  kVecUnit,
  kFpu,
  kCache,
  kTxMem,
};

constexpr int kFeatureCount = 5;

std::string FeatureName(Feature feature);

// Operation kinds exercised by the testcase library. Grouped by owning feature.
enum class OpKind {
  // ALU: scalar integer and logic.
  kIntAdd,
  kIntSub,
  kIntMul,
  kIntDiv,
  kIntShift,
  kLogicAnd,
  kLogicOr,
  kLogicXor,
  kPopcount,
  kCompare,
  kCrc32Step,   // table-driven CRC step (scalar datapath)
  kHashStep,    // integer hashing round

  // FPU: scalar floating point, including complex math functions.
  kFpAdd,
  kFpSub,
  kFpMul,
  kFpDiv,
  kFpSqrt,
  kFpFma,
  kFpArctan,
  kFpSin,
  kFpLog,
  kFpExp,

  // VecUnit: lane-parallel SIMD operations.
  kVecAddF32,
  kVecMulF32,
  kVecFmaF32,
  kVecAddF64,
  kVecMulF64,
  kVecFmaF64,
  kVecAddI32,
  kVecMulI32,
  kVecShuffle,
  kVecCrc,      // vector-accelerated CRC (carryless multiply style)
  kVecGf256,    // vector GF(256) multiply used by erasure coding

  // Cache / memory system.
  kLoad,
  kStore,
  kAtomicCas,
  kFence,

  // Transactional memory.
  kTxBegin,
  kTxRead,
  kTxWrite,
  kTxCommit,
  kTxAbort,
};

constexpr int kOpKindCount = static_cast<int>(OpKind::kTxAbort) + 1;

// Feature that executes `op`.
Feature FeatureOf(OpKind op);

// Nominal latency of `op` in core cycles; drives the simulated clock.
int LatencyCycles(OpKind op);

std::string OpKindName(OpKind op);

}  // namespace sdc

#endif  // SDC_SRC_SIM_ISA_H_
