// Transactional memory model (TL2-style, global version clock).
//
// A transaction records the version of every cell it reads; at commit time it validates that
// none of those cells changed since the transaction began, aborting on conflict. A processor
// with a transactional-memory defect (CNST1/CNST2-style) silently skips validation with some
// probability, committing a transaction that must have aborted -- a lost update that breaks
// application invariants without any crash, i.e. a consistency-type SDC.

#ifndef SDC_SRC_SIM_TXMEM_H_
#define SDC_SRC_SIM_TXMEM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/sim/processor.h"

namespace sdc {

class TxMemory {
 public:
  TxMemory(Processor& cpu, size_t cells);

  // Starts a transaction on `lcore`; returns a transaction handle.
  int Begin(int lcore);

  // Transactional read/write. `tx` must be an active handle from Begin().
  uint64_t Read(int tx, size_t addr);
  void Write(int tx, size_t addr, uint64_t value);

  // Attempts to commit. Returns true on success. Returns false when a conflict forced an
  // abort (the caller retries); on a defective part the conflict check may be silently
  // skipped and the transaction commits anyway.
  bool Commit(int tx);

  // Abandons the transaction without writing.
  void Abort(int tx);

  // Non-transactional inspection of committed state (checker-side, not simulated).
  uint64_t DirectRead(size_t addr) const { return cells_[addr]; }
  void DirectWrite(size_t addr, uint64_t value) { cells_[addr] = value; }

  void Reset();

  // Number of commits that went through despite a failed validation (defect activations).
  uint64_t isolation_violations() const { return isolation_violations_; }

 private:
  struct Transaction {
    int lcore = 0;
    uint64_t start_version = 0;
    bool active = false;
    std::unordered_map<size_t, uint64_t> read_versions;  // addr -> version observed
    std::unordered_map<size_t, uint64_t> write_set;      // addr -> pending value
  };

  Processor& cpu_;
  std::vector<uint64_t> cells_;
  std::vector<uint64_t> versions_;
  std::vector<Transaction> transactions_;
  uint64_t global_version_ = 0;
  uint64_t isolation_violations_ = 0;
};

}  // namespace sdc

#endif  // SDC_SRC_SIM_TXMEM_H_
