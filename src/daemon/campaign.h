// Campaign scheduling for the sdcd daemon (docs/daemon.md).
//
// A campaign is one fused streaming pass -- generate the fleet shard by shard and screen
// every scenario against it -- executed on a private EngineContext whose pool holds the
// campaign's granted lanes. Contexts are constructed with env_overrides = false, so a
// setenv (SDC_THREADS / SDC_SIMD) after daemon startup can never re-shape an admitted
// campaign; the only thread-count authority is the lane grant below.
//
// Scheduling: the manager owns a fixed lane budget (the daemon's --lanes). Campaigns are
// admitted strictly in submission order -- the head of the queue waits until enough lanes
// are free, and nothing behind it can overtake -- which keeps admission deterministic and
// starvation-free. Each admitted campaign runs on its own thread with its own
// ThreadPool (src/common/parallel.h pools serve one caller at a time, so lanes are
// multiplexed by partitioning the budget, never by sharing a pool).
//
// Determinism: a campaign's stats, metrics (minus wall-clock timers), and sim trace are a
// pure function of its spec, so two campaigns interleaved in one daemon are byte-identical
// to independent one-shot runs -- the property tools/check_daemon.py and
// tests/daemon_test.cc pin.

#ifndef SDC_SRC_DAEMON_CAMPAIGN_H_
#define SDC_SRC_DAEMON_CAMPAIGN_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/daemon/spec.h"
#include "src/fleet/pipeline.h"
#include "src/scrub/scrubber.h"
#include "src/telemetry/event_log.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/series.h"
#include "src/telemetry/trace.h"

namespace sdc {

enum class CampaignState {
  kQueued,     // submitted, waiting for its lane grant
  kRunning,    // lanes granted, streaming pass in flight
  kDone,       // completed; result available
  kCancelled,  // cancelled before or during the pass
  kFailed,     // the pass threw; see CampaignStatus::error
};

std::string CampaignStateName(CampaignState state);

struct CampaignStatus {
  uint64_t id = 0;
  std::string name;
  CampaignState state = CampaignState::kQueued;
  int lanes = 1;               // granted lane count (clamped to the daemon budget)
  uint64_t shards_done = 0;    // stream shards consumed (scrub campaigns: epochs done)
  uint64_t shards_total = 0;   // 0 until the pass starts (scrub campaigns: total epochs)
  // Live detection count: screen campaigns accumulate scenario 0's detections shard by
  // shard while running; scrub campaigns publish theirs when the report lands. Monotonic
  // per campaign, exact once terminal -- a status gauge, not a determinism surface.
  uint64_t detections = 0;
  // Host wall-clock timestamps, seconds since the Unix epoch (nondeterministic by
  // contract). start_unix stays 0 until the lane grant, finish_unix until terminal.
  double submit_unix = 0.0;
  double start_unix = 0.0;
  double finish_unix = 0.0;
  std::string error;           // non-empty only for kFailed

  // Completed fraction of the progress ledger in [0, 1]; 0 while the denominator is
  // still unknown (a done campaign with an empty ledger reports 1).
  double progress() const {
    if (shards_total == 0) {
      return state == CampaignState::kDone ? 1.0 : 0.0;
    }
    const double fraction =
        static_cast<double>(shards_done) / static_cast<double>(shards_total);
    return fraction > 1.0 ? 1.0 : fraction;
  }
};

// What a completed campaign produced: per-scenario screening stats plus the campaign's
// private telemetry snapshots (taken once, when the pass finished). A scrub campaign
// (spec.kind == "scrub") carries the full ScrubReport instead of screening stats -- its
// `stats` stays empty and the result verb renders the scrub report.
struct CampaignResult {
  std::vector<ScreeningStats> stats;  // one per scenario, in spec order
  MetricsSnapshot metrics;
  TraceSnapshot trace;
  std::optional<ScrubReport> scrub;  // kind=scrub campaigns only
};

// Live observability bundle for one campaign: its status plus point-in-time snapshots of
// its private time-series and metrics. Valid in every state -- polling a running
// campaign sees whatever the pass has sampled so far, which is exactly what the `stats`
// protocol verb and `sdcctl top` consume.
struct CampaignStats {
  CampaignStatus status;
  SeriesSnapshot series;
  MetricsSnapshot metrics;
};

// Daemon-wide health surface: lane and queue occupancy, the campaign-lifecycle event
// ledger, and the manager's host-clock occupancy series (one point per transition).
struct DaemonStats {
  int total_lanes = 0;
  int lanes_in_use = 0;
  uint64_t queue_depth = 0;     // campaigns still waiting for their lane grant
  uint64_t campaigns = 0;       // ever submitted (ids are dense, so also the max id)
  uint64_t events_recorded = 0;
  uint64_t events_dropped = 0;  // evicted from the bounded event log, never silently
  SeriesSnapshot host_series;   // "daemon.queue_depth" / "daemon.lanes_in_use"
};

class CampaignManager {
 public:
  // `total_lanes` is the daemon's lane budget (already resolved; must be >= 1).
  // `event_capacity` bounds the campaign-lifecycle event log (sdcd --event-capacity):
  // once full, the oldest events are evicted and counted as dropped.
  explicit CampaignManager(int total_lanes, size_t event_capacity = 4096);
  ~CampaignManager();

  CampaignManager(const CampaignManager&) = delete;
  CampaignManager& operator=(const CampaignManager&) = delete;

  int total_lanes() const { return total_lanes_; }

  // Enqueues a campaign and starts its worker; returns its id (ids start at 1).
  // Returns 0 if the manager is shutting down.
  uint64_t Submit(CampaignSpec spec);

  // Snapshot of one campaign / every campaign in submission order.
  std::optional<CampaignStatus> GetStatus(uint64_t id) const;
  std::vector<CampaignStatus> List() const;

  // Status plus live series/metrics snapshots; nullopt for unknown ids. Works in every
  // state -- a running campaign reports whatever its pass has recorded so far.
  std::optional<CampaignStats> GetStats(uint64_t id) const;

  // Daemon-wide health: lanes, queue, the event ledger, host occupancy series.
  DaemonStats GetDaemonStats() const;

  // Every campaign's private registry merged in id order (counters and same-shape
  // histograms sum, gauges last-write-wins, timers fold through TimerStat::MergeFrom):
  // the body of the daemon-wide `prom` exposition.
  MetricsSnapshot AggregateMetrics() const;

  // Campaign-lifecycle event log (submitted / started / finished).
  const EventLog& events() const { return events_; }

  // Requests cancellation: a queued campaign never starts, a running one stops at its
  // next shard boundary (remaining shards are skipped, generation included). Returns
  // false for unknown ids; cancelling a finished campaign is a no-op returning true.
  bool Cancel(uint64_t id);

  // Blocks until the campaign reaches a terminal state; nullopt for unknown ids.
  std::optional<CampaignState> Wait(uint64_t id);

  // The completed result; null unless the campaign is kDone. The pointer stays valid for
  // the manager's lifetime.
  const CampaignResult* Result(uint64_t id) const;

  // Cancels everything outstanding and joins all campaign threads. Idempotent; the
  // destructor calls it.
  void Shutdown();

 private:
  struct Campaign {
    uint64_t id = 0;
    CampaignSpec spec;
    CampaignState state = CampaignState::kQueued;
    int lanes = 1;
    std::atomic<uint64_t> shards_done{0};
    uint64_t shards_total = 0;
    std::atomic<uint64_t> detections{0};
    std::atomic<bool> cancel{false};
    double submit_unix = 0.0;  // host timestamps, guarded by mutex_
    double start_unix = 0.0;
    double finish_unix = 0.0;
    std::string error;
    CampaignResult result;
    // Private telemetry, owned by the campaign (not the pass) so live stats polls can
    // snapshot mid-run; all three sinks are internally synchronized.
    MetricsRegistry registry;
    TraceRecorder recorder;
    SeriesRecorder series;
    std::thread worker;
  };

  // Body of a campaign thread: wait for the lane grant, run the fused pass, publish the
  // terminal state, release the lanes.
  void RunCampaign(Campaign& campaign);
  Campaign* FindLocked(uint64_t id) const;
  CampaignStatus StatusLocked(const Campaign& campaign) const;
  // Stamps one lifecycle transition while holding mutex_: records the event (host
  // seconds since manager start, value = campaign id) and appends the daemon occupancy
  // series points. Lock order is manager -> EventLog/SeriesRecorder, never the reverse.
  void RecordTransitionLocked(EventKind kind, const Campaign& campaign);
  double HostSeconds() const;

  mutable std::mutex mutex_;
  // Signalled on every admission, terminal transition, and cancellation request.
  std::condition_variable changed_;
  int total_lanes_;
  int lanes_in_use_ = 0;
  uint64_t next_id_ = 1;
  std::deque<uint64_t> admit_queue_;  // FIFO: only the front may take lanes
  std::vector<std::unique_ptr<Campaign>> campaigns_;
  bool shutting_down_ = false;
  // Daemon-level observability: the lifecycle event log (bounded; evictions counted)
  // and the host-clock occupancy series. Host time is measured from construction.
  const std::chrono::steady_clock::time_point started_at_ =
      std::chrono::steady_clock::now();
  EventLog events_;
  SeriesRecorder host_series_;
};

}  // namespace sdc

#endif  // SDC_SRC_DAEMON_CAMPAIGN_H_
