#include "src/daemon/campaign.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "src/common/context.h"
#include "src/fleet/population.h"
#include "src/fleet/stream.h"
#include "src/toolchain/registry.h"

namespace sdc {
namespace {

// Thrown by the guard consumer to stop a pass at a shard boundary; ParallelStream drains
// (skips) the remaining shards and rethrows out of Drive.
struct CampaignCancelledError {};

// First consumer of the campaign's stream: checks the cancel flag and counts progress.
// Runs before the screeners on every shard, so a cancelled campaign stops paying for
// screening (and, via the drain, generation) as soon as the flag is visible.
class CampaignGuard : public ShardConsumer {
 public:
  CampaignGuard(const std::atomic<bool>* cancel, std::atomic<uint64_t>* shards_done)
      : cancel_(cancel), shards_done_(shards_done) {}

  void ConsumeShard(const FleetShard& /*shard*/) override {
    if (cancel_->load(std::memory_order_relaxed)) {
      throw CampaignCancelledError{};
    }
    shards_done_->fetch_add(1, std::memory_order_relaxed);
  }

 private:
  const std::atomic<bool>* cancel_;
  std::atomic<uint64_t>* shards_done_;
};

// Live detection feed for the status surface: sums each shard's scenario-0 detections
// into the campaign's atomic as shards complete. Arrival order is schedule-dependent,
// but the count is monotonic and exact once the pass ends -- a status gauge, not part of
// the determinism contract (which the end-of-pass stats and series carry).
class DetectionTally : public ShardOutcomeObserver {
 public:
  explicit DetectionTally(std::atomic<uint64_t>* detections) : detections_(detections) {}

  void ObserveShard(const FleetShard& /*shard*/,
                    const ScreeningStats& shard_stats) override {
    detections_->fetch_add(shard_stats.total_detected(), std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t>* detections_;
};

// Host wall clock for the status timestamps: seconds since the Unix epoch.
double UnixSecondsNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string CampaignStateName(CampaignState state) {
  switch (state) {
    case CampaignState::kQueued:
      return "queued";
    case CampaignState::kRunning:
      return "running";
    case CampaignState::kDone:
      return "done";
    case CampaignState::kCancelled:
      return "cancelled";
    case CampaignState::kFailed:
      return "failed";
  }
  return "?";
}

CampaignManager::CampaignManager(int total_lanes, size_t event_capacity)
    : total_lanes_(std::max(total_lanes, 1)), events_(event_capacity) {}

double CampaignManager::HostSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at_)
      .count();
}

void CampaignManager::RecordTransitionLocked(EventKind kind, const Campaign& campaign) {
  const double now = HostSeconds();
  events_.Record(kind, now, campaign.spec.name, /*pcore=*/-1,
                 static_cast<double>(campaign.id));
  // Occupancy trajectory, one point per transition. Wall clock, so it lives in the
  // recorder's host section and stays outside the determinism contract.
  host_series_.Append("daemon.queue_depth", SeriesClock::kHost, now,
                      static_cast<double>(admit_queue_.size()));
  host_series_.Append("daemon.lanes_in_use", SeriesClock::kHost, now,
                      static_cast<double>(lanes_in_use_));
}

CampaignManager::~CampaignManager() { Shutdown(); }

CampaignManager::Campaign* CampaignManager::FindLocked(uint64_t id) const {
  // Ids are assigned densely from 1 in submission order.
  if (id == 0 || id > campaigns_.size()) {
    return nullptr;
  }
  return campaigns_[static_cast<size_t>(id - 1)].get();
}

uint64_t CampaignManager::Submit(CampaignSpec spec) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (shutting_down_) {
    return 0;
  }
  auto campaign = std::make_unique<Campaign>();
  campaign->id = next_id_++;
  campaign->lanes = std::clamp(spec.lanes, 1, total_lanes_);
  campaign->spec = std::move(spec);
  Campaign& ref = *campaign;
  campaigns_.push_back(std::move(campaign));
  admit_queue_.push_back(ref.id);
  ref.submit_unix = UnixSecondsNow();
  RecordTransitionLocked(EventKind::kCampaignSubmitted, ref);
  ref.worker = std::thread([this, &ref] { RunCampaign(ref); });
  return ref.id;
}

void CampaignManager::RunCampaign(Campaign& campaign) {
  {
    // Lane grant: strictly FIFO -- only the queue's front may take lanes, so a wide
    // campaign can never be starved by narrow ones submitted after it.
    std::unique_lock<std::mutex> lock(mutex_);
    changed_.wait(lock, [&] {
      if (shutting_down_ || campaign.cancel.load(std::memory_order_relaxed)) {
        return true;
      }
      return admit_queue_.front() == campaign.id &&
             lanes_in_use_ + campaign.lanes <= total_lanes_;
    });
    if (shutting_down_ || campaign.cancel.load(std::memory_order_relaxed)) {
      admit_queue_.erase(
          std::find(admit_queue_.begin(), admit_queue_.end(), campaign.id));
      campaign.state = CampaignState::kCancelled;
      campaign.finish_unix = UnixSecondsNow();
      RecordTransitionLocked(EventKind::kCampaignFinished, campaign);
      changed_.notify_all();
      return;
    }
    admit_queue_.pop_front();
    lanes_in_use_ += campaign.lanes;
    campaign.state = CampaignState::kRunning;
    campaign.start_unix = UnixSecondsNow();
    RecordTransitionLocked(EventKind::kCampaignStarted, campaign);
    changed_.notify_all();
  }

  CampaignState terminal = CampaignState::kDone;
  std::string error;
  try {
    // Private context over the campaign's own telemetry members (alive beyond the pass,
    // so live stats polls can snapshot mid-run): the pool holds exactly the granted
    // lanes, resolved here once with env_overrides = false -- the environment is never
    // consulted again for this campaign (src/common/context.h).
    EngineContext context(EngineOptions{.threads = campaign.lanes,
                                        .env_overrides = false,
                                        .metrics = &campaign.registry,
                                        .trace = &campaign.recorder,
                                        .series = &campaign.series});

    PopulationConfig population;
    population.processor_count = campaign.spec.processors;
    population.seed = campaign.spec.seed;
    // Sinks stay null: the context's attachments back them, pinned at pass start.

    const TestSuite suite = TestSuite::BuildFull();
    if (campaign.spec.kind == "scrub") {
      // Scrub campaign: discovery with the single scenario's screening config, then the
      // budgeted epoch loop. The progress ledger counts epochs (epoch_tick fires once
      // after discovery and after every epoch); a cancel request lands at the next epoch
      // boundary via the tick's return value, surfacing here as ScrubCancelledError.
      ScrubConfig config;
      config.population = population;
      config.screening = campaign.spec.scenarios.front().config;
      config.budget_fraction = campaign.spec.scrub_budget_fraction;
      config.horizon_months = campaign.spec.scrub_horizon_months;
      config.epoch_months = campaign.spec.scrub_epoch_months;
      config.max_cases_per_round = campaign.spec.scrub_max_cases;
      config.workload_sample_hours = campaign.spec.scrub_sample_hours;
      config.epoch_tick = [this, &campaign](uint64_t epochs_done,
                                            uint64_t epochs_total) {
        campaign.shards_done.store(epochs_done, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(mutex_);
          campaign.shards_total = epochs_total;
        }
        return !campaign.cancel.load(std::memory_order_relaxed);
      };
      campaign.result.scrub = FleetScrubber(&suite).Run(config, context);
      campaign.detections.store(campaign.result.scrub->detections.size(),
                                std::memory_order_relaxed);
    } else {
      ScreeningPipeline pipeline(&suite);
      ScenarioBatch batch;
      batch.scenarios.reserve(campaign.spec.scenarios.size());
      for (const SweepScenario& scenario : campaign.spec.scenarios) {
        batch.scenarios.push_back(scenario.config);
      }

      FleetShardStream stream(population);
      StreamingScreen screen(&pipeline, batch);
      DetectionTally tally(&campaign.detections);
      screen.AddObserver(&tally);
      CampaignGuard guard(&campaign.cancel, &campaign.shards_done);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        campaign.shards_total = stream.shard_count();
      }
      stream.Drive({&guard, &screen}, context);

      campaign.result.stats = screen.TakeBatchStats();
    }
    campaign.result.metrics = campaign.registry.Snapshot();
    campaign.result.trace = campaign.recorder.Snapshot();
  } catch (const CampaignCancelledError&) {
    terminal = CampaignState::kCancelled;
  } catch (const ScrubCancelledError&) {
    terminal = CampaignState::kCancelled;
  } catch (const std::exception& e) {
    terminal = CampaignState::kFailed;
    error = e.what();
  } catch (...) {
    terminal = CampaignState::kFailed;
    error = "unknown error";
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    lanes_in_use_ -= campaign.lanes;
    campaign.state = terminal;
    campaign.error = std::move(error);
    campaign.finish_unix = UnixSecondsNow();
    RecordTransitionLocked(EventKind::kCampaignFinished, campaign);
    changed_.notify_all();
  }
}

CampaignStatus CampaignManager::StatusLocked(const Campaign& campaign) const {
  CampaignStatus status;
  status.id = campaign.id;
  status.name = campaign.spec.name;
  status.state = campaign.state;
  status.lanes = campaign.lanes;
  status.shards_done = campaign.shards_done.load(std::memory_order_relaxed);
  status.shards_total = campaign.shards_total;
  status.detections = campaign.detections.load(std::memory_order_relaxed);
  status.submit_unix = campaign.submit_unix;
  status.start_unix = campaign.start_unix;
  status.finish_unix = campaign.finish_unix;
  status.error = campaign.error;
  return status;
}

std::optional<CampaignStatus> CampaignManager::GetStatus(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Campaign* campaign = FindLocked(id);
  if (campaign == nullptr) {
    return std::nullopt;
  }
  return StatusLocked(*campaign);
}

std::vector<CampaignStatus> CampaignManager::List() const {
  std::vector<CampaignStatus> statuses;
  std::lock_guard<std::mutex> lock(mutex_);
  statuses.reserve(campaigns_.size());
  for (const auto& campaign : campaigns_) {
    statuses.push_back(StatusLocked(*campaign));
  }
  return statuses;
}

std::optional<CampaignStats> CampaignManager::GetStats(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Campaign* campaign = FindLocked(id);
  if (campaign == nullptr) {
    return std::nullopt;
  }
  // Sink locks nest inside the manager's (workers take them without it), so snapshotting
  // a running campaign here cannot deadlock.
  CampaignStats stats;
  stats.status = StatusLocked(*campaign);
  stats.series = campaign->series.Snapshot();
  stats.metrics = campaign->registry.Snapshot();
  return stats;
}

DaemonStats CampaignManager::GetDaemonStats() const {
  DaemonStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.total_lanes = total_lanes_;
    stats.lanes_in_use = lanes_in_use_;
    stats.queue_depth = admit_queue_.size();
    stats.campaigns = campaigns_.size();
  }
  stats.events_recorded = events_.total_recorded();
  stats.events_dropped = events_.dropped_events();
  stats.host_series = host_series_.Snapshot();
  return stats;
}

MetricsSnapshot CampaignManager::AggregateMetrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot merged;
  for (const auto& campaign : campaigns_) {
    merged.MergeFrom(campaign->registry.Snapshot());
  }
  return merged;
}

bool CampaignManager::Cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Campaign* campaign = FindLocked(id);
  if (campaign == nullptr) {
    return false;
  }
  campaign->cancel.store(true, std::memory_order_relaxed);
  changed_.notify_all();
  return true;
}

std::optional<CampaignState> CampaignManager::Wait(uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  Campaign* campaign = FindLocked(id);
  if (campaign == nullptr) {
    return std::nullopt;
  }
  changed_.wait(lock, [&] {
    return campaign->state == CampaignState::kDone ||
           campaign->state == CampaignState::kCancelled ||
           campaign->state == CampaignState::kFailed;
  });
  return campaign->state;
}

const CampaignResult* CampaignManager::Result(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Campaign* campaign = FindLocked(id);
  if (campaign == nullptr || campaign->state != CampaignState::kDone) {
    return nullptr;
  }
  return &campaign->result;
}

void CampaignManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    for (const auto& campaign : campaigns_) {
      campaign->cancel.store(true, std::memory_order_relaxed);
    }
    changed_.notify_all();
  }
  for (const auto& campaign : campaigns_) {
    if (campaign->worker.joinable()) {
      campaign->worker.join();
    }
  }
}

}  // namespace sdc
