// Campaign and scenario specifications shared by the sdcd daemon protocol and the
// sdcctl command line (docs/daemon.md).
//
// A *scenario* selects one ScreeningConfig (seed, cadence, stage parameters); a
// *campaign* is what sdcd schedules: a fleet (processor count + generation seed), a lane
// budget, and one or more scenarios screened against that fleet in a single fused
// streaming pass. Both are written as whitespace-separated `key=value` tokens, parsed
// with the same strict discipline as the rest of the CLI (src/common/parse.h): unknown
// keys, malformed numbers, empty specs, and out-of-range values are errors the caller
// maps to exit status 2 (command line) or an `err spec` reply (socket protocol) -- never
// silent defaults.

#ifndef SDC_SRC_DAEMON_SPEC_H_
#define SDC_SRC_DAEMON_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fleet/pipeline.h"

namespace sdc {

// One sweep scenario: a display name plus the screening config it selects.
struct SweepScenario {
  std::string name;
  ScreeningConfig config;
};

// Maps a stage name from a scenario key (stage.<name>.<field>) to its index;
// -1 for unknown names. Accepts both "reinstall" and "re-install".
int StageIndexOf(const std::string& name);

// Applies one `key=value` token to a scenario. Keys: name, seed, period_months,
// horizon_months, regular_groups, stage.<factory|datacenter|reinstall|regular>
// .<seconds|temp|catch>. Returns false and fills `error` on any malformed token.
bool ApplyScenarioAssignment(const std::string& token, SweepScenario& scenario,
                             std::string& error);

// Expands a sweep operand into scenarios. `seeds:K` yields K scenarios varying only the
// screening seed (base 77 + k); anything else names a scenario file, one scenario per
// non-comment line of key=value tokens. At most kMaxSweepScenarios scenarios.
inline constexpr size_t kMaxSweepScenarios = 256;
bool ParseSweepSpec(const std::string& spec, std::vector<SweepScenario>& out,
                    std::string& error);

// What sdcd runs: a fleet, a lane budget, and the scenarios screened against it.
struct CampaignSpec {
  std::string name = "campaign";
  uint64_t processors = 100000;  // fleet size
  uint64_t seed = 20210101;      // fleet generation seed
  int lanes = 1;                 // pool lanes requested (clamped to the daemon budget)
  std::vector<SweepScenario> scenarios;  // at least one after parsing

  // Campaign kind: "screen" (the fused generate->screen pass, the default) or "scrub"
  // (discovery plus the budgeted FleetScrubber epoch loop; docs/scrubbing.md). A scrub
  // campaign screens with its single scenario's config to discover the escapes and
  // rejects sweep=; its progress ledger counts epochs instead of stream shards and
  // cancellation lands at the next epoch boundary.
  std::string kind = "screen";
  // Scrub-kind knobs (scrub.* keys; rejected when kind=screen).
  double scrub_budget_fraction = 1e-5;  // scrub.budget
  double scrub_horizon_months = 12.0;   // scrub.horizon_months
  double scrub_epoch_months = 1.0;      // scrub.epoch_months
  uint64_t scrub_max_cases = 48;        // scrub.max_cases (0 = full plans)
  double scrub_sample_hours = 0.05;     // scrub.sample_hours (workload sampling)
};

// Parses one campaign spec line of whitespace-separated key=value tokens:
//   name=<id> processors=<N> seed=<S> lanes=<L> kind=<screen|scrub>
//   scenario.<key>=<v>   (screening knobs of the single default scenario)
//   sweep=<seeds:K|file> (multi-scenario campaign; excludes scenario.* keys)
//   scrub.<budget|horizon_months|epoch_months|max_cases|sample_hours>=<v>
//                        (kind=scrub only; sweep= is rejected for scrub campaigns)
// Every key is optional, but the line must contain at least one token: an empty or
// blank spec -- the truncated-submit case on the socket -- is an error, not a default
// campaign. Returns false and fills `error` on any violation.
bool ParseCampaignSpec(const std::string& text, CampaignSpec& out, std::string& error);

}  // namespace sdc

#endif  // SDC_SRC_DAEMON_SPEC_H_
