#include "src/daemon/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/daemon/protocol.h"

namespace sdc {
namespace {

// Writes the whole buffer, riding out short writes and EINTR. Returns false once the
// peer is gone -- the handler then just drops the connection.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

DaemonServer::DaemonServer(CampaignManager* manager, std::string socket_path)
    : manager_(manager), socket_path_(std::move(socket_path)) {}

DaemonServer::~DaemonServer() {
  Stop();
  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (std::thread& thread : connection_threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

bool DaemonServer::Start(std::string& error) {
  sockaddr_un address{};
  if (socket_path_.size() >= sizeof(address.sun_path)) {
    error = "socket path too long (max " +
            std::to_string(sizeof(address.sun_path) - 1) + " bytes): " + socket_path_;
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  ::unlink(socket_path_.c_str());  // a stale socket from a dead daemon would block bind
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    error = "bind " + socket_path_ + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) < 0) {
    error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    ::unlink(socket_path_.c_str());
    return false;
  }
  listen_fd_.store(fd);
  return true;
}

void DaemonServer::Serve() {
  while (!stopping_.load()) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) {
      break;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // Stop() closed the listening socket
    }
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void DaemonServer::Stop() {
  stopping_.store(true);
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() unblocks a thread parked in accept on platforms where close alone
    // does not; the subsequent accept failure ends the Serve loop.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void DaemonServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    // Serve every complete line already buffered before reading more.
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      const ProtocolReply reply = HandleRequestLine(*manager_, line);
      const std::string header = reply.line + "\n";
      if (!WriteAll(fd, header.data(), header.size()) ||
          !WriteAll(fd, reply.payload.data(), reply.payload.size())) {
        ::close(fd);
        return;
      }
      if (reply.shutdown) {
        ::close(fd);
        Stop();
        return;
      }
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // peer closed (a trailing partial line is a dropped request by contract)
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
}

}  // namespace sdc
