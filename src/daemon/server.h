// Unix-domain socket front end of the sdcd daemon (docs/daemon.md).
//
// The server owns only transport: it binds a stream socket at a filesystem path, accepts
// connections, reads newline-terminated request lines, and answers each with the
// ProtocolReply produced by HandleRequestLine -- status line, newline, then the payload
// verbatim. Each connection gets its own handler thread, so a client blocked in `wait`
// never stalls another client's `submit`; all campaign state lives in the shared
// CampaignManager, which is what makes the concurrency safe.

#ifndef SDC_SRC_DAEMON_SERVER_H_
#define SDC_SRC_DAEMON_SERVER_H_

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/daemon/campaign.h"

namespace sdc {

class DaemonServer {
 public:
  // `manager` must outlive the server. Nothing touches the filesystem until Start.
  DaemonServer(CampaignManager* manager, std::string socket_path);
  ~DaemonServer();

  DaemonServer(const DaemonServer&) = delete;
  DaemonServer& operator=(const DaemonServer&) = delete;

  // Binds and listens at the socket path (unlinking any stale socket first). Returns
  // false and fills `error` on failure -- including a path too long for sockaddr_un.
  bool Start(std::string& error);

  // Accept loop: serves until Stop is called or a shutdown verb arrives. Blocks; run it
  // on the main thread. Joins every connection handler before returning.
  void Serve();

  // Asks Serve to return: closes the listening socket, which unblocks accept. Safe from
  // any thread and from connection handlers (the shutdown verb calls it).
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  void HandleConnection(int fd);

  CampaignManager* manager_;
  std::string socket_path_;
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};
  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace sdc

#endif  // SDC_SRC_DAEMON_SERVER_H_
