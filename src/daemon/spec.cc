#include "src/daemon/spec.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/parse.h"

namespace sdc {

int StageIndexOf(const std::string& name) {
  if (name == "factory") {
    return 0;
  }
  if (name == "datacenter") {
    return 1;
  }
  if (name == "reinstall" || name == "re-install") {
    return 2;
  }
  if (name == "regular") {
    return 3;
  }
  return -1;
}

bool ApplyScenarioAssignment(const std::string& token, SweepScenario& scenario,
                             std::string& error) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    error = "expected key=value, got '" + token + "'";
    return false;
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  if (key == "name") {
    if (value.empty()) {
      error = "name must not be empty";
      return false;
    }
    scenario.name = value;
    return true;
  }
  if (key == "seed") {
    const auto parsed = ParseUint64(value.c_str());
    if (!parsed.has_value()) {
      error = "invalid seed '" + value + "'";
      return false;
    }
    scenario.config.seed = *parsed;
    return true;
  }
  if (key == "period_months" || key == "horizon_months") {
    const auto parsed = ParseDouble(value.c_str());
    if (!parsed.has_value() || *parsed <= 0.0) {
      error = "invalid " + key + " '" + value + "'";
      return false;
    }
    (key == "period_months" ? scenario.config.regular_period_months
                            : scenario.config.horizon_months) = *parsed;
    return true;
  }
  if (key == "regular_groups") {
    const auto parsed = ParseInt(value.c_str());
    if (!parsed.has_value() || *parsed < 1) {
      error = "invalid regular_groups '" + value + "'";
      return false;
    }
    scenario.config.regular_groups = *parsed;
    return true;
  }
  if (key.rfind("stage.", 0) == 0) {
    const size_t dot = key.find('.', 6);
    if (dot == std::string::npos) {
      error = "expected stage.<stage>.<field>, got '" + key + "'";
      return false;
    }
    const int stage = StageIndexOf(key.substr(6, dot - 6));
    if (stage < 0) {
      error = "unknown stage in '" + key +
              "' (factory | datacenter | reinstall | regular)";
      return false;
    }
    const std::string field = key.substr(dot + 1);
    const auto parsed = ParseDouble(value.c_str());
    if (!parsed.has_value() || *parsed < 0.0) {
      error = "invalid " + key + " '" + value + "'";
      return false;
    }
    StageParams& params = scenario.config.stages[static_cast<size_t>(stage)];
    if (field == "seconds") {
      params.per_case_seconds = *parsed;
    } else if (field == "temp") {
      params.temperature_celsius = *parsed;
    } else if (field == "catch") {
      params.catch_factor = *parsed;
    } else {
      error = "unknown stage field in '" + key + "' (seconds | temp | catch)";
      return false;
    }
    return true;
  }
  error = "unknown key '" + key + "'";
  return false;
}

bool ParseSweepSpec(const std::string& spec, std::vector<SweepScenario>& out,
                    std::string& error) {
  if (spec.rfind("seeds:", 0) == 0) {
    const auto count = ParseUint64(spec.substr(6).c_str());
    if (!count.has_value() || *count < 1 || *count > kMaxSweepScenarios) {
      error = "seeds:K needs 1 <= K <= " + std::to_string(kMaxSweepScenarios) +
              ", got '" + spec.substr(6) + "'";
      return false;
    }
    for (uint64_t k = 0; k < *count; ++k) {
      SweepScenario scenario;
      scenario.config.seed += k;
      scenario.name = "seed" + std::to_string(scenario.config.seed);
      out.push_back(std::move(scenario));
    }
    return true;
  }
  std::ifstream file(spec);
  if (!file) {
    error = "cannot open scenario file '" + spec + "'";
    return false;
  }
  std::string line;
  size_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    const size_t comment = line.find('#');
    if (comment != std::string::npos) {
      line.resize(comment);
    }
    std::istringstream tokens(line);
    std::string token;
    SweepScenario scenario;
    scenario.name = "s" + std::to_string(out.size());
    bool any = false;
    while (tokens >> token) {
      any = true;
      std::string assign_error;
      if (!ApplyScenarioAssignment(token, scenario, assign_error)) {
        error = spec + ":" + std::to_string(line_number) + ": " + assign_error;
        return false;
      }
    }
    if (!any) {
      continue;  // blank or comment-only line
    }
    if (out.size() == kMaxSweepScenarios) {
      error = spec + ": more than " + std::to_string(kMaxSweepScenarios) + " scenarios";
      return false;
    }
    out.push_back(std::move(scenario));
  }
  if (out.empty()) {
    error = spec + ": no scenarios (every line blank or comment)";
    return false;
  }
  return true;
}

bool ParseCampaignSpec(const std::string& text, CampaignSpec& out, std::string& error) {
  CampaignSpec spec;
  SweepScenario base_scenario;
  base_scenario.name = "s0";
  bool any_token = false;
  bool any_scenario_key = false;
  bool any_scrub_key = false;
  std::string sweep_spec;
  std::istringstream tokens(text);
  std::string token;
  while (tokens >> token) {
    any_token = true;
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      error = "expected key=value, got '" + token + "'";
      return false;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "name") {
      if (value.empty()) {
        error = "name must not be empty";
        return false;
      }
      spec.name = value;
      continue;
    }
    if (key == "processors") {
      const auto parsed = ParseUint64(value.c_str());
      if (!parsed.has_value() || *parsed < 1) {
        error = "invalid processors '" + value + "'";
        return false;
      }
      spec.processors = *parsed;
      continue;
    }
    if (key == "seed") {
      const auto parsed = ParseUint64(value.c_str());
      if (!parsed.has_value()) {
        error = "invalid seed '" + value + "'";
        return false;
      }
      spec.seed = *parsed;
      continue;
    }
    if (key == "lanes") {
      const auto parsed = ParseInt(value.c_str());
      if (!parsed.has_value() || *parsed < 1) {
        error = "invalid lanes '" + value + "' (need an integer >= 1)";
        return false;
      }
      spec.lanes = *parsed;
      continue;
    }
    if (key == "sweep") {
      if (value.empty()) {
        error = "sweep must not be empty";
        return false;
      }
      sweep_spec = value;
      continue;
    }
    if (key == "kind") {
      if (value != "screen" && value != "scrub") {
        error = "unknown kind '" + value + "' (expected screen or scrub)";
        return false;
      }
      spec.kind = value;
      continue;
    }
    if (key == "scrub.budget") {
      const auto parsed = ParseDouble(value.c_str());
      if (!parsed.has_value() || *parsed < 0.0) {
        error = "invalid scrub.budget '" + value + "' (need a fraction >= 0)";
        return false;
      }
      any_scrub_key = true;
      spec.scrub_budget_fraction = *parsed;
      continue;
    }
    if (key == "scrub.horizon_months") {
      const auto parsed = ParseDouble(value.c_str());
      if (!parsed.has_value() || *parsed <= 0.0) {
        error = "invalid scrub.horizon_months '" + value + "'";
        return false;
      }
      any_scrub_key = true;
      spec.scrub_horizon_months = *parsed;
      continue;
    }
    if (key == "scrub.epoch_months") {
      const auto parsed = ParseDouble(value.c_str());
      if (!parsed.has_value() || *parsed <= 0.0) {
        error = "invalid scrub.epoch_months '" + value + "'";
        return false;
      }
      any_scrub_key = true;
      spec.scrub_epoch_months = *parsed;
      continue;
    }
    if (key == "scrub.max_cases") {
      const auto parsed = ParseUint64(value.c_str());
      if (!parsed.has_value()) {
        error = "invalid scrub.max_cases '" + value + "'";
        return false;
      }
      any_scrub_key = true;
      spec.scrub_max_cases = *parsed;
      continue;
    }
    if (key == "scrub.sample_hours") {
      const auto parsed = ParseDouble(value.c_str());
      if (!parsed.has_value() || *parsed < 0.0) {
        error = "invalid scrub.sample_hours '" + value + "'";
        return false;
      }
      any_scrub_key = true;
      spec.scrub_sample_hours = *parsed;
      continue;
    }
    if (key.rfind("scenario.", 0) == 0) {
      any_scenario_key = true;
      std::string assign_error;
      if (!ApplyScenarioAssignment(token.substr(9), base_scenario, assign_error)) {
        error = assign_error;
        return false;
      }
      continue;
    }
    error = "unknown key '" + key + "'";
    return false;
  }
  if (!any_token) {
    error = "empty campaign spec";
    return false;
  }
  if (!sweep_spec.empty() && any_scenario_key) {
    error = "sweep= and scenario.* keys are mutually exclusive";
    return false;
  }
  if (spec.kind == "scrub" && !sweep_spec.empty()) {
    error = "kind=scrub runs one discovery scenario; sweep= is not allowed";
    return false;
  }
  if (spec.kind != "scrub" && any_scrub_key) {
    error = "scrub.* keys require kind=scrub";
    return false;
  }
  if (!sweep_spec.empty()) {
    if (!ParseSweepSpec(sweep_spec, spec.scenarios, error)) {
      return false;
    }
  } else {
    spec.scenarios.push_back(std::move(base_scenario));
  }
  out = std::move(spec);
  return true;
}

}  // namespace sdc
