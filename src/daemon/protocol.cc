#include "src/daemon/protocol.h"

#include <cstdio>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "src/common/parse.h"
#include "src/report/exporters.h"

namespace sdc {
namespace {

ProtocolReply Ok(std::string line) { return {std::move(line), {}, false}; }

ProtocolReply Err(const std::string& code, const std::string& message) {
  return {"err " + code + " " + message, {}, false};
}

// An ok line whose payload follows; `bytes=N` is always the last token so clients can
// frame the body without parsing the rest of the line.
ProtocolReply OkWithPayload(std::string line, std::string payload) {
  line += " bytes=" + std::to_string(payload.size());
  return {std::move(line), std::move(payload), false};
}

// Ids travel as exact decimal tokens; anything else is a protocol error, not a zero.
std::optional<uint64_t> ParseId(const std::string& token) {
  return ParseUint64(token.c_str());
}

// Fixed-precision rendering for the status line's fractional fields, so the line stays
// token-stable for line-oriented consumers (sdcctl top, tools/check_daemon.py).
std::string Fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

// One gauge over every campaign, labelled {id, name}: `# TYPE` once, then one sample per
// campaign. shards_done and detections are monotonic per label set, which
// tools/check_prom.py's two-poll monotonicity pass relies on.
void WriteCampaignGaugeProm(std::ostream& out, const char* metric,
                            const std::vector<CampaignStatus>& statuses,
                            double (*value)(const CampaignStatus&)) {
  out << "# TYPE " << metric << " gauge\n";
  for (const CampaignStatus& status : statuses) {
    const std::pair<std::string, std::string> labels[] = {
        {"id", std::to_string(status.id)}, {"name", status.name}};
    out << metric << PromLabelSet(labels) << " ";
    WritePromSampleValue(out, value(status));
    out << "\n";
  }
}

// Daemon health plus per-campaign occupancy, appended after the aggregated engine
// metrics (whose names never collide with the sdc_daemon_/sdc_campaign_ prefixes, so no
// duplicate TYPE lines can arise).
void WriteDaemonProm(std::ostream& out, const DaemonStats& daemon,
                     const std::vector<CampaignStatus>& statuses) {
  out << "# TYPE sdc_daemon_lanes gauge\nsdc_daemon_lanes " << daemon.total_lanes << "\n";
  out << "# TYPE sdc_daemon_lanes_in_use gauge\nsdc_daemon_lanes_in_use "
      << daemon.lanes_in_use << "\n";
  out << "# TYPE sdc_daemon_queue_depth gauge\nsdc_daemon_queue_depth "
      << daemon.queue_depth << "\n";
  out << "# TYPE sdc_daemon_campaigns_total counter\nsdc_daemon_campaigns_total "
      << daemon.campaigns << "\n";
  out << "# TYPE sdc_daemon_events_recorded_total counter\n"
         "sdc_daemon_events_recorded_total "
      << daemon.events_recorded << "\n";
  out << "# TYPE sdc_daemon_events_dropped_total counter\n"
         "sdc_daemon_events_dropped_total "
      << daemon.events_dropped << "\n";
  WriteCampaignGaugeProm(out, "sdc_campaign_lanes", statuses, [](const CampaignStatus& s) {
    return static_cast<double>(s.lanes);
  });
  WriteCampaignGaugeProm(out, "sdc_campaign_shards_done", statuses,
                         [](const CampaignStatus& s) {
                           return static_cast<double>(s.shards_done);
                         });
  WriteCampaignGaugeProm(out, "sdc_campaign_shards_total", statuses,
                         [](const CampaignStatus& s) {
                           return static_cast<double>(s.shards_total);
                         });
  WriteCampaignGaugeProm(out, "sdc_campaign_detections", statuses,
                         [](const CampaignStatus& s) {
                           return static_cast<double>(s.detections);
                         });
  WriteCampaignGaugeProm(out, "sdc_campaign_progress", statuses,
                         [](const CampaignStatus& s) { return s.progress(); });
}

}  // namespace

std::string FormatCampaignStatus(const CampaignStatus& status) {
  std::ostringstream line;
  line << "id=" << status.id << " name=" << status.name
       << " state=" << CampaignStateName(status.state) << " lanes=" << status.lanes
       << " shards=" << status.shards_done << "/" << status.shards_total
       << " progress=" << Fixed(status.progress(), 4)
       << " detections=" << status.detections
       << " submitted=" << Fixed(status.submit_unix, 3)
       << " started=" << Fixed(status.start_unix, 3)
       << " finished=" << Fixed(status.finish_unix, 3);
  if (!status.error.empty()) {
    line << " error=" << status.error;
  }
  return line.str();
}

ProtocolReply HandleRequestLine(CampaignManager& manager, const std::string& line) {
  std::istringstream tokens(line);
  std::string verb;
  if (!(tokens >> verb)) {
    return Err("proto", "empty request");
  }

  if (verb == "ping") {
    return Ok("ok pong");
  }

  if (verb == "shutdown") {
    ProtocolReply reply = Ok("ok bye");
    reply.shutdown = true;
    return reply;
  }

  if (verb == "submit") {
    // Everything after the verb is the campaign spec; an empty remainder is the
    // truncated-submit case and must be rejected, not defaulted.
    std::string spec_text;
    std::getline(tokens, spec_text);
    CampaignSpec spec;
    std::string error;
    if (!ParseCampaignSpec(spec_text, spec, error)) {
      return Err("spec", error);
    }
    const uint64_t id = manager.Submit(std::move(spec));
    if (id == 0) {
      return Err("shutdown", "daemon is shutting down");
    }
    return Ok("ok id=" + std::to_string(id));
  }

  if (verb == "list") {
    const std::vector<CampaignStatus> statuses = manager.List();
    std::string payload;
    for (const CampaignStatus& status : statuses) {
      payload += FormatCampaignStatus(status);
      payload += '\n';
    }
    return OkWithPayload("ok count=" + std::to_string(statuses.size()),
                         std::move(payload));
  }

  if (verb == "prom") {
    // Daemon-wide Prometheus exposition: every campaign's registry merged (counters and
    // histograms sum, timers fold through TimerStat::MergeFrom), then the daemon health
    // and per-campaign occupancy gauges. tools/check_prom.py lints these bytes.
    std::ostringstream payload;
    WriteMetricsProm(payload, manager.AggregateMetrics());
    WriteDaemonProm(payload, manager.GetDaemonStats(), manager.List());
    return OkWithPayload("ok", payload.str());
  }

  // Every remaining verb addresses one campaign by id -- except the id-less status
  // form, which reports the daemon itself.
  if (verb != "status" && verb != "stats" && verb != "cancel" && verb != "wait" &&
      verb != "result" && verb != "metrics" && verb != "trace") {
    return Err("proto", "unknown verb '" + verb + "'");
  }
  std::string id_token;
  if (!(tokens >> id_token)) {
    if (verb == "status") {
      const DaemonStats daemon = manager.GetDaemonStats();
      std::ostringstream health;
      health << "ok lanes=" << daemon.lanes_in_use << "/" << daemon.total_lanes
             << " queued=" << daemon.queue_depth << " campaigns=" << daemon.campaigns
             << " events=" << daemon.events_recorded
             << " dropped=" << daemon.events_dropped;
      return Ok(health.str());
    }
    return Err("proto", verb + " needs a campaign id");
  }
  const std::optional<uint64_t> id = ParseId(id_token);
  if (!id.has_value()) {
    return Err("proto", "invalid campaign id '" + id_token + "'");
  }

  if (verb == "status") {
    const std::optional<CampaignStatus> status = manager.GetStatus(*id);
    if (!status.has_value()) {
      return Err("unknown-id", "no campaign " + id_token);
    }
    return Ok("ok " + FormatCampaignStatus(*status));
  }

  if (verb == "stats") {
    const std::optional<CampaignStats> stats = manager.GetStats(*id);
    if (!stats.has_value()) {
      return Err("unknown-id", "no campaign " + id_token);
    }
    // Live surface: the status line doubles as the reply header, the payload is the
    // campaign's series document (sim + host sections; docs/observability.md).
    std::ostringstream payload;
    WriteSeriesJson(payload, stats->series);
    return OkWithPayload("ok " + FormatCampaignStatus(stats->status), payload.str());
  }

  if (verb == "cancel") {
    if (!manager.Cancel(*id)) {
      return Err("unknown-id", "no campaign " + id_token);
    }
    return Ok("ok cancelled id=" + id_token);
  }

  if (verb == "wait") {
    const std::optional<CampaignState> state = manager.Wait(*id);
    if (!state.has_value()) {
      return Err("unknown-id", "no campaign " + id_token);
    }
    return Ok("ok state=" + CampaignStateName(*state));
  }

  if (verb == "result" || verb == "metrics" || verb == "trace") {
    const CampaignResult* result = manager.Result(*id);
    if (result == nullptr) {
      const std::optional<CampaignStatus> status = manager.GetStatus(*id);
      if (!status.has_value()) {
        return Err("unknown-id", "no campaign " + id_token);
      }
      return Err("not-done", "campaign " + id_token + " is " +
                                 CampaignStateName(status->state));
    }
    std::ostringstream payload;
    if (verb == "result") {
      if (result->scrub.has_value()) {
        // Scrub campaign: the result is the scrub report, not per-scenario stats, so a
        // scenario index is meaningless here.
        std::string scenario_token;
        if (tokens >> scenario_token) {
          return Err("proto", "scrub campaigns have no scenario index");
        }
        WriteScrubReportJson(payload, *result->scrub);
      } else {
        size_t scenario = 0;
        std::string scenario_token;
        if (tokens >> scenario_token) {
          const auto parsed = ParseUint64(scenario_token.c_str());
          if (!parsed.has_value() || *parsed >= result->stats.size()) {
            return Err("proto", "invalid scenario index '" + scenario_token +
                                    "' (have " + std::to_string(result->stats.size()) +
                                    ")");
          }
          scenario = static_cast<size_t>(*parsed);
        }
        WriteScreeningStatsJson(payload, result->stats[scenario]);
      }
    } else if (verb == "metrics") {
      // Timers measure daemon wall clock; the protocol exports only the deterministic
      // sections so replies are comparable across runs (docs/daemon.md).
      WriteMetricsJson(payload, result->metrics, /*include_timers=*/false);
    } else {
      WriteTraceJson(payload, result->trace, /*include_host=*/false);
    }
    return OkWithPayload("ok", payload.str());
  }

  return Err("proto", "unknown verb '" + verb + "'");  // unreachable; keeps -Wreturn-type quiet
}

}  // namespace sdc
