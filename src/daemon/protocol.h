// Request protocol of the sdcd daemon (docs/daemon.md).
//
// The wire format is deliberately line-oriented so it can be driven by hand with a
// socket client and tested without sockets at all: each request is one line of
// whitespace-separated tokens, each reply is one `ok ...` or `err <code> <msg>` line.
// Replies that carry a body (result / metrics / trace / list) end the ok line with
// `bytes=N` and follow it with exactly N bytes of payload.
//
// Verbs:
//   ping                     -> ok pong
//   submit <campaign spec>   -> ok id=N                  (spec: src/daemon/spec.h)
//   status <id>              -> ok id=N name=... state=... lanes=L shards=D/T
//                               progress=F detections=K submitted=T started=T
//                               finished=T [error=...]
//   status                   -> ok lanes=U/T queued=Q campaigns=N events=R dropped=D
//                               (the daemon-wide health line)
//   stats <id>               -> ok <status line> bytes=N + campaign series JSON (live:
//                               works in any state, snapshots what the pass recorded)
//   list                     -> ok count=K bytes=N       + one status line per campaign
//   cancel <id>              -> ok cancelled id=N
//   wait <id>                -> ok state=<terminal>      (blocks)
//   result <id> [k]          -> ok bytes=N               + scenario k screening stats JSON
//   metrics <id>             -> ok bytes=N               + campaign metrics JSON, no timers
//   trace <id>               -> ok bytes=N               + campaign sim-trace JSON, no host
//   prom                     -> ok bytes=N               + daemon-wide Prometheus text
//                               (every campaign's metrics merged, plus daemon health and
//                               per-campaign {id,name}-labelled occupancy gauges)
//   shutdown                 -> ok bye                   (server stops accepting)
//
// Error codes mirror the CLI's operand discipline: `proto` (malformed request line) and
// `spec` (malformed campaign spec) are usage errors the client maps to exit status 2;
// `unknown-id`, `not-done`, and `shutdown` are runtime conditions mapped to exit 1.

#ifndef SDC_SRC_DAEMON_PROTOCOL_H_
#define SDC_SRC_DAEMON_PROTOCOL_H_

#include <string>

#include "src/daemon/campaign.h"

namespace sdc {

// One reply: the status line (no trailing newline), the payload advertised by its
// `bytes=N` token (empty when the line carries no such token), and whether the server
// should stop serving after sending it.
struct ProtocolReply {
  std::string line;
  std::string payload;
  bool shutdown = false;
};

// Handles one request line against the manager. Pure with respect to I/O -- the server
// owns the socket framing, tests call this directly.
ProtocolReply HandleRequestLine(CampaignManager& manager, const std::string& line);

// Renders one campaign status in the protocol's key=value form (shared by `status`
// replies and `list` payload lines).
std::string FormatCampaignStatus(const CampaignStatus& status);

}  // namespace sdc

#endif  // SDC_SRC_DAEMON_PROTOCOL_H_
