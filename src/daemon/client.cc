#include "src/daemon/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/parse.h"

namespace sdc {

DaemonClient::DaemonClient(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}

DaemonClient::~DaemonClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool DaemonClient::Connect(std::string& error) {
  sockaddr_un address{};
  if (socket_path_.size() >= sizeof(address.sun_path)) {
    error = "socket path too long (max " +
            std::to_string(sizeof(address.sun_path) - 1) + " bytes): " + socket_path_;
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    error = "connect " + socket_path_ + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool DaemonClient::Request(const std::string& line, std::string& reply_line,
                           std::string& payload, std::string& error) {
  if (fd_ < 0) {
    error = "not connected";
    return false;
  }
  const std::string request = line + "\n";
  size_t written = 0;
  while (written < request.size()) {
    const ssize_t n = ::write(fd_, request.data() + written, request.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      error = std::string("write: ") + std::strerror(errno);
      return false;
    }
    written += static_cast<size_t>(n);
  }

  // Read up to the reply line's newline.
  char chunk[4096];
  size_t newline;
  while ((newline = buffer_.find('\n')) == std::string::npos) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      error = "connection closed before a reply line arrived";
      return false;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  reply_line = buffer_.substr(0, newline);
  buffer_.erase(0, newline + 1);

  // A trailing `bytes=N` token announces the payload length; no token, no payload.
  payload.clear();
  const size_t last_space = reply_line.find_last_of(' ');
  const std::string last_token =
      last_space == std::string::npos ? reply_line : reply_line.substr(last_space + 1);
  if (last_token.rfind("bytes=", 0) != 0) {
    return true;
  }
  const auto bytes = ParseUint64(last_token.substr(6).c_str());
  if (!bytes.has_value()) {
    error = "malformed payload length in reply '" + reply_line + "'";
    return false;
  }
  while (buffer_.size() < *bytes) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      error = "connection closed mid-payload (" + std::to_string(buffer_.size()) + "/" +
              std::to_string(*bytes) + " bytes)";
      return false;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  payload = buffer_.substr(0, static_cast<size_t>(*bytes));
  buffer_.erase(0, static_cast<size_t>(*bytes));
  return true;
}

}  // namespace sdc
