// Client side of the sdcd socket protocol, used by `sdcctl --socket` (docs/daemon.md).
//
// One connection, synchronous request/reply: Request writes a single protocol line and
// reads the reply line plus -- when that line ends in `bytes=N` -- exactly N payload
// bytes. Interpretation of the reply (ok vs err, exit-status mapping) stays with the
// caller; this class only frames bytes.

#ifndef SDC_SRC_DAEMON_CLIENT_H_
#define SDC_SRC_DAEMON_CLIENT_H_

#include <string>

namespace sdc {

class DaemonClient {
 public:
  explicit DaemonClient(std::string socket_path);
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  // Connects to the daemon's socket. Returns false and fills `error` if the daemon is
  // not reachable there.
  bool Connect(std::string& error);

  // Sends one request line (newline appended here) and reads the full reply. On success
  // `reply_line` holds the status line and `payload` the advertised body (empty when the
  // line carries no `bytes=N` token). Returns false and fills `error` on transport
  // failures -- a malformed or truncated reply, or a connection dropped mid-read.
  bool Request(const std::string& line, std::string& reply_line, std::string& payload,
               std::string& error);

 private:
  std::string socket_path_;
  int fd_ = -1;
  std::string buffer_;  // bytes read past the current reply line
};

}  // namespace sdc

#endif  // SDC_SRC_DAEMON_CLIENT_H_
