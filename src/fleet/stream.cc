#include "src/fleet/stream.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <utility>

#include "src/common/context.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/series.h"
#include "src/telemetry/trace.h"

namespace sdc {
namespace {

// Same "fleet.generate.*" keys and values the materialized path has always recorded --
// built once per shard from the integer tallies, merged in shard order by Drive.
MetricsDelta DeltaFromTally(const FleetShardTally& tally, uint64_t processors) {
  MetricsDelta delta;
  delta.Add("fleet.generate.processors", processors);
  delta.Add("fleet.generate.faulty", tally.faulty);
  delta.Add("fleet.generate.defects", tally.defects);
  delta.Add("fleet.generate.undetectable", tally.undetectable);
  for (int arch = 0; arch < kArchCount; ++arch) {
    const auto index = static_cast<size_t>(arch);
    if (tally.by_arch[index] > 0) {
      delta.Add("fleet.generate.arch." + ArchName(arch) + ".processors",
                tally.by_arch[index]);
    }
    if (tally.defects_by_arch[index] > 0) {
      delta.Add("fleet.generate.arch." + ArchName(arch) + ".defects",
                tally.defects_by_arch[index]);
    }
  }
  return delta;
}

}  // namespace

std::span<const Defect> FleetShard::DefectsOf(uint64_t serial) const {
  const auto it =
      std::lower_bound(faulty_serials.begin(), faulty_serials.end(), serial);
  if (it == faulty_serials.end() || *it != serial) {
    return {};
  }
  return FaultyDefects(static_cast<size_t>(it - faulty_serials.begin()));
}

ShardConsumer::~ShardConsumer() = default;

void ShardConsumer::BeginStreamWithContext(EngineContext* /*context*/,
                                           const PopulationConfig& config,
                                           uint64_t shard_count) {
  BeginStream(config, shard_count);
}

void ShardConsumer::BeginStream(const PopulationConfig& /*config*/,
                                uint64_t /*shard_count*/) {}

void ShardConsumer::EndStream() {}

uint64_t FleetShardStream::shard_count() const {
  return ThreadPool::ShardCountFor(0, config_.processor_count, kFleetShardGrain);
}

StreamReport FleetShardStream::Drive(std::span<ShardConsumer* const> consumers) const {
  // Context-free drive: the environment (SDC_THREADS) is consulted exactly once, while
  // this per-call context is constructed. Consumers see a null context so their sink and
  // SIMD resolution stays byte-for-byte the legacy behavior.
  EngineContext context(EngineOptions{.threads = config_.threads});
  return DriveWith(consumers, context, nullptr);
}

StreamReport FleetShardStream::Drive(std::span<ShardConsumer* const> consumers,
                                     EngineContext& context) const {
  return DriveWith(consumers, context, &context);
}

StreamReport FleetShardStream::DriveWith(std::span<ShardConsumer* const> consumers,
                                         EngineContext& context,
                                         EngineContext* consumer_context) const {
  // Sinks are pinned here, once, for the whole pass: an explicit config sink wins, the
  // context's attachment backs it up, and a detach between shards cannot drop or
  // double-merge a delta -- the in-flight pass completes against what was pinned.
  MetricsRegistry* metrics =
      config_.metrics != nullptr
          ? config_.metrics
          : (consumer_context != nullptr ? consumer_context->metrics() : nullptr);
  TraceRecorder* trace =
      config_.trace != nullptr
          ? config_.trace
          : (consumer_context != nullptr ? consumer_context->trace() : nullptr);
  SeriesRecorder* series =
      config_.series != nullptr
          ? config_.series
          : (consumer_context != nullptr ? consumer_context->series() : nullptr);
  MetricsRegistry::ScopedTimer drive_timer(metrics, "fleet.stream.wall");
  TraceRecorder::ScopedHostSpan drive_span(trace, "fleet.stream.drive", "generate",
                                           kTraceTrackGenerate);
  const uint64_t shards = shard_count();
  ThreadPool& pool = context.pool();

  StreamReport report;
  report.shards = shards;
  report.lanes = pool.thread_count();

  for (ShardConsumer* consumer : consumers) {
    consumer->BeginStreamWithContext(consumer_context, config_, shards);
  }

  const Rng base(config_.seed);
  // One plan for the whole pass: the per-shard CDF/threshold/pcore precompute happens
  // here, once, and every lane shares it read-only.
  const GenerationPlan plan = consumer_context != nullptr
                                  ? GenerationPlan::Build(config_, *consumer_context)
                                  : GenerationPlan::Build(config_);
  struct LaneState {
    FleetShardBuffer buffer;
    uint64_t peak_bytes = 0;
  };
  std::vector<LaneState> lanes(static_cast<size_t>(pool.thread_count()));
  std::vector<MetricsDelta> deltas(metrics != nullptr ? shards : 0);
  std::vector<TraceDelta> traces(trace != nullptr ? shards : 0);
  // Per-shard sample for the time-series sink: filled concurrently (shards own disjoint
  // slots), folded into cumulative points in shard order below -- the same discipline
  // that keeps the metrics deltas deterministic.
  struct ShardSample {
    uint64_t processors = 0;
    uint64_t faulty = 0;
  };
  std::vector<ShardSample> samples(series != nullptr ? shards : 0);

  pool.ParallelStream(
      0, config_.processor_count, kFleetShardGrain,
      [&](int lane, uint64_t shard, uint64_t begin, uint64_t end) {
        LaneState& state = lanes[static_cast<size_t>(lane)];
        GenerateFleetShard(config_, plan, base, shard, begin, end, state.buffer);

        FleetShard view;
        view.shard = shard;
        view.begin = begin;
        view.end = end;
        view.tally = &state.buffer.tally;
        view.arch_bytes = state.buffer.arch_bytes;
        view.flag_bytes = state.buffer.flag_bytes;
        view.faulty_serials = state.buffer.faulty_serials;
        view.faulty_ranges = state.buffer.faulty_ranges;
        view.defects = state.buffer.defects;
        for (ShardConsumer* consumer : consumers) {
          consumer->ConsumeShard(view);
        }
        if (metrics != nullptr) {
          deltas[shard] = DeltaFromTally(state.buffer.tally, end - begin);
        }
        if (series != nullptr) {
          samples[shard] = {end - begin, state.buffer.tally.faulty};
        }
        if (trace != nullptr) {
          // Sim clock: processor serial space. ts = first serial, dur = shard width, so
          // the generation timeline reads as coverage of the fleet's serial axis.
          TraceEvent span = MakeTraceSpan("generate.shard", "generate",
                                          kTraceTrackGenerate,
                                          static_cast<double>(begin),
                                          static_cast<double>(end - begin));
          span.num_args.reserve(3);
          span.num_args.emplace_back("shard", static_cast<double>(shard));
          span.num_args.emplace_back("faulty",
                                     static_cast<double>(state.buffer.tally.faulty));
          span.num_args.emplace_back("defects",
                                     static_cast<double>(state.buffer.tally.defects));
          traces[shard].Add(std::move(span));
        }
        state.peak_bytes = std::max(state.peak_bytes, state.buffer.CapacityBytes());
      });

  for (const LaneState& state : lanes) {
    report.peak_scratch_bytes += state.peak_bytes;
  }
  if (metrics != nullptr) {
    for (const MetricsDelta& delta : deltas) {
      metrics->MergeDelta(delta);
    }
  }
  if (trace != nullptr) {
    for (TraceDelta& delta : traces) {
      trace->MergeDelta(std::move(delta));
    }
  }
  if (series != nullptr) {
    // Cumulative trajectory over the fleet's serial axis, one point per shard, appended
    // in shard order on the driving thread: byte-identical at any thread count.
    uint64_t processors = 0;
    uint64_t faulty = 0;
    uint64_t end_serial = 0;
    for (const ShardSample& sample : samples) {
      processors += sample.processors;
      faulty += sample.faulty;
      end_serial += sample.processors;
      const auto x = static_cast<double>(end_serial);
      series->Append("fleet.generate.processors", SeriesClock::kSim, x,
                     static_cast<double>(processors));
      series->Append("fleet.generate.faulty", SeriesClock::kSim, x,
                     static_cast<double>(faulty));
    }
  }
  for (ShardConsumer* consumer : consumers) {
    consumer->EndStream();
  }
  return report;
}

StreamReport FleetShardStream::Drive(std::initializer_list<ShardConsumer*> consumers) const {
  return Drive(std::span<ShardConsumer* const>(consumers.begin(), consumers.size()));
}

StreamReport FleetShardStream::Drive(std::initializer_list<ShardConsumer*> consumers,
                                     EngineContext& context) const {
  return Drive(std::span<ShardConsumer* const>(consumers.begin(), consumers.size()),
               context);
}

void FleetMaterializer::BeginStreamWithContext(EngineContext* context,
                                               const PopulationConfig& config,
                                               uint64_t shard_count) {
  BeginStream(config, shard_count);
  if (trace_ == nullptr && context != nullptr) {
    trace_ = context->trace();
  }
}

void FleetMaterializer::BeginStream(const PopulationConfig& config, uint64_t shard_count) {
  fleet_->config_ = config;
  fleet_->arch_.resize(config.processor_count);
  fleet_->flags_.resize(config.processor_count);
  pieces_.assign(shard_count, ShardPiece{});
  trace_ = config.trace;
}

void FleetMaterializer::ConsumeShard(const FleetShard& shard) {
  // Columns go straight into place -- shards own disjoint serial ranges -- while the
  // variable-length faulty pieces are copied aside for the ordered stitch in EndStream.
  if (shard.size() > 0) {
    std::memcpy(fleet_->arch_.data() + shard.begin, shard.arch_bytes.data(),
                shard.size() * sizeof(uint8_t));
    std::memcpy(fleet_->flags_.data() + shard.begin, shard.flag_bytes.data(),
                shard.size() * sizeof(uint8_t));
  }
  ShardPiece& piece = pieces_[shard.shard];
  piece.faulty_serials.assign(shard.faulty_serials.begin(), shard.faulty_serials.end());
  piece.faulty_ranges.assign(shard.faulty_ranges.begin(), shard.faulty_ranges.end());
  piece.defects.assign(shard.defects.begin(), shard.defects.end());
  piece.by_arch = shard.tally->by_arch;
}

void FleetMaterializer::EndStream() {
  // Host domain only: the stitch is wall-clock work with no deterministic timeline of its
  // own, and keeping it out of the sim track is what lets streaming and materialized runs
  // produce identical sim traces.
  TraceRecorder::ScopedHostSpan stitch_span(trace_, "fleet.materialize", "aggregate",
                                            kTraceTrackAggregate);
  uint64_t total_faulty = 0;
  uint64_t total_defects = 0;
  for (const ShardPiece& piece : pieces_) {
    total_faulty += piece.faulty_serials.size();
    total_defects += piece.defects.size();
  }
  fleet_->faulty_serials_.reserve(total_faulty);
  fleet_->faulty_ranges_.reserve(total_faulty);
  fleet_->defect_arena_.reserve(total_defects);
  // Shard-local arena offsets are running sums starting at 0, so rebasing by the arena
  // size at the shard's turn keeps every range pointing at its own defects.
  for (ShardPiece& piece : pieces_) {
    const uint64_t base_offset = fleet_->defect_arena_.size();
    for (size_t i = 0; i < piece.faulty_serials.size(); ++i) {
      fleet_->faulty_serials_.push_back(piece.faulty_serials[i]);
      fleet_->faulty_ranges_.push_back(
          {base_offset + piece.faulty_ranges[i].offset, piece.faulty_ranges[i].count});
    }
    fleet_->defect_arena_.insert(fleet_->defect_arena_.end(),
                                 std::make_move_iterator(piece.defects.begin()),
                                 std::make_move_iterator(piece.defects.end()));
    for (int arch = 0; arch < kArchCount; ++arch) {
      fleet_->counts_by_arch_[static_cast<size_t>(arch)] +=
          piece.by_arch[static_cast<size_t>(arch)];
    }
  }
  pieces_.clear();
  pieces_.shrink_to_fit();
}

}  // namespace sdc
