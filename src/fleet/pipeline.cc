#include "src/fleet/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/telemetry/metrics.h"

namespace sdc {

std::string StageName(TestStage stage) {
  switch (stage) {
    case TestStage::kFactory:
      return "factory";
    case TestStage::kDatacenter:
      return "datacenter";
    case TestStage::kReinstall:
      return "re-install";
    case TestStage::kRegular:
      return "regular";
  }
  return "?";
}

uint64_t ScreeningStats::total_detected() const {
  uint64_t total = 0;
  for (uint64_t count : detected_by_stage) {
    total += count;
  }
  return total;
}

double ScreeningStats::StageRate(TestStage stage) const {
  if (tested == 0) {
    return 0.0;
  }
  return static_cast<double>(detected_by_stage[static_cast<int>(stage)]) /
         static_cast<double>(tested);
}

double ScreeningStats::TotalRate() const {
  if (tested == 0) {
    return 0.0;
  }
  return static_cast<double>(total_detected()) / static_cast<double>(tested);
}

double ScreeningStats::ArchRate(int arch_index) const {
  if (tested_by_arch[arch_index] == 0) {
    return 0.0;
  }
  return static_cast<double>(detected_by_arch[arch_index]) /
         static_cast<double>(tested_by_arch[arch_index]);
}

double ScreeningStats::PreProductionRate() const {
  return StageRate(TestStage::kFactory) + StageRate(TestStage::kDatacenter) +
         StageRate(TestStage::kReinstall);
}

void ScreeningStats::MergeFrom(const ScreeningStats& other) {
  tested += other.tested;
  faulty += other.faulty;
  for (int stage = 0; stage < kStageCount; ++stage) {
    detected_by_stage[static_cast<size_t>(stage)] +=
        other.detected_by_stage[static_cast<size_t>(stage)];
  }
  for (int arch = 0; arch < kArchCount; ++arch) {
    tested_by_arch[static_cast<size_t>(arch)] +=
        other.tested_by_arch[static_cast<size_t>(arch)];
    detected_by_arch[static_cast<size_t>(arch)] +=
        other.detected_by_arch[static_cast<size_t>(arch)];
  }
  detections.insert(detections.end(), other.detections.begin(), other.detections.end());
}

int RegularGroupOf(uint64_t serial, const ScreeningConfig& config) {
  const int groups = config.regular_groups < 1 ? 1 : config.regular_groups;
  return static_cast<int>(Mix64(serial) % static_cast<uint64_t>(groups));
}

double RegularRoundMonth(uint64_t serial, int cycle, const ScreeningConfig& config) {
  const int groups = config.regular_groups < 1 ? 1 : config.regular_groups;
  const double offset = config.regular_period_months *
                        static_cast<double>(RegularGroupOf(serial, config)) /
                        static_cast<double>(groups);
  return static_cast<double>(cycle) * config.regular_period_months + offset;
}

ScreeningPipeline::ScreeningPipeline(const TestSuite* suite) : suite_(suite) {}

int ScreeningPipeline::MatchingTestcases(const Defect& defect) const {
  int matches = 0;
  for (size_t i = 0; i < suite_->size(); ++i) {
    const TestcaseInfo& info = suite_->info(i);
    bool op_match = false;
    for (OpKind op : info.ops) {
      if (defect.AffectsOp(op)) {
        op_match = true;
        break;
      }
    }
    if (!op_match) {
      continue;
    }
    if (defect.type() == SdcType::kComputation) {
      bool type_match = false;
      for (DataType type : info.types) {
        if (defect.AffectsType(type)) {
          type_match = true;
          break;
        }
      }
      if (!type_match) {
        continue;
      }
    }
    ++matches;
  }
  return matches;
}

double ScreeningPipeline::ExpectedErrors(const Defect& defect, const StageParams& stage,
                                         int pcores) const {
  const int matching = MatchingTestcases(defect);
  if (matching == 0) {
    return 0.0;
  }
  // Sequential per-core testing: each core gets an equal share of each testcase's duration.
  const double minutes_per_core =
      stage.per_case_seconds * static_cast<double>(matching) /
      static_cast<double>(pcores) / 60.0;
  double expected = 0.0;
  for (int pcore = 0; pcore < pcores; ++pcore) {
    expected += defect.OccurrenceFrequencyPerMinute(stage.temperature_celsius,
                                                    defect.intensity_ref, pcore) *
                minutes_per_core;
  }
  return expected;
}

namespace {

// Fixed shard width for screening; like generation, shard s draws from Rng::Fork(s) so the
// stats are a pure function of (fleet, config.seed) at any thread count.
constexpr uint64_t kScreeningGrain = 4096;

// Per-stage pass/fail/SDC counters for one shard, derived from the shard's private stats
// so the hot per-processor loop never touches a metric map.
MetricsDelta DeltaFromShardStats(const ScreeningStats& stats) {
  MetricsDelta delta;
  delta.Add("screening.tested", stats.tested);
  delta.Add("screening.faulty", stats.faulty);
  delta.Add("screening.detected", stats.total_detected());
  delta.Add("screening.escaped", stats.faulty - stats.total_detected());
  for (int stage = 0; stage < kStageCount; ++stage) {
    delta.Add("screening.stage." + StageName(static_cast<TestStage>(stage)) + ".detected",
              stats.detected_by_stage[static_cast<size_t>(stage)]);
  }
  for (int arch = 0; arch < kArchCount; ++arch) {
    const auto index = static_cast<size_t>(arch);
    if (stats.tested_by_arch[index] > 0) {
      delta.Add("screening.arch." + ArchName(arch) + ".tested",
                stats.tested_by_arch[index]);
    }
    if (stats.detected_by_arch[index] > 0) {
      delta.Add("screening.arch." + ArchName(arch) + ".detected",
                stats.detected_by_arch[index]);
    }
  }
  return delta;
}

}  // namespace

ScreeningStats ScreeningPipeline::Run(const FleetPopulation& fleet,
                                      const ScreeningConfig& config) const {
  const std::vector<FleetProcessor>& processors = fleet.processors();
  const Rng base(config.seed);
  MetricsRegistry::ScopedTimer run_timer(config.metrics, "screening.run.wall");
  ThreadPool pool(config.threads);

  // Stats plus the shard's metric delta travel together through the ordered reduce, so
  // the registry sees exactly one delta per shard, applied in shard order.
  struct ShardResult {
    ScreeningStats stats;
    MetricsDelta delta;
  };
  ShardResult total = pool.ParallelReduce<ShardResult>(
      0, processors.size(), kScreeningGrain, ShardResult{},
      [&](uint64_t shard, uint64_t begin, uint64_t end) {
        const auto shard_start = std::chrono::steady_clock::now();
        ShardResult result;
        Rng rng = base.Fork(shard);
        for (uint64_t index = begin; index < end; ++index) {
          ScreenProcessor(processors[index], config, rng, result.stats);
        }
        if (config.metrics != nullptr) {
          result.delta = DeltaFromShardStats(result.stats);
          const std::chrono::duration<double> elapsed =
              std::chrono::steady_clock::now() - shard_start;
          config.metrics->RecordTimerSeconds("screening.shard.wall", elapsed.count());
        }
        return result;
      },
      [](ShardResult& accumulator, const ShardResult& shard_result) {
        accumulator.stats.MergeFrom(shard_result.stats);
        accumulator.delta.MergeFrom(shard_result.delta);
      });
  if (config.metrics != nullptr) {
    config.metrics->MergeDelta(total.delta);
  }
  return std::move(total.stats);
}

void ScreeningPipeline::ScreenProcessor(const FleetProcessor& processor,
                                        const ScreeningConfig& config, Rng& rng,
                                        ScreeningStats& stats) const {
  ++stats.tested;
  ++stats.tested_by_arch[processor.arch_index];
  if (!processor.faulty) {
    return;
  }
  ++stats.faulty;
  if (!processor.toolchain_detectable) {
    return;  // escapes every stage (Section 2.3's false negatives)
  }
  const int pcores = MakeArchSpec(processor.arch_index).physical_cores;

  // Pre-computed per-stage detection probabilities across the part's defects (a part is
  // detected when any defect reproduces).
  auto stage_probability = [&](const StageParams& stage, double age_months) {
    double survive = 1.0;
    for (const Defect& defect : processor.defects) {
      if (defect.onset_months > age_months) {
        continue;  // not yet developed
      }
      const double expected = ExpectedErrors(defect, stage, pcores);
      survive *= 1.0 - stage.catch_factor * (1.0 - std::exp(-expected));
    }
    return 1.0 - survive;
  };

  bool detected = false;
  TestStage detected_stage = TestStage::kFactory;
  double detected_month = 0.0;
  const TestStage pre_production[] = {TestStage::kFactory, TestStage::kDatacenter,
                                      TestStage::kReinstall};
  for (TestStage stage : pre_production) {
    if (rng.NextBernoulli(
            stage_probability(config.stages[static_cast<int>(stage)], 0.0))) {
      detected = true;
      detected_stage = stage;
      break;
    }
  }
  if (!detected) {
    for (int cycle = 1;; ++cycle) {
      const double month = RegularRoundMonth(processor.serial, cycle, config);
      if (month > config.horizon_months) {
        break;
      }
      if (rng.NextBernoulli(stage_probability(
              config.stages[static_cast<int>(TestStage::kRegular)], month))) {
        detected = true;
        detected_stage = TestStage::kRegular;
        detected_month = month;
        break;
      }
    }
  }
  if (detected) {
    ++stats.detected_by_stage[static_cast<int>(detected_stage)];
    ++stats.detected_by_arch[processor.arch_index];
    stats.detections.push_back({processor.serial, processor.arch_index, true,
                                detected_stage, detected_month});
  }
}

}  // namespace sdc
