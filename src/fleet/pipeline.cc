#include "src/fleet/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iterator>
#include <numeric>
#include <utility>

#include "src/common/context.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/series.h"

namespace sdc {

std::string StageName(TestStage stage) {
  switch (stage) {
    case TestStage::kFactory:
      return "factory";
    case TestStage::kDatacenter:
      return "datacenter";
    case TestStage::kReinstall:
      return "re-install";
    case TestStage::kRegular:
      return "regular";
  }
  return "?";
}

uint64_t ScreeningStats::total_detected() const {
  uint64_t total = 0;
  for (uint64_t count : detected_by_stage) {
    total += count;
  }
  return total;
}

double ScreeningStats::StageRate(TestStage stage) const {
  if (tested == 0) {
    return 0.0;
  }
  return static_cast<double>(detected_by_stage[static_cast<int>(stage)]) /
         static_cast<double>(tested);
}

double ScreeningStats::TotalRate() const {
  if (tested == 0) {
    return 0.0;
  }
  return static_cast<double>(total_detected()) / static_cast<double>(tested);
}

double ScreeningStats::ArchRate(int arch_index) const {
  if (tested_by_arch[arch_index] == 0) {
    return 0.0;
  }
  return static_cast<double>(detected_by_arch[arch_index]) /
         static_cast<double>(tested_by_arch[arch_index]);
}

double ScreeningStats::PreProductionRate() const {
  return StageRate(TestStage::kFactory) + StageRate(TestStage::kDatacenter) +
         StageRate(TestStage::kReinstall);
}

void ScreeningStats::MergeFrom(ScreeningStats&& other) {
  tested += other.tested;
  faulty += other.faulty;
  for (int stage = 0; stage < kStageCount; ++stage) {
    detected_by_stage[static_cast<size_t>(stage)] +=
        other.detected_by_stage[static_cast<size_t>(stage)];
  }
  for (int arch = 0; arch < kArchCount; ++arch) {
    tested_by_arch[static_cast<size_t>(arch)] +=
        other.tested_by_arch[static_cast<size_t>(arch)];
    detected_by_arch[static_cast<size_t>(arch)] +=
        other.detected_by_arch[static_cast<size_t>(arch)];
  }
  if (detections.empty()) {
    detections = std::move(other.detections);
  } else {
    detections.reserve(detections.size() + other.detections.size());
    detections.insert(detections.end(), std::make_move_iterator(other.detections.begin()),
                      std::make_move_iterator(other.detections.end()));
  }
  if (provenance.empty()) {
    provenance = std::move(other.provenance);
  } else {
    provenance.reserve(provenance.size() + other.provenance.size());
    provenance.insert(provenance.end(),
                      std::make_move_iterator(other.provenance.begin()),
                      std::make_move_iterator(other.provenance.end()));
  }
}

int RegularGroupOf(uint64_t serial, const ScreeningConfig& config) {
  const int groups = config.regular_groups < 1 ? 1 : config.regular_groups;
  return static_cast<int>(Mix64(serial) % static_cast<uint64_t>(groups));
}

double RegularRoundMonth(uint64_t serial, int cycle, const ScreeningConfig& config) {
  const int groups = config.regular_groups < 1 ? 1 : config.regular_groups;
  const double offset = config.regular_period_months *
                        static_cast<double>(RegularGroupOf(serial, config)) /
                        static_cast<double>(groups);
  return static_cast<double>(cycle) * config.regular_period_months + offset;
}

ScreeningPipeline::ScreeningPipeline(const TestSuite* suite) : suite_(suite) {}

int ScreeningPipeline::MatchingTestcases(const Defect& defect) const {
  int matches = 0;
  for (size_t i = 0; i < suite_->size(); ++i) {
    const TestcaseInfo& info = suite_->info(i);
    bool op_match = false;
    for (OpKind op : info.ops) {
      if (defect.AffectsOp(op)) {
        op_match = true;
        break;
      }
    }
    if (!op_match) {
      continue;
    }
    if (defect.type() == SdcType::kComputation) {
      bool type_match = false;
      for (DataType type : info.types) {
        if (defect.AffectsType(type)) {
          type_match = true;
          break;
        }
      }
      if (!type_match) {
        continue;
      }
    }
    ++matches;
  }
  return matches;
}

namespace {

// The streaming mode relies on stream shards tiling exactly into screening shards; see
// the kScreeningShardGrain comment in pipeline.h.
static_assert(kFleetShardGrain % kScreeningShardGrain == 0,
              "stream shards must tile exactly into screening shards");

// Shared by the public ExpectedErrors and the memo builder so both evaluate the exact
// same floating-point expression: byte-identical stats between the memoized and the
// reference model depend on the terms being bitwise equal.
double ExpectedErrorsWithMatching(const Defect& defect, const StageParams& stage,
                                  int pcores, int matching) {
  if (matching == 0) {
    return 0.0;
  }
  // Sequential per-core testing: each core gets an equal share of each testcase's duration.
  const double minutes_per_core =
      stage.per_case_seconds * static_cast<double>(matching) /
      static_cast<double>(pcores) / 60.0;
  double expected = 0.0;
  for (int pcore = 0; pcore < pcores; ++pcore) {
    expected += defect.OccurrenceFrequencyPerMinute(stage.temperature_celsius,
                                                    defect.intensity_ref, pcore) *
                minutes_per_core;
  }
  return expected;
}

// The per-(defect, stage) survive factors 1 - catch_factor * (1 - exp(-E)). They are a
// function of the defect, the stage parameters, and the core count only -- never of the
// scenario's seed, cadence, horizon, or grouping -- so the batched kernel computes one
// table per group of scenarios with bit-identical stage parameters. The expressions
// mirror ScreenProcessorReference exactly (same helper, same term shape), which keeps
// the cached doubles bitwise equal to what the reference computes.
void ComputeSurviveTerms(std::span<const Defect> defects, std::span<const int> matching,
                         const std::array<StageParams, kStageCount>& stages, int pcores,
                         std::span<std::array<double, kStageCount>> terms) {
  for (size_t d = 0; d < defects.size(); ++d) {
    for (int stage = 0; stage < kStageCount; ++stage) {
      const StageParams& params = stages[static_cast<size_t>(stage)];
      const double expected =
          ExpectedErrorsWithMatching(defects[d], params, pcores, matching[d]);
      terms[d][static_cast<size_t>(stage)] =
          1.0 - params.catch_factor * (1.0 - std::exp(-expected));
    }
  }
}

// Per-stage pass/fail/SDC counters for one shard, derived from the shard's private stats
// so the hot per-processor loop never touches a metric map.
MetricsDelta DeltaFromShardStats(const ScreeningStats& stats) {
  MetricsDelta delta;
  delta.Add("screening.tested", stats.tested);
  delta.Add("screening.faulty", stats.faulty);
  delta.Add("screening.detected", stats.total_detected());
  delta.Add("screening.escaped", stats.faulty - stats.total_detected());
  // Mirror of the provenance invariant: this counter must equal screening.detected
  // (tools/check_trace_json.py cross-checks it against the trace).
  delta.Add("screening.provenance.records", stats.provenance.size());
  for (int stage = 0; stage < kStageCount; ++stage) {
    delta.Add("screening.stage." + StageName(static_cast<TestStage>(stage)) + ".detected",
              stats.detected_by_stage[static_cast<size_t>(stage)]);
  }
  for (int arch = 0; arch < kArchCount; ++arch) {
    const auto index = static_cast<size_t>(arch);
    if (stats.tested_by_arch[index] > 0) {
      delta.Add("screening.arch." + ArchName(arch) + ".tested",
                stats.tested_by_arch[index]);
    }
    if (stats.detected_by_arch[index] > 0) {
      delta.Add("screening.arch." + ArchName(arch) + ".detected",
                stats.detected_by_arch[index]);
    }
  }
  return delta;
}

// Provenance shared by the memoized and reference models: the defect context is reduced
// the same way in both (first id, min onset, min trigger), so the two models emit
// byte-identical records. sub_shard / rng_stream are stamped later by ScreenShardRange,
// the one frame that knows the shard index.
DetectionProvenance ProvenanceOf(uint64_t serial, int arch_index,
                                 std::span<const Defect> defects,
                                 const ScreeningConfig& config, TestStage stage,
                                 double month) {
  DetectionProvenance record;
  record.serial = serial;
  record.arch_index = arch_index;
  record.stage = stage;
  record.month = month;
  record.stage_temperature_celsius =
      config.stages[static_cast<size_t>(stage)].temperature_celsius;
  record.defect_count = static_cast<uint32_t>(defects.size());
  if (!defects.empty()) {
    record.defect_id = defects.front().id;
    record.onset_months = defects.front().onset_months;
    record.min_trigger_celsius = defects.front().min_trigger_celsius;
    for (const Defect& defect : defects.subspan(1)) {
      record.onset_months = std::min(record.onset_months, defect.onset_months);
      record.min_trigger_celsius =
          std::min(record.min_trigger_celsius, defect.min_trigger_celsius);
    }
  }
  return record;
}

// The scenario-dependent half of the memoized faulty-part model: the probe schedule and
// its RNG draws. survive_terms / sorted_onsets are precomputed by the caller, so the
// batched kernel pays for them once per scenario *group* (ComputeSurviveTerms) and once
// per part (the onsets), not once per scenario.
void ReplayFaultyProbes(uint64_t serial, int arch_index, std::span<const Defect> defects,
                        std::span<const std::array<double, kStageCount>> survive_terms,
                        std::span<const double> sorted_onsets,
                        const ScreeningConfig& config, Rng& rng, ScreeningStats& stats) {
  const size_t defect_count = defects.size();
  // Survive product over the defects active at the probe age, folded in storage order
  // (the same order the reference multiplies in, so the product rounds identically).
  auto probability_at = [&](int stage, double age_months) {
    double survive = 1.0;
    for (size_t d = 0; d < defect_count; ++d) {
      if (defects[d].onset_months > age_months) {
        continue;  // not yet developed
      }
      survive *= survive_terms[d][static_cast<size_t>(stage)];
    }
    return 1.0 - survive;
  };

  bool detected = false;
  TestStage detected_stage = TestStage::kFactory;
  double detected_month = 0.0;
  const TestStage pre_production[] = {TestStage::kFactory, TestStage::kDatacenter,
                                      TestStage::kReinstall};
  for (TestStage stage : pre_production) {
    if (rng.NextBernoulli(probability_at(static_cast<int>(stage), 0.0))) {
      detected = true;
      detected_stage = stage;
      break;
    }
  }
  if (!detected) {
    // Onset-gated regular rounds: defect onsets sorted ascending gate when the cached
    // probability must be re-derived; cycles between onset crossings reuse it untouched.
    const int groups = config.regular_groups < 1 ? 1 : config.regular_groups;
    const double offset = config.regular_period_months *
                          static_cast<double>(RegularGroupOf(serial, config)) /
                          static_cast<double>(groups);
    size_t active = 0;
    double probability = 0.0;
    bool stale = true;
    for (int cycle = 1;; ++cycle) {
      const double month =
          static_cast<double>(cycle) * config.regular_period_months + offset;
      if (month > config.horizon_months) {
        break;
      }
      while (active < defect_count && sorted_onsets[active] <= month) {
        ++active;
        stale = true;
      }
      if (stale) {
        probability = probability_at(static_cast<int>(TestStage::kRegular), month);
        stale = false;
      }
      if (rng.NextBernoulli(probability)) {
        detected = true;
        detected_stage = TestStage::kRegular;
        detected_month = month;
        break;
      }
    }
  }
  if (detected) {
    ++stats.detected_by_stage[static_cast<int>(detected_stage)];
    ++stats.detected_by_arch[arch_index];
    stats.detections.push_back({serial, arch_index, true, detected_stage, detected_month});
    stats.provenance.push_back(ProvenanceOf(serial, arch_index, defects, config,
                                            detected_stage, detected_month));
  }
}

// Shared epilogue of the screening kernel's two model paths: stamps the shard identity
// onto the provenance records appended during the call and, when tracing, emits the
// shard's "screen.subshard" span plus one "detection" instant per new detection. The
// screening shard index and its RNG stream coincide by construction (Rng::Fork(sub_shard)).
void FinishShardRange(const ScreeningShardView& view, uint64_t sub_shard,
                      size_t first_detection, uint64_t faulty_before,
                      ScreeningStats& stats, TraceDelta* trace) {
  for (size_t i = first_detection; i < stats.provenance.size(); ++i) {
    stats.provenance[i].sub_shard = sub_shard;
    stats.provenance[i].rng_stream = sub_shard;
  }
  if (trace == nullptr) {
    return;
  }
  TraceEvent span = MakeTraceSpan("screen.subshard", "screen", kTraceTrackScreen,
                                  static_cast<double>(view.begin),
                                  static_cast<double>(view.end - view.begin));
  span.num_args.reserve(3);
  span.num_args.emplace_back("sub_shard", static_cast<double>(sub_shard));
  span.num_args.emplace_back("faulty",
                             static_cast<double>(stats.faulty - faulty_before));
  span.num_args.emplace_back(
      "detections", static_cast<double>(stats.detections.size() - first_detection));
  trace->Add(std::move(span));
  for (size_t i = first_detection; i < stats.detections.size(); ++i) {
    const DetectionProvenance& record = stats.provenance[i];
    TraceEvent instant = MakeTraceInstant("detection", "screen", kTraceTrackDetection,
                                          static_cast<double>(record.serial));
    instant.str_args.reserve(2);
    instant.num_args.reserve(4);
    instant.str_args.emplace_back("stage", StageName(record.stage));
    instant.str_args.emplace_back("defect", record.defect_id);
    instant.num_args.emplace_back("sub_shard", static_cast<double>(record.sub_shard));
    instant.num_args.emplace_back("rng_stream",
                                  static_cast<double>(record.rng_stream));
    instant.num_args.emplace_back("defect_count",
                                  static_cast<double>(record.defect_count));
    instant.num_args.emplace_back("month", record.month);
    trace->Add(std::move(instant));
  }
}

}  // namespace

double ScreeningPipeline::ExpectedErrors(const Defect& defect, const StageParams& stage,
                                         int pcores) const {
  return ExpectedErrorsWithMatching(defect, stage, pcores, MatchingTestcases(defect));
}

std::span<const Defect> ScreeningShardView::DefectsOf(uint64_t serial) const {
  const auto it =
      std::lower_bound(faulty_serials.begin(), faulty_serials.end(), serial);
  if (it == faulty_serials.end() || *it != serial) {
    return {};
  }
  return FaultyDefects(static_cast<size_t>(it - faulty_serials.begin()));
}

FleetProcessorView ScreeningShardView::processor(uint64_t serial) const {
  const uint8_t flags = flag_bytes[serial - column_base];
  return {serial, arch_index(serial), (flags & FleetPopulation::kFaultyFlag) != 0,
          (flags & FleetPopulation::kDetectableFlag) != 0, DefectsOf(serial)};
}

void ScreeningPipeline::ScreenShardRange(const ScreeningShardView& view,
                                         const ScreeningConfig& config,
                                         const std::array<ProcessorSpec, kArchCount>& arch_specs,
                                         uint64_t sub_shard, SimdLevel simd, Rng& rng,
                                         ScreeningStats& stats, TraceDelta* trace) const {
  const size_t first_detection = stats.detections.size();
  const uint64_t faulty_before = stats.faulty;
  if (config.use_reference_model) {
    for (uint64_t serial = view.begin; serial < view.end; ++serial) {
      ScreenProcessorReference(view.processor(serial), config, rng, stats);
    }
    FinishShardRange(view, sub_shard, first_detection, faulty_before, stats, trace);
    return;
  }
  // Clean-processor fast path: the shard's tested counters come from a vectorized scan of
  // the packed arch bytes (src/common/simd.h -- any level yields the same exact counts);
  // the detection model only ever runs for the (rare) faulty parts, located via the
  // sorted faulty-serial index.
  stats.tested += view.end - view.begin;
  uint64_t hist[kArchCount] = {};
  CountBytesByValue(view.arch_bytes.data() + (view.begin - view.column_base),
                    view.end - view.begin, kArchCount, hist, simd);
  for (int arch = 0; arch < kArchCount; ++arch) {
    stats.tested_by_arch[static_cast<size_t>(arch)] += hist[arch];
  }
  const auto first = std::lower_bound(view.faulty_serials.begin(),
                                      view.faulty_serials.end(), view.begin);
  const auto last = std::lower_bound(first, view.faulty_serials.end(), view.end);
  stats.detections.reserve(stats.detections.size() + static_cast<size_t>(last - first));
  for (auto it = first; it != last; ++it) {
    ++stats.faulty;
    const uint64_t faulty_serial = *it;
    if (!view.toolchain_detectable(faulty_serial)) {
      continue;  // escapes every stage (Section 2.3's false negatives)
    }
    const int arch_index = view.arch_index(faulty_serial);
    const size_t ordinal = static_cast<size_t>(it - view.faulty_serials.begin());
    ScreenFaultyProcessor(faulty_serial, arch_index, view.FaultyDefects(ordinal), config,
                          arch_specs[static_cast<size_t>(arch_index)].physical_cores, rng,
                          stats);
  }
  FinishShardRange(view, sub_shard, first_detection, faulty_before, stats, trace);
}

void ScreeningPipeline::ScreenShardRangeBatch(
    const ScreeningShardView& view, std::span<const ScreeningConfig> scenarios,
    const std::array<ProcessorSpec, kArchCount>& arch_specs, uint64_t sub_shard,
    SimdLevel simd, std::span<Rng> rngs, std::span<ScreeningStats> stats,
    std::span<TraceDelta* const> traces) const {
  const size_t k_count = scenarios.size();
  // Reference-model scenarios replay the per-processor oracle on their own; in streaming
  // mode they still ride the shared generation pass. Cached scenarios share the work
  // below.
  bool any_cached = false;
  for (size_t k = 0; k < k_count; ++k) {
    if (scenarios[k].use_reference_model) {
      ScreenShardRange(view, scenarios[k], arch_specs, sub_shard, simd, rngs[k], stats[k],
                       traces[k]);
    } else {
      any_cached = true;
    }
  }
  if (!any_cached) {
    return;
  }

  // Scenario-invariant work, paid once for the whole batch: the clean-path arch
  // histogram and the faulty-range lookup.
  uint64_t hist[kArchCount] = {};
  CountBytesByValue(view.arch_bytes.data() + (view.begin - view.column_base),
                    view.end - view.begin, kArchCount, hist, simd);
  const auto first = std::lower_bound(view.faulty_serials.begin(),
                                      view.faulty_serials.end(), view.begin);
  const auto last = std::lower_bound(first, view.faulty_serials.end(), view.end);
  const size_t shard_faulty = static_cast<size_t>(last - first);

  std::vector<size_t> first_detection(k_count);
  std::vector<uint64_t> faulty_before(k_count);
  for (size_t k = 0; k < k_count; ++k) {
    if (scenarios[k].use_reference_model) {
      continue;
    }
    first_detection[k] = stats[k].detections.size();
    faulty_before[k] = stats[k].faulty;
    stats[k].tested += view.end - view.begin;
    for (int arch = 0; arch < kArchCount; ++arch) {
      stats[k].tested_by_arch[static_cast<size_t>(arch)] += hist[arch];
    }
    stats[k].detections.reserve(stats[k].detections.size() + shard_faulty);
  }

  // Scenarios whose stage parameters are bit-identical share one survive-term table per
  // faulty part (the terms are a function of defect/stages/cores only -- see
  // ComputeSurviveTerms). Compared bitwise, not with ==: only bit-identical parameters
  // guarantee bit-identical terms, and byte-identity with the independent runs is the
  // contract. Seed/cadence/horizon sweeps all land in one group.
  std::vector<size_t> group_of(k_count, 0);
  std::vector<size_t> group_rep;
  for (size_t k = 0; k < k_count; ++k) {
    if (scenarios[k].use_reference_model) {
      continue;
    }
    size_t g = 0;
    while (g < group_rep.size() &&
           std::memcmp(&scenarios[group_rep[g]].stages, &scenarios[k].stages,
                       sizeof(scenarios[k].stages)) != 0) {
      ++g;
    }
    if (g == group_rep.size()) {
      group_rep.push_back(k);
    }
    group_of[k] = g;
  }

  // Faulty-major loop: the suite-matching memo, the sorted onsets, and each group's
  // survive-term table are computed once per part and replayed under every cached
  // scenario -- only the probe schedule itself is per-scenario work. Scenario k consumes
  // only rngs[k], in ascending serial order -- exactly the draw sequence its independent
  // run makes, which is what keeps every batched slot byte-identical.
  std::vector<int> matching;
  std::vector<double> sorted_onsets;
  std::vector<std::vector<std::array<double, kStageCount>>> group_terms(group_rep.size());
  for (auto it = first; it != last; ++it) {
    const uint64_t faulty_serial = *it;
    const bool detectable = view.toolchain_detectable(faulty_serial);
    const int arch_index = view.arch_index(faulty_serial);
    const size_t ordinal = static_cast<size_t>(it - view.faulty_serials.begin());
    const std::span<const Defect> defects = view.FaultyDefects(ordinal);
    if (detectable) {
      matching.resize(defects.size());
      for (size_t d = 0; d < defects.size(); ++d) {
        matching[d] = MatchingTestcases(defects[d]);
      }
      sorted_onsets.resize(defects.size());
      for (size_t d = 0; d < defects.size(); ++d) {
        sorted_onsets[d] = defects[d].onset_months;
      }
      std::sort(sorted_onsets.begin(), sorted_onsets.end());
      const int pcores = arch_specs[static_cast<size_t>(arch_index)].physical_cores;
      for (size_t g = 0; g < group_rep.size(); ++g) {
        group_terms[g].resize(defects.size());
        ComputeSurviveTerms(defects, matching, scenarios[group_rep[g]].stages, pcores,
                            group_terms[g]);
      }
    }
    for (size_t k = 0; k < k_count; ++k) {
      if (scenarios[k].use_reference_model) {
        continue;
      }
      ++stats[k].faulty;
      if (!detectable) {
        continue;  // escapes every stage (Section 2.3's false negatives)
      }
      ReplayFaultyProbes(faulty_serial, arch_index, defects, group_terms[group_of[k]],
                         sorted_onsets, scenarios[k], rngs[k], stats[k]);
    }
  }
  for (size_t k = 0; k < k_count; ++k) {
    if (scenarios[k].use_reference_model) {
      continue;
    }
    FinishShardRange(view, sub_shard, first_detection[k], faulty_before[k], stats[k],
                     traces[k]);
  }
}

namespace {

// One cumulative sample of the screening trajectory, taken at a fleet-grain boundary of
// the serial axis. Both execution modes call exactly this with the same (boundary,
// cumulative-stats) pairs, which is what makes the series byte-identical across
// streaming and materialized runs.
void AppendScreeningSeriesPoint(SeriesRecorder* series, uint64_t end_serial,
                                const ScreeningStats& cumulative) {
  const auto x = static_cast<double>(end_serial);
  const auto detected = static_cast<double>(cumulative.total_detected());
  series->Append("screening.tested", SeriesClock::kSim, x,
                 static_cast<double>(cumulative.tested));
  series->Append("screening.detected", SeriesClock::kSim, x, detected);
  series->Append("screening.escapes", SeriesClock::kSim, x,
                 static_cast<double>(cumulative.faulty) - detected);
}

// Screening shards are kScreeningShardGrain wide; samples are taken only where a shard
// end lands on a kFleetShardGrain multiple (or the fleet's end), so the materialized
// fold samples exactly the stream-shard boundaries of the streaming mode.
bool IsSeriesBoundary(uint64_t end_serial, uint64_t fleet_size) {
  return end_serial % kFleetShardGrain == 0 || end_serial == fleet_size;
}

}  // namespace

ScreeningStats ScreeningPipeline::Run(const FleetPopulation& fleet,
                                      const ScreeningConfig& config) const {
  // Context-free run: SDC_THREADS is consulted exactly once (context construction) and
  // SDC_SIMD exactly once (here); sinks come from the config alone -- the legacy
  // resolution, byte for byte.
  EngineContext context(EngineOptions{.threads = config.threads});
  return RunWith(fleet, config, context, config.metrics, config.trace, config.series,
                 ResolveSimdLevel(config.simd));
}

ScreeningStats ScreeningPipeline::Run(const FleetPopulation& fleet,
                                      const ScreeningConfig& config,
                                      EngineContext& context) const {
  MetricsRegistry* metrics =
      config.metrics != nullptr ? config.metrics : context.metrics();
  TraceRecorder* trace = config.trace != nullptr ? config.trace : context.trace();
  SeriesRecorder* series = config.series != nullptr ? config.series : context.series();
  const SimdLevel simd = config.simd == SimdLevel::kAuto ? context.simd()
                                                         : ClampSimdLevel(config.simd);
  return RunWith(fleet, config, context, metrics, trace, series, simd);
}

ScreeningStats ScreeningPipeline::RunWith(const FleetPopulation& fleet,
                                          const ScreeningConfig& config,
                                          EngineContext& context,
                                          MetricsRegistry* metrics, TraceRecorder* trace,
                                          SeriesRecorder* series, SimdLevel simd) const {
  const Rng base(config.seed);
  MetricsRegistry::ScopedTimer run_timer(metrics, "screening.run.wall");
  TraceRecorder::ScopedHostSpan run_span(trace, "screening.run", "screen",
                                         kTraceTrackScreen);
  ThreadPool& pool = context.pool();

  // Satellite of the memoization work: the per-arch hardware model is invariant across the
  // fleet, so it is materialized once per Run instead of once per faulty processor.
  std::array<ProcessorSpec, kArchCount> arch_specs;
  for (int arch = 0; arch < kArchCount; ++arch) {
    arch_specs[static_cast<size_t>(arch)] = MakeArchSpec(arch);
  }

  // One view shape covers the whole materialized fleet; shards slice [begin, end).
  ScreeningShardView fleet_view;
  fleet_view.column_base = 0;
  fleet_view.arch_bytes = fleet.arch_bytes();
  fleet_view.flag_bytes = fleet.flag_bytes();
  fleet_view.faulty_serials = fleet.faulty_serials();
  fleet_view.faulty_ranges = fleet.faulty_ranges();
  fleet_view.defects = fleet.defect_arena();

  // Stats plus the shard's metric delta travel together through the ordered reduce, so
  // the registry sees exactly one delta per shard, applied in shard order.
  struct ShardResult {
    ScreeningStats stats;
    MetricsDelta delta;
    TraceDelta trace;
  };
  // ParallelReduce is ParallelMap plus an in-shard-order merge on the calling thread
  // (src/common/parallel.h); the fold is spelled out here so the series sink can sample
  // the cumulative stats at fleet-grain boundaries of the same ordered merge.
  std::vector<ShardResult> shard_results = pool.ParallelMap<ShardResult>(
      0, fleet.size(), kScreeningShardGrain,
      [&](uint64_t shard, uint64_t begin, uint64_t end) {
        const auto shard_start = std::chrono::steady_clock::now();
        ShardResult result;
        ScreeningShardView view = fleet_view;
        view.begin = begin;
        view.end = end;
        Rng rng = base.Fork(shard);
        ScreenShardRange(view, config, arch_specs, shard, simd, rng, result.stats,
                         trace != nullptr ? &result.trace : nullptr);
        if (metrics != nullptr) {
          result.delta = DeltaFromShardStats(result.stats);
          const std::chrono::duration<double> elapsed =
              std::chrono::steady_clock::now() - shard_start;
          metrics->RecordTimerSeconds("screening.shard.wall", elapsed.count());
        }
        return result;
      });
  ShardResult total;
  for (size_t shard = 0; shard < shard_results.size(); ++shard) {
    ShardResult& shard_result = shard_results[shard];
    total.stats.MergeFrom(std::move(shard_result.stats));
    total.delta.MergeFrom(shard_result.delta);
    total.trace.MergeFrom(std::move(shard_result.trace));
    if (series != nullptr) {
      const uint64_t end_serial =
          std::min<uint64_t>((shard + 1) * kScreeningShardGrain, fleet.size());
      if (IsSeriesBoundary(end_serial, fleet.size())) {
        AppendScreeningSeriesPoint(series, end_serial, total.stats);
      }
    }
  }
  if (metrics != nullptr) {
    metrics->MergeDelta(total.delta);
  }
  if (trace != nullptr) {
    trace->MergeDelta(std::move(total.trace));
  }
  return std::move(total.stats);
}

namespace {

// Shared clean-path level of a batch: the first cached scenario's request. Every level
// produces the same exact counts (src/common/simd.h), so the choice is observable only in
// wall-clock time.
SimdLevel BatchSimdRequest(const ScenarioBatch& batch) {
  for (const ScreeningConfig& scenario : batch.scenarios) {
    if (!scenario.use_reference_model) {
      return scenario.simd;
    }
  }
  return SimdLevel::kAuto;
}

}  // namespace

std::vector<ScreeningStats> ScreeningPipeline::RunBatch(const FleetPopulation& fleet,
                                                        const ScenarioBatch& batch) const {
  const size_t k_count = batch.scenarios.size();
  if (k_count == 0) {
    return {};
  }
  // Context-free batch: per-call context, env-resolved SIMD, scenario sinks only -- the
  // legacy resolution, byte for byte.
  EngineContext context(EngineOptions{.threads = batch.threads});
  std::vector<MetricsRegistry*> metrics(k_count);
  std::vector<TraceRecorder*> trace_sinks(k_count);
  for (size_t k = 0; k < k_count; ++k) {
    metrics[k] = batch.scenarios[k].metrics;
    trace_sinks[k] = batch.scenarios[k].trace;
  }
  return RunBatchWith(fleet, batch, context, metrics, trace_sinks,
                      batch.scenarios[0].series,
                      ResolveSimdLevel(BatchSimdRequest(batch)));
}

std::vector<ScreeningStats> ScreeningPipeline::RunBatch(const FleetPopulation& fleet,
                                                        const ScenarioBatch& batch,
                                                        EngineContext& context) const {
  const size_t k_count = batch.scenarios.size();
  if (k_count == 0) {
    return {};
  }
  const SimdLevel request = BatchSimdRequest(batch);
  const SimdLevel simd =
      request == SimdLevel::kAuto ? context.simd() : ClampSimdLevel(request);
  MetricsRegistry* context_metrics = context.metrics();
  TraceRecorder* context_trace = context.trace();
  std::vector<MetricsRegistry*> metrics(k_count);
  std::vector<TraceRecorder*> trace_sinks(k_count);
  for (size_t k = 0; k < k_count; ++k) {
    metrics[k] = batch.scenarios[k].metrics != nullptr ? batch.scenarios[k].metrics
                                                       : context_metrics;
    trace_sinks[k] = batch.scenarios[k].trace != nullptr ? batch.scenarios[k].trace
                                                         : context_trace;
  }
  SeriesRecorder* series = batch.scenarios[0].series != nullptr
                               ? batch.scenarios[0].series
                               : context.series();
  return RunBatchWith(fleet, batch, context, metrics, trace_sinks, series, simd);
}

std::vector<ScreeningStats> ScreeningPipeline::RunBatchWith(
    const FleetPopulation& fleet, const ScenarioBatch& batch, EngineContext& context,
    std::span<MetricsRegistry* const> metrics, std::span<TraceRecorder* const> trace_sinks,
    SeriesRecorder* series, SimdLevel simd) const {
  const size_t k_count = batch.scenarios.size();
  const auto run_start = std::chrono::steady_clock::now();
  ThreadPool& pool = context.pool();

  std::array<ProcessorSpec, kArchCount> arch_specs;
  for (int arch = 0; arch < kArchCount; ++arch) {
    arch_specs[static_cast<size_t>(arch)] = MakeArchSpec(arch);
  }

  ScreeningShardView fleet_view;
  fleet_view.column_base = 0;
  fleet_view.arch_bytes = fleet.arch_bytes();
  fleet_view.flag_bytes = fleet.flag_bytes();
  fleet_view.faulty_serials = fleet.faulty_serials();
  fleet_view.faulty_ranges = fleet.faulty_ranges();
  fleet_view.defects = fleet.defect_arena();

  // One base RNG per scenario; shard s of scenario k draws from bases[k].Fork(s) -- the
  // stream an independent Run of scenarios[k] would fork for the same serials.
  std::vector<Rng> bases;
  bases.reserve(k_count);
  for (const ScreeningConfig& scenario : batch.scenarios) {
    bases.emplace_back(scenario.seed);
  }

  // One slot per scenario travels through the ordered reduce, so each scenario's metric
  // sink sees exactly the per-shard deltas its independent run would, in shard order.
  struct ShardResult {
    std::vector<ScreeningStats> stats;
    std::vector<MetricsDelta> deltas;
    std::vector<TraceDelta> traces;
  };
  // Spelled-out ParallelMap + ordered fold (same reduction ParallelReduce performs), so
  // scenario 0's cumulative stats can feed the series sink at fleet-grain boundaries.
  std::vector<ShardResult> shard_results = pool.ParallelMap<ShardResult>(
      0, fleet.size(), kScreeningShardGrain,
      [&](uint64_t shard, uint64_t begin, uint64_t end) {
        const auto shard_start = std::chrono::steady_clock::now();
        ShardResult result;
        result.stats.resize(k_count);
        result.deltas.resize(k_count);
        result.traces.resize(k_count);
        ScreeningShardView view = fleet_view;
        view.begin = begin;
        view.end = end;
        std::vector<Rng> rngs;
        rngs.reserve(k_count);
        std::vector<TraceDelta*> traces(k_count, nullptr);
        for (size_t k = 0; k < k_count; ++k) {
          rngs.push_back(bases[k].Fork(shard));
          if (trace_sinks[k] != nullptr) {
            traces[k] = &result.traces[k];
          }
        }
        ScreenShardRangeBatch(view, batch.scenarios, arch_specs, shard, simd, rngs,
                              result.stats, traces);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - shard_start;
        for (size_t k = 0; k < k_count; ++k) {
          if (metrics[k] != nullptr) {
            result.deltas[k] = DeltaFromShardStats(result.stats[k]);
            metrics[k]->RecordTimerSeconds("screening.shard.wall", elapsed.count());
          }
        }
        return result;
      });
  ShardResult total;
  total.stats.resize(k_count);
  total.deltas.resize(k_count);
  total.traces.resize(k_count);
  for (size_t shard = 0; shard < shard_results.size(); ++shard) {
    ShardResult& shard_result = shard_results[shard];
    for (size_t k = 0; k < k_count; ++k) {
      total.stats[k].MergeFrom(std::move(shard_result.stats[k]));
      total.deltas[k].MergeFrom(shard_result.deltas[k]);
      total.traces[k].MergeFrom(std::move(shard_result.traces[k]));
    }
    if (series != nullptr) {
      const uint64_t end_serial =
          std::min<uint64_t>((shard + 1) * kScreeningShardGrain, fleet.size());
      if (IsSeriesBoundary(end_serial, fleet.size())) {
        AppendScreeningSeriesPoint(series, end_serial, total.stats[0]);
      }
    }
  }
  const std::chrono::duration<double> run_elapsed =
      std::chrono::steady_clock::now() - run_start;
  for (size_t k = 0; k < k_count; ++k) {
    if (metrics[k] != nullptr) {
      metrics[k]->MergeDelta(total.deltas[k]);
      metrics[k]->RecordTimerSeconds("screening.run.wall", run_elapsed.count());
    }
    if (trace_sinks[k] != nullptr) {
      trace_sinks[k]->MergeDelta(std::move(total.traces[k]));
    }
  }
  return std::move(total.stats);
}

void ScreeningPipeline::ScreenFaultyProcessor(uint64_t serial, int arch_index,
                                              std::span<const Defect> defects,
                                              const ScreeningConfig& config,
                                              int physical_cores, Rng& rng,
                                              ScreeningStats& stats) const {
  // The suite-matching counts are scenario-invariant; the single-scenario path computes
  // them inline while the batched kernel hoists them across K scenarios. Same integers
  // either way.
  int matching_stack[8];
  std::vector<int> matching_heap;
  std::span<int> matching;
  if (defects.size() <= std::size(matching_stack)) {
    matching = std::span<int>(matching_stack, defects.size());
  } else {
    matching_heap.resize(defects.size());
    matching = matching_heap;
  }
  for (size_t d = 0; d < defects.size(); ++d) {
    matching[d] = MatchingTestcases(defects[d]);
  }
  ScreenFaultyProcessorWithMatching(serial, arch_index, defects, matching, config,
                                    physical_cores, rng, stats);
}

void ScreeningPipeline::ScreenFaultyProcessorWithMatching(
    uint64_t serial, int arch_index, std::span<const Defect> defects,
    std::span<const int> matching, const ScreeningConfig& config, int physical_cores,
    Rng& rng, ScreeningStats& stats) const {
  // Memoized detection model: MatchingTestcases is stage-invariant (one suite scan per
  // defect instead of one per probe) and the per-stage survive factor is probe-invariant
  // (ComputeSurviveTerms), so every probe in the replay is a table lookup. Nearly every
  // faulty part carries a handful of defects, so the tables live on the stack.
  std::array<double, kStageCount> terms_stack[8];
  double onsets_stack[8];
  std::vector<std::array<double, kStageCount>> terms_heap;
  std::vector<double> onsets_heap;
  std::span<std::array<double, kStageCount>> survive_terms;
  std::span<double> sorted_onsets;
  if (defects.size() <= std::size(terms_stack)) {
    survive_terms = std::span(terms_stack, defects.size());
    sorted_onsets = std::span(onsets_stack, defects.size());
  } else {
    terms_heap.resize(defects.size());
    onsets_heap.resize(defects.size());
    survive_terms = terms_heap;
    sorted_onsets = onsets_heap;
  }
  ComputeSurviveTerms(defects, matching, config.stages, physical_cores, survive_terms);
  for (size_t d = 0; d < defects.size(); ++d) {
    sorted_onsets[d] = defects[d].onset_months;
  }
  std::sort(sorted_onsets.begin(), sorted_onsets.end());
  ReplayFaultyProbes(serial, arch_index, defects, survive_terms, sorted_onsets, config,
                     rng, stats);
}

void ScreeningPipeline::ScreenProcessorReference(const FleetProcessorView& processor,
                                                 const ScreeningConfig& config, Rng& rng,
                                                 ScreeningStats& stats) const {
  ++stats.tested;
  ++stats.tested_by_arch[processor.arch_index];
  if (!processor.faulty) {
    return;
  }
  ++stats.faulty;
  if (!processor.toolchain_detectable) {
    return;  // escapes every stage (Section 2.3's false negatives)
  }
  const int pcores = MakeArchSpec(processor.arch_index).physical_cores;

  // Per-stage detection probabilities recomputed from scratch at every probe (a part is
  // detected when any defect reproduces).
  auto stage_probability = [&](const StageParams& stage, double age_months) {
    double survive = 1.0;
    for (const Defect& defect : processor.defects) {
      if (defect.onset_months > age_months) {
        continue;  // not yet developed
      }
      const double expected = ExpectedErrors(defect, stage, pcores);
      survive *= 1.0 - stage.catch_factor * (1.0 - std::exp(-expected));
    }
    return 1.0 - survive;
  };

  bool detected = false;
  TestStage detected_stage = TestStage::kFactory;
  double detected_month = 0.0;
  const TestStage pre_production[] = {TestStage::kFactory, TestStage::kDatacenter,
                                      TestStage::kReinstall};
  for (TestStage stage : pre_production) {
    if (rng.NextBernoulli(
            stage_probability(config.stages[static_cast<int>(stage)], 0.0))) {
      detected = true;
      detected_stage = stage;
      break;
    }
  }
  if (!detected) {
    for (int cycle = 1;; ++cycle) {
      const double month = RegularRoundMonth(processor.serial, cycle, config);
      if (month > config.horizon_months) {
        break;
      }
      if (rng.NextBernoulli(stage_probability(
              config.stages[static_cast<int>(TestStage::kRegular)], month))) {
        detected = true;
        detected_stage = TestStage::kRegular;
        detected_month = month;
        break;
      }
    }
  }
  if (detected) {
    ++stats.detected_by_stage[static_cast<int>(detected_stage)];
    ++stats.detected_by_arch[processor.arch_index];
    stats.detections.push_back({processor.serial, processor.arch_index, true,
                                detected_stage, detected_month});
    stats.provenance.push_back(ProvenanceOf(processor.serial, processor.arch_index,
                                            processor.defects, config, detected_stage,
                                            detected_month));
  }
}

ShardOutcomeObserver::~ShardOutcomeObserver() = default;

void ShardOutcomeObserver::BeginStream(const PopulationConfig& /*population*/,
                                       const ScreeningConfig& /*screening*/,
                                       uint64_t /*shard_count*/) {}

void ShardOutcomeObserver::EndStream() {}

StreamingScreen::StreamingScreen(const ScreeningPipeline* pipeline,
                                 const ScreeningConfig& config)
    : StreamingScreen(pipeline, ScenarioBatch{.scenarios = {config}}) {}

StreamingScreen::StreamingScreen(const ScreeningPipeline* pipeline, ScenarioBatch batch)
    : pipeline_(pipeline), scenarios_(std::move(batch.scenarios)) {
  bases_.reserve(scenarios_.size());
  for (const ScreeningConfig& scenario : scenarios_) {
    bases_.emplace_back(scenario.seed);
  }
  // Shared clean-path level: first cached scenario's request (every level counts
  // identically, so this only affects wall-clock time). Legacy resolution (environment
  // consulted) happens here at construction; a context-threaded BeginStream re-resolves
  // the recorded request against the context instead.
  for (const ScreeningConfig& scenario : scenarios_) {
    if (!scenario.use_reference_model) {
      simd_request_ = scenario.simd;
      break;
    }
  }
  simd_ = ResolveSimdLevel(simd_request_);
  for (int arch = 0; arch < kArchCount; ++arch) {
    arch_specs_[static_cast<size_t>(arch)] = MakeArchSpec(arch);
  }
}

void StreamingScreen::AddObserver(ShardOutcomeObserver* observer, size_t scenario) {
  observers_.push_back({observer, scenario});
}

void StreamingScreen::BeginStreamWithContext(EngineContext* context,
                                             const PopulationConfig& config,
                                             uint64_t shard_count) {
  const size_t k_count = scenarios_.size();
  if (context != nullptr) {
    simd_ = simd_request_ == SimdLevel::kAuto ? context->simd()
                                              : ClampSimdLevel(simd_request_);
  }
  // Pin the per-scenario sinks for the whole pass: the scenario's explicit sink wins,
  // the context's attachment as of *now* backs it up. ConsumeShard / EndStream only ever
  // look at these pins, so a detach on the context mid-stream can neither drop nor
  // double-merge a shard's delta.
  MetricsRegistry* context_metrics = context != nullptr ? context->metrics() : nullptr;
  TraceRecorder* context_trace = context != nullptr ? context->trace() : nullptr;
  SeriesRecorder* context_series = context != nullptr ? context->series() : nullptr;
  pinned_series_ = !scenarios_.empty() && scenarios_.front().series != nullptr
                       ? scenarios_.front().series
                       : context_series;
  processors_total_ = config.processor_count;
  pinned_metrics_.assign(k_count, nullptr);
  pinned_trace_.assign(k_count, nullptr);
  for (size_t k = 0; k < k_count; ++k) {
    pinned_metrics_[k] =
        scenarios_[k].metrics != nullptr ? scenarios_[k].metrics : context_metrics;
    pinned_trace_[k] =
        scenarios_[k].trace != nullptr ? scenarios_[k].trace : context_trace;
  }
  shard_stats_.assign(shard_count, std::vector<ScreeningStats>(k_count));
  shard_deltas_.assign(shard_count, std::vector<MetricsDelta>(k_count));
  shard_traces_.assign(shard_count, std::vector<TraceDelta>(k_count));
  stats_.assign(k_count, ScreeningStats{});
  for (const ObserverEntry& entry : observers_) {
    entry.observer->BeginStream(config, scenarios_[entry.scenario], shard_count);
  }
}

void StreamingScreen::BeginStream(const PopulationConfig& config, uint64_t shard_count) {
  BeginStreamWithContext(nullptr, config, shard_count);
}

void StreamingScreen::ConsumeShard(const FleetShard& shard) {
  const auto shard_start = std::chrono::steady_clock::now();
  const size_t k_count = scenarios_.size();
  std::vector<ScreeningStats>& stats = shard_stats_[shard.shard];

  ScreeningShardView view;
  view.column_base = shard.begin;
  view.arch_bytes = shard.arch_bytes;
  view.flag_bytes = shard.flag_bytes;
  view.faulty_serials = shard.faulty_serials;
  view.faulty_ranges = shard.faulty_ranges;
  view.defects = shard.defects;

  std::vector<TraceDelta*> traces(k_count, nullptr);
  for (size_t k = 0; k < k_count; ++k) {
    if (pinned_trace_[k] != nullptr) {
      traces[k] = &shard_traces_[shard.shard][k];
    }
  }

  // Stream shards start at multiples of kFleetShardGrain, so b / kScreeningShardGrain is
  // the *global* screening shard index: the embedded sub-shards use exactly the RNG
  // streams the materialized Run would fork for the same serials.
  std::vector<Rng> rngs;
  rngs.reserve(k_count);
  for (uint64_t b = shard.begin; b < shard.end; b += kScreeningShardGrain) {
    const uint64_t screening_shard = b / kScreeningShardGrain;
    view.begin = b;
    view.end = std::min(b + kScreeningShardGrain, shard.end);
    rngs.clear();
    for (size_t k = 0; k < k_count; ++k) {
      rngs.push_back(bases_[k].Fork(screening_shard));
    }
    pipeline_->ScreenShardRangeBatch(view, scenarios_, arch_specs_, screening_shard,
                                     simd_, rngs, stats, traces);
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - shard_start;
  for (size_t k = 0; k < k_count; ++k) {
    if (pinned_metrics_[k] != nullptr) {
      shard_deltas_[shard.shard][k] = DeltaFromShardStats(stats[k]);
      pinned_metrics_[k]->RecordTimerSeconds("screening.shard.wall", elapsed.count());
    }
  }
  for (const ObserverEntry& entry : observers_) {
    entry.observer->ObserveShard(shard, stats[entry.scenario]);
  }
}

void StreamingScreen::EndStream() {
  const size_t k_count = scenarios_.size();
  // The ordered fold is wall-clock work without a deterministic timeline, so its span
  // lives in the host domain -- same reasoning as FleetMaterializer::EndStream. Scenario
  // 0's recorder hosts the span; each scenario's deltas merge into its own sinks.
  TraceRecorder::ScopedHostSpan merge_span(
      pinned_trace_.empty() ? nullptr : pinned_trace_.front(), "screening.aggregate",
      "aggregate", kTraceTrackAggregate);
  std::vector<MetricsDelta> total_deltas(k_count);
  for (size_t shard = 0; shard < shard_stats_.size(); ++shard) {
    for (size_t k = 0; k < k_count; ++k) {
      stats_[k].MergeFrom(std::move(shard_stats_[shard][k]));
      if (pinned_metrics_[k] != nullptr) {
        total_deltas[k].MergeFrom(shard_deltas_[shard][k]);
      }
      if (pinned_trace_[k] != nullptr) {
        pinned_trace_[k]->MergeDelta(std::move(shard_traces_[shard][k]));
      }
    }
    if (pinned_series_ != nullptr) {
      // Stream shards end exactly at the materialized fold's fleet-grain boundaries, and
      // scenario 0's cumulative stats match shard for shard, so these are the same
      // points RunWith appends -- byte-identical across execution modes.
      const uint64_t end_serial =
          std::min<uint64_t>((shard + 1) * kFleetShardGrain, processors_total_);
      AppendScreeningSeriesPoint(pinned_series_, end_serial, stats_[0]);
    }
  }
  for (size_t k = 0; k < k_count; ++k) {
    if (pinned_metrics_[k] != nullptr) {
      pinned_metrics_[k]->MergeDelta(total_deltas[k]);
    }
  }
  shard_stats_.clear();
  shard_stats_.shrink_to_fit();
  shard_deltas_.clear();
  shard_deltas_.shrink_to_fit();
  shard_traces_.clear();
  shard_traces_.shrink_to_fit();
  for (const ObserverEntry& entry : observers_) {
    entry.observer->EndStream();
  }
}

}  // namespace sdc
