// Synthetic production fleet (Section 2.4): >1M processors across the nine
// micro-architectures, with per-architecture latent defect prevalence calibrated so the
// *detected* failure rates land on Table 2 (and their weighted mean on Table 1's 3.61
// permyriad total). Faulty parts carry concrete Defect models drawn from the same
// distributions as the study catalog; a small share is undetectable by the toolchain
// (Section 2.3 observes such escapes).
//
// Storage layout (docs/performance.md): the fleet is structure-of-arrays. The hot
// screening fields live in packed parallel byte arrays (`arch_bytes`, `flag_bytes`) so
// the 99.96%-clean fleet scan streams sequentially through 2 bytes per processor, and
// all Defect objects live in one shared per-fleet arena (`defect_arena`) addressed by
// {offset, count} ranges held only for the faulty parts. Ranges and the arena are built
// deterministically in shard order during Generate, so the layout -- like the fleet
// content itself -- is a pure function of (config, seed) at any thread count.

#ifndef SDC_SRC_FLEET_POPULATION_H_
#define SDC_SRC_FLEET_POPULATION_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/simd.h"
#include "src/fault/catalog.h"

namespace sdc {

class EngineContext;
class MetricsRegistry;
class Rng;
class SeriesRecorder;
class TraceRecorder;

// Fixed shard width of fleet generation and of the streaming pipeline built on top of it
// (FleetShardStream, src/fleet/stream.h): shard s covers serials
// [s * kFleetShardGrain, (s+1) * kFleetShardGrain) and draws every random value from
// Rng::Fork(s). Part of the determinism format (docs/parallelism.md) -- changing it
// re-partitions the RNG streams and is a behavior change.
inline constexpr uint64_t kFleetShardGrain = 8192;

// Slice of the defect arena owned by one faulty processor.
struct DefectRange {
  uint64_t offset = 0;
  uint32_t count = 0;
};

// Borrowed view of one fleet processor, assembled from the column arrays. Cheap to copy;
// valid only while the owning FleetPopulation (or, in tests, the backing defect vector)
// is alive.
struct FleetProcessorView {
  uint64_t serial = 0;
  int arch_index = 0;
  bool faulty = false;
  bool toolchain_detectable = true;  // false: fails only under conditions no testcase covers
  std::span<const Defect> defects;   // non-empty only for faulty parts
};

struct PopulationConfig {
  uint64_t processor_count = 1'000'000;
  // Fleet share per architecture; sums to 1.
  std::array<double, kArchCount> arch_share = {0.10, 0.10, 0.12, 0.06, 0.08,
                                               0.14, 0.10, 0.16, 0.14};
  // Detected failure-rate targets per architecture (Table 2), as fractions.
  std::array<double, kArchCount> detected_rate = {4.619e-4, 0.352e-4, 2.649e-4,
                                                  0.082e-4, 0.759e-4, 3.251e-4,
                                                  1.599e-4, 9.290e-4, 4.646e-4};
  // Overall share of faulty parts the pipeline eventually detects; true prevalence is
  // detected_rate / detectability. Calibrated against the screening pipeline: tricky
  // defects (high trigger temperature) routinely escape every stage.
  double detectability = 0.74;
  // Share of faulty parts no testcase can expose (complex multi-thread scenarios).
  double undetectable_share = 0.04;
  uint64_t seed = 20210101;
  // Worker threads for Generate: 0 = hardware concurrency, 1 = serial on the caller.
  // Output is bit-identical for a given seed at any thread count (see docs/parallelism.md);
  // SDC_THREADS overrides this value.
  int threads = 0;
  // Runs the original per-processor scalar generator instead of the blocked kernel
  // (docs/performance.md). Both produce the same fleet to the bit -- columns, faulty
  // index, defect arena, tallies -- which tests and bench/micro_screening assert; the
  // flag exists so that equivalence stays checkable forever (the PR 3 / PR 6 precedent).
  bool use_reference_generator = false;
  // Vector level for the blocked generator's classify/tally kernels. kAuto resolves to
  // the context's level (context overloads) or via SDC_SIMD + host detection (legacy
  // overloads); any level generates identical bytes, so this is purely a speed knob.
  SimdLevel simd = SimdLevel::kAuto;
  // Optional metric sink ("fleet.generate.*"): per-shard deltas merged in shard order, so
  // recorded values obey the same thread-count invariance as the fleet itself
  // (docs/observability.md). Null disables instrumentation.
  MetricsRegistry* metrics = nullptr;
  // Optional trace sink: one "generate.shard" sim span per generation shard (serial-space
  // clock, merged in shard order -- byte-identical at any thread count) plus host spans
  // for the drive and materialize stages. Null disables recording at the cost of one
  // pointer test per shard (docs/observability.md).
  TraceRecorder* trace = nullptr;
  // Optional time-series sink ("fleet.generate.*" cumulative trajectories, one point per
  // stream shard, x = last serial covered): points are appended during the shard-ordered
  // delta merge after the parallel pass, so the series -- order, values, and ring
  // evictions -- is byte-identical at any thread count (docs/observability.md). Null
  // disables sampling.
  SeriesRecorder* series = nullptr;
};

// Per-shard generation tallies. Cheap integer counters that shard consumers and the
// materialized fleet both fold in shard order, keeping every derived count thread-count
// invariant.
struct FleetShardTally {
  uint64_t faulty = 0;
  uint64_t defects = 0;
  uint64_t undetectable = 0;
  std::array<uint64_t, kArchCount> by_arch{};
  std::array<uint64_t, kArchCount> defects_by_arch{};
};

// Reusable shard-local storage filled by GenerateFleetShard. Streaming drivers keep one
// buffer per worker lane and refill it for every shard that lane claims, so a whole
// generate->screen->aggregate pass peaks at O(lanes * shard) bytes regardless of fleet
// size (docs/streaming.md).
struct FleetShardBuffer {
  // Packed per-processor columns, indexed by serial - shard_begin.
  std::vector<uint8_t> arch_bytes;
  std::vector<uint8_t> flag_bytes;
  // Sparse faulty index for the shard: global serials (ascending) and arena slices whose
  // offsets point into `defects` below (shard-local, starting at 0).
  std::vector<uint64_t> faulty_serials;
  std::vector<DefectRange> faulty_ranges;
  std::vector<Defect> defects;
  FleetShardTally tally;

  // Empties the containers without releasing capacity (the point of lane reuse).
  void Clear();
  // Bytes of owned container capacity (Defect payloads counted at sizeof(Defect)) -- the
  // quantity the streaming smoke test budgets against the shard budget.
  uint64_t CapacityBytes() const;
};

// Shard-independent precomputed state of the generation kernel, built once per
// stream/batch (FleetShardStream::Drive does it before the first shard) and shared
// read-only by every shard -- per-shard work that is a pure function of the config
// (weight re-summing, MakeArchSpec lookups, CDF boundaries, Bernoulli thresholds) lives
// here instead of in the per-processor loop. `blocked` reports whether the bulk kernel
// is usable: it needs an exact, drawing arch CDF and a per-arch prevalence that consumes
// exactly one draw per processor (0 < rate/detectability < 1); any degenerate config --
// or PopulationConfig::use_reference_generator -- falls back to the reference loop,
// which handles every input. Both paths generate identical bytes (docs/performance.md).
struct GenerationPlan {
  std::vector<double> shares;                  // hoisted copy of config.arch_share
  std::array<int, kArchCount> pcores_by_arch{};  // hoisted MakeArchSpec(...).physical_cores
  WeightedCdf arch_cdf;                        // exact replica of NextWeighted(shares)
  DrawClassifyTables tables;                   // arch CDF + prevalence thresholds, u53 space
  SimdLevel simd = SimdLevel::kScalar;         // resolved level for classify + tally
  bool blocked = false;

  // Legacy resolve: SDC_SIMD consulted here (once per plan), mirroring the context-free
  // screening entry points.
  static GenerationPlan Build(const PopulationConfig& config);
  // Context resolve: the level captured at context construction backs a kAuto request;
  // no environment read (src/common/context.h).
  static GenerationPlan Build(const PopulationConfig& config, EngineContext& context);
};

// Generates serials [begin, end) of the fleet described by `config` into `buffer`
// (cleared first), drawing every random value from base.Fork(shard) where `base` is
// Rng(config.seed). This is the single generation kernel: FleetPopulation::Generate and
// FleetShardStream both call it, so the materialized and streaming fleets are identical
// bytes by construction. `begin` must equal shard * kFleetShardGrain. The plan-taking
// form is the hot one (the stream builds one plan for the whole pass); the plan-free
// form builds a throwaway plan per call and exists for tests and one-shot callers.
void GenerateFleetShard(const PopulationConfig& config, const GenerationPlan& plan,
                        const Rng& base, uint64_t shard, uint64_t begin, uint64_t end,
                        FleetShardBuffer& buffer);
void GenerateFleetShard(const PopulationConfig& config, const Rng& base, uint64_t shard,
                        uint64_t begin, uint64_t end, FleetShardBuffer& buffer);

class FleetPopulation {
 public:
  // Flag bits of flag_bytes() entries.
  static constexpr uint8_t kFaultyFlag = 1;
  static constexpr uint8_t kDetectableFlag = 2;

  // Context-free form: constructs a fresh EngineContext per call (SDC_THREADS consulted
  // exactly there). The explicit form generates on the caller's context -- its pool
  // supplies the lanes and its attached sinks back any config sink left null, so no
  // mutable process-global state is read after the context was built
  // (src/common/context.h).
  static FleetPopulation Generate(const PopulationConfig& config);
  static FleetPopulation Generate(const PopulationConfig& config, EngineContext& context);

  uint64_t size() const { return arch_.size(); }
  const PopulationConfig& config() const { return config_; }

  // Per-processor hot fields. Serial numbers equal fleet indices by construction.
  int arch_index(uint64_t serial) const { return arch_[serial]; }
  bool faulty(uint64_t serial) const { return (flags_[serial] & kFaultyFlag) != 0; }
  bool toolchain_detectable(uint64_t serial) const {
    return (flags_[serial] & kDetectableFlag) != 0;
  }

  // Raw column arrays for streaming consumers (one byte per processor each). flag_bytes
  // entries are combinations of kFaultyFlag / kDetectableFlag; clean processors carry
  // kDetectableFlag alone (nothing to detect, but nothing escapes either).
  const std::vector<uint8_t>& arch_bytes() const { return arch_; }
  const std::vector<uint8_t>& flag_bytes() const { return flags_; }

  // Serials of the faulty parts, ascending; the screening fast path iterates this list
  // instead of testing every processor's flag byte.
  const std::vector<uint64_t>& faulty_serials() const { return faulty_serials_; }

  // Arena slice per faulty part, parallel to faulty_serials(). Exposed so column-view
  // consumers (ScreeningShardView) can address the arena without per-part calls.
  const std::vector<DefectRange>& faulty_ranges() const { return faulty_ranges_; }

  // Defects of the faulty part at `ordinal` within faulty_serials().
  std::span<const Defect> FaultyDefects(size_t ordinal) const {
    const DefectRange& range = faulty_ranges_[ordinal];
    return {defect_arena_.data() + range.offset, range.count};
  }

  // Defects of an arbitrary processor (empty for clean parts). O(log faulty_count).
  std::span<const Defect> DefectsOf(uint64_t serial) const;

  // Assembled per-processor view for callers that want all fields together.
  FleetProcessorView processor(uint64_t serial) const {
    return {serial, arch_index(serial), faulty(serial), toolchain_detectable(serial),
            DefectsOf(serial)};
  }

  // Every defect in the fleet, grouped by owning processor in serial order.
  const std::vector<Defect>& defect_arena() const { return defect_arena_; }

  // O(1): counted per shard during Generate and merged, not recomputed by scanning.
  uint64_t faulty_count() const { return faulty_serials_.size(); }
  uint64_t CountByArch(int arch_index) const {
    return counts_by_arch_[static_cast<size_t>(arch_index)];
  }

 private:
  // Rebuilds this fleet from a FleetShardStream pass (src/fleet/stream.h); Generate is
  // implemented as exactly that consumer, which is what keeps the materialized and
  // streaming modes byte-identical by construction.
  friend class FleetMaterializer;

  PopulationConfig config_;
  // Structure-of-arrays processor columns, indexed by serial.
  std::vector<uint8_t> arch_;
  std::vector<uint8_t> flags_;
  // Sparse faulty-part index: sorted serials plus each part's arena slice.
  std::vector<uint64_t> faulty_serials_;
  std::vector<DefectRange> faulty_ranges_;
  std::vector<Defect> defect_arena_;
  std::array<uint64_t, kArchCount> counts_by_arch_{};
};

}  // namespace sdc

#endif  // SDC_SRC_FLEET_POPULATION_H_
