// Synthetic production fleet (Section 2.4): >1M processors across the nine
// micro-architectures, with per-architecture latent defect prevalence calibrated so the
// *detected* failure rates land on Table 2 (and their weighted mean on Table 1's 3.61
// permyriad total). Faulty parts carry concrete Defect models drawn from the same
// distributions as the study catalog; a small share is undetectable by the toolchain
// (Section 2.3 observes such escapes).

#ifndef SDC_SRC_FLEET_POPULATION_H_
#define SDC_SRC_FLEET_POPULATION_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/fault/catalog.h"

namespace sdc {

class MetricsRegistry;

struct FleetProcessor {
  uint64_t serial = 0;
  int arch_index = 0;
  bool faulty = false;
  bool toolchain_detectable = true;  // false: fails only under conditions no testcase covers
  std::vector<Defect> defects;       // non-empty only for faulty parts
};

struct PopulationConfig {
  uint64_t processor_count = 1'000'000;
  // Fleet share per architecture; sums to 1.
  std::array<double, kArchCount> arch_share = {0.10, 0.10, 0.12, 0.06, 0.08,
                                               0.14, 0.10, 0.16, 0.14};
  // Detected failure-rate targets per architecture (Table 2), as fractions.
  std::array<double, kArchCount> detected_rate = {4.619e-4, 0.352e-4, 2.649e-4,
                                                  0.082e-4, 0.759e-4, 3.251e-4,
                                                  1.599e-4, 9.290e-4, 4.646e-4};
  // Overall share of faulty parts the pipeline eventually detects; true prevalence is
  // detected_rate / detectability. Calibrated against the screening pipeline: tricky
  // defects (high trigger temperature) routinely escape every stage.
  double detectability = 0.74;
  // Share of faulty parts no testcase can expose (complex multi-thread scenarios).
  double undetectable_share = 0.04;
  uint64_t seed = 20210101;
  // Worker threads for Generate: 0 = hardware concurrency, 1 = serial on the caller.
  // Output is bit-identical for a given seed at any thread count (see docs/parallelism.md);
  // SDC_THREADS overrides this value.
  int threads = 0;
  // Optional metric sink ("fleet.generate.*"): per-shard deltas merged in shard order, so
  // recorded values obey the same thread-count invariance as the fleet itself
  // (docs/observability.md). Null disables instrumentation.
  MetricsRegistry* metrics = nullptr;
};

class FleetPopulation {
 public:
  static FleetPopulation Generate(const PopulationConfig& config);

  const std::vector<FleetProcessor>& processors() const { return processors_; }
  const PopulationConfig& config() const { return config_; }

  // O(1): counted per shard during Generate and merged, not recomputed by scanning.
  uint64_t faulty_count() const { return faulty_count_; }
  uint64_t CountByArch(int arch_index) const {
    return counts_by_arch_[static_cast<size_t>(arch_index)];
  }

 private:
  PopulationConfig config_;
  std::vector<FleetProcessor> processors_;
  uint64_t faulty_count_ = 0;
  std::array<uint64_t, kArchCount> counts_by_arch_{};
};

}  // namespace sdc

#endif  // SDC_SRC_FLEET_POPULATION_H_
