// Fleet-level testcase effectiveness (Observation 11): with detailed logs for the faulty
// parts, count how many of the suite's 633 testcases ever detect an error.

#ifndef SDC_SRC_FLEET_STATS_H_
#define SDC_SRC_FLEET_STATS_H_

#include <string>
#include <utility>
#include <vector>

#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stream.h"

namespace sdc {

struct TestcaseEffectiveness {
  size_t total_testcases = 0;
  size_t effective_testcases = 0;        // detected at least one fault
  std::vector<std::string> effective_ids;

  size_t ineffective_testcases() const { return total_testcases - effective_testcases; }
};

// Evaluates which testcases would detect any of `fleet`'s detectable faulty parts under the
// given stage settings (expected-error threshold of one half error per run counts as a
// detection opportunity).
TestcaseEffectiveness ComputeTestcaseEffectiveness(const TestSuite& suite,
                                                   const FleetPopulation& fleet,
                                                   const StageParams& stage);

// Streaming counterpart of ComputeTestcaseEffectiveness: a ShardConsumer that inspects
// each shard's defect spans while they are alive and records, per shard, which testcases
// detect something. "Effective" is an existential property (any part, any defect), so
// OR-folding the per-shard bitmasks in shard order yields exactly the materialized result
// -- effective_ids in suite order included (tests/stream_test.cc).
class EffectivenessAccumulator : public ShardConsumer {
 public:
  // `suite` must outlive the stream pass.
  EffectivenessAccumulator(const TestSuite* suite, const StageParams& stage);

  void BeginStream(const PopulationConfig& config, uint64_t shard_count) override;
  void ConsumeShard(const FleetShard& shard) override;
  void EndStream() override;

  // The merged result; valid once after EndStream.
  TestcaseEffectiveness TakeResult() { return std::move(result_); }

 private:
  const TestSuite* suite_;
  StageParams stage_;
  // One bitmask (byte per testcase) per shard; empty for shards without detectable
  // faulty parts.
  std::vector<std::vector<uint8_t>> shard_effective_;
  TestcaseEffectiveness result_;
};

}  // namespace sdc

#endif  // SDC_SRC_FLEET_STATS_H_
