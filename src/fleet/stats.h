// Fleet-level testcase effectiveness (Observation 11): with detailed logs for the faulty
// parts, count how many of the suite's 633 testcases ever detect an error.

#ifndef SDC_SRC_FLEET_STATS_H_
#define SDC_SRC_FLEET_STATS_H_

#include <string>
#include <vector>

#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"

namespace sdc {

struct TestcaseEffectiveness {
  size_t total_testcases = 0;
  size_t effective_testcases = 0;        // detected at least one fault
  std::vector<std::string> effective_ids;

  size_t ineffective_testcases() const { return total_testcases - effective_testcases; }
};

// Evaluates which testcases would detect any of `fleet`'s detectable faulty parts under the
// given stage settings (expected-error threshold of one half error per run counts as a
// detection opportunity).
TestcaseEffectiveness ComputeTestcaseEffectiveness(const TestSuite& suite,
                                                   const FleetPopulation& fleet,
                                                   const StageParams& stage);

}  // namespace sdc

#endif  // SDC_SRC_FLEET_STATS_H_
