#include "src/fleet/capacity.h"

#include <set>
#include <unordered_map>

namespace sdc {

int DefectiveCoreCount(const FleetProcessor& processor) {
  const int total = MakeArchSpec(processor.arch_index).physical_cores;
  std::set<int> cores;
  for (const Defect& defect : processor.defects) {
    if (defect.affected_pcores.empty()) {
      return total;
    }
    cores.insert(defect.affected_pcores.begin(), defect.affected_pcores.end());
  }
  return static_cast<int>(cores.size());
}

CapacityReport SimulateCapacityRetention(const FleetPopulation& fleet,
                                         const ScreeningStats& stats,
                                         const ScreeningConfig& config) {
  CapacityReport report;
  std::unordered_map<uint64_t, const FleetProcessor*> by_serial;
  for (const FleetProcessor& processor : fleet.processors()) {
    report.fleet_cores +=
        static_cast<uint64_t>(MakeArchSpec(processor.arch_index).physical_cores);
    if (processor.faulty) {
      by_serial.emplace(processor.serial, &processor);
    }
  }
  const int periods =
      static_cast<int>(config.horizon_months / config.regular_period_months);
  report.timeline.resize(static_cast<size_t>(periods) + 1);
  for (int period = 0; period <= periods; ++period) {
    report.timeline[period].month =
        static_cast<double>(period) * config.regular_period_months;
  }
  for (const ProcessorOutcome& outcome : stats.detections) {
    if (outcome.stage != TestStage::kRegular) {
      continue;  // pre-production: the part never carried production load
    }
    const auto it = by_serial.find(outcome.serial);
    if (it == by_serial.end()) {
      continue;
    }
    const FleetProcessor& processor = *it->second;
    const int total_cores = MakeArchSpec(processor.arch_index).physical_cores;
    const int defective = DefectiveCoreCount(processor);
    ++report.production_detections;
    const uint64_t baseline_loss = static_cast<uint64_t>(total_cores);
    uint64_t fine_loss = static_cast<uint64_t>(defective);
    if (defective > 2) {
      fine_loss = static_cast<uint64_t>(total_cores);  // deprecation rule
      ++report.parts_deprecated_fine;
    }
    report.baseline_cores_lost += baseline_loss;
    report.fine_grained_cores_lost += fine_loss;
    const int period =
        static_cast<int>(outcome.month / config.regular_period_months);
    for (size_t p = static_cast<size_t>(period); p < report.timeline.size(); ++p) {
      report.timeline[p].baseline_cores_lost += baseline_loss;
      report.timeline[p].fine_grained_cores_lost += fine_loss;
    }
  }
  return report;
}

}  // namespace sdc
