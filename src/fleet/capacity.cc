#include "src/fleet/capacity.h"

#include <set>

namespace sdc {

int DefectiveCoreCount(const FleetProcessorView& processor) {
  const int total = MakeArchSpec(processor.arch_index).physical_cores;
  std::set<int> cores;
  for (const Defect& defect : processor.defects) {
    if (defect.affected_pcores.empty()) {
      return total;
    }
    cores.insert(defect.affected_pcores.begin(), defect.affected_pcores.end());
  }
  return static_cast<int>(cores.size());
}

CapacityReport SimulateCapacityRetention(const FleetPopulation& fleet,
                                         const ScreeningStats& stats,
                                         const ScreeningConfig& config) {
  CapacityReport report;
  // Per-arch core totals come from the population's cached arch histogram -- no fleet
  // scan, and detections address faulty parts through the fleet's sorted serial index.
  for (int arch = 0; arch < kArchCount; ++arch) {
    report.fleet_cores += fleet.CountByArch(arch) *
                          static_cast<uint64_t>(MakeArchSpec(arch).physical_cores);
  }
  const int periods =
      static_cast<int>(config.horizon_months / config.regular_period_months);
  report.timeline.resize(static_cast<size_t>(periods) + 1);
  for (int period = 0; period <= periods; ++period) {
    report.timeline[period].month =
        static_cast<double>(period) * config.regular_period_months;
  }
  for (const ProcessorOutcome& outcome : stats.detections) {
    if (outcome.stage != TestStage::kRegular) {
      continue;  // pre-production: the part never carried production load
    }
    if (outcome.serial >= fleet.size() || !fleet.faulty(outcome.serial)) {
      continue;
    }
    const FleetProcessorView processor = fleet.processor(outcome.serial);
    const int total_cores = MakeArchSpec(processor.arch_index).physical_cores;
    const int defective = DefectiveCoreCount(processor);
    ++report.production_detections;
    const uint64_t baseline_loss = static_cast<uint64_t>(total_cores);
    uint64_t fine_loss = static_cast<uint64_t>(defective);
    if (defective > 2) {
      fine_loss = static_cast<uint64_t>(total_cores);  // deprecation rule
      ++report.parts_deprecated_fine;
    }
    report.baseline_cores_lost += baseline_loss;
    report.fine_grained_cores_lost += fine_loss;
    const int period =
        static_cast<int>(outcome.month / config.regular_period_months);
    for (size_t p = static_cast<size_t>(period); p < report.timeline.size(); ++p) {
      report.timeline[p].baseline_cores_lost += baseline_loss;
      report.timeline[p].fine_grained_cores_lost += fine_loss;
    }
  }
  return report;
}

}  // namespace sdc
