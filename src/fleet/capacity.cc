#include "src/fleet/capacity.h"

#include <set>
#include <utility>

namespace sdc {
namespace {

// Sizes the cumulative timeline: one point per regular period plus the month-0 origin.
void InitTimeline(CapacityReport& report, const ScreeningConfig& config) {
  const int periods =
      static_cast<int>(config.horizon_months / config.regular_period_months);
  report.timeline.resize(static_cast<size_t>(periods) + 1);
  for (int period = 0; period <= periods; ++period) {
    report.timeline[static_cast<size_t>(period)].month =
        static_cast<double>(period) * config.regular_period_months;
  }
}

// Applies one in-production detection to both decommission policies. Shared by the
// materialized replay and the streaming accumulator so the policy arithmetic exists once;
// report.timeline must already be sized by InitTimeline.
void ApplyProductionDetection(const FleetProcessorView& processor,
                              const ProcessorOutcome& outcome,
                              const ScreeningConfig& config, CapacityReport& report) {
  const int total_cores = MakeArchSpec(processor.arch_index).physical_cores;
  const int defective = DefectiveCoreCount(processor);
  ++report.production_detections;
  const uint64_t baseline_loss = static_cast<uint64_t>(total_cores);
  uint64_t fine_loss = static_cast<uint64_t>(defective);
  if (defective > 2) {
    fine_loss = static_cast<uint64_t>(total_cores);  // deprecation rule
    ++report.parts_deprecated_fine;
  }
  report.baseline_cores_lost += baseline_loss;
  report.fine_grained_cores_lost += fine_loss;
  const int period = static_cast<int>(outcome.month / config.regular_period_months);
  for (size_t p = static_cast<size_t>(period); p < report.timeline.size(); ++p) {
    report.timeline[p].baseline_cores_lost += baseline_loss;
    report.timeline[p].fine_grained_cores_lost += fine_loss;
  }
}

}  // namespace

int DefectiveCoreCount(const FleetProcessorView& processor) {
  const int total = MakeArchSpec(processor.arch_index).physical_cores;
  std::set<int> cores;
  for (const Defect& defect : processor.defects) {
    if (defect.affected_pcores.empty()) {
      return total;
    }
    cores.insert(defect.affected_pcores.begin(), defect.affected_pcores.end());
  }
  return static_cast<int>(cores.size());
}

CapacityReport SimulateCapacityRetention(const FleetPopulation& fleet,
                                         const ScreeningStats& stats,
                                         const ScreeningConfig& config) {
  CapacityReport report;
  // Per-arch core totals come from the population's cached arch histogram -- no fleet
  // scan, and detections address faulty parts through the fleet's sorted serial index.
  for (int arch = 0; arch < kArchCount; ++arch) {
    report.fleet_cores += fleet.CountByArch(arch) *
                          static_cast<uint64_t>(MakeArchSpec(arch).physical_cores);
  }
  InitTimeline(report, config);
  for (const ProcessorOutcome& outcome : stats.detections) {
    if (outcome.stage != TestStage::kRegular) {
      continue;  // pre-production: the part never carried production load
    }
    if (outcome.serial >= fleet.size() || !fleet.faulty(outcome.serial)) {
      continue;
    }
    ApplyProductionDetection(fleet.processor(outcome.serial), outcome, config, report);
  }
  return report;
}

void CapacityAccumulator::BeginStream(const PopulationConfig& /*population*/,
                                      const ScreeningConfig& screening,
                                      uint64_t shard_count) {
  config_ = screening;
  partials_.assign(shard_count, CapacityReport{});
  report_ = CapacityReport{};
}

void CapacityAccumulator::ObserveShard(const FleetShard& shard,
                                       const ScreeningStats& shard_stats) {
  CapacityReport& partial = partials_[shard.shard];
  InitTimeline(partial, config_);
  // The shard's per-arch tally contributes its slice of the deployed-core total; summed
  // over shards this equals the materialized CountByArch fold exactly.
  for (int arch = 0; arch < kArchCount; ++arch) {
    partial.fleet_cores += shard.tally->by_arch[static_cast<size_t>(arch)] *
                           static_cast<uint64_t>(MakeArchSpec(arch).physical_cores);
  }
  for (const ProcessorOutcome& outcome : shard_stats.detections) {
    if (outcome.stage != TestStage::kRegular) {
      continue;  // pre-production: the part never carried production load
    }
    if (!shard.faulty(outcome.serial)) {
      continue;
    }
    ApplyProductionDetection(shard.processor(outcome.serial), outcome, config_, partial);
  }
}

void CapacityAccumulator::EndStream() {
  InitTimeline(report_, config_);
  for (const CapacityReport& partial : partials_) {
    report_.fleet_cores += partial.fleet_cores;
    report_.production_detections += partial.production_detections;
    report_.baseline_cores_lost += partial.baseline_cores_lost;
    report_.fine_grained_cores_lost += partial.fine_grained_cores_lost;
    report_.parts_deprecated_fine += partial.parts_deprecated_fine;
    for (size_t p = 0; p < report_.timeline.size(); ++p) {
      report_.timeline[p].baseline_cores_lost += partial.timeline[p].baseline_cores_lost;
      report_.timeline[p].fine_grained_cores_lost +=
          partial.timeline[p].fine_grained_cores_lost;
    }
  }
  partials_.clear();
  partials_.shrink_to_fit();
}

}  // namespace sdc
