#include "src/fleet/population.h"

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/telemetry/metrics.h"

namespace sdc {
namespace {

// Fixed shard width for generation. Part of the determinism contract: shard s covers
// serials [s * kGenerateGrain, (s+1) * kGenerateGrain) and draws from Rng::Fork(s), so the
// fleet is a pure function of (config, seed) regardless of how many workers run the shards.
constexpr uint64_t kGenerateGrain = 8192;

struct ShardTally {
  uint64_t faulty = 0;
  uint64_t defects = 0;
  uint64_t undetectable = 0;
  std::array<uint64_t, kArchCount> by_arch{};
  std::array<uint64_t, kArchCount> defects_by_arch{};
  // Built once per shard (not per processor) from the tallies above; merged in shard
  // order, so metric values are thread-count invariant like the fleet itself.
  MetricsDelta delta;
};

void FillShardDelta(ShardTally& tally, uint64_t processors) {
  MetricsDelta& delta = tally.delta;
  delta.Add("fleet.generate.processors", processors);
  delta.Add("fleet.generate.faulty", tally.faulty);
  delta.Add("fleet.generate.defects", tally.defects);
  delta.Add("fleet.generate.undetectable", tally.undetectable);
  for (int arch = 0; arch < kArchCount; ++arch) {
    const auto index = static_cast<size_t>(arch);
    if (tally.by_arch[index] > 0) {
      delta.Add("fleet.generate.arch." + ArchName(arch) + ".processors",
                tally.by_arch[index]);
    }
    if (tally.defects_by_arch[index] > 0) {
      delta.Add("fleet.generate.arch." + ArchName(arch) + ".defects",
                tally.defects_by_arch[index]);
    }
  }
}

}  // namespace

FleetPopulation FleetPopulation::Generate(const PopulationConfig& config) {
  FleetPopulation fleet;
  fleet.config_ = config;
  fleet.processors_.resize(config.processor_count);
  const Rng base(config.seed);
  const std::vector<double> shares(config.arch_share.begin(), config.arch_share.end());

  MetricsRegistry::ScopedTimer generate_timer(config.metrics, "fleet.generate.wall");
  ThreadPool pool(config.threads);
  const std::vector<ShardTally> tallies = pool.ParallelMap<ShardTally>(
      0, config.processor_count, kGenerateGrain,
      [&](uint64_t shard, uint64_t begin, uint64_t end) {
        ShardTally tally;
        Rng rng = base.Fork(shard);
        for (uint64_t serial = begin; serial < end; ++serial) {
          FleetProcessor& processor = fleet.processors_[serial];
          processor.serial = serial;
          processor.arch_index = static_cast<int>(rng.NextWeighted(shares));
          const double prevalence =
              config.detected_rate[processor.arch_index] / config.detectability;
          processor.faulty = rng.NextBernoulli(prevalence);
          if (processor.faulty) {
            const int pcores = MakeArchSpec(processor.arch_index).physical_cores;
            processor.defects = GenerateRandomDefects(rng, processor.arch_index, pcores);
            processor.toolchain_detectable = !rng.NextBernoulli(config.undetectable_share);
            ++tally.faulty;
            tally.defects += processor.defects.size();
            tally.defects_by_arch[static_cast<size_t>(processor.arch_index)] +=
                processor.defects.size();
            if (!processor.toolchain_detectable) {
              ++tally.undetectable;
            }
          }
          ++tally.by_arch[static_cast<size_t>(processor.arch_index)];
        }
        if (config.metrics != nullptr) {
          FillShardDelta(tally, end - begin);
        }
        return tally;
      });

  for (const ShardTally& tally : tallies) {
    fleet.faulty_count_ += tally.faulty;
    for (int arch = 0; arch < kArchCount; ++arch) {
      fleet.counts_by_arch_[static_cast<size_t>(arch)] +=
          tally.by_arch[static_cast<size_t>(arch)];
    }
    if (config.metrics != nullptr) {
      config.metrics->MergeDelta(tally.delta);
    }
  }
  return fleet;
}

}  // namespace sdc
