#include "src/fleet/population.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/telemetry/metrics.h"

namespace sdc {
namespace {

// Fixed shard width for generation. Part of the determinism contract: shard s covers
// serials [s * kGenerateGrain, (s+1) * kGenerateGrain) and draws from Rng::Fork(s), so the
// fleet is a pure function of (config, seed) regardless of how many workers run the shards.
constexpr uint64_t kGenerateGrain = 8192;

struct ShardTally {
  uint64_t faulty = 0;
  uint64_t defects = 0;
  uint64_t undetectable = 0;
  std::array<uint64_t, kArchCount> by_arch{};
  std::array<uint64_t, kArchCount> defects_by_arch{};
  // Built once per shard (not per processor) from the tallies above; merged in shard
  // order, so metric values are thread-count invariant like the fleet itself.
  MetricsDelta delta;
};

// One shard's contribution to the sparse faulty index and the defect arena. The byte
// columns are written in place (shards own disjoint serial ranges); the variable-length
// pieces are produced shard-locally and stitched together in shard order afterwards.
struct ShardOutput {
  ShardTally tally;
  std::vector<std::pair<uint64_t, uint32_t>> faulty;  // (serial, defect count)
  std::vector<Defect> arena;                          // defects in serial order
};

void FillShardDelta(ShardTally& tally, uint64_t processors) {
  MetricsDelta& delta = tally.delta;
  delta.Add("fleet.generate.processors", processors);
  delta.Add("fleet.generate.faulty", tally.faulty);
  delta.Add("fleet.generate.defects", tally.defects);
  delta.Add("fleet.generate.undetectable", tally.undetectable);
  for (int arch = 0; arch < kArchCount; ++arch) {
    const auto index = static_cast<size_t>(arch);
    if (tally.by_arch[index] > 0) {
      delta.Add("fleet.generate.arch." + ArchName(arch) + ".processors",
                tally.by_arch[index]);
    }
    if (tally.defects_by_arch[index] > 0) {
      delta.Add("fleet.generate.arch." + ArchName(arch) + ".defects",
                tally.defects_by_arch[index]);
    }
  }
}

}  // namespace

std::span<const Defect> FleetPopulation::DefectsOf(uint64_t serial) const {
  const auto it =
      std::lower_bound(faulty_serials_.begin(), faulty_serials_.end(), serial);
  if (it == faulty_serials_.end() || *it != serial) {
    return {};
  }
  return FaultyDefects(static_cast<size_t>(it - faulty_serials_.begin()));
}

FleetPopulation FleetPopulation::Generate(const PopulationConfig& config) {
  FleetPopulation fleet;
  fleet.config_ = config;
  fleet.arch_.resize(config.processor_count);
  fleet.flags_.resize(config.processor_count);
  const Rng base(config.seed);
  const std::vector<double> shares(config.arch_share.begin(), config.arch_share.end());
  std::array<int, kArchCount> pcores_by_arch;
  for (int arch = 0; arch < kArchCount; ++arch) {
    pcores_by_arch[static_cast<size_t>(arch)] = MakeArchSpec(arch).physical_cores;
  }

  MetricsRegistry::ScopedTimer generate_timer(config.metrics, "fleet.generate.wall");
  ThreadPool pool(config.threads);
  std::vector<ShardOutput> outputs = pool.ParallelMap<ShardOutput>(
      0, config.processor_count, kGenerateGrain,
      [&](uint64_t shard, uint64_t begin, uint64_t end) {
        ShardOutput output;
        ShardTally& tally = output.tally;
        Rng rng = base.Fork(shard);
        for (uint64_t serial = begin; serial < end; ++serial) {
          const int arch_index = static_cast<int>(rng.NextWeighted(shares));
          fleet.arch_[serial] = static_cast<uint8_t>(arch_index);
          const double prevalence =
              config.detected_rate[arch_index] / config.detectability;
          uint8_t flags = kDetectableFlag;
          if (rng.NextBernoulli(prevalence)) {
            std::vector<Defect> defects = GenerateRandomDefects(
                rng, arch_index, pcores_by_arch[static_cast<size_t>(arch_index)]);
            const bool detectable = !rng.NextBernoulli(config.undetectable_share);
            flags = detectable ? (kFaultyFlag | kDetectableFlag) : kFaultyFlag;
            ++tally.faulty;
            tally.defects += defects.size();
            tally.defects_by_arch[static_cast<size_t>(arch_index)] += defects.size();
            if (!detectable) {
              ++tally.undetectable;
            }
            output.faulty.emplace_back(serial, static_cast<uint32_t>(defects.size()));
            output.arena.insert(output.arena.end(),
                                std::make_move_iterator(defects.begin()),
                                std::make_move_iterator(defects.end()));
          }
          fleet.flags_[serial] = flags;
          ++tally.by_arch[static_cast<size_t>(arch_index)];
        }
        if (config.metrics != nullptr) {
          FillShardDelta(tally, end - begin);
        }
        return output;
      });

  // Stitch the shard-local pieces together in shard order: offsets are running sums, so
  // the arena holds every defect grouped by owning processor in ascending serial order.
  uint64_t total_faulty = 0;
  uint64_t total_defects = 0;
  for (const ShardOutput& output : outputs) {
    total_faulty += output.faulty.size();
    total_defects += output.arena.size();
  }
  fleet.faulty_serials_.reserve(total_faulty);
  fleet.faulty_ranges_.reserve(total_faulty);
  fleet.defect_arena_.reserve(total_defects);
  for (ShardOutput& output : outputs) {
    uint64_t offset = fleet.defect_arena_.size();
    for (const auto& [serial, defect_count] : output.faulty) {
      fleet.faulty_serials_.push_back(serial);
      fleet.faulty_ranges_.push_back({offset, defect_count});
      offset += defect_count;
    }
    fleet.defect_arena_.insert(fleet.defect_arena_.end(),
                               std::make_move_iterator(output.arena.begin()),
                               std::make_move_iterator(output.arena.end()));
    const ShardTally& tally = output.tally;
    for (int arch = 0; arch < kArchCount; ++arch) {
      fleet.counts_by_arch_[static_cast<size_t>(arch)] +=
          tally.by_arch[static_cast<size_t>(arch)];
    }
    if (config.metrics != nullptr) {
      config.metrics->MergeDelta(tally.delta);
    }
  }
  return fleet;
}

}  // namespace sdc
