#include "src/fleet/population.h"

#include <algorithm>

#include "src/common/context.h"
#include "src/common/rng.h"
#include "src/fleet/stream.h"
#include "src/telemetry/metrics.h"

namespace sdc {

void FleetShardBuffer::Clear() {
  arch_bytes.clear();
  flag_bytes.clear();
  faulty_serials.clear();
  faulty_ranges.clear();
  defects.clear();
  tally = FleetShardTally{};
}

uint64_t FleetShardBuffer::CapacityBytes() const {
  return arch_bytes.capacity() * sizeof(uint8_t) +
         flag_bytes.capacity() * sizeof(uint8_t) +
         faulty_serials.capacity() * sizeof(uint64_t) +
         faulty_ranges.capacity() * sizeof(DefectRange) +
         defects.capacity() * sizeof(Defect);
}

void GenerateFleetShard(const PopulationConfig& config, const Rng& base, uint64_t shard,
                        uint64_t begin, uint64_t end, FleetShardBuffer& buffer) {
  buffer.Clear();
  buffer.arch_bytes.resize(end - begin);
  buffer.flag_bytes.resize(end - begin);
  const std::vector<double> shares(config.arch_share.begin(), config.arch_share.end());
  std::array<int, kArchCount> pcores_by_arch;
  for (int arch = 0; arch < kArchCount; ++arch) {
    pcores_by_arch[static_cast<size_t>(arch)] = MakeArchSpec(arch).physical_cores;
  }
  FleetShardTally& tally = buffer.tally;
  Rng rng = base.Fork(shard);
  for (uint64_t serial = begin; serial < end; ++serial) {
    const int arch_index = static_cast<int>(rng.NextWeighted(shares));
    buffer.arch_bytes[serial - begin] = static_cast<uint8_t>(arch_index);
    const double prevalence = config.detected_rate[arch_index] / config.detectability;
    uint8_t flags = FleetPopulation::kDetectableFlag;
    if (rng.NextBernoulli(prevalence)) {
      std::vector<Defect> defects = GenerateRandomDefects(
          rng, arch_index, pcores_by_arch[static_cast<size_t>(arch_index)]);
      const bool detectable = !rng.NextBernoulli(config.undetectable_share);
      flags = detectable ? (FleetPopulation::kFaultyFlag | FleetPopulation::kDetectableFlag)
                         : FleetPopulation::kFaultyFlag;
      ++tally.faulty;
      tally.defects += defects.size();
      tally.defects_by_arch[static_cast<size_t>(arch_index)] += defects.size();
      if (!detectable) {
        ++tally.undetectable;
      }
      buffer.faulty_serials.push_back(serial);
      buffer.faulty_ranges.push_back(
          {buffer.defects.size(), static_cast<uint32_t>(defects.size())});
      buffer.defects.insert(buffer.defects.end(),
                            std::make_move_iterator(defects.begin()),
                            std::make_move_iterator(defects.end()));
    }
    buffer.flag_bytes[serial - begin] = flags;
    ++tally.by_arch[static_cast<size_t>(arch_index)];
  }
}

std::span<const Defect> FleetPopulation::DefectsOf(uint64_t serial) const {
  const auto it =
      std::lower_bound(faulty_serials_.begin(), faulty_serials_.end(), serial);
  if (it == faulty_serials_.end() || *it != serial) {
    return {};
  }
  return FaultyDefects(static_cast<size_t>(it - faulty_serials_.begin()));
}

FleetPopulation FleetPopulation::Generate(const PopulationConfig& config) {
  // Materialization is just one consumer of the shard stream: the stream generates each
  // shard's columns and defect spans, and FleetMaterializer copies them into the fleet's
  // arrays, stitching the sparse faulty index and the defect arena in shard order.
  MetricsRegistry::ScopedTimer generate_timer(config.metrics, "fleet.generate.wall");
  FleetPopulation fleet;
  FleetShardStream stream(config);
  FleetMaterializer materializer(&fleet);
  stream.Drive({&materializer});
  return fleet;
}

FleetPopulation FleetPopulation::Generate(const PopulationConfig& config,
                                          EngineContext& context) {
  MetricsRegistry* metrics =
      config.metrics != nullptr ? config.metrics : context.metrics();
  MetricsRegistry::ScopedTimer generate_timer(metrics, "fleet.generate.wall");
  FleetPopulation fleet;
  FleetShardStream stream(config);
  FleetMaterializer materializer(&fleet);
  stream.Drive({&materializer}, context);
  return fleet;
}

}  // namespace sdc
