#include "src/fleet/population.h"

#include "src/common/rng.h"

namespace sdc {

FleetPopulation FleetPopulation::Generate(const PopulationConfig& config) {
  FleetPopulation fleet;
  fleet.config_ = config;
  fleet.processors_.reserve(config.processor_count);
  Rng rng(config.seed);
  std::vector<double> shares(config.arch_share.begin(), config.arch_share.end());
  for (uint64_t serial = 0; serial < config.processor_count; ++serial) {
    FleetProcessor processor;
    processor.serial = serial;
    processor.arch_index = static_cast<int>(rng.NextWeighted(shares));
    const double prevalence =
        config.detected_rate[processor.arch_index] / config.detectability;
    processor.faulty = rng.NextBernoulli(prevalence);
    if (processor.faulty) {
      const int pcores = MakeArchSpec(processor.arch_index).physical_cores;
      processor.defects = GenerateRandomDefects(rng, processor.arch_index, pcores);
      processor.toolchain_detectable = !rng.NextBernoulli(config.undetectable_share);
    }
    fleet.processors_.push_back(std::move(processor));
  }
  return fleet;
}

uint64_t FleetPopulation::faulty_count() const {
  uint64_t count = 0;
  for (const FleetProcessor& processor : processors_) {
    count += processor.faulty ? 1 : 0;
  }
  return count;
}

uint64_t FleetPopulation::CountByArch(int arch_index) const {
  uint64_t count = 0;
  for (const FleetProcessor& processor : processors_) {
    count += processor.arch_index == arch_index ? 1 : 0;
  }
  return count;
}

}  // namespace sdc
