// Streaming shard pipeline over the synthetic fleet (docs/streaming.md).
//
// FleetPopulation::Generate materializes every column and defect before anything can look
// at them, which bounds fleet size by RAM and pays a full write + re-read of the columns.
// FleetShardStream inverts that: it generates the fleet one kFleetShardGrain-wide shard at
// a time into per-lane scratch buffers and hands each shard -- as a FleetShard view of
// packed byte columns plus defect spans over the shard-local arena -- to a set of
// ShardConsumers while the data is hot in cache. A fused generate -> screen -> aggregate
// pass therefore peaks at O(lanes * shard) bytes, so a 100M-processor fleet is a flag,
// not an OOM.
//
// Determinism: the stream uses the same fixed shard layout and per-shard Rng::Fork
// streams as the materialized path (the two share one generation kernel,
// GenerateFleetShard), consumers store per-shard partial results indexed by shard, and
// EndStream merges them in shard order -- the same contract as docs/parallelism.md, so
// every streaming result is byte-identical to its materialized counterpart at any thread
// count (tests/stream_test.cc pins this at 1/2/8 threads).

#ifndef SDC_SRC_FLEET_STREAM_H_
#define SDC_SRC_FLEET_STREAM_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "src/fleet/population.h"

namespace sdc {

class EngineContext;

// Borrowed view of one generated shard, valid only for the duration of
// ShardConsumer::ConsumeShard. Serial-indexed accessors take global serials in
// [begin, end); the packed columns are indexed serial - begin.
struct FleetShard {
  uint64_t shard = 0;
  uint64_t begin = 0;
  uint64_t end = 0;
  const FleetShardTally* tally = nullptr;
  std::span<const uint8_t> arch_bytes;        // indexed by serial - begin
  std::span<const uint8_t> flag_bytes;        // indexed by serial - begin
  std::span<const uint64_t> faulty_serials;   // global serials, ascending
  std::span<const DefectRange> faulty_ranges; // offsets into `defects`
  std::span<const Defect> defects;            // shard-local arena

  uint64_t size() const { return end - begin; }
  int arch_index(uint64_t serial) const { return arch_bytes[serial - begin]; }
  bool faulty(uint64_t serial) const {
    return (flag_bytes[serial - begin] & FleetPopulation::kFaultyFlag) != 0;
  }
  bool toolchain_detectable(uint64_t serial) const {
    return (flag_bytes[serial - begin] & FleetPopulation::kDetectableFlag) != 0;
  }

  // Defects of the faulty part at `ordinal` within faulty_serials.
  std::span<const Defect> FaultyDefects(size_t ordinal) const {
    const DefectRange& range = faulty_ranges[ordinal];
    return {defects.data() + range.offset, range.count};
  }

  // Defects of an arbitrary in-shard processor (empty for clean parts).
  std::span<const Defect> DefectsOf(uint64_t serial) const;

  // Assembled per-processor view, mirroring FleetPopulation::processor.
  FleetProcessorView processor(uint64_t serial) const {
    return {serial, arch_index(serial), faulty(serial), toolchain_detectable(serial),
            DefectsOf(serial)};
  }
};

// Consumer of a streaming fleet pass. ConsumeShard is called once per shard, concurrently
// from the pool's lanes and in schedule-dependent order; the shard's storage is only
// valid during the call, so a consumer keeps per-shard partial results (indexed by
// shard.shard) and folds them in ascending shard order in EndStream -- that ordered merge
// is what makes its output thread-count invariant.
class ShardConsumer {
 public:
  virtual ~ShardConsumer();

  // Called once before any shard, on the driving thread. Context-threaded drives
  // (Drive(consumers, EngineContext&)) pass their context so consumers can resolve
  // telemetry sinks and the vector level from it -- and PIN them for the whole pass
  // (src/common/context.h); context-free drives pass null. The default implementation
  // forwards to the context-free BeginStream, so existing consumers need no changes.
  virtual void BeginStreamWithContext(EngineContext* context,
                                      const PopulationConfig& config,
                                      uint64_t shard_count);
  // Context-free form, kept for consumers that do not care about contexts.
  virtual void BeginStream(const PopulationConfig& config, uint64_t shard_count);
  // Called once per shard; thread-safe against itself on distinct shards.
  virtual void ConsumeShard(const FleetShard& shard) = 0;
  // Called once after every shard completed, on the driving thread.
  virtual void EndStream();
};

// What one Drive pass did: shard/lane geometry plus the peak scratch footprint (sum over
// lanes of each lane's high-water buffer capacity) -- the number the memory-bound tests
// assert stays O(lanes * shard).
struct StreamReport {
  uint64_t shards = 0;
  int lanes = 1;
  uint64_t peak_scratch_bytes = 0;
};

// Drives a fused streaming pass over the fleet described by `config`: for every shard of
// kFleetShardGrain processors, generate into the claiming lane's scratch buffer, then
// hand the FleetShard view to every consumer in turn. Per-shard generation MetricsDeltas
// (same "fleet.generate.*" keys as the materialized path) are merged into config.metrics
// in shard order after the pass.
class FleetShardStream {
 public:
  explicit FleetShardStream(const PopulationConfig& config) : config_(config) {}

  const PopulationConfig& config() const { return config_; }
  uint64_t shard_count() const;

  // Runs the pass; consumers are invoked in the given order on every shard. Blocks until
  // every shard has been consumed and EndStream ran on every consumer. The context-free
  // form constructs a fresh EngineContext per call (environment consulted exactly there);
  // the explicit form reuses the caller's context -- its pool supplies the lanes, and its
  // attached sinks back any config sink left null, pinned once at pass start
  // (src/common/context.h).
  StreamReport Drive(std::span<ShardConsumer* const> consumers) const;
  StreamReport Drive(std::initializer_list<ShardConsumer*> consumers) const;
  StreamReport Drive(std::span<ShardConsumer* const> consumers,
                     EngineContext& context) const;
  StreamReport Drive(std::initializer_list<ShardConsumer*> consumers,
                     EngineContext& context) const;

 private:
  // `consumer_context` is what BeginStreamWithContext observes: the caller's context for
  // explicit drives, null for context-free drives (whose internal context only supplies
  // the pool, preserving the legacy sink and SIMD resolution exactly).
  StreamReport DriveWith(std::span<ShardConsumer* const> consumers, EngineContext& context,
                         EngineContext* consumer_context) const;

  PopulationConfig config_;
};

// Consumer that rebuilds the random-access FleetPopulation from the stream.
// FleetPopulation::Generate is implemented as exactly this consumer, so the materialized
// fleet is the streaming fleet by construction.
class FleetMaterializer : public ShardConsumer {
 public:
  explicit FleetMaterializer(FleetPopulation* fleet) : fleet_(fleet) {}

  // Pins the stitch-span trace sink: an explicit config.trace wins, otherwise the
  // context's attachment as of pass start.
  void BeginStreamWithContext(EngineContext* context, const PopulationConfig& config,
                              uint64_t shard_count) override;
  void BeginStream(const PopulationConfig& config, uint64_t shard_count) override;
  void ConsumeShard(const FleetShard& shard) override;
  void EndStream() override;

 private:
  // Variable-length shard pieces held until EndStream stitches them in shard order into
  // the sorted faulty index and the contiguous defect arena.
  struct ShardPiece {
    std::vector<uint64_t> faulty_serials;
    std::vector<DefectRange> faulty_ranges;  // shard-local offsets
    std::vector<Defect> defects;
    std::array<uint64_t, kArchCount> by_arch{};
  };

  FleetPopulation* fleet_;
  std::vector<ShardPiece> pieces_;
  TraceRecorder* trace_ = nullptr;  // from the stream's PopulationConfig
};

}  // namespace sdc

#endif  // SDC_SRC_FLEET_STREAM_H_
