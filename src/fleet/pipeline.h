// Four-stage screening pipeline (Figure 1): factory delivery, datacenter delivery, system
// re-installation, and regular in-production tests every three months over the study
// horizon. Detection per stage uses the closed-form expected-error count the defect model
// implies -- the same activation law the op-level simulation evaluates -- so fleet-scale
// statistics stay consistent with the deep-dive experiments without simulating 10^6
// processors at operation granularity.
//
// Per stage, the expected number of errors for a defect is
//   E = sum_cores frequency(T_stage, nominal intensity, core) * matching-testcase minutes
// and the detection probability is catch_factor * (1 - exp(-E)). The catch factor models
// how much of the stage's test program overlaps the toolchain's SDC sensitivity (factory
// HVM tests are weak SDC detectors; the re-install full-suite run is the strong one --
// which is exactly why Table 1's re-install column dominates).
//
// Cost model (docs/performance.md): the per-defect expected-error terms depend only on
// (defect, stage params, core count), so Run evaluates them exactly once per faulty
// processor and memoizes the per-stage survive factors. Pre-production probes are then
// table lookups, and the regular-cycle loop re-derives its detection probability only
// when a wear-out defect's onset month is crossed -- every other cycle is a cached
// lookup. The clean-processor fast path never touches the model at all: it streams the
// packed per-processor byte columns and jumps between faulty parts via the fleet's
// sorted faulty-serial index. The pre-memoization implementation is retained as a
// test-only reference (ScreeningConfig::use_reference_model) and the equivalence suite
// asserts byte-identical stats between the two at several thread counts.

#ifndef SDC_SRC_FLEET_PIPELINE_H_
#define SDC_SRC_FLEET_PIPELINE_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/fleet/population.h"
#include "src/toolchain/registry.h"

namespace sdc {

class MetricsRegistry;

enum class TestStage {
  kFactory = 0,
  kDatacenter = 1,
  kReinstall = 2,
  kRegular = 3,
};

constexpr int kStageCount = 4;

std::string StageName(TestStage stage);

struct StageParams {
  double per_case_seconds = 60.0;     // equal allocation across the suite's testcases
  double temperature_celsius = 58.0;  // effective core temperature while testing
  double catch_factor = 1.0;          // SDC sensitivity of this stage's test program
};

struct ScreeningConfig {
  std::array<StageParams, kStageCount> stages = {{
      {30.0, 57.0, 0.24},    // factory: manufacturer tests, partial SDC overlap
      {15.0, 50.0, 0.11},   // datacenter delivery: quick acceptance checks
      {90.0, 66.0, 0.97},    // re-install: first full-suite burn-in run
      {60.0, 58.0, 0.48},    // each regular round: full suite, production thermals
  }};
  double horizon_months = 32.0;
  double regular_period_months = 3.0;
  // Regular tests run in groups (Section 2.4: "testing for each group lasts about 2 weeks,
  // and testing for the whole fleet needs months"): the fleet is partitioned into this many
  // groups and each group's round is offset by an equal share of the period. 1 = every
  // machine tests at the same month boundaries.
  int regular_groups = 6;
  uint64_t seed = 77;
  // Worker threads for ScreeningPipeline::Run: 0 = hardware concurrency, 1 = serial.
  // Stats are bit-identical for a given seed at any thread count (see docs/parallelism.md);
  // SDC_THREADS overrides this value.
  int threads = 0;
  // Test-only hook: run the slow pre-memoization model that recomputes MatchingTestcases
  // and ExpectedErrors at every probe. Output must be byte-identical to the default
  // memoized path (tests/screening_model_test.cc); production callers leave this false.
  bool use_reference_model = false;
  // Optional metric sink ("screening.*"): per-shard MetricsDelta objects merged in shard
  // order, thread-count invariant except the wall-clock shard timers
  // (docs/observability.md). Null disables instrumentation.
  MetricsRegistry* metrics = nullptr;
};

// Group a processor's regular tests belong to, and the absolute month of its round in a
// given cycle. Deterministic in the serial number.
int RegularGroupOf(uint64_t serial, const ScreeningConfig& config);
double RegularRoundMonth(uint64_t serial, int cycle, const ScreeningConfig& config);

struct ProcessorOutcome {
  uint64_t serial = 0;
  int arch_index = 0;
  bool detected = false;
  TestStage stage = TestStage::kFactory;
  double month = 0.0;  // detection time (0 for pre-production stages)
};

struct ScreeningStats {
  uint64_t tested = 0;
  uint64_t faulty = 0;
  std::array<uint64_t, kStageCount> detected_by_stage{};
  std::array<uint64_t, kArchCount> tested_by_arch{};
  std::array<uint64_t, kArchCount> detected_by_arch{};
  std::vector<ProcessorOutcome> detections;  // one entry per detected faulty part

  uint64_t total_detected() const;
  double StageRate(TestStage stage) const;   // detections at stage / tested
  double TotalRate() const;                  // all detections / tested
  double ArchRate(int arch_index) const;     // detections / tested within one arch
  double PreProductionRate() const;          // factory + datacenter + re-install

  // Adds `other`'s counters and move-appends its detections (reserving first, so the
  // shard-order reduce never reallocates per element). Shard results merged in shard
  // order reproduce the serial stats exactly, detections in serial order included.
  void MergeFrom(ScreeningStats&& other);
};

class ScreeningPipeline {
 public:
  // `suite` provides testcase metadata for matching-minutes computation; it must outlive
  // the pipeline.
  explicit ScreeningPipeline(const TestSuite* suite);

  // Screens the whole fleet. Sharded across config.threads workers; per-shard stats are
  // merged in shard order and each shard draws from its own forked RNG stream, so the
  // result is bit-identical at any thread count.
  ScreeningStats Run(const FleetPopulation& fleet, const ScreeningConfig& config) const;

  // Expected error count for `defect` under one full-suite pass at the stage's settings on
  // a processor with `pcores` physical cores. Exposed for tests and calibration.
  double ExpectedErrors(const Defect& defect, const StageParams& stage, int pcores) const;

  // Number of suite testcases whose op kinds and datatypes can expose `defect`.
  int MatchingTestcases(const Defect& defect) const;

 private:
  // Memoized fast path: screens one faulty, toolchain-detectable processor. Evaluates the
  // detection model once per (defect, stage), then replays the probe schedule against the
  // cached survive terms, drawing all randomness from `rng` in the same order as the
  // reference implementation.
  void ScreenFaultyProcessor(uint64_t serial, int arch_index,
                             std::span<const Defect> defects,
                             const ScreeningConfig& config, int physical_cores, Rng& rng,
                             ScreeningStats& stats) const;

  // Pre-memoization implementation, kept verbatim as the equivalence-test oracle. Screens
  // one processor (clean parts included), recomputing MatchingTestcases / ExpectedErrors
  // at every probe. Reached only via ScreeningConfig::use_reference_model.
  void ScreenProcessorReference(const FleetProcessorView& processor,
                                const ScreeningConfig& config, Rng& rng,
                                ScreeningStats& stats) const;

  const TestSuite* suite_;
};

}  // namespace sdc

#endif  // SDC_SRC_FLEET_PIPELINE_H_
