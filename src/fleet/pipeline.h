// Four-stage screening pipeline (Figure 1): factory delivery, datacenter delivery, system
// re-installation, and regular in-production tests every three months over the study
// horizon. Detection per stage uses the closed-form expected-error count the defect model
// implies -- the same activation law the op-level simulation evaluates -- so fleet-scale
// statistics stay consistent with the deep-dive experiments without simulating 10^6
// processors at operation granularity.
//
// Per stage, the expected number of errors for a defect is
//   E = sum_cores frequency(T_stage, nominal intensity, core) * matching-testcase minutes
// and the detection probability is catch_factor * (1 - exp(-E)). The catch factor models
// how much of the stage's test program overlaps the toolchain's SDC sensitivity (factory
// HVM tests are weak SDC detectors; the re-install full-suite run is the strong one --
// which is exactly why Table 1's re-install column dominates).
//
// Cost model (docs/performance.md): the per-defect expected-error terms depend only on
// (defect, stage params, core count), so Run evaluates them exactly once per faulty
// processor and memoizes the per-stage survive factors. Pre-production probes are then
// table lookups, and the regular-cycle loop re-derives its detection probability only
// when a wear-out defect's onset month is crossed -- every other cycle is a cached
// lookup. The clean-processor fast path never touches the model at all: it streams the
// packed per-processor byte columns and jumps between faulty parts via the fleet's
// sorted faulty-serial index. The pre-memoization implementation is retained as a
// test-only reference (ScreeningConfig::use_reference_model) and the equivalence suite
// asserts byte-identical stats between the two at several thread counts.

#ifndef SDC_SRC_FLEET_PIPELINE_H_
#define SDC_SRC_FLEET_PIPELINE_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/fleet/population.h"
#include "src/fleet/stream.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/toolchain/registry.h"

namespace sdc {

// Fixed shard width for screening. Like the generation grain, part of the determinism
// format: screening shard s draws from Rng::Fork(s). kFleetShardGrain is an exact
// multiple, and stream shards start at multiples of it, so the screening shards embedded
// in a stream shard coincide exactly with the materialized path's global shard layout --
// the reason streaming screening is byte-identical by construction (docs/streaming.md).
inline constexpr uint64_t kScreeningShardGrain = 4096;

enum class TestStage {
  kFactory = 0,
  kDatacenter = 1,
  kReinstall = 2,
  kRegular = 3,
};

constexpr int kStageCount = 4;

std::string StageName(TestStage stage);

struct StageParams {
  double per_case_seconds = 60.0;     // equal allocation across the suite's testcases
  double temperature_celsius = 58.0;  // effective core temperature while testing
  double catch_factor = 1.0;          // SDC sensitivity of this stage's test program
};

struct ScreeningConfig {
  std::array<StageParams, kStageCount> stages = {{
      {30.0, 57.0, 0.24},    // factory: manufacturer tests, partial SDC overlap
      {15.0, 50.0, 0.11},   // datacenter delivery: quick acceptance checks
      {90.0, 66.0, 0.97},    // re-install: first full-suite burn-in run
      {60.0, 58.0, 0.48},    // each regular round: full suite, production thermals
  }};
  double horizon_months = 32.0;
  double regular_period_months = 3.0;
  // Regular tests run in groups (Section 2.4: "testing for each group lasts about 2 weeks,
  // and testing for the whole fleet needs months"): the fleet is partitioned into this many
  // groups and each group's round is offset by an equal share of the period. 1 = every
  // machine tests at the same month boundaries.
  int regular_groups = 6;
  uint64_t seed = 77;
  // Worker threads for ScreeningPipeline::Run: 0 = hardware concurrency, 1 = serial.
  // Stats are bit-identical for a given seed at any thread count (see docs/parallelism.md);
  // SDC_THREADS overrides this value.
  int threads = 0;
  // Test-only hook: run the slow pre-memoization model that recomputes MatchingTestcases
  // and ExpectedErrors at every probe. Output must be byte-identical to the default
  // memoized path (tests/screening_model_test.cc); production callers leave this false.
  bool use_reference_model = false;
  // Optional metric sink ("screening.*"): per-shard MetricsDelta objects merged in shard
  // order, thread-count invariant except the wall-clock shard timers
  // (docs/observability.md). Null disables instrumentation.
  MetricsRegistry* metrics = nullptr;
  // Optional trace sink: one "screen.subshard" sim span per screening shard (serial-space
  // clock) plus one "detection" instant per detected processor, accumulated per shard and
  // merged in shard order -- byte-identical at any thread count and across the
  // materialized/streaming modes. Null disables recording at the cost of one pointer test
  // per shard (docs/observability.md).
  TraceRecorder* trace = nullptr;
  // Vector level for the clean-path column scan (docs/performance.md). kAuto picks the
  // best the host supports; the SDC_SIMD environment variable and -DSDC_FORCE_SCALAR
  // override it (src/common/simd.h). Every level produces bit-identical stats -- this is
  // a speed knob, never a behavior change.
  SimdLevel simd = SimdLevel::kAuto;
  // Optional time-series sink: cumulative "screening.tested" / "screening.detected" /
  // "screening.escapes" trajectories over the fleet's serial axis, one point per
  // kFleetShardGrain of serials. Points are appended during the shard-ordered fold on
  // the driving thread, and the sample boundaries are fleet-grain aligned in BOTH
  // execution modes, so the series is byte-identical at any thread count and across
  // streaming vs. materialized runs (docs/observability.md). In a ScenarioBatch only
  // scenario 0's sink is sampled. Null disables sampling.
  SeriesRecorder* series = nullptr;
};

// K screening scenarios evaluated against ONE fleet in ONE pass (docs/performance.md).
// The paper-style sweeps (seed, cadence, stage-temperature scans) re-screen the same
// fleet K times; batching them shares everything scenario-invariant per shard -- the
// generated columns (streaming mode), the clean-path arch histogram, and the per-defect
// MatchingTestcases suite scan -- so one pass costs ~one scan plus K cheap probe
// replays. Scenario k draws from Rng(scenarios[k].seed).Fork(shard), exactly the
// streams its independent run would use, so every batched ScreeningStats is
// byte-identical to pipeline.Run(fleet, scenarios[k]) (tests/screening_model_test.cc).
struct ScenarioBatch {
  // Scenario configs; seeds, stage parameters, cadence, horizon, and metric/trace sinks
  // may all differ per scenario. Per-scenario `threads` fields are ignored -- the batch
  // runs on one shared pool -- and per-scenario metrics/trace sinks receive exactly the
  // deltas their independent runs would (merged in shard order).
  std::vector<ScreeningConfig> scenarios;
  // Worker threads for the shared pass: 0 = hardware concurrency, 1 = serial;
  // SDC_THREADS overrides. Stats are bit-identical at any thread count.
  int threads = 0;
};

// Group a processor's regular tests belong to, and the absolute month of its round in a
// given cycle. Deterministic in the serial number.
int RegularGroupOf(uint64_t serial, const ScreeningConfig& config);
double RegularRoundMonth(uint64_t serial, int cycle, const ScreeningConfig& config);

struct ProcessorOutcome {
  uint64_t serial = 0;
  int arch_index = 0;
  bool detected = false;
  TestStage stage = TestStage::kFactory;
  double month = 0.0;  // detection time (0 for pre-production stages)
};

// Compact provenance record attached to every screening detection: enough context to
// answer "which defect, drawn from which RNG stream, was caught where and why" without
// re-running the fleet (docs/observability.md). Built inside the screening kernel, so it
// exists for both the memoized and reference models and for both execution modes;
// ScreeningStats keeps it parallel to `detections` (same length, same order).
struct DetectionProvenance {
  uint64_t serial = 0;
  std::string defect_id;       // id of the processor's first defect
  uint32_t defect_count = 0;   // how many defects the processor carried
  int arch_index = 0;
  TestStage stage = TestStage::kFactory;
  uint64_t sub_shard = 0;      // global screening shard: serial / kScreeningShardGrain
  uint64_t rng_stream = 0;     // Rng::Fork index the detection randomness came from
  double onset_months = 0.0;   // earliest defect onset (0 = from manufacturing)
  double min_trigger_celsius = 0.0;        // lowest trigger temperature across defects
  double stage_temperature_celsius = 0.0;  // test temperature of the detecting stage
  double month = 0.0;          // detection month (0 for pre-production stages)
};

struct ScreeningStats {
  uint64_t tested = 0;
  uint64_t faulty = 0;
  std::array<uint64_t, kStageCount> detected_by_stage{};
  std::array<uint64_t, kArchCount> tested_by_arch{};
  std::array<uint64_t, kArchCount> detected_by_arch{};
  std::vector<ProcessorOutcome> detections;  // one entry per detected faulty part
  // Parallel to `detections`: provenance[i] describes detections[i]. The invariant
  // provenance.size() == detections.size() is pinned by tests/trace_test.cc and surfaced
  // as the "screening.provenance.records" counter.
  std::vector<DetectionProvenance> provenance;

  uint64_t total_detected() const;
  double StageRate(TestStage stage) const;   // detections at stage / tested
  double TotalRate() const;                  // all detections / tested
  double ArchRate(int arch_index) const;     // detections / tested within one arch
  double PreProductionRate() const;          // factory + datacenter + re-install

  // Adds `other`'s counters and move-appends its detections (reserving first, so the
  // shard-order reduce never reallocates per element). Shard results merged in shard
  // order reproduce the serial stats exactly, detections in serial order included.
  void MergeFrom(ScreeningStats&& other);
};

// Column-backed view of one screening shard [begin, end). The spans either cover the
// whole materialized fleet (column_base = 0) or one stream shard's scratch buffer
// (column_base = the stream shard's begin); faulty_serials always holds global serials,
// and faulty_ranges offsets address `defects`. This is the one shard shape the screening
// kernel runs on, which is how the materialized and streaming modes share every
// instruction of the hot loop.
struct ScreeningShardView {
  uint64_t begin = 0;
  uint64_t end = 0;
  uint64_t column_base = 0;  // serial that arch_bytes[0] / flag_bytes[0] describe
  std::span<const uint8_t> arch_bytes;
  std::span<const uint8_t> flag_bytes;
  std::span<const uint64_t> faulty_serials;
  std::span<const DefectRange> faulty_ranges;
  std::span<const Defect> defects;

  int arch_index(uint64_t serial) const { return arch_bytes[serial - column_base]; }
  bool toolchain_detectable(uint64_t serial) const {
    return (flag_bytes[serial - column_base] & FleetPopulation::kDetectableFlag) != 0;
  }
  std::span<const Defect> FaultyDefects(size_t ordinal) const {
    const DefectRange& range = faulty_ranges[ordinal];
    return {defects.data() + range.offset, range.count};
  }
  std::span<const Defect> DefectsOf(uint64_t serial) const;
  FleetProcessorView processor(uint64_t serial) const;
};

class ScreeningPipeline {
 public:
  // `suite` provides testcase metadata for matching-minutes computation; it must outlive
  // the pipeline.
  explicit ScreeningPipeline(const TestSuite* suite);

  // Screens the whole fleet. Sharded across config.threads workers; per-shard stats are
  // merged in shard order and each shard draws from its own forked RNG stream, so the
  // result is bit-identical at any thread count. The context-free form constructs a fresh
  // EngineContext per call (SDC_THREADS / SDC_SIMD consulted exactly there); the explicit
  // form runs on the caller's context -- its pool supplies the lanes, its attached sinks
  // back any config sink left null (pinned once at pass start), and config.simd == kAuto
  // resolves to the context's level with no environment read (src/common/context.h).
  ScreeningStats Run(const FleetPopulation& fleet, const ScreeningConfig& config) const;
  ScreeningStats Run(const FleetPopulation& fleet, const ScreeningConfig& config,
                     EngineContext& context) const;

  // Screens the whole fleet under every scenario of `batch` in one pass over the packed
  // columns. Result k is byte-identical to Run(fleet, batch.scenarios[k]) -- counters,
  // detections, detection months bitwise, metrics deltas -- at any thread count; the
  // clean-path scan and the per-defect suite matching are paid once per shard instead of
  // once per scenario. Returns one ScreeningStats per scenario, in batch order. Context
  // forms mirror Run: per-scenario sinks fall back to the context's attachments, pinned
  // once at pass start.
  std::vector<ScreeningStats> RunBatch(const FleetPopulation& fleet,
                                       const ScenarioBatch& batch) const;
  std::vector<ScreeningStats> RunBatch(const FleetPopulation& fleet,
                                       const ScenarioBatch& batch,
                                       EngineContext& context) const;

  // Expected error count for `defect` under one full-suite pass at the stage's settings on
  // a processor with `pcores` physical cores. Exposed for tests and calibration.
  double ExpectedErrors(const Defect& defect, const StageParams& stage, int pcores) const;

  // Number of suite testcases whose op kinds and datatypes can expose `defect`.
  int MatchingTestcases(const Defect& defect) const;

 private:
  friend class StreamingScreen;

  // Shared bodies of the Run / RunBatch overloads. `metrics` / `trace` (one per scenario
  // for the batch form) are the pinned sinks for the whole pass and `simd` the resolved
  // level; the pool is context.pool(). Neither body reads the environment.
  ScreeningStats RunWith(const FleetPopulation& fleet, const ScreeningConfig& config,
                         EngineContext& context, MetricsRegistry* metrics,
                         TraceRecorder* trace, SeriesRecorder* series,
                         SimdLevel simd) const;
  std::vector<ScreeningStats> RunBatchWith(const FleetPopulation& fleet,
                                           const ScenarioBatch& batch,
                                           EngineContext& context,
                                           std::span<MetricsRegistry* const> metrics,
                                           std::span<TraceRecorder* const> traces,
                                           SeriesRecorder* series, SimdLevel simd) const;

  // The screening kernel: screens serials [view.begin, view.end) against `rng`,
  // accumulating into `stats` (counters add, so one stats object may accumulate several
  // consecutive shards). Runs the memoized clean-part fast path, or the reference model
  // when config.use_reference_model is set. Both Run and StreamingScreen call exactly
  // this, one screening shard (kScreeningShardGrain) per forked RNG stream; `sub_shard`
  // is that global shard index -- stamped into every new provenance record and, when
  // `trace` is non-null, emitted as the shard's "screen.subshard" span plus one
  // "detection" instant per new detection.
  void ScreenShardRange(const ScreeningShardView& view, const ScreeningConfig& config,
                        const std::array<ProcessorSpec, kArchCount>& arch_specs,
                        uint64_t sub_shard, SimdLevel simd, Rng& rng,
                        ScreeningStats& stats, TraceDelta* trace) const;

  // Batched screening kernel: one pass over [view.begin, view.end) that accumulates into
  // stats[k] for every scenario k, drawing scenario k's randomness only from rngs[k] in
  // serial order -- the reason each slot is byte-identical to a ScreenShardRange call for
  // that scenario alone. Cached-model scenarios share the SIMD arch histogram and the
  // per-defect MatchingTestcases memo; reference-model scenarios fall back to the
  // per-scenario kernel (still amortizing shard generation in streaming mode).
  // traces[k] may be null per scenario. All spans must have scenarios.size() entries.
  void ScreenShardRangeBatch(const ScreeningShardView& view,
                             std::span<const ScreeningConfig> scenarios,
                             const std::array<ProcessorSpec, kArchCount>& arch_specs,
                             uint64_t sub_shard, SimdLevel simd, std::span<Rng> rngs,
                             std::span<ScreeningStats> stats,
                             std::span<TraceDelta* const> traces) const;

  // Memoized fast path: screens one faulty, toolchain-detectable processor. Evaluates the
  // detection model once per (defect, stage), then replays the probe schedule against the
  // cached survive terms, drawing all randomness from `rng` in the same order as the
  // reference implementation.
  void ScreenFaultyProcessor(uint64_t serial, int arch_index,
                             std::span<const Defect> defects,
                             const ScreeningConfig& config, int physical_cores, Rng& rng,
                             ScreeningStats& stats) const;

  // ScreenFaultyProcessor with the per-defect MatchingTestcases counts precomputed
  // (matching[d] = MatchingTestcases(defects[d])). The suite scan is the dominant cost of
  // a faulty part and is scenario-invariant, so the batched kernel computes it once per
  // part and replays K scenarios against it -- the counts are the same integers either
  // way, so this refactor cannot perturb a bit of output.
  void ScreenFaultyProcessorWithMatching(uint64_t serial, int arch_index,
                                         std::span<const Defect> defects,
                                         std::span<const int> matching,
                                         const ScreeningConfig& config, int physical_cores,
                                         Rng& rng, ScreeningStats& stats) const;

  // Pre-memoization implementation, kept verbatim as the equivalence-test oracle. Screens
  // one processor (clean parts included), recomputing MatchingTestcases / ExpectedErrors
  // at every probe. Reached only via ScreeningConfig::use_reference_model.
  void ScreenProcessorReference(const FleetProcessorView& processor,
                                const ScreeningConfig& config, Rng& rng,
                                ScreeningStats& stats) const;

  const TestSuite* suite_;
};

// Observer of per-shard screening outcomes during a fused streaming pass. ObserveShard
// runs while the shard's defect spans are still alive, so downstream aggregations
// (capacity replay, wear-out exposure, testcase effectiveness over outcomes) can consume
// detection records together with the defect data that produced them -- the streaming
// replacement for random-accessing a materialized fleet after Run. Concurrency contract
// matches ShardConsumer: ObserveShard is called concurrently on distinct shards, so
// observers keep per-shard partials and fold them in shard order in EndStream.
class ShardOutcomeObserver {
 public:
  virtual ~ShardOutcomeObserver();

  virtual void BeginStream(const PopulationConfig& population,
                           const ScreeningConfig& screening, uint64_t shard_count);
  // `shard_stats` holds exactly the shard's outcomes: detections ascending by serial,
  // all within [shard.begin, shard.end).
  virtual void ObserveShard(const FleetShard& shard, const ScreeningStats& shard_stats) = 0;
  virtual void EndStream();
};

// Fused streaming screener: a ShardConsumer that screens every generated shard in place,
// so generate -> screen -> aggregate happens in one pass without materializing the fleet.
// Each stream shard is screened as its embedded kScreeningShardGrain sub-shards with the
// same globally-indexed Rng::Fork streams the materialized Run uses, and per-shard stats
// and metric deltas are merged in shard order in EndStream -- TakeStats() is therefore
// byte-identical to Run() on the materialized fleet at any thread count
// (tests/stream_test.cc).
//
// Batched form: constructed from a ScenarioBatch, the consumer screens every generated
// shard once per batched kernel call, producing one ScreeningStats per scenario from the
// single generation pass -- the scenario-sweep configuration the engine is built for
// (K scenarios cost one generate plus K cheap probe replays instead of K full passes).
// TakeBatchStats()[k] is byte-identical to an independent streaming (or materialized)
// run of scenarios[k].
class StreamingScreen : public ShardConsumer {
 public:
  // `pipeline` must outlive the stream pass. The single-config form is a batch of one.
  StreamingScreen(const ScreeningPipeline* pipeline, const ScreeningConfig& config);
  StreamingScreen(const ScreeningPipeline* pipeline, ScenarioBatch batch);

  // Registers an outcome observer for one scenario of the batch (0, the only valid index
  // for the single-config form, by default); call before the pass starts. Observers are
  // invoked in registration order after each shard is screened, receiving that
  // scenario's shard stats.
  void AddObserver(ShardOutcomeObserver* observer, size_t scenario = 0);

  // Context-threaded begin: pins per-scenario sinks (explicit scenario sink wins, the
  // context's attachment backs it up) and, when the scenario requested kAuto, takes the
  // context's resolved vector level -- no environment read. A detach on the context
  // between shards cannot drop or double-merge a delta: the pass completes against what
  // was pinned here. The context-free BeginStream keeps the legacy resolution
  // (construction-time ResolveSimdLevel, scenario sinks only).
  void BeginStreamWithContext(EngineContext* context, const PopulationConfig& config,
                              uint64_t shard_count) override;
  void BeginStream(const PopulationConfig& config, uint64_t shard_count) override;
  void ConsumeShard(const FleetShard& shard) override;
  void EndStream() override;

  size_t scenario_count() const { return scenarios_.size(); }

  // Moves out scenario 0's merged fleet-wide stats; valid once after EndStream.
  ScreeningStats TakeStats() { return std::move(stats_.front()); }
  // Moves out the merged stats of every scenario, in batch order; valid once after
  // EndStream.
  std::vector<ScreeningStats> TakeBatchStats() { return std::move(stats_); }

 private:
  struct ObserverEntry {
    ShardOutcomeObserver* observer = nullptr;
    size_t scenario = 0;
  };

  const ScreeningPipeline* pipeline_;
  std::vector<ScreeningConfig> scenarios_;
  std::vector<Rng> bases_;  // one base RNG per scenario, forked per screening shard
  // Legacy resolution happens at construction (simd_); a context-threaded BeginStream
  // re-resolves the recorded request against the context instead.
  SimdLevel simd_request_ = SimdLevel::kAuto;
  SimdLevel simd_ = SimdLevel::kScalar;
  std::array<ProcessorSpec, kArchCount> arch_specs_;
  std::vector<ObserverEntry> observers_;
  // Sinks pinned at pass start (scenario sink, else context attachment), used by
  // ConsumeShard / EndStream instead of re-reading scenarios_[k].
  std::vector<MetricsRegistry*> pinned_metrics_;
  std::vector<TraceRecorder*> pinned_trace_;
  // Series sink for scenario 0 (the batch contract ScreeningConfig::series documents),
  // pinned like the other sinks; EndStream appends one cumulative point per stream shard
  // during its ordered fold, at exactly the fleet-grain boundaries RunWith samples.
  SeriesRecorder* pinned_series_ = nullptr;
  uint64_t processors_total_ = 0;  // for the final (partial-shard) sample boundary
  // Per-stream-shard, per-scenario partials, merged in shard order by EndStream.
  std::vector<std::vector<ScreeningStats>> shard_stats_;
  std::vector<std::vector<MetricsDelta>> shard_deltas_;
  std::vector<std::vector<TraceDelta>> shard_traces_;
  std::vector<ScreeningStats> stats_;  // one per scenario after EndStream
};

}  // namespace sdc

#endif  // SDC_SRC_FLEET_PIPELINE_H_
