#include "src/fleet/stats.h"

#include <cmath>

namespace sdc {
namespace {

bool TestcaseMatchesDefect(const TestcaseInfo& info, const Defect& defect) {
  bool op_match = false;
  for (OpKind op : info.ops) {
    if (defect.AffectsOp(op)) {
      op_match = true;
      break;
    }
  }
  if (!op_match) {
    return false;
  }
  if (defect.type() == SdcType::kComputation) {
    for (DataType type : info.types) {
      if (defect.AffectsType(type)) {
        return true;
      }
    }
    return false;
  }
  return true;
}

}  // namespace

TestcaseEffectiveness ComputeTestcaseEffectiveness(const TestSuite& suite,
                                                   const FleetPopulation& fleet,
                                                   const StageParams& stage) {
  TestcaseEffectiveness effectiveness;
  effectiveness.total_testcases = suite.size();
  // The faulty slice is tiny; extract it once instead of rescanning the million-part fleet
  // per testcase.
  std::vector<const FleetProcessor*> faulty;
  for (const FleetProcessor& processor : fleet.processors()) {
    if (processor.faulty && processor.toolchain_detectable) {
      faulty.push_back(&processor);
    }
  }
  for (size_t i = 0; i < suite.size(); ++i) {
    const TestcaseInfo& info = suite.info(i);
    bool effective = false;
    for (const FleetProcessor* faulty_processor : faulty) {
      const FleetProcessor& processor = *faulty_processor;
      const int pcores = MakeArchSpec(processor.arch_index).physical_cores;
      for (const Defect& defect : processor.defects) {
        if (!TestcaseMatchesDefect(info, defect)) {
          continue;
        }
        double expected = 0.0;
        const double minutes_per_core =
            stage.per_case_seconds / static_cast<double>(pcores) / 60.0;
        for (int pcore = 0; pcore < pcores; ++pcore) {
          expected += defect.OccurrenceFrequencyPerMinute(stage.temperature_celsius,
                                                          defect.intensity_ref, pcore) *
                      minutes_per_core;
        }
        if (1.0 - std::exp(-expected) >= 0.5) {
          effective = true;
          break;
        }
      }
      if (effective) {
        break;
      }
    }
    if (effective) {
      ++effectiveness.effective_testcases;
      effectiveness.effective_ids.push_back(info.id);
    }
  }
  return effectiveness;
}

}  // namespace sdc
