#include "src/fleet/stats.h"

#include <array>
#include <cmath>

namespace sdc {
namespace {

bool TestcaseMatchesDefect(const TestcaseInfo& info, const Defect& defect) {
  bool op_match = false;
  for (OpKind op : info.ops) {
    if (defect.AffectsOp(op)) {
      op_match = true;
      break;
    }
  }
  if (!op_match) {
    return false;
  }
  if (defect.type() == SdcType::kComputation) {
    for (DataType type : info.types) {
      if (defect.AffectsType(type)) {
        return true;
      }
    }
    return false;
  }
  return true;
}

}  // namespace

TestcaseEffectiveness ComputeTestcaseEffectiveness(const TestSuite& suite,
                                                   const FleetPopulation& fleet,
                                                   const StageParams& stage) {
  TestcaseEffectiveness effectiveness;
  effectiveness.total_testcases = suite.size();
  // The faulty slice is tiny and the fleet already indexes it: walk faulty_serials()
  // directly instead of rescanning the million-part fleet per testcase.
  const std::vector<uint64_t>& faulty_serials = fleet.faulty_serials();
  std::array<int, kArchCount> pcores_by_arch;
  for (int arch = 0; arch < kArchCount; ++arch) {
    pcores_by_arch[static_cast<size_t>(arch)] = MakeArchSpec(arch).physical_cores;
  }
  for (size_t i = 0; i < suite.size(); ++i) {
    const TestcaseInfo& info = suite.info(i);
    bool effective = false;
    for (size_t ordinal = 0; ordinal < faulty_serials.size(); ++ordinal) {
      const uint64_t serial = faulty_serials[ordinal];
      if (!fleet.toolchain_detectable(serial)) {
        continue;
      }
      const int pcores =
          pcores_by_arch[static_cast<size_t>(fleet.arch_index(serial))];
      for (const Defect& defect : fleet.FaultyDefects(ordinal)) {
        if (!TestcaseMatchesDefect(info, defect)) {
          continue;
        }
        double expected = 0.0;
        const double minutes_per_core =
            stage.per_case_seconds / static_cast<double>(pcores) / 60.0;
        for (int pcore = 0; pcore < pcores; ++pcore) {
          expected += defect.OccurrenceFrequencyPerMinute(stage.temperature_celsius,
                                                          defect.intensity_ref, pcore) *
                      minutes_per_core;
        }
        if (1.0 - std::exp(-expected) >= 0.5) {
          effective = true;
          break;
        }
      }
      if (effective) {
        break;
      }
    }
    if (effective) {
      ++effectiveness.effective_testcases;
      effectiveness.effective_ids.push_back(info.id);
    }
  }
  return effectiveness;
}

}  // namespace sdc
