#include "src/fleet/stats.h"

#include <array>
#include <cmath>

namespace sdc {
namespace {

bool TestcaseMatchesDefect(const TestcaseInfo& info, const Defect& defect) {
  bool op_match = false;
  for (OpKind op : info.ops) {
    if (defect.AffectsOp(op)) {
      op_match = true;
      break;
    }
  }
  if (!op_match) {
    return false;
  }
  if (defect.type() == SdcType::kComputation) {
    for (DataType type : info.types) {
      if (defect.AffectsType(type)) {
        return true;
      }
    }
    return false;
  }
  return true;
}

// Whether one run of `info` at the stage settings reaches the half-expected-error
// detection threshold against `defect`. Shared by the materialized scan and the
// streaming accumulator so both evaluate the identical floating-point expression.
bool TestcaseDetectsDefect(const TestcaseInfo& info, const Defect& defect,
                           const StageParams& stage, int pcores) {
  if (!TestcaseMatchesDefect(info, defect)) {
    return false;
  }
  double expected = 0.0;
  const double minutes_per_core =
      stage.per_case_seconds / static_cast<double>(pcores) / 60.0;
  for (int pcore = 0; pcore < pcores; ++pcore) {
    expected += defect.OccurrenceFrequencyPerMinute(stage.temperature_celsius,
                                                    defect.intensity_ref, pcore) *
                minutes_per_core;
  }
  return 1.0 - std::exp(-expected) >= 0.5;
}

}  // namespace

TestcaseEffectiveness ComputeTestcaseEffectiveness(const TestSuite& suite,
                                                   const FleetPopulation& fleet,
                                                   const StageParams& stage) {
  TestcaseEffectiveness effectiveness;
  effectiveness.total_testcases = suite.size();
  // The faulty slice is tiny and the fleet already indexes it: walk faulty_serials()
  // directly instead of rescanning the million-part fleet per testcase.
  const std::vector<uint64_t>& faulty_serials = fleet.faulty_serials();
  std::array<int, kArchCount> pcores_by_arch;
  for (int arch = 0; arch < kArchCount; ++arch) {
    pcores_by_arch[static_cast<size_t>(arch)] = MakeArchSpec(arch).physical_cores;
  }
  for (size_t i = 0; i < suite.size(); ++i) {
    const TestcaseInfo& info = suite.info(i);
    bool effective = false;
    for (size_t ordinal = 0; ordinal < faulty_serials.size(); ++ordinal) {
      const uint64_t serial = faulty_serials[ordinal];
      if (!fleet.toolchain_detectable(serial)) {
        continue;
      }
      const int pcores =
          pcores_by_arch[static_cast<size_t>(fleet.arch_index(serial))];
      for (const Defect& defect : fleet.FaultyDefects(ordinal)) {
        if (TestcaseDetectsDefect(info, defect, stage, pcores)) {
          effective = true;
          break;
        }
      }
      if (effective) {
        break;
      }
    }
    if (effective) {
      ++effectiveness.effective_testcases;
      effectiveness.effective_ids.push_back(info.id);
    }
  }
  return effectiveness;
}

EffectivenessAccumulator::EffectivenessAccumulator(const TestSuite* suite,
                                                   const StageParams& stage)
    : suite_(suite), stage_(stage) {}

void EffectivenessAccumulator::BeginStream(const PopulationConfig& /*config*/,
                                           uint64_t shard_count) {
  shard_effective_.assign(shard_count, {});
  result_ = TestcaseEffectiveness{};
}

void EffectivenessAccumulator::ConsumeShard(const FleetShard& shard) {
  std::array<int, kArchCount> pcores_by_arch;
  for (int arch = 0; arch < kArchCount; ++arch) {
    pcores_by_arch[static_cast<size_t>(arch)] = MakeArchSpec(arch).physical_cores;
  }
  std::vector<uint8_t>* effective = nullptr;  // allocated on the first detectable part
  for (size_t ordinal = 0; ordinal < shard.faulty_serials.size(); ++ordinal) {
    const uint64_t serial = shard.faulty_serials[ordinal];
    if (!shard.toolchain_detectable(serial)) {
      continue;
    }
    if (effective == nullptr) {
      effective = &shard_effective_[shard.shard];
      effective->assign(suite_->size(), 0);
    }
    const int pcores =
        pcores_by_arch[static_cast<size_t>(shard.arch_index(serial))];
    const std::span<const Defect> defects = shard.FaultyDefects(ordinal);
    for (size_t i = 0; i < suite_->size(); ++i) {
      if ((*effective)[i] != 0) {
        continue;  // this shard already proved the testcase effective
      }
      const TestcaseInfo& info = suite_->info(i);
      for (const Defect& defect : defects) {
        if (TestcaseDetectsDefect(info, defect, stage_, pcores)) {
          (*effective)[i] = 1;
          break;
        }
      }
    }
  }
}

void EffectivenessAccumulator::EndStream() {
  result_.total_testcases = suite_->size();
  std::vector<uint8_t> merged(suite_->size(), 0);
  for (const std::vector<uint8_t>& shard_mask : shard_effective_) {
    for (size_t i = 0; i < shard_mask.size(); ++i) {
      merged[i] |= shard_mask[i];
    }
  }
  for (size_t i = 0; i < merged.size(); ++i) {
    if (merged[i] != 0) {
      ++result_.effective_testcases;
      result_.effective_ids.push_back(suite_->info(i).id);
    }
  }
  shard_effective_.clear();
  shard_effective_.shrink_to_fit();
}

}  // namespace sdc
