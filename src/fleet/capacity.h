// Fleet capacity retention under the two decommission policies (Observation 4 /
// Section 7.1, and the fail-in-place direction the paper cites via Hyrax [56]).
//
// When a regular test flags a faulty processor in production, the baseline deprecates the
// entire part; Farron's fine-grained decommission masks only the defective cores and keeps
// the rest serving (unless more than two cores are defective, in which case the part is
// deprecated too). Over a fleet and a multi-year horizon the difference is real capacity.
// Pre-production detections are excluded: those parts are returned to the vendor before
// they carry load.

#ifndef SDC_SRC_FLEET_CAPACITY_H_
#define SDC_SRC_FLEET_CAPACITY_H_

#include <cstdint>
#include <vector>

#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"

namespace sdc {

struct CapacityPoint {
  double month = 0.0;
  uint64_t baseline_cores_lost = 0;      // cumulative
  uint64_t fine_grained_cores_lost = 0;  // cumulative
};

struct CapacityReport {
  uint64_t fleet_cores = 0;              // total physical cores deployed
  uint64_t production_detections = 0;    // faulty parts flagged during production
  uint64_t baseline_cores_lost = 0;
  uint64_t fine_grained_cores_lost = 0;
  uint64_t parts_deprecated_fine = 0;    // parts the >2-defective-cores rule still removed
  std::vector<CapacityPoint> timeline;   // one cumulative point per regular period

  // Cores the fine-grained policy keeps serving that the baseline throws away.
  uint64_t cores_saved() const { return baseline_cores_lost - fine_grained_cores_lost; }
  double RetentionFactor() const {
    return fine_grained_cores_lost == 0
               ? 0.0
               : static_cast<double>(baseline_cores_lost) /
                     static_cast<double>(fine_grained_cores_lost);
  }
};

// Replays the screening outcome's production detections against both policies.
CapacityReport SimulateCapacityRetention(const FleetPopulation& fleet,
                                         const ScreeningStats& stats,
                                         const ScreeningConfig& config);

// Number of defective physical cores of a fleet part (union over its defects; a defect with
// no core list affects every core).
int DefectiveCoreCount(const FleetProcessorView& processor);

// Streaming counterpart of SimulateCapacityRetention: attach to a StreamingScreen and the
// capacity replay fuses into the generate+screen pass, consuming each shard's detections
// while the defect spans are alive. Every quantity is an integer counter accumulated per
// shard and merged in shard order, so TakeReport() equals the materialized report exactly
// at any thread count (tests/stream_test.cc).
class CapacityAccumulator : public ShardOutcomeObserver {
 public:
  void BeginStream(const PopulationConfig& population, const ScreeningConfig& screening,
                   uint64_t shard_count) override;
  void ObserveShard(const FleetShard& shard, const ScreeningStats& shard_stats) override;
  void EndStream() override;

  // The merged report; valid once after EndStream.
  CapacityReport TakeReport() { return std::move(report_); }

 private:
  ScreeningConfig config_;
  std::vector<CapacityReport> partials_;
  CapacityReport report_;
};

}  // namespace sdc

#endif  // SDC_SRC_FLEET_CAPACITY_H_
