#include "src/fault/injector.h"

#include <algorithm>

namespace sdc {

DefectInjector::DefectInjector(std::vector<Defect> defects, uint64_t seed)
    : defects_(std::move(defects)), activations_(defects_.size(), 0), rng_(seed) {
  op_masks_.reserve(defects_.size());
  type_masks_.reserve(defects_.size());
  for (const Defect& defect : defects_) {
    uint64_t op_mask = 0;
    for (OpKind op : defect.affected_ops) {
      op_mask |= uint64_t{1} << static_cast<int>(op);
    }
    uint32_t type_mask = 0;
    if (defect.affected_types.empty()) {
      type_mask = ~uint32_t{0};
    } else {
      for (DataType type : defect.affected_types) {
        type_mask |= uint32_t{1} << static_cast<int>(type);
      }
    }
    op_masks_.push_back(op_mask);
    type_masks_.push_back(type_mask);
    if (defect.type() == SdcType::kComputation) {
      computation_op_union_ |= op_mask;
    } else {
      consistency_op_union_ |= op_mask;
    }
  }
}

int DefectInjector::FindActivation(const OpContext& context, SdcType want_type) {
  const uint64_t op_bit = uint64_t{1} << static_cast<int>(context.op);
  const uint32_t type_bit = uint32_t{1} << static_cast<int>(context.type);
  for (size_t i = 0; i < defects_.size(); ++i) {
    if ((op_masks_[i] & op_bit) == 0 || (type_masks_[i] & type_bit) == 0) {
      continue;
    }
    const Defect& defect = defects_[i];
    if (defect.type() != want_type || defect.onset_months > age_months_) {
      continue;
    }
    const double rate =
        defect.RatePerOp(context.temperature, context.op_intensity, context.pcore);
    if (rate <= 0.0) {
      continue;
    }
    // `weight` simulated executions are represented by this one call; the chance that at
    // least one of them corrupts is 1 - (1-rate)^weight ~= rate * weight for small rates.
    const double probability = std::min(1.0, rate * context.weight);
    if (rng_.NextBernoulli(probability)) {
      ++activations_[i];
      ++total_activations_;
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::optional<Word128> DefectInjector::OnExecute(const OpContext& context,
                                                 const Word128& golden) {
  if ((computation_op_union_ & (uint64_t{1} << static_cast<int>(context.op))) == 0) {
    return std::nullopt;  // no defect touches this op kind: the overwhelming fast path
  }
  const int index = FindActivation(context, SdcType::kComputation);
  if (index < 0) {
    return std::nullopt;
  }
  return defects_[index].Corrupt(golden, context.type, rng_);
}

bool DefectInjector::OnCoherenceFault(const OpContext& context) {
  if ((consistency_op_union_ & (uint64_t{1} << static_cast<int>(context.op))) == 0) {
    return false;
  }
  return FindActivation(context, SdcType::kConsistency) >= 0;
}

bool DefectInjector::OnTxFault(const OpContext& context) {
  if ((consistency_op_union_ & (uint64_t{1} << static_cast<int>(context.op))) == 0) {
    return false;
  }
  return FindActivation(context, SdcType::kConsistency) >= 0;
}

void DefectInjector::ResetCounters() {
  std::fill(activations_.begin(), activations_.end(), 0);
  total_activations_ = 0;
}

}  // namespace sdc
