#include "src/fault/machine.h"

namespace sdc {

FaultyMachine::FaultyMachine(const FaultyProcessorInfo& info, uint64_t seed)
    : info_(info),
      seed_(seed),
      cpu_(info.spec),
      bus_(cpu_, kSharedCells),
      txmem_(cpu_, kSharedCells),
      injector_(std::make_unique<DefectInjector>(info.defects, seed)) {
  injector_->set_age_months(info.age_years * 12.0);
  cpu_.SetCorruptionHook(injector_.get());
}

FaultyMachine::FaultyMachine(const ProcessorSpec& spec)
    : info_{.cpu_id = "healthy", .arch = spec.arch, .age_years = 0.0, .spec = spec,
            .defects = {}},
      cpu_(spec),
      bus_(cpu_, kSharedCells),
      txmem_(cpu_, kSharedCells) {}

FaultyMachine FaultyMachine::CloneFresh() const {
  if (injector_ != nullptr) {
    return FaultyMachine(info_, seed_);
  }
  return FaultyMachine(info_.spec);
}

void FaultyMachine::SetAllCoreUtilization(double utilization) {
  for (int pcore = 0; pcore < cpu_.spec().physical_cores; ++pcore) {
    cpu_.SetCoreUtilization(pcore, utilization);
  }
}

}  // namespace sdc
