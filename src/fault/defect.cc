#include "src/fault/defect.h"

#include <algorithm>
#include <cmath>
#include <span>

namespace sdc {
namespace {

// Bounds on the usage-stress multiplier so a pathological intensity estimate cannot dominate
// the exponential temperature term.
constexpr double kMinStressFactor = 0.02;
constexpr double kMaxStressFactor = 50.0;

// Ceiling on occurrence frequency (errors/minute at the defect's reference intensity): the
// paper's most reproducible settings reach "hundreds of times per minute"; the exponential
// temperature law must not extrapolate to corrupting every executed instruction.
constexpr double kMaxFrequencyPerMinute = 2000.0;

}  // namespace

std::string SdcTypeName(SdcType type) {
  return type == SdcType::kComputation ? "computation" : "consistency";
}

bool Defect::AffectsOp(OpKind op) const {
  return std::find(affected_ops.begin(), affected_ops.end(), op) != affected_ops.end();
}

bool Defect::AffectsType(DataType type) const {
  if (affected_types.empty()) {
    return true;
  }
  return std::find(affected_types.begin(), affected_types.end(), type) != affected_types.end();
}

double Defect::PcoreScale(int pcore) const {
  if (affected_pcores.empty()) {
    // Every core affected; scale comes from pcore_rate_scale when provided.
    if (pcore >= 0 && static_cast<size_t>(pcore) < pcore_rate_scale.size()) {
      return pcore_rate_scale[pcore];
    }
    return 1.0;
  }
  for (size_t i = 0; i < affected_pcores.size(); ++i) {
    if (affected_pcores[i] == pcore) {
      return i < pcore_rate_scale.size() ? pcore_rate_scale[i] : 1.0;
    }
  }
  return 0.0;
}

double Defect::RatePerOp(double temperature, double op_intensity, int pcore) const {
  const double scale = PcoreScale(pcore);
  if (scale <= 0.0 || temperature < min_trigger_celsius) {
    return 0.0;
  }
  const double log10_rate =
      base_log10_rate + temp_slope * (temperature - min_trigger_celsius);
  double stress = 1.0;
  if (op_intensity > 0.0 && intensity_ref > 0.0) {
    stress = std::pow(op_intensity / intensity_ref, intensity_exponent);
    stress = std::clamp(stress, kMinStressFactor, kMaxStressFactor);
  }
  const double rate_cap = kMaxFrequencyPerMinute / (60.0 * intensity_ref);
  return std::min({1.0, rate_cap, std::pow(10.0, log10_rate) * stress * scale});
}

double Defect::OccurrenceFrequencyPerMinute(double temperature, double ops_per_second,
                                            int pcore) const {
  return RatePerOp(temperature, ops_per_second, pcore) * ops_per_second * 60.0;
}

int SampleFlipPosition(DataType type, Rng& rng) {
  const int width = BitWidth(type);
  if (!IsNumeric(type)) {
    return static_cast<int>(rng.NextBelow(static_cast<uint64_t>(width)));
  }
  double mean = 0.0;
  double sigma = 0.0;
  // Per-type position distributions calibrated to Figure 4's loss CDFs: flips concentrate
  // mid-fraction (Observation 7), but the narrow f32 fraction leaves a fat high-loss tail
  // (only ~80% of f32 losses stay under 5%), f64 keeps 99.9% of losses under 0.02%, and the
  // f64x losses cluster in a narrow 1e-6 band.
  switch (type) {
    case DataType::kFloat32:
      mean = 12.0;
      sigma = 8.0;
      break;
    case DataType::kFloat64:
      mean = 21.0;
      sigma = 6.0;
      break;
    case DataType::kFloat80:
      mean = 43.0;
      sigma = 2.2;
      break;
    default:
      // Integers: mid-word concentration, decaying toward the most significant bits.
      mean = 0.50 * width;
      sigma = width / 3.2;
      break;
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    const int position = static_cast<int>(std::lround(rng.NextGaussian(mean, sigma)));
    if (position >= 0 && position < width) {
      return position;
    }
  }
  return static_cast<int>(rng.NextBelow(static_cast<uint64_t>(width)));
}

Word128 MakePatternMask(DataType type, int flip_count, Rng& rng) {
  Word128 mask;
  int placed = 0;
  while (placed < flip_count) {
    const int position = SampleFlipPosition(type, rng);
    if (!mask.GetBit(position)) {
      mask.SetBit(position, true);
      ++placed;
    }
  }
  return mask;
}

void Defect::SealPatternCdfs() {
  for (PatternSet& set : pattern_sets) {
    std::vector<double> weights;
    weights.reserve(set.patterns.size());
    for (const BitflipPattern& pattern : set.patterns) {
      weights.push_back(pattern.weight);
    }
    set.weight_cdf = WeightedCdf(std::span<const double>(weights));
  }
}

Word128 Defect::Corrupt(const Word128& golden, DataType type, Rng& rng) const {
  Word128 mask;
  const PatternSet* match = nullptr;
  for (const PatternSet& set : pattern_sets) {
    if (set.type == type && !set.patterns.empty()) {
      match = &set;
      break;
    }
  }
  const bool use_pattern = match != nullptr && rng.NextBernoulli(pattern_probability);
  if (use_pattern) {
    if (match->weight_cdf.size() == match->patterns.size()) {
      mask = match->patterns[match->weight_cdf.Sample(rng)].mask;
    } else {
      // Unsealed defect (hand-built in a test, or weights edited after sealing): take the
      // original per-draw re-sum, which matches the sealed pick draw for draw.
      std::vector<double> weights;
      weights.reserve(match->patterns.size());
      for (const BitflipPattern& pattern : match->patterns) {
        weights.push_back(pattern.weight);
      }
      mask = match->patterns[rng.NextWeighted(weights)].mask;
    }
  } else {
    mask.SetBit(SampleFlipPosition(type, rng), true);
    if (rng.NextBernoulli(multi_flip_probability)) {
      mask.SetBit(SampleFlipPosition(type, rng), true);
      while (rng.NextBernoulli(extra_flip_probability)) {
        mask.SetBit(SampleFlipPosition(type, rng), true);
      }
    }
  }
  // Keep the mask inside the datatype's width (catalog patterns may be wider than a narrow
  // operand routed through the same defect).
  const int width = BitWidth(type);
  Word128 width_mask;
  for (int bit = 0; bit < width; ++bit) {
    width_mask.SetBit(bit, true);
  }
  mask = mask & width_mask;

  Word128 corrupted = golden;
  switch (semantics) {
    case FlipSemantics::kXor:
      corrupted = golden ^ mask;
      break;
    case FlipSemantics::kStuckOne:
      corrupted = golden | mask;
      break;
    case FlipSemantics::kStuckZero: {
      Word128 inverted{~mask.lo, ~mask.hi};
      corrupted = golden & inverted;
      break;
    }
  }
  if (corrupted == golden) {
    // Stuck-at semantics can coincide with the data; an SDC must change the result.
    corrupted.FlipBit(SampleFlipPosition(type, rng));
  }
  return corrupted;
}

}  // namespace sdc
