#include "src/fault/catalog.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

namespace sdc {
namespace {

// Nominal rate (ops/second) at which a stress testcase executes the op kinds a defect
// affects; converts occurrence frequency per minute into per-op probability.
constexpr double kComputeOpsPerSecond = 1e8;
// Shared-memory handoffs and transaction commits are far less frequent than scalar ops.
constexpr double kConsistencyOpsPerSecond = 1e6;

// Figure 9 calibration: log10(frequency/min at the trigger temperature) falls linearly with
// the trigger temperature.
constexpr double kFig9InterceptAt40C = 1.5;
constexpr double kFig9SlopePerC = -0.13;

double BaseRateFor(double frequency_per_minute, double ops_per_second) {
  return std::log10(frequency_per_minute / (60.0 * ops_per_second));
}

std::vector<double> LogSpreadScales(Rng& rng, int count, double decades) {
  // Scale factors spanning `decades` orders of magnitude, shuffled so the fastest-failing
  // core is not always pcore 0 (Observation 4: same testcases, very different frequencies).
  std::vector<double> scales(count);
  for (int i = 0; i < count; ++i) {
    const double exponent =
        count > 1 ? -decades * static_cast<double>(i) / static_cast<double>(count - 1) : 0.0;
    scales[i] = std::pow(10.0, exponent);
  }
  for (int i = count - 1; i > 0; --i) {
    std::swap(scales[i], scales[rng.NextBelow(static_cast<uint64_t>(i + 1))]);
  }
  return scales;
}

std::vector<BitflipPattern> MakePatterns(Rng& rng, DataType type, int count) {
  std::vector<BitflipPattern> patterns;
  patterns.reserve(count);
  for (int i = 0; i < count; ++i) {
    // The dominant pattern is single-bit; secondary patterns are sometimes 2-bit and
    // occasionally 3-bit, producing Figure 7's flip-count mix.
    int flips = 1;
    if (i > 0) {
      const double draw = rng.NextDouble();
      if (draw > 0.92) {
        flips = 3;
      } else if (draw > 0.60) {
        flips = 2;
      }
    }
    const double weight = i == 0 ? 2.0 + rng.NextDouble() : 0.2 + 0.5 * rng.NextDouble();
    patterns.push_back({MakePatternMask(type, flips, rng), weight});
  }
  return patterns;
}

struct ComputationDefectParams {
  std::string id;
  std::vector<OpKind> ops;
  std::vector<DataType> types;
  std::vector<int> pcores;         // empty = all cores
  double trigger_celsius = 42.0;
  double frequency_at_trigger = 5.0;  // per minute under nominal test intensity
  double temp_slope = 0.15;
  double pattern_probability = 0.8;
  FlipSemantics semantics = FlipSemantics::kXor;
  double core_scale_decades = 0.0;  // >0: all-core defect with spread failure rates
  double onset_months = 0.0;
};

Defect MakeComputationDefect(Rng& rng, const ComputationDefectParams& params,
                             int pcore_count) {
  Defect defect;
  defect.id = params.id;
  defect.feature = FeatureOf(params.ops.front());
  defect.affected_ops = params.ops;
  defect.affected_types = params.types;
  defect.affected_pcores = params.pcores;
  defect.min_trigger_celsius = params.trigger_celsius;
  defect.base_log10_rate = BaseRateFor(params.frequency_at_trigger, kComputeOpsPerSecond);
  defect.temp_slope = params.temp_slope;
  defect.intensity_ref = kComputeOpsPerSecond;
  defect.intensity_exponent = 0.5;
  defect.pattern_probability = params.pattern_probability;
  defect.semantics = params.semantics;
  defect.onset_months = params.onset_months;
  // One pattern set per affected datatype: the same structural damage lands on different
  // bit positions in each representation.
  const int pattern_count = 2 + static_cast<int>(rng.NextBelow(2));
  for (DataType type : params.types) {
    defect.pattern_sets.push_back({type, MakePatterns(rng, type, pattern_count)});
  }
  if (params.core_scale_decades > 0.0 && params.pcores.empty()) {
    defect.pcore_rate_scale = LogSpreadScales(rng, pcore_count, params.core_scale_decades);
  }
  defect.SealPatternCdfs();
  return defect;
}

struct ConsistencyDefectParams {
  std::string id;
  Feature feature = Feature::kCache;  // kCache or kTxMem
  std::vector<int> pcores;
  double trigger_celsius = 42.0;
  double frequency_at_trigger = 2.0;
  double temp_slope = 0.15;
  double core_scale_decades = 0.0;
  double onset_months = 0.0;
};

Defect MakeConsistencyDefect(Rng& rng, const ConsistencyDefectParams& params,
                             int pcore_count) {
  Defect defect;
  defect.id = params.id;
  defect.feature = params.feature;
  defect.affected_ops = params.feature == Feature::kCache
                            ? std::vector<OpKind>{OpKind::kStore}
                            : std::vector<OpKind>{OpKind::kTxCommit};
  defect.affected_pcores = params.pcores;
  defect.min_trigger_celsius = params.trigger_celsius;
  defect.base_log10_rate =
      BaseRateFor(params.frequency_at_trigger, kConsistencyOpsPerSecond);
  defect.temp_slope = params.temp_slope;
  defect.intensity_ref = kConsistencyOpsPerSecond;
  defect.intensity_exponent = 0.5;
  defect.pattern_probability = 0.0;  // consistency SDCs have no deterministic data pattern
  defect.onset_months = params.onset_months;
  if (params.core_scale_decades > 0.0 && params.pcores.empty()) {
    defect.pcore_rate_scale = LogSpreadScales(rng, pcore_count, params.core_scale_decades);
  }
  return defect;
}

void AppendTable3Processors(Rng& rng, std::vector<FaultyProcessorInfo>& catalog) {
  // ---- MIX1: M2, 1.75y, all 16 pcores, computation across vector+FPU and ALU paths. ----
  {
    FaultyProcessorInfo info;
    info.cpu_id = "MIX1";
    info.arch = "M2";
    info.age_years = 1.75;
    info.spec = MakeArchSpec("M2");
    info.defects.push_back(MakeComputationDefect(
        rng,
        {.id = "mix1-vec-fpu",
         .ops = {OpKind::kVecFmaF32, OpKind::kVecFmaF64, OpKind::kFpFma},
         .types = {DataType::kFloat32, DataType::kFloat64, DataType::kBin32},
         .pcores = {},
         .trigger_celsius = 44.0,
         .frequency_at_trigger = 8.0,
         .temp_slope = 0.17,
         .pattern_probability = 0.50,
         .core_scale_decades = 3.0},
        info.spec.physical_cores));
    info.defects.push_back(MakeComputationDefect(
        rng,
        {.id = "mix1-alu",
         .ops = {OpKind::kIntMul, OpKind::kLogicXor, OpKind::kCrc32Step},
         .types = {DataType::kInt32, DataType::kUInt32, DataType::kByte,
                   DataType::kBin32},
         .pcores = {},
         .trigger_celsius = 43.0,
         .frequency_at_trigger = 4.0,
         .temp_slope = 0.15,
         .pattern_probability = 0.25,
         .semantics = FlipSemantics::kStuckOne,  // the 72% zero->one corner case, Section 4.2
         .core_scale_decades = 2.5},
        info.spec.physical_cores));
    // The Section 5 example: testcase C on MIX1 only fails above 59C (idle is ~45C).
    info.defects.push_back(MakeComputationDefect(
        rng,
        {.id = "mix1-tricky-veccrc",
         .ops = {OpKind::kVecCrc},
         .types = {DataType::kUInt32, DataType::kBin32},
         .pcores = {},
         .trigger_celsius = 59.0,
         .frequency_at_trigger = 3e-4,
         .temp_slope = 0.20,
         .pattern_probability = 0.6,
         .core_scale_decades = 1.0},
        info.spec.physical_cores));
    catalog.push_back(std::move(info));
  }
  // ---- MIX2: M2, 0.92y, all 16 pcores, computation incl. hashing and bit ops. ----
  {
    FaultyProcessorInfo info;
    info.cpu_id = "MIX2";
    info.arch = "M2";
    info.age_years = 0.92;
    info.spec = MakeArchSpec("M2");
    info.defects.push_back(MakeComputationDefect(
        rng,
        {.id = "mix2-vec-fpu",
         .ops = {OpKind::kVecFmaF64, OpKind::kVecMulF64},
         .types = {DataType::kFloat32, DataType::kFloat64, DataType::kBin32},
         .pcores = {},
         .trigger_celsius = 43.0,
         .frequency_at_trigger = 6.0,
         .temp_slope = 0.16,
         .pattern_probability = 0.45,
         .core_scale_decades = 3.0},
        info.spec.physical_cores));
    info.defects.push_back(MakeComputationDefect(
        rng,
        {.id = "mix2-alu-hash",
         .ops = {OpKind::kIntMul, OpKind::kHashStep, OpKind::kPopcount},
         .types = {DataType::kInt16, DataType::kInt32, DataType::kUInt32, DataType::kBit,
                   DataType::kByte, DataType::kBin16, DataType::kBin32, DataType::kBin64},
         .pcores = {},
         .trigger_celsius = 41.0,
         .frequency_at_trigger = 10.0,
         .temp_slope = 0.14,
         .pattern_probability = 0.45,
         .core_scale_decades = 2.0},
        info.spec.physical_cores));
    catalog.push_back(std::move(info));
  }
  // ---- SIMD1: M2, 2.33y, one pcore, vector FMA on f32 (strong fixed patterns). ----
  {
    FaultyProcessorInfo info;
    info.cpu_id = "SIMD1";
    info.arch = "M2";
    info.age_years = 2.33;
    info.spec = MakeArchSpec("M2");
    info.defects.push_back(MakeComputationDefect(
        rng,
        {.id = "simd1-fma32",
         .ops = {OpKind::kVecFmaF32},
         .types = {DataType::kFloat32},
         .pcores = {5},
         .trigger_celsius = 43.0,
         .frequency_at_trigger = 3.0,
         .temp_slope = 0.15,
         .pattern_probability = 0.92},
        info.spec.physical_cores));
    catalog.push_back(std::move(info));
  }
  // ---- SIMD2: M5, 0.50y, one pcore, vector f64, single failing testcase. ----
  {
    FaultyProcessorInfo info;
    info.cpu_id = "SIMD2";
    info.arch = "M5";
    info.age_years = 0.50;
    info.spec = MakeArchSpec("M5");
    info.defects.push_back(MakeComputationDefect(
        rng,
        {.id = "simd2-fma64",
         .ops = {OpKind::kVecFmaF64},
         .types = {DataType::kFloat64},
         .pcores = {2},
         .trigger_celsius = 51.0,
         .frequency_at_trigger = 0.2,
         .temp_slope = 0.15,
         .pattern_probability = 0.85},
        info.spec.physical_cores));
    catalog.push_back(std::move(info));
  }
  // ---- FPU1: M5, 0.58y, one pcore, arctangent path, f64 + f64x (Section 4.1). ----
  {
    FaultyProcessorInfo info;
    info.cpu_id = "FPU1";
    info.arch = "M5";
    info.age_years = 0.58;
    info.spec = MakeArchSpec("M5");
    info.defects.push_back(MakeComputationDefect(
        rng,
        {.id = "fpu1-arctan",
         .ops = {OpKind::kFpArctan},
         .types = {DataType::kFloat64, DataType::kFloat80},
         .pcores = {1},
         .trigger_celsius = 41.0,
         .frequency_at_trigger = 20.0,
         .temp_slope = 0.13,
         .pattern_probability = 0.90},
        info.spec.physical_cores));
    catalog.push_back(std::move(info));
  }
  // ---- FPU2: M5, 1.83y, one pcore, arctan/sin, Figure 8(c)'s 48-56C band. ----
  {
    FaultyProcessorInfo info;
    info.cpu_id = "FPU2";
    info.arch = "M5";
    info.age_years = 1.83;
    info.spec = MakeArchSpec("M5");
    info.defects.push_back(MakeComputationDefect(
        rng,
        {.id = "fpu2-arctan",
         .ops = {OpKind::kFpArctan, OpKind::kFpSin},
         .types = {DataType::kFloat64, DataType::kFloat80},
         .pcores = {8 % MakeArchSpec("M5").physical_cores},
         .trigger_celsius = 48.0,
         .frequency_at_trigger = 0.4,
         .temp_slope = 0.125,
         .pattern_probability = 0.80},
        info.spec.physical_cores));
    catalog.push_back(std::move(info));
  }
  // ---- FPU3: M3, 3.08y, one pcore, scalar FP arithmetic, f64. ----
  {
    FaultyProcessorInfo info;
    info.cpu_id = "FPU3";
    info.arch = "M3";
    info.age_years = 3.08;
    info.spec = MakeArchSpec("M3");
    info.defects.push_back(MakeComputationDefect(
        rng,
        {.id = "fpu3-arith",
         .ops = {OpKind::kFpAdd, OpKind::kFpMul},
         .types = {DataType::kFloat64},
         .pcores = {11},
         .trigger_celsius = 45.0,
         .frequency_at_trigger = 1.5,
         .temp_slope = 0.15,
         .pattern_probability = 0.72},
        info.spec.physical_cores));
    catalog.push_back(std::move(info));
  }
  // ---- FPU4: M6, 1.62y, one pcore, divide/sqrt, f64, single failing testcase. ----
  {
    FaultyProcessorInfo info;
    info.cpu_id = "FPU4";
    info.arch = "M6";
    info.age_years = 1.62;
    info.spec = MakeArchSpec("M6");
    info.defects.push_back(MakeComputationDefect(
        rng,
        {.id = "fpu4-divsqrt",
         .ops = {OpKind::kFpDiv, OpKind::kFpSqrt},
         .types = {DataType::kFloat64},
         .pcores = {7},
         .trigger_celsius = 52.0,
         .frequency_at_trigger = 0.1,
         .temp_slope = 0.16,
         .pattern_probability = 0.75},
        info.spec.physical_cores));
    catalog.push_back(std::move(info));
  }
  // ---- CNST1: M2, 0.92y, one pcore, cache coherence + transactional memory. ----
  {
    FaultyProcessorInfo info;
    info.cpu_id = "CNST1";
    info.arch = "M2";
    info.age_years = 0.92;
    info.spec = MakeArchSpec("M2");
    info.defects.push_back(MakeConsistencyDefect(
        rng,
        {.id = "cnst1-coherence",
         .feature = Feature::kCache,
         .pcores = {3},
         .trigger_celsius = 42.0,
         .frequency_at_trigger = 3.0,
         .temp_slope = 0.14},
        info.spec.physical_cores));
    info.defects.push_back(MakeConsistencyDefect(
        rng,
        {.id = "cnst1-txmem",
         .feature = Feature::kTxMem,
         .pcores = {3},
         .trigger_celsius = 44.0,
         .frequency_at_trigger = 1.5,
         .temp_slope = 0.15},
        info.spec.physical_cores));
    catalog.push_back(std::move(info));
  }
  // ---- CNST2: M3, 1.08y, all 24 pcores, transactional memory only. ----
  {
    FaultyProcessorInfo info;
    info.cpu_id = "CNST2";
    info.arch = "M3";
    info.age_years = 1.08;
    info.spec = MakeArchSpec("M3");
    info.defects.push_back(MakeConsistencyDefect(
        rng,
        {.id = "cnst2-txmem",
         .feature = Feature::kTxMem,
         .pcores = {},
         .trigger_celsius = 46.0,
         .frequency_at_trigger = 1.0,
         .temp_slope = 0.15,
         .core_scale_decades = 2.0},
        info.spec.physical_cores));
    catalog.push_back(std::move(info));
  }
}

// Feature plans for the remaining 17 studied processors: 11 computation + 6 consistency,
// chosen so the per-feature proportions land near Figure 2 and per-datatype proportions
// near Figure 3 (floats most common).
struct ExtraPlan {
  const char* id;
  int arch_index;      // 0..8
  bool all_cores;
  std::vector<Feature> features;
};

const ExtraPlan kExtraPlans[] = {
    {"COMP1", 0, true , {Feature::kAlu}},
    {"COMP2", 3, false, {Feature::kAlu}},
    {"COMP3", 6, true, {Feature::kAlu}},
    {"COMP4", 7, true, {Feature::kAlu, Feature::kVecUnit}},
    {"COMP5", 8, true , {Feature::kAlu, Feature::kVecUnit}},
    {"COMP6", 5, false, {Feature::kVecUnit, Feature::kFpu}},
    {"COMP7", 7, true , {Feature::kVecUnit, Feature::kFpu}},
    {"COMP8", 1, false, {Feature::kVecUnit}},
    {"COMP9", 8, false, {Feature::kFpu}},
    {"COMP10", 7, false, {Feature::kFpu}},
    {"COMP11", 0, false, {Feature::kAlu, Feature::kFpu}},
    {"CNST3", 4, false, {Feature::kCache}},
    {"CNST4", 6, true , {Feature::kCache}},
    {"CNST5", 2, true, {Feature::kCache, Feature::kTxMem}},
    {"CNST6", 7, false, {Feature::kCache, Feature::kTxMem}},
    {"CNST7", 1, true , {Feature::kCache}},
    {"CNST8", 5, false, {Feature::kTxMem}},
};

std::vector<OpKind> OpsForFeature(Feature feature, Rng& rng) {
  switch (feature) {
    case Feature::kAlu: {
      std::vector<OpKind> pool = {OpKind::kIntAdd, OpKind::kIntMul,  OpKind::kIntShift,
                                  OpKind::kLogicXor, OpKind::kLogicOr, OpKind::kCrc32Step,
                                  OpKind::kHashStep, OpKind::kPopcount};
      std::vector<OpKind> picked;
      for (OpKind op : pool) {
        if (rng.NextBernoulli(0.22)) {
          picked.push_back(op);
        }
      }
      if (picked.empty()) {
        picked.push_back(OpKind::kIntMul);
      }
      return picked;
    }
    case Feature::kVecUnit: {
      std::vector<OpKind> pool = {OpKind::kVecFmaF32, OpKind::kVecFmaF64, OpKind::kVecMulF32,
                                  OpKind::kVecMulF64, OpKind::kVecAddI32, OpKind::kVecGf256,
                                  OpKind::kVecCrc};
      std::vector<OpKind> picked;
      for (OpKind op : pool) {
        if (rng.NextBernoulli(0.22)) {
          picked.push_back(op);
        }
      }
      if (picked.empty()) {
        picked.push_back(OpKind::kVecFmaF64);
      }
      return picked;
    }
    case Feature::kFpu: {
      std::vector<OpKind> pool = {OpKind::kFpAdd, OpKind::kFpMul, OpKind::kFpDiv,
                                  OpKind::kFpSqrt, OpKind::kFpArctan, OpKind::kFpSin,
                                  OpKind::kFpLog, OpKind::kFpExp};
      std::vector<OpKind> picked;
      for (OpKind op : pool) {
        if (rng.NextBernoulli(0.2)) {
          picked.push_back(op);
        }
      }
      if (picked.empty()) {
        picked.push_back(OpKind::kFpMul);
      }
      return picked;
    }
    default:
      return {};
  }
}

std::vector<DataType> TypesForOps(const std::vector<OpKind>& ops, Rng& rng) {
  std::set<DataType> types;
  for (OpKind op : ops) {
    switch (op) {
      case OpKind::kVecFmaF32:
      case OpKind::kVecMulF32:
        types.insert(DataType::kFloat32);
        break;
      case OpKind::kVecFmaF64:
      case OpKind::kVecMulF64:
        types.insert(DataType::kFloat64);
        break;
      case OpKind::kVecAddI32:
        types.insert(DataType::kInt32);
        break;
      case OpKind::kVecGf256:
        types.insert(DataType::kByte);
        break;
      case OpKind::kVecCrc:
      case OpKind::kCrc32Step:
        types.insert(DataType::kUInt32);
        types.insert(DataType::kBin32);
        break;
      case OpKind::kHashStep:
        types.insert(DataType::kBin64);
        break;
      case OpKind::kFpAdd:
      case OpKind::kFpMul:
      case OpKind::kFpDiv:
      case OpKind::kFpSqrt:
        types.insert(DataType::kFloat64);
        if (rng.NextBernoulli(0.4)) {
          types.insert(DataType::kFloat32);
        }
        break;
      case OpKind::kFpArctan:
      case OpKind::kFpSin:
      case OpKind::kFpLog:
      case OpKind::kFpExp:
        types.insert(DataType::kFloat64);
        if (rng.NextBernoulli(0.5)) {
          types.insert(DataType::kFloat80);
        }
        break;
      case OpKind::kIntAdd:
      case OpKind::kIntMul:
      case OpKind::kIntShift:
        types.insert(DataType::kInt32);
        if (rng.NextBernoulli(0.3)) {
          types.insert(DataType::kInt16);
        }
        if (rng.NextBernoulli(0.3)) {
          types.insert(DataType::kUInt32);
        }
        break;
      case OpKind::kLogicXor:
      case OpKind::kLogicOr:
      case OpKind::kPopcount:
        types.insert(DataType::kBin32);
        if (rng.NextBernoulli(0.4)) {
          types.insert(DataType::kBin64);
        }
        if (rng.NextBernoulli(0.3)) {
          types.insert(DataType::kByte);
        }
        break;
      default:
        break;
    }
  }
  return {types.begin(), types.end()};
}

void AppendExtraProcessors(Rng& rng, std::vector<FaultyProcessorInfo>& catalog) {
  for (const ExtraPlan& plan : kExtraPlans) {
    FaultyProcessorInfo info;
    info.cpu_id = plan.id;
    info.arch = ArchName(plan.arch_index);
    info.age_years = 0.3 + rng.NextDouble() * 2.9;
    info.spec = MakeArchSpec(plan.arch_index);
    const int pcore = static_cast<int>(
        rng.NextBelow(static_cast<uint64_t>(info.spec.physical_cores)));
    for (Feature feature : plan.features) {
      double trigger = 0.0;
      double base_rate = 0.0;
      const bool consistency = feature == Feature::kCache || feature == Feature::kTxMem;
      const double ops_rate = consistency ? kConsistencyOpsPerSecond : kComputeOpsPerSecond;
      SampleTriggerAndRate(rng, ops_rate, &trigger, &base_rate);
      const double frequency_at_trigger =
          std::pow(10.0, base_rate) * 60.0 * ops_rate;  // back out for the param structs
      if (consistency) {
        ConsistencyDefectParams params;
        params.id = std::string(plan.id) + "-" + FeatureName(feature);
        params.feature = feature;
        params.pcores = plan.all_cores ? std::vector<int>{} : std::vector<int>{pcore};
        params.trigger_celsius = trigger;
        params.frequency_at_trigger = frequency_at_trigger;
        params.temp_slope = 0.12 + rng.NextDouble() * 0.1;
        params.core_scale_decades = plan.all_cores ? 1.5 + rng.NextDouble() * 1.5 : 0.0;
        info.defects.push_back(
            MakeConsistencyDefect(rng, params, info.spec.physical_cores));
      } else {
        ComputationDefectParams params;
        params.id = std::string(plan.id) + "-" + FeatureName(feature);
        params.ops = OpsForFeature(feature, rng);
        params.types = TypesForOps(params.ops, rng);
        params.pcores = plan.all_cores ? std::vector<int>{} : std::vector<int>{pcore};
        params.trigger_celsius = trigger;
        params.frequency_at_trigger = frequency_at_trigger;
        params.temp_slope = 0.12 + rng.NextDouble() * 0.1;
        params.pattern_probability = 0.3 + rng.NextDouble() * 0.65;
        params.core_scale_decades = plan.all_cores ? 2.0 + rng.NextDouble() * 1.5 : 0.0;
        info.defects.push_back(
            MakeComputationDefect(rng, params, info.spec.physical_cores));
      }
    }
    catalog.push_back(std::move(info));
  }
}

}  // namespace

std::string ArchName(int arch_index) { return "M" + std::to_string(arch_index + 1); }

ProcessorSpec MakeArchSpec(int arch_index) {
  static constexpr int kCores[kArchCount] = {16, 16, 24, 32, 8, 16, 24, 16, 32};
  static constexpr double kGhz[kArchCount] = {2.2, 2.5, 2.5, 2.8, 3.0, 2.9, 2.6, 2.1, 3.1};
  ProcessorSpec spec;
  spec.arch = ArchName(arch_index);
  spec.physical_cores = kCores[arch_index];
  spec.frequency_ghz = kGhz[arch_index];
  return spec;
}

ProcessorSpec MakeArchSpec(const std::string& arch_name) {
  for (int i = 0; i < kArchCount; ++i) {
    if (ArchName(i) == arch_name) {
      return MakeArchSpec(i);
    }
  }
  std::abort();  // unknown architecture is a programming error
}

SdcType FaultyProcessorInfo::sdc_type() const {
  return defects.empty() ? SdcType::kComputation : defects.front().type();
}

int FaultyProcessorInfo::defective_pcore_count() const {
  std::set<int> pcores;
  for (const Defect& defect : defects) {
    if (defect.affected_pcores.empty()) {
      return spec.physical_cores;
    }
    pcores.insert(defect.affected_pcores.begin(), defect.affected_pcores.end());
  }
  return static_cast<int>(pcores.size());
}

std::vector<FaultyProcessorInfo> StudyCatalog() {
  Rng rng(0x5DCFA22023ull);  // fixed: the catalog is part of the experiment definition
  std::vector<FaultyProcessorInfo> catalog;
  catalog.reserve(27);
  AppendTable3Processors(rng, catalog);
  AppendExtraProcessors(rng, catalog);
  return catalog;
}

FaultyProcessorInfo FindInCatalog(const std::string& cpu_id) {
  auto info = TryFindInCatalog(cpu_id);
  if (!info.has_value()) {
    std::abort();  // unknown cpu_id is a programming error
  }
  return *std::move(info);
}

std::optional<FaultyProcessorInfo> TryFindInCatalog(const std::string& cpu_id) {
  for (auto& info : StudyCatalog()) {
    if (info.cpu_id == cpu_id) {
      return info;
    }
  }
  return std::nullopt;
}

void SampleTriggerAndRate(Rng& rng, double ops_per_second, double* min_trigger_celsius,
                          double* base_log10_rate) {
  // ~45% "apparent" defects triggerable near idle, the rest "tricky" (Section 5).
  double trigger = 0.0;
  if (rng.NextBernoulli(0.45)) {
    trigger = 40.0 + rng.NextDouble() * 6.0;  // at or below typical idle temperature
  } else {
    trigger = 46.0 + rng.NextDouble() * 29.0;  // up to 75C
  }
  const double log10_frequency = kFig9InterceptAt40C + kFig9SlopePerC * (trigger - 40.0) +
                                 rng.NextGaussian(0.0, 0.55);
  *min_trigger_celsius = trigger;
  *base_log10_rate = log10_frequency - std::log10(60.0 * ops_per_second);
}

size_t GenerateRandomDefects(Rng& rng, int arch_index, int pcore_count,
                             std::vector<Defect>& defects) {
  const size_t start = defects.size();
  // One defect per faulty part is the common case; a minority carry two within one type.
  const bool consistency = rng.NextBernoulli(8.0 / 27.0);  // study mix: 19 computation, 8 not
  const bool all_cores = rng.NextBernoulli(0.5);           // Observation 4
  const int defect_count = rng.NextBernoulli(0.25) ? 2 : 1;
  const int pcore = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(pcore_count)));
  for (int d = 0; d < defect_count; ++d) {
    double trigger = 0.0;
    double base_rate = 0.0;
    const double ops_rate = consistency ? kConsistencyOpsPerSecond : kComputeOpsPerSecond;
    SampleTriggerAndRate(rng, ops_rate, &trigger, &base_rate);
    const double frequency_at_trigger = std::pow(10.0, base_rate) * 60.0 * ops_rate;
    // A slice of fleet defects develop with age rather than existing from manufacturing;
    // these are the parts that pass pre-production screening and fail regular tests.
    const double onset = rng.NextBernoulli(0.12) ? rng.NextExponential(1.0 / 10.0) : 0.0;
    if (consistency) {
      ConsistencyDefectParams params;
      params.id = "fleet-" + std::string(ArchName(arch_index)) + "-cnst";
      params.feature = rng.NextBernoulli(0.55) ? Feature::kCache : Feature::kTxMem;
      params.pcores = all_cores ? std::vector<int>{} : std::vector<int>{pcore};
      params.trigger_celsius = trigger;
      params.frequency_at_trigger = frequency_at_trigger;
      params.temp_slope = 0.12 + rng.NextDouble() * 0.1;
      params.core_scale_decades = all_cores ? 1.0 + rng.NextDouble() * 2.0 : 0.0;
      params.onset_months = onset;
      defects.push_back(MakeConsistencyDefect(rng, params, pcore_count));
    } else {
      const double feature_draw = rng.NextDouble();
      const Feature feature = feature_draw < 0.35   ? Feature::kFpu
                              : feature_draw < 0.68 ? Feature::kVecUnit
                                                    : Feature::kAlu;
      ComputationDefectParams params;
      params.id = "fleet-" + std::string(ArchName(arch_index)) + "-comp";
      params.ops = OpsForFeature(feature, rng);
      params.types = TypesForOps(params.ops, rng);
      params.pcores = all_cores ? std::vector<int>{} : std::vector<int>{pcore};
      params.trigger_celsius = trigger;
      params.frequency_at_trigger = frequency_at_trigger;
      params.temp_slope = 0.12 + rng.NextDouble() * 0.1;
      params.pattern_probability = 0.3 + rng.NextDouble() * 0.65;
      params.core_scale_decades = all_cores ? 2.0 + rng.NextDouble() * 1.5 : 0.0;
      params.onset_months = onset;
      defects.push_back(MakeComputationDefect(rng, params, pcore_count));
    }
  }
  return defects.size() - start;
}

std::vector<Defect> GenerateRandomDefects(Rng& rng, int arch_index, int pcore_count) {
  std::vector<Defect> defects;
  GenerateRandomDefects(rng, arch_index, pcore_count, defects);
  return defects;
}

}  // namespace sdc
