// Catalog of faulty processors.
//
// Two producers live here:
//  * StudyCatalog(): the 27 processors the paper studies in depth (Section 2.4), including
//    the ten Table 3 details by name (MIX1/MIX2, SIMD1/2, FPU1-4, CNST1/2). Defect
//    parameters are calibrated so the downstream analyses reproduce the paper's figures:
//    feature mix (Fig 2), datatype mix (Fig 3), bitflip structure (Figs 4-7), temperature
//    response (Fig 8, including MIX1's 59C minimum trigger and FPU2's 48-56C band), and the
//    trigger-temperature/frequency relation (Fig 9).
//  * GenerateRandomDefects(): defect sets for the synthetic million-CPU fleet, drawn from
//    the same parameter distributions, used by the screening pipeline (Tables 1 and 2).

#ifndef SDC_SRC_FAULT_CATALOG_H_
#define SDC_SRC_FAULT_CATALOG_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/fault/defect.h"
#include "src/sim/processor.h"

namespace sdc {

// Number of micro-architectures in the fleet (M1..M9, Table 2).
constexpr int kArchCount = 9;

// Name of architecture index 0..8 ("M1".."M9").
std::string ArchName(int arch_index);

// Processor model for an architecture: core counts and clocks vary across generations.
ProcessorSpec MakeArchSpec(int arch_index);
ProcessorSpec MakeArchSpec(const std::string& arch_name);

// A faulty processor: identity, fleet age, hardware model, and its defects.
struct FaultyProcessorInfo {
  std::string cpu_id;
  std::string arch;
  double age_years = 0.0;
  ProcessorSpec spec;
  std::vector<Defect> defects;

  // Union of SDC types across defects; the paper observes each faulty processor exhibits
  // exactly one type (Section 4.1), which the catalog preserves.
  SdcType sdc_type() const;
  // Number of distinct affected physical cores (Table 3's #pcore).
  int defective_pcore_count() const;
};

// The 27 processors studied in depth. Deterministic; the ten Table 3 parts come first.
std::vector<FaultyProcessorInfo> StudyCatalog();

// Looks up a catalog entry by cpu_id; aborts if absent (programming error).
FaultyProcessorInfo FindInCatalog(const std::string& cpu_id);

// Non-aborting lookup for user-facing inputs (the CLI); nullopt when unknown.
std::optional<FaultyProcessorInfo> TryFindInCatalog(const std::string& cpu_id);

// Draws a defect set for one faulty fleet processor of the given architecture. Used by the
// population generator; parameters follow the same distributions as the study catalog.
// `deployed` marks defects that may develop after deployment (onset_months > 0). The
// appending form pushes onto `out` and returns how many defects it added -- the hot path
// for shard generation, where defects land directly in the reused shard arena instead of
// a per-processor vector. The vector form wraps it for one-shot callers.
size_t GenerateRandomDefects(Rng& rng, int arch_index, int pcore_count,
                             std::vector<Defect>& out);
std::vector<Defect> GenerateRandomDefects(Rng& rng, int arch_index, int pcore_count);

// Draws the minimum-trigger temperature and matching base rate for a defect so that the
// population follows Figure 9's relation: log10(frequency at trigger) falls linearly with
// the trigger temperature (fit r ~= -0.83). `ops_per_second` is the nominal execution rate
// of the affected op under test, used to convert frequency/minute to per-op rate.
void SampleTriggerAndRate(Rng& rng, double ops_per_second, double* min_trigger_celsius,
                          double* base_log10_rate);

}  // namespace sdc

#endif  // SDC_SRC_FAULT_CATALOG_H_
