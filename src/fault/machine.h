// FaultyMachine bundles one simulated processor with its memory-system models and (when the
// part is faulty) a DefectInjector wired in as the corruption hook. Everything above this
// layer -- the test toolchain, Farron, the workload simulator -- drives machines through this
// bundle.

#ifndef SDC_SRC_FAULT_MACHINE_H_
#define SDC_SRC_FAULT_MACHINE_H_

#include <memory>

#include "src/fault/catalog.h"
#include "src/fault/injector.h"
#include "src/sim/coherence.h"
#include "src/sim/processor.h"
#include "src/sim/txmem.h"

namespace sdc {

class FaultyMachine {
 public:
  // Shared-memory cells available to coherence / transactional testcases.
  static constexpr size_t kSharedCells = 4096;

  // A machine with the catalog part's defects installed. `seed` drives defect activation.
  FaultyMachine(const FaultyProcessorInfo& info, uint64_t seed);

  // A healthy machine of the given model.
  explicit FaultyMachine(const ProcessorSpec& spec);

  Processor& cpu() { return cpu_; }
  CoherentBus& bus() { return bus_; }
  TxMemory& txmem() { return txmem_; }
  // Null for a healthy machine.
  DefectInjector* injector() { return injector_.get(); }
  const FaultyProcessorInfo& info() const { return info_; }

  // Convenience: marks every physical core busy/idle (burn-in, background stress).
  void SetAllCoreUtilization(double utilization);

  // A pristine machine with the same part info and injector seed: fresh thermal state,
  // zeroed op counters, injector RNG rewound to the start. Two clones driven through the
  // same schedule behave identically, which is what lets the toolchain run plan entries on
  // independent clones in parallel without perturbing any result.
  FaultyMachine CloneFresh() const;

  // The injector seed this machine was built with (0 for healthy machines).
  uint64_t seed() const { return seed_; }

 private:
  FaultyProcessorInfo info_;
  uint64_t seed_ = 0;
  Processor cpu_;
  CoherentBus bus_;
  TxMemory txmem_;
  std::unique_ptr<DefectInjector> injector_;
};

}  // namespace sdc

#endif  // SDC_SRC_FAULT_MACHINE_H_
