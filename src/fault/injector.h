// DefectInjector binds a set of Defects to a simulated processor by implementing the
// processor's CorruptionHook. It is the bridge between the fault model and the execution
// engine: on every operation it evaluates each defect's activation model against the
// operation context (core, temperature, utilization, usage intensity, represented-iteration
// weight) and, when a defect fires, applies its damage model.

#ifndef SDC_SRC_FAULT_INJECTOR_H_
#define SDC_SRC_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/fault/defect.h"
#include "src/sim/processor.h"

namespace sdc {

class DefectInjector : public CorruptionHook {
 public:
  DefectInjector(std::vector<Defect> defects, uint64_t seed);

  // Fleet age of the processor; defects whose onset lies in the future stay dormant.
  void set_age_months(double age_months) { age_months_ = age_months; }
  double age_months() const { return age_months_; }

  // CorruptionHook:
  std::optional<Word128> OnExecute(const OpContext& context, const Word128& golden) override;
  bool OnCoherenceFault(const OpContext& context) override;
  bool OnTxFault(const OpContext& context) override;

  const std::vector<Defect>& defects() const { return defects_; }

  // Ground-truth activation counters (total and per defect), for tests and diagnostics.
  uint64_t total_activations() const { return total_activations_; }
  uint64_t activations(size_t defect_index) const { return activations_[defect_index]; }
  void ResetCounters();

 private:
  // Returns the index of the first defect that fires for this context among defects matching
  // `want_type`, or -1. Draws one Bernoulli per eligible defect.
  int FindActivation(const OpContext& context, SdcType want_type);

  std::vector<Defect> defects_;
  // Precomputed per-defect bitmasks over OpKind / DataType for O(1) matching on the hot
  // path, plus union masks for early rejection of ops no defect touches.
  std::vector<uint64_t> op_masks_;
  std::vector<uint32_t> type_masks_;
  uint64_t computation_op_union_ = 0;
  uint64_t consistency_op_union_ = 0;
  std::vector<uint64_t> activations_;
  Rng rng_;
  double age_months_ = 1e9;  // by default all defects are live
  uint64_t total_activations_ = 0;
};

static_assert(kOpKindCount <= 64, "op-kind bitmask relies on <= 64 kinds");

}  // namespace sdc

#endif  // SDC_SRC_FAULT_INJECTOR_H_
