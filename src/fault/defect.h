// Silicon defect model.
//
// A Defect describes one fault inside a processor: which feature it lives in, which operation
// kinds and datatypes it can corrupt, which physical cores it affects, when it activates, and
// what bit-level damage it does. The model encodes the paper's empirical structure:
//
//  * Activation (Observation 10): zero below a minimum triggering temperature; above it the
//    per-operation corruption rate grows exponentially with core temperature
//    (log10-linear, Figure 8) and polynomially with instruction usage stress (Section 5).
//  * Damage (Observations 7/8): a mixture of fixed XOR masks ("bitflip patterns", Figure 6)
//    and positional noise whose distribution concentrates mid-word -- for floats this puts
//    flips in the fraction part, for integers away from the most significant bits
//    (Figure 4); non-numerical payloads flip uniformly (Figure 5). Most corruptions flip one
//    bit, some flip two or more (Figure 7). A defect may have stuck-at semantics, which
//    produces the directional bias seen in corner cases (Section 4.2).
//  * Onset: some defects exist from manufacturing, others develop after months in the fleet
//    (which is why processors pass pre-production tests and later fail regular tests,
//    Observation 2).

#ifndef SDC_SRC_FAULT_DEFECT_H_
#define SDC_SRC_FAULT_DEFECT_H_

#include <string>
#include <vector>

#include "src/common/bits.h"
#include "src/common/rng.h"
#include "src/sim/isa.h"
#include "src/sim/processor.h"

namespace sdc {

// The paper's two SDC classes (Section 4.1).
enum class SdcType {
  kComputation,  // ALU / VecUnit / FPU result corruption
  kConsistency,  // cache coherence / transactional memory violations
};

std::string SdcTypeName(SdcType type);

// A fixed XOR mask the defect tends to imprint (Observation 8).
struct BitflipPattern {
  Word128 mask;
  double weight = 1.0;  // relative share among this defect's patterns
};

// Patterns are per result datatype: the imprinted bit positions depend on where the damaged
// structure's bits land in each representation.
struct PatternSet {
  DataType type = DataType::kFloat64;
  std::vector<BitflipPattern> patterns;
  // Sealed cumulative form of the pattern weights (Defect::SealPatternCdfs), consulted by
  // Corrupt so the per-corruption weighted pick stops re-summing the weights on every
  // draw. Empty (default) means unsealed: Corrupt falls back to Rng::NextWeighted over
  // the live weights. Both picks are draw-for-draw identical (see WeightedCdf).
  WeightedCdf weight_cdf;
};

// How flips combine with the data (XOR = true flip; stuck-at produces direction bias).
enum class FlipSemantics {
  kXor,
  kStuckOne,   // OR of the mask: only 0 -> 1 transitions
  kStuckZero,  // AND-NOT of the mask: only 1 -> 0 transitions
};

struct Defect {
  std::string id;
  Feature feature = Feature::kAlu;

  // What the defect can touch.
  std::vector<OpKind> affected_ops;
  std::vector<DataType> affected_types;  // computation defects only
  std::vector<int> affected_pcores;      // empty = every physical core
  // Rate multiplier per entry of affected_pcores (or per pcore index when empty). The paper
  // observes multi-core defects whose cores fail at rates differing by orders of magnitude.
  std::vector<double> pcore_rate_scale;

  // Activation model.
  double min_trigger_celsius = 0.0;   // no activations below this core temperature
  double base_log10_rate = -9.0;      // log10(corruptions per affected op) at the trigger
  double temp_slope = 0.15;           // d log10(rate) / dC above the trigger
  double intensity_ref = 1e8;         // ops/s of the affected kind at which stress factor = 1
  double intensity_exponent = 0.5;    // stress factor = (intensity / ref)^exponent, clamped

  // Damage model.
  std::vector<PatternSet> pattern_sets;
  double pattern_probability = 0.8;   // share of corruptions that use a fixed pattern
  FlipSemantics semantics = FlipSemantics::kXor;
  double multi_flip_probability = 0.1;   // noise corruption flips a second bit
  double extra_flip_probability = 0.02;  // ...and possibly more

  // Months after deployment at which the defect becomes active (0 = from manufacturing).
  double onset_months = 0.0;

  SdcType type() const {
    return (feature == Feature::kCache || feature == Feature::kTxMem) ? SdcType::kConsistency
                                                                      : SdcType::kComputation;
  }

  bool AffectsOp(OpKind op) const;
  bool AffectsType(DataType type) const;
  // Rate multiplier for `pcore`; 0 when the core is not affected.
  double PcoreScale(int pcore) const;

  // Per-operation corruption probability for the given conditions (before the represented-
  // iteration weight is applied). Zero below the trigger temperature.
  double RatePerOp(double temperature, double op_intensity, int pcore) const;

  // Occurrence frequency in corruptions/minute for a workload executing the affected op at
  // `ops_per_second` on `pcore` at `temperature` -- the unit Section 5 measures.
  double OccurrenceFrequencyPerMinute(double temperature, double ops_per_second,
                                      int pcore) const;

  // Applies the damage model to `golden`, returning corrupted bits (always != golden for a
  // non-degenerate mask; if the draw produces no change the lowest eligible bit is flipped).
  Word128 Corrupt(const Word128& golden, DataType type, Rng& rng) const;

  // Precomputes each pattern set's weight CDF so Corrupt's weighted pick is O(patterns)
  // once instead of per corruption. Call after pattern_sets/weights stop changing (the
  // catalog builders do); safe to re-call. Draw sequences are unchanged either way.
  void SealPatternCdfs();
};

// Samples a bit position for noise flips: mid-word concentrated for numeric types (fraction
// part for floats), uniform for non-numerical types.
int SampleFlipPosition(DataType type, Rng& rng);

// Builds a random fixed pattern mask for `type` with `flip_count` bits, using the same
// positional distribution as noise flips.
Word128 MakePatternMask(DataType type, int flip_count, Rng& rng);

}  // namespace sdc

#endif  // SDC_SRC_FAULT_DEFECT_H_
