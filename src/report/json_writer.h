// Minimal streaming JSON writer (no third-party dependencies): correct escaping, nesting
// via an explicit state stack, optional pretty printing. Used by the exporters that dump
// run reports, screening statistics, and the defect catalog for downstream analysis.

#ifndef SDC_SRC_REPORT_JSON_WRITER_H_
#define SDC_SRC_REPORT_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sdc {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = true);

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Emits an object key; must be followed by a value or Begin*. A dangling key (another
  // Key() or an End* before any value) asserts in debug builds; release builds emit an
  // explicit null so the output stays parseable.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value);
  JsonWriter& Value(double value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(int value);
  JsonWriter& Value(bool value);
  JsonWriter& Null();

  // Key/value in one call.
  template <typename T>
  JsonWriter& KeyValue(std::string_view key, T&& value) {
    Key(key);
    Value(std::forward<T>(value));
    return *this;
  }

  // True when every container has been closed.
  bool Complete() const { return stack_.empty() && wrote_top_level_; }

  // Escapes `text` per RFC 8259 (quotes, backslash, control characters).
  static std::string Escape(std::string_view text);

 private:
  enum class Scope { kObject, kArray };
  void Prefix(bool is_key);
  void Indent();
  // Emits a null (and asserts in debug) when a Key() is still awaiting its value.
  void CloseDanglingKey();

  std::ostream& out_;
  bool pretty_;
  bool wrote_top_level_ = false;
  bool expecting_value_ = false;  // a Key() was just written
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
};

}  // namespace sdc

#endif  // SDC_SRC_REPORT_JSON_WRITER_H_
