// JSON exporters for the library's main result types: toolchain run reports, fleet
// screening statistics, and the faulty-processor catalog. Output is stable and
// machine-readable so downstream analysis (plots, dashboards, regression tracking) can
// consume experiment results without scraping the text tables.

#ifndef SDC_SRC_REPORT_EXPORTERS_H_
#define SDC_SRC_REPORT_EXPORTERS_H_

#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/fault/catalog.h"
#include "src/fleet/pipeline.h"
#include "src/scrub/scrubber.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/series.h"
#include "src/telemetry/trace.h"
#include "src/toolchain/framework.h"

namespace sdc {

// One toolchain run: per-testcase outcomes plus (optionally capped) SDC records.
void WriteRunReportJson(std::ostream& out, const RunReport& report,
                        size_t max_records = 100);

// Fleet screening statistics: per-stage and per-arch rates.
void WriteScreeningStatsJson(std::ostream& out, const ScreeningStats& stats);

// The study catalog: hardware attributes and full defect parameters per processor.
void WriteCatalogJson(std::ostream& out,
                      const std::vector<FaultyProcessorInfo>& catalog);

// A metrics snapshot: counters and gauges as name->value objects, histograms as
// {lo, width, total, counts[]}. Timers measure host wall clock and are therefore
// nondeterministic; pass include_timers = false to emit only the sections the
// determinism contract covers (byte-identical at any thread count).
void WriteMetricsJson(std::ostream& out, const MetricsSnapshot& snapshot,
                      bool include_timers = true);

// A trace snapshot as Chrome/Perfetto trace-event JSON ({"traceEvents": [...]}), loadable
// in ui.perfetto.dev or chrome://tracing. Sim events (pid 1) carry deterministic workload
// clocks -- processor serials for fleet passes, simulated microseconds for the toolchain
// and protection loops -- and are emitted in merge order, so the document is byte-identical
// at any thread count. Host spans (pid 2) measure wall clock and are nondeterministic by
// contract; pass include_host = false to emit only the deterministic timeline (the form
// the determinism tests compare).
void WriteTraceJson(std::ostream& out, const TraceSnapshot& snapshot,
                    bool include_host = true);

// A fleet scrub report: discovery counts, the per-epoch budget ledger, every detection
// with its scheduler provenance, and the decommission replay. The document is a pure
// function of the ScrubConfig (byte-identical at any thread count and discovery mode),
// which tools/check_scrub_json.py relies on.
void WriteScrubReportJson(std::ostream& out, const ScrubReport& report);

// A time-series snapshot: {"sim": {...}, "host": {...}} with each series rendered as
// {"points": [[x, value], ...], "dropped", "total_points"}. The sim section obeys the
// determinism contract (byte-identical at any thread count and across streaming vs.
// materialized execution -- tests/series_test.cc compares these exact bytes); host
// series measure wall clock, are flagged nondeterministic, and can be excluded with
// include_host = false.
void WriteSeriesJson(std::ostream& out, const SeriesSnapshot& snapshot,
                     bool include_host = true);

// Sanitized Prometheus metric name: "sdc_" + `name` with every byte outside
// [a-zA-Z0-9_] replaced by '_' ("fleet.generate.processors" ->
// "sdc_fleet_generate_processors").
std::string PromMetricName(std::string_view name);

// One rendered Prometheus label set ({k1="v1",...}; "" when empty), values escaped per
// the text-exposition rules. Shared by WriteMetricsProm and the daemon's hand-built
// campaign samples (src/daemon/protocol.cc).
std::string PromLabelSet(std::span<const std::pair<std::string, std::string>> labels);

// Round-trip (%.17g) rendering of one Prometheus sample value -- the same bytes the JSON
// writer would emit for the same double.
void WritePromSampleValue(std::ostream& out, double value);

// Prometheus text-exposition (version 0.0.4) rendering of a metrics snapshot, for
// `sdcctl --prom-out` and the daemon's `prom` verb. Counters gain the "_total" suffix,
// histograms emit cumulative le-buckets plus "_count", and wall-clock timers emit
// summary-style "_seconds_sum"/"_seconds_count" pairs. `labels` (e.g. {{"id", "3"}}) is
// rendered on every sample line; tools/check_prom.py lints this exact format.
void WriteMetricsProm(std::ostream& out, const MetricsSnapshot& snapshot,
                      std::span<const std::pair<std::string, std::string>> labels = {});

}  // namespace sdc

#endif  // SDC_SRC_REPORT_EXPORTERS_H_
