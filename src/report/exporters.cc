#include "src/report/exporters.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/report/json_writer.h"

namespace sdc {
namespace {

void WriteWord128(JsonWriter& json, const Word128& word) {
  json.BeginObject();
  json.KeyValue("lo", word.lo);
  json.KeyValue("hi", word.hi);
  json.EndObject();
}

// Chrome trace-event metadata record naming a process or thread (track).
void WriteTraceMetadata(JsonWriter& json, const char* what, int pid, int tid,
                        const char* name) {
  json.BeginObject();
  json.KeyValue("ph", "M");
  json.KeyValue("name", what);
  json.KeyValue("pid", pid);
  json.KeyValue("tid", tid);
  json.Key("args").BeginObject();
  json.KeyValue("name", name);
  json.EndObject();
  json.EndObject();
}

void WriteTraceEvent(JsonWriter& json, const TraceEvent& event, int pid) {
  json.BeginObject();
  json.KeyValue("ph", std::string_view(&event.phase, 1));
  json.KeyValue("name", event.name);
  json.KeyValue("cat", event.category);
  json.KeyValue("pid", pid);
  json.KeyValue("tid", event.track);
  json.KeyValue("ts", event.timestamp);
  if (event.phase == 'X') {
    json.KeyValue("dur", event.duration);
  }
  if (event.phase == 'i') {
    json.KeyValue("s", "t");  // instant scope: thread
  }
  if (!event.str_args.empty() || !event.num_args.empty()) {
    json.Key("args").BeginObject();
    for (const auto& [key, value] : event.str_args) {
      json.KeyValue(key, value);
    }
    for (const auto& [key, value] : event.num_args) {
      json.KeyValue(key, value);
    }
    json.EndObject();
  }
  json.EndObject();
}

}  // namespace

void WriteRunReportJson(std::ostream& out, const RunReport& report, size_t max_records) {
  JsonWriter json(out);
  json.BeginObject();
  json.KeyValue("total_wall_seconds", report.total_wall_seconds);
  json.KeyValue("total_errors", report.total_errors());
  json.Key("results").BeginArray();
  for (const TestcaseResult& result : report.results) {
    json.BeginObject();
    json.KeyValue("testcase", result.testcase_id);
    json.KeyValue("duration_seconds", result.duration_seconds);
    json.KeyValue("errors", result.errors);
    json.KeyValue("frequency_per_minute", result.OccurrenceFrequencyPerMinute());
    json.Key("errors_per_pcore").BeginArray();
    for (uint64_t errors : result.errors_per_pcore) {
      json.Value(errors);
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.Key("records").BeginArray();
  const size_t count = std::min(max_records, report.records.size());
  for (size_t i = 0; i < count; ++i) {
    const SdcRecord& record = report.records[i];
    json.BeginObject();
    json.KeyValue("testcase", record.testcase_id);
    json.KeyValue("cpu", record.cpu_id);
    json.KeyValue("pcore", record.pcore);
    json.KeyValue("type", SdcTypeName(record.sdc_type));
    json.KeyValue("datatype", DataTypeName(record.type));
    json.Key("expected");
    WriteWord128(json, record.expected);
    json.Key("actual");
    WriteWord128(json, record.actual);
    json.KeyValue("temperature", record.temperature);
    json.KeyValue("time_seconds", record.time_seconds);
    json.EndObject();
  }
  json.EndArray();
  json.KeyValue("records_truncated", report.records.size() > count);
  json.EndObject();
}

void WriteScreeningStatsJson(std::ostream& out, const ScreeningStats& stats) {
  JsonWriter json(out);
  json.BeginObject();
  json.KeyValue("tested", stats.tested);
  json.KeyValue("faulty", stats.faulty);
  json.KeyValue("detected", stats.total_detected());
  json.KeyValue("total_rate_permyriad", stats.TotalRate() * 1e4);
  json.Key("stages").BeginArray();
  for (int stage = 0; stage < kStageCount; ++stage) {
    json.BeginObject();
    json.KeyValue("stage", StageName(static_cast<TestStage>(stage)));
    json.KeyValue("detections", stats.detected_by_stage[stage]);
    json.KeyValue("rate_permyriad", stats.StageRate(static_cast<TestStage>(stage)) * 1e4);
    json.EndObject();
  }
  json.EndArray();
  json.Key("arches").BeginArray();
  for (int arch = 0; arch < kArchCount; ++arch) {
    json.BeginObject();
    json.KeyValue("arch", ArchName(arch));
    json.KeyValue("tested", stats.tested_by_arch[arch]);
    json.KeyValue("detections", stats.detected_by_arch[arch]);
    json.KeyValue("rate_permyriad", stats.ArchRate(arch) * 1e4);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

void WriteCatalogJson(std::ostream& out,
                      const std::vector<FaultyProcessorInfo>& catalog) {
  JsonWriter json(out);
  json.BeginArray();
  for (const FaultyProcessorInfo& info : catalog) {
    json.BeginObject();
    json.KeyValue("cpu_id", info.cpu_id);
    json.KeyValue("arch", info.arch);
    json.KeyValue("age_years", info.age_years);
    json.KeyValue("physical_cores", info.spec.physical_cores);
    json.KeyValue("defective_cores", info.defective_pcore_count());
    json.KeyValue("sdc_type", SdcTypeName(info.sdc_type()));
    json.Key("defects").BeginArray();
    for (const Defect& defect : info.defects) {
      json.BeginObject();
      json.KeyValue("id", defect.id);
      json.KeyValue("feature", FeatureName(defect.feature));
      json.KeyValue("min_trigger_celsius", defect.min_trigger_celsius);
      json.KeyValue("base_log10_rate", defect.base_log10_rate);
      json.KeyValue("temp_slope", defect.temp_slope);
      json.KeyValue("pattern_probability", defect.pattern_probability);
      json.KeyValue("onset_months", defect.onset_months);
      json.Key("ops").BeginArray();
      for (OpKind op : defect.affected_ops) {
        json.Value(OpKindName(op));
      }
      json.EndArray();
      json.Key("datatypes").BeginArray();
      for (DataType type : defect.affected_types) {
        json.Value(DataTypeName(type));
      }
      json.EndArray();
      json.Key("pcores").BeginArray();
      for (int pcore : defect.affected_pcores) {
        json.Value(pcore);
      }
      json.EndArray();
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
}

void WriteMetricsJson(std::ostream& out, const MetricsSnapshot& snapshot,
                      bool include_timers) {
  JsonWriter json(out);
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    json.KeyValue(name, value);
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    json.KeyValue(name, value);
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : snapshot.histograms) {
    json.Key(name).BeginObject();
    json.KeyValue("lo", histogram.lo());
    json.KeyValue("width", histogram.width());
    json.KeyValue("total", histogram.total());
    json.Key("counts").BeginArray();
    for (size_t bin = 0; bin < histogram.bin_count(); ++bin) {
      json.Value(histogram.count(bin));
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  if (include_timers) {
    json.Key("timers").BeginObject();
    for (const auto& [name, timer] : snapshot.timers) {
      json.Key(name).BeginObject();
      json.KeyValue("count", timer.count);
      json.KeyValue("total_seconds", timer.total_seconds);
      json.KeyValue("min_seconds", timer.min_seconds);
      json.KeyValue("max_seconds", timer.max_seconds);
      json.KeyValue("nondeterministic", true);
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndObject();
}

void WriteTraceJson(std::ostream& out, const TraceSnapshot& snapshot, bool include_host) {
  JsonWriter json(out, /*pretty=*/false);
  json.BeginObject();
  json.KeyValue("displayTimeUnit", "ms");
  json.Key("traceEvents").BeginArray();
  // A fixed metadata preamble names both clock-domain processes and every known track,
  // whether or not the run populated them -- keeping the preamble invariant is part of
  // what makes traces of equal workloads byte-comparable.
  WriteTraceMetadata(json, "process_name", kTracePidSim, 0,
                     "sim (deterministic workload clock)");
  if (include_host) {
    WriteTraceMetadata(json, "process_name", kTracePidHost, 0, "host (wall clock)");
  }
  struct TrackName {
    int track;
    const char* name;
  };
  static constexpr TrackName kTracks[] = {
      {kTraceTrackGenerate, "generate"},   {kTraceTrackScreen, "screen"},
      {kTraceTrackDetection, "detection"}, {kTraceTrackAggregate, "aggregate"},
      {kTraceTrackToolchain, "toolchain"}, {kTraceTrackProtection, "protection"},
  };
  for (const TrackName& track : kTracks) {
    WriteTraceMetadata(json, "thread_name", kTracePidSim, track.track, track.name);
  }
  if (include_host) {
    for (const TrackName& track : kTracks) {
      WriteTraceMetadata(json, "thread_name", kTracePidHost, track.track, track.name);
    }
  }
  for (const TraceEvent& event : snapshot.sim) {
    WriteTraceEvent(json, event, kTracePidSim);
  }
  if (include_host) {
    for (const TraceEvent& event : snapshot.host) {
      WriteTraceEvent(json, event, kTracePidHost);
    }
  }
  json.EndArray();
  json.KeyValue("hostEventsIncluded", include_host);
  json.EndObject();
}

void WriteScrubReportJson(std::ostream& out, const ScrubReport& report) {
  JsonWriter json(out);
  json.BeginObject();
  json.Key("fleet").BeginObject();
  json.KeyValue("processors", report.fleet_processors);
  json.KeyValue("cores", report.fleet_cores);
  json.KeyValue("faulty", report.faulty);
  json.KeyValue("pre_production_detections", report.pre_production_detections);
  json.KeyValue("sessions", report.sessions);
  json.KeyValue("undetectable_sessions", report.undetectable_sessions);
  json.EndObject();
  json.Key("budget").BeginObject();
  json.KeyValue("fraction", report.budget_fraction);
  json.KeyValue("horizon_months", report.horizon_months);
  json.KeyValue("epoch_months", report.epoch_months);
  json.KeyValue("nominal_round_seconds", report.nominal_round_seconds);
  json.KeyValue("total_budget_seconds", report.total_budget_seconds);
  json.KeyValue("session_seconds", report.session_seconds);
  json.KeyValue("sweep_seconds", report.sweep_seconds);
  json.KeyValue("spent_seconds", report.total_spent_seconds());
  json.KeyValue("diagnosis_seconds", report.diagnosis_seconds);
  json.KeyValue("utilization", report.utilization());
  json.EndObject();
  json.Key("outcomes").BeginObject();
  json.KeyValue("detections", static_cast<uint64_t>(report.detections.size()));
  json.KeyValue("coverage", report.coverage());
  json.KeyValue("mean_time_to_detect_months", report.MeanTimeToDetectMonths());
  json.KeyValue("workload_sdc_events", report.workload_sdc_events);
  json.EndObject();
  json.Key("timeline").BeginArray();
  for (const ScrubEpochPoint& point : report.timeline) {
    json.BeginObject();
    json.KeyValue("epoch", point.epoch);
    json.KeyValue("month", point.month);
    json.KeyValue("budget_seconds", point.budget_seconds);
    json.KeyValue("session_seconds", point.session_seconds);
    json.KeyValue("sweep_seconds", point.sweep_seconds);
    json.KeyValue("spent_seconds", point.spent_seconds());
    json.KeyValue("sessions_funded", point.sessions_funded);
    json.KeyValue("parts_swept", point.parts_swept);
    json.KeyValue("detections", point.detections);
    json.EndObject();
  }
  json.EndArray();
  json.Key("detections").BeginArray();
  for (const ScrubDetection& detection : report.detections) {
    json.BeginObject();
    json.KeyValue("serial", detection.serial);
    json.KeyValue("arch", ArchName(detection.arch_index));
    json.KeyValue("month", detection.month);
    json.KeyValue("rounds", detection.rounds);
    json.KeyValue("scheduled_seconds", detection.scheduled_seconds);
    json.KeyValue("screen_regular_month", detection.screen_regular_month);
    json.KeyValue("deprecated", detection.deprecated);
    json.KeyValue("masked_cores", detection.masked_cores);
    json.Key("provenance").BeginObject();
    json.KeyValue("epoch", detection.provenance.epoch);
    json.KeyValue("rank", static_cast<uint64_t>(detection.provenance.rank));
    json.KeyValue("score", detection.provenance.score);
    json.KeyValue("granted_seconds", detection.provenance.granted_seconds);
    json.KeyValue("consumed_seconds", detection.provenance.consumed_seconds);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.Key("capacity").BeginObject();
  json.KeyValue("fleet_cores", report.capacity.fleet_cores);
  json.KeyValue("production_detections", report.capacity.production_detections);
  json.KeyValue("baseline_cores_lost", report.capacity.baseline_cores_lost);
  json.KeyValue("fine_grained_cores_lost", report.capacity.fine_grained_cores_lost);
  json.KeyValue("parts_deprecated_fine", report.capacity.parts_deprecated_fine);
  json.KeyValue("cores_saved", report.capacity.cores_saved());
  json.KeyValue("retention_factor", report.capacity.RetentionFactor());
  json.EndObject();
  json.EndObject();
}

namespace {

void WriteSeriesSection(JsonWriter& json, const char* section,
                        const std::map<std::string, SeriesData, std::less<>>& series,
                        bool nondeterministic) {
  json.Key(section).BeginObject();
  for (const auto& [name, data] : series) {
    json.Key(name).BeginObject();
    json.Key("points").BeginArray();
    for (const SeriesPoint& point : data.points) {
      json.BeginArray();
      json.Value(point.x);
      json.Value(point.value);
      json.EndArray();
    }
    json.EndArray();
    json.KeyValue("dropped", data.dropped);
    json.KeyValue("total_points", data.total_points);
    if (nondeterministic) {
      json.KeyValue("nondeterministic", true);
    }
    json.EndObject();
  }
  json.EndObject();
}

std::string PromEscapeLabel(std::string_view value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      escaped.push_back('\\');
      escaped.push_back(c);
    } else if (c == '\n') {
      escaped += "\\n";
    } else {
      escaped.push_back(c);
    }
  }
  return escaped;
}

// Renders {k1="v1",k2="v2"} (empty string when there are no labels). `extra` appends one
// more pair -- how histogram buckets get their "le" next to the caller's labels.
std::string PromLabelSetExtra(std::span<const std::pair<std::string, std::string>> labels,
                              std::string_view extra_key = {},
                              std::string_view extra_value = {}) {
  std::string rendered;
  for (const auto& [key, value] : labels) {
    rendered += rendered.empty() ? "{" : ",";
    rendered += key;
    rendered += "=\"";
    rendered += PromEscapeLabel(value);
    rendered += "\"";
  }
  if (!extra_key.empty()) {
    rendered += rendered.empty() ? "{" : ",";
    rendered += extra_key;
    rendered += "=\"";
    rendered += PromEscapeLabel(extra_value);
    rendered += "\"";
  }
  if (!rendered.empty()) {
    rendered += "}";
  }
  return rendered;
}

}  // namespace

void WriteSeriesJson(std::ostream& out, const SeriesSnapshot& snapshot,
                     bool include_host) {
  JsonWriter json(out);
  json.BeginObject();
  WriteSeriesSection(json, "sim", snapshot.sim, /*nondeterministic=*/false);
  if (include_host) {
    WriteSeriesSection(json, "host", snapshot.host, /*nondeterministic=*/true);
  }
  json.KeyValue("hostSeriesIncluded", include_host);
  json.EndObject();
}

std::string PromLabelSet(std::span<const std::pair<std::string, std::string>> labels) {
  return PromLabelSetExtra(labels);
}

// Prometheus sample values: integers render exactly, doubles with round-trip precision
// (the same %.17g the JSON writer uses, so a value is one set of bytes everywhere).
void WritePromSampleValue(std::ostream& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}

std::string PromMetricName(std::string_view name) {
  std::string prom = "sdc_";
  prom.reserve(prom.size() + name.size());
  for (char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
    prom.push_back(keep ? c : '_');
  }
  return prom;
}

void WriteMetricsProm(std::ostream& out, const MetricsSnapshot& snapshot,
                      std::span<const std::pair<std::string, std::string>> labels) {
  const std::string label_set = PromLabelSet(labels);
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PromMetricName(name) + "_total";
    out << "# TYPE " << prom << " counter\n";
    out << prom << label_set << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PromMetricName(name);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << label_set << " ";
    WritePromSampleValue(out, value);
    out << "\n";
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string prom = PromMetricName(name);
    out << "# TYPE " << prom << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t bin = 0; bin < histogram.bin_count(); ++bin) {
      cumulative += histogram.count(bin);
      char upper[64];
      std::snprintf(upper, sizeof(upper), "%.17g",
                    histogram.lo() + histogram.width() * static_cast<double>(bin + 1));
      out << prom << "_bucket" << PromLabelSetExtra(labels, "le", upper) << " "
          << cumulative << "\n";
    }
    out << prom << "_bucket" << PromLabelSetExtra(labels, "le", "+Inf") << " "
        << histogram.total() << "\n";
    out << prom << "_count" << label_set << " " << histogram.total() << "\n";
  }
  // Wall-clock timers: summary-style sum/count. Host-dependent, nondeterministic by
  // contract -- scrape-to-scrape monotonicity still holds, which check_prom.py verifies.
  for (const auto& [name, timer] : snapshot.timers) {
    const std::string prom = PromMetricName(name) + "_seconds";
    out << "# TYPE " << prom << " summary\n";
    out << prom << "_sum" << label_set << " ";
    WritePromSampleValue(out, timer.total_seconds);
    out << "\n";
    out << prom << "_count" << label_set << " " << timer.count << "\n";
  }
}

}  // namespace sdc
