#include "src/report/json_writer.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace sdc {

JsonWriter::JsonWriter(std::ostream& out, bool pretty) : out_(out), pretty_(pretty) {}

std::string JsonWriter::Escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // Only control characters need \u-escaping; everything >= 0x20 -- including
        // bytes >= 0x80, i.e. multi-byte UTF-8 sequences -- passes through verbatim.
        // The loop variable and the cast below must both stay unsigned: formatting a
        // sign-extended char with %04x would turn 0xe2 into "ffffffe2"-style garbage on
        // signed-char platforms (tests/report_test.cc pins the UTF-8 round-trip).
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::Indent() {
  if (!pretty_) {
    return;
  }
  out_ << "\n";
  for (size_t i = 0; i < stack_.size(); ++i) {
    out_ << "  ";
  }
}

void JsonWriter::Prefix(bool is_key) {
  if (expecting_value_ && !is_key) {
    expecting_value_ = false;  // the value completing a key: no separator, no indent
    return;
  }
  if (!stack_.empty()) {
    if (has_items_.back()) {
      out_ << ",";
    }
    has_items_.back() = true;
    Indent();
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Prefix(false);
  out_ << "{";
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

void JsonWriter::CloseDanglingKey() {
  if (!expecting_value_) {
    return;
  }
  // A Key() with no following value: "{"k":}" is not JSON, and the stale flag would also
  // swallow the separator of the next write. Complete the pair with an explicit null (the
  // flag is consumed by Null()'s Prefix) -- but this is a caller bug, so say so in debug.
  assert(!"JsonWriter: Key() was not followed by a value");
  Null();
}

JsonWriter& JsonWriter::EndObject() {
  CloseDanglingKey();
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) {
    Indent();
  }
  out_ << "}";
  if (stack_.empty()) {
    wrote_top_level_ = true;
    if (pretty_) {
      out_ << "\n";
    }
  }
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Prefix(false);
  out_ << "[";
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  CloseDanglingKey();
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) {
    Indent();
  }
  out_ << "]";
  if (stack_.empty()) {
    wrote_top_level_ = true;
    if (pretty_) {
      out_ << "\n";
    }
  }
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  CloseDanglingKey();  // Key() directly after Key(): null out the abandoned one
  Prefix(true);
  out_ << "\"" << Escape(key) << "\":";
  if (pretty_) {
    out_ << " ";
  }
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  Prefix(false);
  out_ << "\"" << Escape(value) << "\"";
  if (stack_.empty()) {
    wrote_top_level_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::Value(const char* value) { return Value(std::string_view(value)); }

JsonWriter& JsonWriter::Value(double value) {
  Prefix(false);
  if (std::isfinite(value)) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out_ << buffer;
  } else {
    out_ << "null";  // JSON has no Inf/NaN
  }
  if (stack_.empty()) {
    wrote_top_level_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  Prefix(false);
  out_ << value;
  if (stack_.empty()) {
    wrote_top_level_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  Prefix(false);
  out_ << value;
  if (stack_.empty()) {
    wrote_top_level_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::Value(int value) { return Value(static_cast<int64_t>(value)); }

JsonWriter& JsonWriter::Value(bool value) {
  Prefix(false);
  out_ << (value ? "true" : "false");
  if (stack_.empty()) {
    wrote_top_level_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Prefix(false);
  out_ << "null";
  if (stack_.empty()) {
    wrote_top_level_ = true;
  }
  return *this;
}

}  // namespace sdc
