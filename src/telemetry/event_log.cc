#include "src/telemetry/event_log.h"

#include "src/telemetry/metrics.h"

namespace sdc {

std::string EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSdcDetected:
      return "sdc-detected";
    case EventKind::kCoreMasked:
      return "core-masked";
    case EventKind::kProcessorDeprecated:
      return "processor-deprecated";
    case EventKind::kRoundStarted:
      return "round-started";
    case EventKind::kRoundCompleted:
      return "round-completed";
    case EventKind::kBackoffEngaged:
      return "backoff-engaged";
    case EventKind::kBackoffReleased:
      return "backoff-released";
    case EventKind::kCoolingBoosted:
      return "cooling-boosted";
    case EventKind::kBoundaryRaised:
      return "boundary-raised";
    case EventKind::kCampaignSubmitted:
      return "campaign-submitted";
    case EventKind::kCampaignStarted:
      return "campaign-started";
    case EventKind::kCampaignFinished:
      return "campaign-finished";
  }
  return "?";
}

EventLog::EventLog(size_t capacity) : capacity_(capacity) {}

void EventLog::Record(Event event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++total_recorded_;
  ++counts_[event.kind];
  if (metrics_ != nullptr) {
    metrics_->Add("events.recorded");
    metrics_->Add("events." + EventKindName(event.kind));
  }
  events_.push_back(std::move(event));
  if (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_events_;
    if (metrics_ != nullptr) {
      metrics_->Add("events.dropped");
    }
  }
}

void EventLog::Record(EventKind kind, double time_seconds, std::string subject, int pcore,
                      double value) {
  Event event;
  event.kind = kind;
  event.time_seconds = time_seconds;
  event.subject = std::move(subject);
  event.pcore = pcore;
  event.value = value;
  Record(std::move(event));
}

void EventLog::AttachMetrics(MetricsRegistry* metrics) {
  const std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = metrics;
}

std::vector<Event> EventLog::RetainedEvents() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<Event>(events_.begin(), events_.end());
}

uint64_t EventLog::total_recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

uint64_t EventLog::dropped_events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_events_;
}

uint64_t EventLog::CountOf(EventKind kind) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counts_.find(kind);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<Event> EventLog::EventsOf(EventKind kind) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  for (const Event& event : events_) {
    if (event.kind == kind) {
      out.push_back(event);
    }
  }
  return out;
}

void EventLog::Dump(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Event& event : events_) {
    out << "[" << event.time_seconds << "s] " << EventKindName(event.kind) << " "
        << event.subject;
    if (event.pcore >= 0) {
      out << " pcore=" << event.pcore;
    }
    if (event.value != 0.0) {
      out << " value=" << event.value;
    }
    out << "\n";
  }
}

void EventLog::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  counts_.clear();
  total_recorded_ = 0;
  dropped_events_ = 0;
}

}  // namespace sdc
