#include "src/telemetry/trace.h"

#include <algorithm>
#include <iterator>
#include <map>

namespace sdc {

TraceEvent MakeTraceSpan(std::string name, std::string category, int track,
                         double timestamp, double duration) {
  TraceEvent event;
  event.phase = 'X';
  event.name = std::move(name);
  event.category = std::move(category);
  event.track = track;
  event.timestamp = timestamp;
  event.duration = duration;
  return event;
}

TraceEvent MakeTraceInstant(std::string name, std::string category, int track,
                            double timestamp) {
  TraceEvent event;
  event.phase = 'i';
  event.name = std::move(name);
  event.category = std::move(category);
  event.track = track;
  event.timestamp = timestamp;
  return event;
}

void TraceDelta::MergeFrom(TraceDelta&& other) {
  if (events_.empty()) {
    events_ = std::move(other.events_);
    return;
  }
  // No exact-size reserve here: repeated merges must keep vector growth geometric, or a
  // chain of N single-event merges degrades to O(N^2) element moves.
  events_.insert(events_.end(), std::make_move_iterator(other.events_.begin()),
                 std::make_move_iterator(other.events_.end()));
  other.events_.clear();
}

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

void TraceRecorder::MergeDelta(TraceDelta&& delta) {
  if (delta.empty()) {
    return;
  }
  // Move the buffer out before taking the lock, and append without an exact-size
  // reserve: per-shard merges arrive one at a time, so geometric growth is what keeps
  // the recorder O(total events) instead of O(events^2).
  std::vector<TraceEvent> events = std::move(delta).TakeEvents();
  const std::lock_guard<std::mutex> lock(mutex_);
  sim_events_.insert(sim_events_.end(), std::make_move_iterator(events.begin()),
                     std::make_move_iterator(events.end()));
}

double TraceRecorder::HostNowSeconds() const {
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - epoch_;
  return elapsed.count();
}

void TraceRecorder::RecordHostSpan(std::string name, std::string category, int track,
                                   double start_seconds, double duration_seconds) {
  TraceEvent event = MakeTraceSpan(std::move(name), std::move(category), track,
                                   start_seconds * 1e6, duration_seconds * 1e6);
  const std::lock_guard<std::mutex> lock(mutex_);
  host_events_.push_back(std::move(event));
}

TraceRecorder::ScopedHostSpan::~ScopedHostSpan() {
  if (recorder_ == nullptr) {
    return;
  }
  const double now = recorder_->HostNowSeconds();
  recorder_->RecordHostSpan(std::move(name_), std::move(category_), track_,
                            start_seconds_, now - start_seconds_);
}

TraceSnapshot TraceRecorder::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceSnapshot snapshot;
  snapshot.sim = sim_events_;
  snapshot.host = host_events_;
  return snapshot;
}

void TraceRecorder::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  sim_events_.clear();
  host_events_.clear();
}

TraceSummary SummarizeTrace(const TraceSnapshot& snapshot, size_t top_n) {
  TraceSummary summary;
  summary.sim_events = snapshot.sim.size();
  std::map<std::string, TraceCategorySummary> by_category;
  for (const TraceEvent& event : snapshot.sim) {
    TraceCategorySummary& entry = by_category[event.category];
    entry.category = event.category;
    if (event.phase == 'X') {
      ++entry.spans;
      entry.sim_duration_total += event.duration;
    } else {
      ++entry.instants;
    }
  }
  summary.categories.reserve(by_category.size());
  for (auto& [name, entry] : by_category) {
    summary.categories.push_back(std::move(entry));
  }
  for (const TraceEvent& event : snapshot.host) {
    if (event.phase == 'X') {
      ++summary.host_spans;
    }
  }
  std::vector<TraceEvent> host = snapshot.host;
  std::stable_sort(host.begin(), host.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.duration > b.duration;
  });
  if (host.size() > top_n) {
    host.resize(top_n);
  }
  summary.slowest_host = std::move(host);
  return summary;
}

void TraceSummary::DumpText(std::ostream& out) const {
  out << "trace: " << sim_events << " sim events, " << host_spans << " host spans\n";
  for (const TraceCategorySummary& entry : categories) {
    out << "  category " << entry.category << ": " << entry.spans << " spans, "
        << entry.instants << " instants, sim total " << entry.sim_duration_total << "\n";
  }
  if (!slowest_host.empty()) {
    out << "  slowest host spans:\n";
    for (const TraceEvent& event : slowest_host) {
      out << "    " << event.name << " " << event.duration / 1e6 << " s\n";
    }
  }
}

}  // namespace sdc
