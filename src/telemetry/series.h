// Live time-series for the screening machinery: named fixed-capacity ring buffers of
// (x, value) points, sampled at shard/epoch boundaries so a long campaign can be watched
// while it runs (sdcd `stats`, `sdcctl top`) instead of only post-hoc through
// MetricsSnapshot. Production screening fleets (Meta's SDC program, SiliFuzz) are
// operated, not just launched -- throughput, coverage, and straggler detection all need
// the trajectory, not the final totals.
//
// Determinism contract (the split MetricsSnapshot::timers already imposes): every series
// carries a clock domain. kSim series advance on simulation progress (processor serials
// screened, scrub months elapsed) and are appended only from serial code -- the shard-
// ordered fold after a parallel pass, or the scrubber's serial epoch loop -- so their
// points, their order, and even their ring evictions are bit-identical at any thread
// count. kHost series (rates, queue depth, lane occupancy) advance on wall clock and are
// segregated into their own snapshot section so byte-compares can exclude them.
//
// Thread safety: one mutex serializes every entry point. The design stays lock-light
// because appends happen at shard/epoch boundaries (hundreds per pass, not per
// processor); the hot kernels never touch the recorder.

#ifndef SDC_SRC_TELEMETRY_SERIES_H_
#define SDC_SRC_TELEMETRY_SERIES_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sdc {

enum class SeriesClock {
  kSim,   // x is simulation progress: deterministic, byte-comparable
  kHost,  // x is host time: nondeterministic by contract, segregated
};

struct SeriesPoint {
  double x = 0.0;      // sim: serial/month; host: seconds since an epoch the writer picks
  double value = 0.0;

  friend bool operator==(const SeriesPoint& a, const SeriesPoint& b) {
    return a.x == b.x && a.value == b.value;
  }
};

// One series' retained window, oldest first. total_points == points.size() + dropped at
// all times, so a consumer can always tell a complete trajectory from a truncated one.
struct SeriesData {
  SeriesClock clock = SeriesClock::kSim;
  std::vector<SeriesPoint> points;
  uint64_t dropped = 0;
  uint64_t total_points = 0;
};

// Point-in-time copy of a recorder, clock domains segregated. Maps are name-sorted, so
// rendering a snapshot is itself deterministic.
struct SeriesSnapshot {
  std::map<std::string, SeriesData, std::less<>> sim;
  std::map<std::string, SeriesData, std::less<>> host;

  bool empty() const { return sim.empty() && host.empty(); }
};

// Shared, mutex-guarded series sink. Engine paths accept an optional SeriesRecorder*
// (config field or EngineContext attachment) and stay silent when it is null.
class SeriesRecorder {
 public:
  // `capacity` bounds every ring; once full, the oldest point is evicted and counted in
  // SeriesData::dropped. Eviction depends only on append order, so bounded kSim rings
  // stay deterministic too.
  explicit SeriesRecorder(size_t capacity = 512);
  SeriesRecorder(const SeriesRecorder&) = delete;
  SeriesRecorder& operator=(const SeriesRecorder&) = delete;

  // Appends one point. The clock domain is fixed by the first append of `series`; later
  // appends reuse it (same pinning idiom as MetricsDelta::Observe's histogram bounds).
  void Append(std::string_view series, SeriesClock clock, double x, double value);

  SeriesSnapshot Snapshot() const;
  void Clear();

  size_t capacity() const { return capacity_; }

 private:
  struct Ring {
    SeriesClock clock = SeriesClock::kSim;
    std::vector<SeriesPoint> points;  // circular once full; `start` is the oldest slot
    size_t start = 0;
    uint64_t total_points = 0;
  };

  mutable std::mutex mutex_;
  const size_t capacity_;
  std::map<std::string, Ring, std::less<>> rings_;
};

}  // namespace sdc

#endif  // SDC_SRC_TELEMETRY_SERIES_H_
