// Structured telemetry for the mitigation stack: a bounded, typed event log plus monotonic
// counters. Production SDC mitigation lives and dies by its audit trail -- which testcase
// fired on which core at what temperature, when a core was masked, when backoff engaged --
// so Farron and the protection loop emit events through this sink when one is attached.

#ifndef SDC_SRC_TELEMETRY_EVENT_LOG_H_
#define SDC_SRC_TELEMETRY_EVENT_LOG_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace sdc {

class MetricsRegistry;

enum class EventKind {
  kSdcDetected,        // a testcase observed corruption
  kCoreMasked,         // fine-grained decommission removed a core
  kProcessorDeprecated,
  kRoundStarted,       // a regular/pre-production test round began
  kRoundCompleted,
  kBackoffEngaged,     // workload throttled
  kBackoffReleased,
  kCoolingBoosted,     // fan/pump stepped up
  kBoundaryRaised,     // adaptive boundary learned upward
  // Campaign lifecycle (the sdcd daemon's audit trail; time_seconds is host seconds
  // since daemon start for these, value is the campaign id).
  kCampaignSubmitted,
  kCampaignStarted,    // lanes granted, pass started
  kCampaignFinished,   // reached a terminal state (done / cancelled / failed)
};

std::string EventKindName(EventKind kind);

struct Event {
  EventKind kind = EventKind::kSdcDetected;
  double time_seconds = 0.0;   // simulated processor clock
  std::string subject;         // cpu id, testcase id, or similar
  int pcore = -1;              // affected physical core, when applicable
  double value = 0.0;          // temperature, duration, count -- kind-specific
};

// Bounded in-memory event log with per-kind counters. Oldest events are dropped once the
// capacity is reached (the counters keep the full totals), and every eviction is counted
// in dropped_events() -- so a consumer of RetainedEvents() can always tell a complete
// window from a truncated one -- and bridged as "events.dropped" when a registry is
// attached.
//
// Thread safety: all members serialize on an internal mutex, so emitters running under
// parallel_plan_entries may Record concurrently. When a MetricsRegistry is attached, each
// Record also bumps that registry's "events.<kind-name>" counter while still holding the
// log's lock; the lock order is always EventLog -> MetricsRegistry (the registry never
// calls back into the log), so sharing both across threads cannot deadlock.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 4096);

  void Record(Event event);
  void Record(EventKind kind, double time_seconds, std::string subject, int pcore = -1,
              double value = 0.0);

  // Bridges events into `metrics` as "events.<kind-name>" counters (plus the
  // "events.recorded" total). Pass nullptr to detach; the registry must outlive the log
  // or be detached first. Bridged counts are deterministic whenever the emitting workload
  // is: merge order only matters for gauges, and the bridge emits none.
  void AttachMetrics(MetricsRegistry* metrics);

  // Snapshot of the retained window, oldest first. total_recorded() ==
  // RetainedEvents().size() + dropped_events() at all times.
  std::vector<Event> RetainedEvents() const;
  uint64_t total_recorded() const;
  // Events evicted from the bounded window so far (never silently discarded).
  uint64_t dropped_events() const;
  uint64_t CountOf(EventKind kind) const;

  // Events of one kind, oldest first (within the retained window).
  std::vector<Event> EventsOf(EventKind kind) const;

  // Renders the retained window as one line per event.
  void Dump(std::ostream& out) const;

  void Clear();

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  std::deque<Event> events_;
  std::map<EventKind, uint64_t> counts_;
  uint64_t total_recorded_ = 0;
  uint64_t dropped_events_ = 0;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace sdc

#endif  // SDC_SRC_TELEMETRY_EVENT_LOG_H_
