#include "src/telemetry/series.h"

#include <algorithm>
#include <utility>

namespace sdc {

SeriesRecorder::SeriesRecorder(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void SeriesRecorder::Append(std::string_view series, SeriesClock clock, double x,
                            double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rings_.find(series);
  if (it == rings_.end()) {
    Ring ring;
    ring.clock = clock;
    ring.points.reserve(std::min<size_t>(capacity_, 64));
    it = rings_.emplace(std::string(series), std::move(ring)).first;
  }
  Ring& ring = it->second;
  ring.total_points++;
  if (ring.points.size() < capacity_) {
    ring.points.push_back(SeriesPoint{x, value});
    return;
  }
  // Ring is full: overwrite the oldest slot and advance the window.
  ring.points[ring.start] = SeriesPoint{x, value};
  ring.start = (ring.start + 1) % capacity_;
}

SeriesSnapshot SeriesRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SeriesSnapshot snapshot;
  for (const auto& [name, ring] : rings_) {
    SeriesData data;
    data.clock = ring.clock;
    data.total_points = ring.total_points;
    data.dropped = ring.total_points - ring.points.size();
    data.points.reserve(ring.points.size());
    // Unroll the circular buffer into oldest-first order.
    for (size_t i = 0; i < ring.points.size(); ++i) {
      data.points.push_back(ring.points[(ring.start + i) % ring.points.size()]);
    }
    (ring.clock == SeriesClock::kSim ? snapshot.sim : snapshot.host)
        .emplace(name, std::move(data));
  }
  return snapshot;
}

void SeriesRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.clear();
}

}  // namespace sdc
