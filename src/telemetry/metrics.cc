#include "src/telemetry/metrics.h"

#include <utility>

namespace sdc {

void TimerStat::Record(double seconds) {
  if (count == 0 || seconds < min_seconds) {
    min_seconds = seconds;
  }
  if (count == 0 || seconds > max_seconds) {
    max_seconds = seconds;
  }
  ++count;
  total_seconds += seconds;
}

void TimerStat::MergeFrom(const TimerStat& other) {
  if (other.count == 0) {
    return;
  }
  if (count == 0 || other.min_seconds < min_seconds) {
    min_seconds = other.min_seconds;
  }
  if (count == 0 || other.max_seconds > max_seconds) {
    max_seconds = other.max_seconds;
  }
  count += other.count;
  total_seconds += other.total_seconds;
}

void MetricsDelta::Add(std::string_view counter, uint64_t n) {
  const auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), n);
  } else {
    it->second += n;
  }
}

void MetricsDelta::Set(std::string_view gauge, double value) {
  const auto it = gauges_.find(gauge);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(gauge), value);
  } else {
    it->second = value;
  }
}

void MetricsDelta::Observe(std::string_view histogram, double value, double lo, double hi,
                           size_t bins) {
  auto it = histograms_.find(histogram);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(histogram), Histogram(lo, hi, bins)).first;
  }
  it->second.Add(value);
}

void MetricsDelta::MergeFrom(const MetricsDelta& other) {
  for (const auto& [name, n] : other.counters_) {
    Add(name, n);
  }
  for (const auto& [name, value] : other.gauges_) {
    Set(name, value);
  }
  for (const auto& [name, histogram] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, histogram);
    } else {
      it->second.MergeFrom(histogram);
    }
  }
}

uint64_t MetricsSnapshot::CounterOr(std::string_view name, uint64_t fallback) const {
  const auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, n] : other.counters) {
    counters[name] += n;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] = value;
  }
  for (const auto& [name, histogram] : other.histograms) {
    const auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, histogram);
    } else {
      it->second.MergeFrom(histogram);
    }
  }
  for (const auto& [name, timer] : other.timers) {
    timers[name].MergeFrom(timer);
  }
}

void MetricsSnapshot::DumpText(std::ostream& out) const {
  for (const auto& [name, n] : counters) {
    out << "counter " << name << " = " << n << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << "gauge " << name << " = " << value << "\n";
  }
  for (const auto& [name, histogram] : histograms) {
    out << "histogram " << name << " total=" << histogram.total() << " bins=[";
    for (size_t bin = 0; bin < histogram.bin_count(); ++bin) {
      out << (bin == 0 ? "" : " ") << histogram.count(bin);
    }
    out << "]\n";
  }
  for (const auto& [name, timer] : timers) {
    out << "timer " << name << " count=" << timer.count << " total=" << timer.total_seconds
        << "s min=" << timer.min_seconds << "s max=" << timer.max_seconds
        << "s (wall clock, nondeterministic)\n";
  }
}

void MetricsRegistry::Add(std::string_view counter, uint64_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.Add(counter, n);
}

void MetricsRegistry::Set(std::string_view gauge, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.Set(gauge, value);
}

void MetricsRegistry::Observe(std::string_view histogram, double value, double lo,
                              double hi, size_t bins) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.Observe(histogram, value, lo, hi, bins);
}

void MetricsRegistry::MergeDelta(const MetricsDelta& delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.MergeFrom(delta);
}

void MetricsRegistry::RecordTimerSeconds(std::string_view timer, double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timers_.find(timer);
  if (it == timers_.end()) {
    TimerStat stat;
    stat.Record(seconds);
    timers_.emplace(std::string(timer), stat);
  } else {
    it->second.Record(seconds);
  }
}

MetricsRegistry::ScopedTimer::~ScopedTimer() {
  if (registry_ == nullptr) {
    return;
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start_;
  registry_->RecordTimerSeconds(timer_, elapsed.count());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.insert(data_.counters().begin(), data_.counters().end());
  snapshot.gauges.insert(data_.gauges().begin(), data_.gauges().end());
  snapshot.histograms.insert(data_.histograms().begin(), data_.histograms().end());
  snapshot.timers = timers_;
  return snapshot;
}

void MetricsRegistry::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_ = MetricsDelta();
  timers_.clear();
}

}  // namespace sdc
