// Fleet-wide metrics for the screening machinery itself: named counters, gauges, and
// bounded histograms, plus RAII wall-clock timers. The paper's whole methodology is
// counting -- failure rates per stage, per architecture, per testcase -- and production
// screening fleets (Meta's SDC program, SiliFuzz) live or die by the observability of the
// screening pipeline, so the pipeline that computes those numbers instruments itself here.
//
// Determinism contract (the same one docs/parallelism.md imposes on results): parallel
// stages accumulate into per-shard MetricsDelta objects that the caller merges in shard
// order, so every counter, gauge, and histogram value is bit-identical at any thread
// count. Wall-clock timers are the one deliberate exception: they measure the host, not
// the simulation, and are segregated into their own section flagged nondeterministic so
// snapshot comparisons can exclude them (MetricsSnapshot::timers, WriteMetricsJson's
// include_timers switch).
//
// Thread safety: MetricsDelta is a plain single-thread accumulator (one per shard);
// MetricsRegistry serializes every entry point behind one mutex, so worker threads may
// record timers concurrently while shard merges happen on the calling thread. EventLog
// can bridge into a registry (EventLog::AttachMetrics); its lock is always taken before
// the registry's, never the reverse, so the pair cannot deadlock.

#ifndef SDC_SRC_TELEMETRY_METRICS_H_
#define SDC_SRC_TELEMETRY_METRICS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "src/common/stats.h"

namespace sdc {

// Aggregate of one wall-clock timer: total/min/max over `count` recorded spans. Values are
// host-dependent and therefore excluded from the determinism contract.
struct TimerStat {
  uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;  // 0 until the first record
  double max_seconds = 0.0;

  void Record(double seconds);
  void MergeFrom(const TimerStat& other);
};

// Single-threaded accumulator for one shard of a parallel stage. Shards fill private
// deltas and the caller merges them in shard order (MetricsRegistry::MergeDelta), which
// keeps order-sensitive updates (gauges are last-write-wins) reproducible.
class MetricsDelta {
 public:
  // Adds `n` to a named monotonic counter.
  void Add(std::string_view counter, uint64_t n = 1);
  // Sets a named gauge; the last write (in merge order) wins.
  void Set(std::string_view gauge, double value);
  // Adds `value` to a named bounded histogram over [lo, hi) with `bins` buckets. The
  // bounds are fixed by the first observation of the name; later calls reuse them.
  void Observe(std::string_view histogram, double value, double lo, double hi, size_t bins);

  // Folds `other` into this delta, other's entries applied after this delta's own.
  void MergeFrom(const MetricsDelta& other);

  bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }

  const std::map<std::string, uint64_t, std::less<>>& counters() const { return counters_; }
  const std::map<std::string, double, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Point-in-time copy of a registry: the deterministic sections (counters, gauges,
// histograms) plus the wall-clock timers. Maps are name-sorted, so rendering a snapshot
// is itself deterministic.
struct MetricsSnapshot {
  std::map<std::string, uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
  std::map<std::string, TimerStat, std::less<>> timers;  // nondeterministic (wall clock)

  uint64_t CounterOr(std::string_view name, uint64_t fallback = 0) const;

  // Folds another snapshot into this one: counters and same-shape histograms sum, gauges
  // are last-write-wins (other's value lands after this one's), and timers fold through
  // TimerStat::MergeFrom -- min stays the true minimum even when either side is empty.
  // This is how the sdcd daemon aggregates per-campaign registries into one fleet-wide
  // Prometheus exposition (src/daemon/protocol.cc).
  void MergeFrom(const MetricsSnapshot& other);

  // One line per metric ("counter fleet.generate.processors = 100000"); timers last,
  // marked with their unit. Meant for the bench harnesses' stdout.
  void DumpText(std::ostream& out) const;
};

// Shared, mutex-guarded metric sink. Hot paths accept an optional MetricsRegistry* and
// stay silent when it is null.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Deterministic metrics (same semantics as MetricsDelta, serialized by the mutex).
  void Add(std::string_view counter, uint64_t n = 1);
  void Set(std::string_view gauge, double value);
  void Observe(std::string_view histogram, double value, double lo, double hi, size_t bins);

  // Applies one shard's delta. Call in ascending shard order for reproducible gauges;
  // counters and histograms commute regardless.
  void MergeDelta(const MetricsDelta& delta);

  // Wall-clock timers: nondeterministic by contract, safe to record from worker threads.
  void RecordTimerSeconds(std::string_view timer, double seconds);

  // RAII span timer; records into `registry` (nothing when null) on destruction.
  class ScopedTimer {
   public:
    ScopedTimer(MetricsRegistry* registry, std::string timer)
        : registry_(registry),
          timer_(std::move(timer)),
          start_(std::chrono::steady_clock::now()) {}
    ~ScopedTimer();
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    MetricsRegistry* registry_;
    std::string timer_;
    std::chrono::steady_clock::time_point start_;
  };

  MetricsSnapshot Snapshot() const;
  void Clear();

 private:
  mutable std::mutex mutex_;
  MetricsDelta data_;
  std::map<std::string, TimerStat, std::less<>> timers_;
};

}  // namespace sdc

#endif  // SDC_SRC_TELEMETRY_METRICS_H_
