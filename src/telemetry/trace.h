// Deterministic trace/span layer for the screening machinery (docs/observability.md).
//
// Metrics (src/telemetry/metrics.h) answer "how much"; this layer answers "when and
// which": a per-event timeline of the pipeline -- which generation shard produced which
// serials, which screening sub-shard (and therefore which global RNG stream) screened
// them, which plan entry the toolchain was running, when the protection loop throttled --
// exported as Chrome/Perfetto trace-event JSON (WriteTraceJson, src/report/exporters.h)
// so a production-scale run can be root-caused span by span, the audit trail the paper's
// Section 5-6 workflow and Meta's fleetscanner program both presuppose.
//
// Two clock domains, mirroring the TimerStat split:
//  * kSim -- the deterministic domain. Timestamps are workload units: processor serials
//    for fleet passes (a shard covering serials [begin, end) is a span at ts=begin,
//    dur=end-begin) and simulated microseconds for the toolchain and protection loops.
//    Sim events obey the determinism contract of docs/parallelism.md: parallel stages
//    accumulate into per-shard TraceDelta buffers that the caller merges in shard order,
//    so the sim section of a trace is byte-identical at any thread count.
//  * kHost -- wall-clock spans (drive/run/aggregate/clone costs), recorded from any
//    thread under the recorder's mutex and segregated exactly like wall-clock timers:
//    flagged nondeterministic, excluded by WriteTraceJson(..., include_host = false),
//    which is what the determinism tests compare.
//
// Recording is zero-cost when no recorder is attached: every hot path takes an optional
// TraceRecorder* (defaulting to null) and guards each emission site with one pointer
// test; bench/micro_trace.cc pins the disabled overhead.

#ifndef SDC_SRC_TELEMETRY_TRACE_H_
#define SDC_SRC_TELEMETRY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace sdc {

// Which clock a trace event's timestamp belongs to. Sim events are deterministic; host
// events measure the machine running the simulation and are excluded from byte-identity.
enum class TraceDomain {
  kSim = 0,
  kHost = 1,
};

// Logical tracks ("tid" in the trace-event output) -- one per instrumented stage, so the
// Perfetto timeline renders the pipeline as parallel swimlanes.
inline constexpr int kTraceTrackGenerate = 1;    // fleet generation shards
inline constexpr int kTraceTrackScreen = 2;      // screening sub-shards
inline constexpr int kTraceTrackDetection = 3;   // per-detection provenance instants
inline constexpr int kTraceTrackAggregate = 4;   // shard-order merges / stitches
inline constexpr int kTraceTrackToolchain = 5;   // toolchain plan entries
inline constexpr int kTraceTrackProtection = 6;  // Farron protection loop
inline constexpr int kTraceTrackScrub = 7;       // fleet scrubber epochs and detections

// Process ids in the trace-event output: one synthetic process per clock domain.
inline constexpr int kTracePidSim = 1;
inline constexpr int kTracePidHost = 2;

// One trace event. phase follows the Chrome trace-event vocabulary: 'X' is a complete
// span (timestamp + duration), 'i' an instant. Arguments are split by value type so the
// JSON exporter can emit numbers as numbers.
struct TraceEvent {
  char phase = 'X';
  std::string name;
  std::string category;
  int track = kTraceTrackGenerate;
  double timestamp = 0.0;  // domain units (serials / simulated us for kSim, us for kHost)
  double duration = 0.0;   // spans only
  std::vector<std::pair<std::string, std::string>> str_args;
  std::vector<std::pair<std::string, double>> num_args;
};

TraceEvent MakeTraceSpan(std::string name, std::string category, int track,
                         double timestamp, double duration);
TraceEvent MakeTraceInstant(std::string name, std::string category, int track,
                            double timestamp);

// Single-threaded accumulator for one shard (or one serial stage) of sim-domain events.
// Shards fill private deltas; the caller merges them into the recorder in shard order,
// which is what makes the sim section thread-count invariant -- the same contract
// MetricsDelta follows.
class TraceDelta {
 public:
  void Add(TraceEvent event) { events_.push_back(std::move(event)); }
  // Appends `other`'s events after this delta's own.
  void MergeFrom(TraceDelta&& other);

  bool empty() const { return events_.empty(); }
  const std::vector<TraceEvent>& events() const { return events_; }
  // Consumes the delta, releasing its event buffer without copying.
  std::vector<TraceEvent> TakeEvents() && { return std::move(events_); }

 private:
  std::vector<TraceEvent> events_;
};

// Point-in-time copy of a recorder: the deterministic sim timeline (merge order
// preserved) plus the nondeterministic host spans (recording order, schedule-dependent).
struct TraceSnapshot {
  std::vector<TraceEvent> sim;
  std::vector<TraceEvent> host;
};

// Shared, mutex-guarded trace sink. Hot paths accept an optional TraceRecorder* and stay
// silent when it is null; sim deltas are merged on the calling thread in shard order
// while host spans may be recorded concurrently from workers.
class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Appends one shard's sim events. Call in ascending shard order; the sim timeline's
  // byte-identity at any thread count depends on it (docs/parallelism.md).
  void MergeDelta(TraceDelta&& delta);

  // Host wall-clock span, timed from the recorder's construction epoch. Nondeterministic
  // by contract; safe from any thread.
  void RecordHostSpan(std::string name, std::string category, int track,
                      double start_seconds, double duration_seconds);

  // Seconds since the recorder was constructed (host steady clock).
  double HostNowSeconds() const;

  // RAII host span; records into `recorder` (nothing when null) on destruction.
  class ScopedHostSpan {
   public:
    ScopedHostSpan(TraceRecorder* recorder, std::string name, std::string category,
                   int track)
        : recorder_(recorder),
          name_(std::move(name)),
          category_(std::move(category)),
          track_(track),
          start_seconds_(recorder != nullptr ? recorder->HostNowSeconds() : 0.0) {}
    ~ScopedHostSpan();
    ScopedHostSpan(const ScopedHostSpan&) = delete;
    ScopedHostSpan& operator=(const ScopedHostSpan&) = delete;

   private:
    TraceRecorder* recorder_;
    std::string name_;
    std::string category_;
    int track_;
    double start_seconds_;
  };

  TraceSnapshot Snapshot() const;
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> sim_events_;
  std::vector<TraceEvent> host_events_;
};

// Per-category rollup of one snapshot, the data behind `sdcctl trace`.
struct TraceCategorySummary {
  std::string category;
  uint64_t spans = 0;
  uint64_t instants = 0;
  double sim_duration_total = 0.0;  // domain units, spans only
};

struct TraceSummary {
  std::vector<TraceCategorySummary> categories;  // sorted by category name
  uint64_t sim_events = 0;
  uint64_t host_spans = 0;
  std::vector<TraceEvent> slowest_host;  // top-N host spans, descending duration

  // Per-stage span counts, sim-time attribution, and the slowest host spans as text.
  void DumpText(std::ostream& out) const;
};

TraceSummary SummarizeTrace(const TraceSnapshot& snapshot, size_t top_n = 5);

}  // namespace sdc

#endif  // SDC_SRC_TELEMETRY_TRACE_H_
