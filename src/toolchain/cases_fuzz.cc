// Proxy-fuzzing testcases (SiliFuzz/OpenDCDiag style, Section 6.1): deterministic
// pseudo-random instruction mixes that self-check every routed result. Where the curated
// kernels each stress one feature, a fuzz case sprays operations across the scalar and
// vector pools -- broad but shallow coverage that complements the targeted suite. Also:
// Adler-32 and CRC-64 checksum kernels, companions to the CRC32 cases.

#include <cmath>
#include <string>
#include <vector>

#include "src/integrity/adler32.h"
#include "src/toolchain/cases.h"

namespace sdc {
namespace {

// The checksum cases keep their workload buffer batch-local: testcase objects are shared
// across all machines driving the suite, and a parallel RunPlan may run the same case on
// several machine clones at once, so kernels must not carry mutable state.
class AdlerChecksumCase : public TestcaseBase {
 public:
  AdlerChecksumCase(TestcaseInfo info, int bytes)
      : TestcaseBase(std::move(info)), bytes_(bytes) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    std::vector<uint8_t> buffer(static_cast<size_t>(bytes_));
    for (auto& byte : buffer) {
      byte = static_cast<uint8_t>(context.rng->Next());
    }
    const uint32_t golden = Adler32(buffer);
    const uint32_t routed = Adler32OnProcessor(cpu, lcore, buffer);
    if (routed != golden) {
      context.RecordComputation(info_.id, lcore, DataType::kUInt32, BitsOfUInt32(golden),
                                BitsOfUInt32(routed));
    }
  }

 private:
  int bytes_;
};

class Crc64Case : public TestcaseBase {
 public:
  Crc64Case(TestcaseInfo info, int bytes)
      : TestcaseBase(std::move(info)), bytes_(bytes) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    std::vector<uint8_t> buffer(static_cast<size_t>(bytes_));
    for (auto& byte : buffer) {
      byte = static_cast<uint8_t>(context.rng->Next());
    }
    const uint64_t golden = Crc64(buffer);
    const uint64_t routed = Crc64OnProcessor(cpu, lcore, buffer);
    if (routed != golden) {
      context.RecordComputation(info_.id, lcore, DataType::kBin64, BitsOfRaw(golden, 64),
                                BitsOfRaw(routed, 64));
    }
  }

 private:
  int bytes_;
};

class FuzzCase : public TestcaseBase {
 public:
  FuzzCase(TestcaseInfo info, uint64_t stream_seed, int ops)
      : TestcaseBase(std::move(info)), stream_seed_(stream_seed), ops_(ops) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    // The op sequence is a fixed function of the case's stream seed (the fuzzer's corpus
    // entry); operand values vary batch to batch through the context rng.
    Rng sequence(stream_seed_);
    for (int i = 0; i < ops_; ++i) {
      const size_t pick = sequence.NextBelow(info_.ops.size());
      const OpKind op = info_.ops[pick];
      switch (op) {
        case OpKind::kFpAdd:
        case OpKind::kFpMul:
        case OpKind::kFpFma:
        case OpKind::kVecFmaF64: {
          const double a = context.rng->NextDouble() * 64.0 - 32.0;
          const double b = context.rng->NextDouble() * 64.0 - 32.0;
          const double golden = op == OpKind::kFpAdd ? a + b : a * b + (a - b);
          const double routed = cpu.ExecuteF64(lcore, op, golden);
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, DataType::kFloat64,
                                      BitsOfDouble(golden), BitsOfDouble(routed));
          }
          break;
        }
        case OpKind::kFpArctan: {
          const double golden = std::atan(context.rng->NextDouble() * 4.0 - 2.0);
          const double routed = cpu.ExecuteF64(lcore, op, golden);
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, DataType::kFloat64,
                                      BitsOfDouble(golden), BitsOfDouble(routed));
          }
          break;
        }
        case OpKind::kVecFmaF32: {
          const auto a = static_cast<float>(context.rng->NextDouble() * 8.0 - 4.0);
          const auto b = static_cast<float>(context.rng->NextDouble() * 8.0 - 4.0);
          const float golden = a * b + (a - b);
          const float routed = cpu.ExecuteF32(lcore, op, golden);
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, DataType::kFloat32,
                                      BitsOfFloat(golden), BitsOfFloat(routed));
          }
          break;
        }
        case OpKind::kIntMul:
        case OpKind::kIntAdd: {
          const auto a = static_cast<int32_t>(context.rng->NextInRange(-40000, 40000));
          const auto b = static_cast<int32_t>(context.rng->NextInRange(-40000, 40000));
          const int32_t golden = op == OpKind::kIntMul ? a * b : a + b;
          const int32_t routed = cpu.ExecuteI32(lcore, op, golden);
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, DataType::kInt32,
                                      BitsOfInt32(golden), BitsOfInt32(routed));
          }
          break;
        }
        default: {  // logic / crc / hash ops over raw 32-bit payloads
          const uint64_t a = context.rng->Next() & 0xffffffffull;
          const uint64_t b = context.rng->Next() & 0xffffffffull;
          const uint64_t golden = (a ^ (b >> 3)) & 0xffffffffull;
          const uint64_t routed = cpu.ExecuteRaw(lcore, op, golden, DataType::kBin32);
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, DataType::kBin32,
                                      BitsOfRaw(golden, 32), BitsOfRaw(routed, 32));
          }
          break;
        }
      }
    }
  }

 private:
  uint64_t stream_seed_;
  int ops_;
};

}  // namespace

std::unique_ptr<Testcase> MakeAdlerChecksumCase(int bytes) {
  TestcaseInfo info;
  info.id = "lib.adler32.b" + std::to_string(bytes);
  info.target = Feature::kAlu;
  info.style = TestcaseStyle::kLibraryCall;
  info.ops = {OpKind::kIntAdd};
  info.types = {DataType::kUInt32};
  return std::make_unique<AdlerChecksumCase>(std::move(info), bytes);
}

std::unique_ptr<Testcase> MakeCrc64Case(int bytes) {
  TestcaseInfo info;
  info.id = "lib.crc64.b" + std::to_string(bytes);
  info.target = Feature::kAlu;
  info.style = TestcaseStyle::kLibraryCall;
  info.ops = {OpKind::kCrc32Step};
  info.types = {DataType::kBin64};
  return std::make_unique<Crc64Case>(std::move(info), bytes);
}

std::unique_ptr<Testcase> MakeFuzzCase(uint64_t stream_seed, int ops) {
  TestcaseInfo info;
  info.id = "fuzz.s" + std::to_string(stream_seed) + ".n" + std::to_string(ops);
  // Broad pool: the fuzzer sprays across features; tag the dominant one per stream so the
  // priority scheduler can still bucket fuzz cases.
  info.ops = {OpKind::kFpAdd,    OpKind::kFpMul,    OpKind::kFpFma,   OpKind::kFpArctan,
              OpKind::kVecFmaF64, OpKind::kVecFmaF32, OpKind::kIntMul, OpKind::kIntAdd,
              OpKind::kLogicXor, OpKind::kCrc32Step};
  info.target = stream_seed % 3 == 0   ? Feature::kFpu
                : stream_seed % 3 == 1 ? Feature::kVecUnit
                                       : Feature::kAlu;
  info.style = TestcaseStyle::kInstructionLoop;
  info.types = {DataType::kFloat64, DataType::kFloat32, DataType::kInt32, DataType::kBin32};
  return std::make_unique<FuzzCase>(std::move(info), stream_seed, ops);
}

}  // namespace sdc
