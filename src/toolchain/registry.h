// TestSuite: the full 633-testcase suite, generated deterministically from the kernel
// families in cases.h. The count matches the manufacturer toolchain the paper uses
// (Section 2.3); variants differ in operation kind, datatype, working-set size, vector
// width, and complexity style, so they exercise genuinely different execution profiles.

#ifndef SDC_SRC_TOOLCHAIN_REGISTRY_H_
#define SDC_SRC_TOOLCHAIN_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/toolchain/cases.h"
#include "src/toolchain/testcase.h"

namespace sdc {

// Number of testcases in the full suite (Section 2.3 / Observation 11).
constexpr size_t kFullSuiteSize = 633;

class TestSuite {
 public:
  // Builds the full deterministic 633-case suite.
  static TestSuite BuildFull();

  // Builds a reduced suite (every `stride`-th case) for fast unit tests.
  static TestSuite BuildSampled(size_t stride);

  size_t size() const { return cases_.size(); }
  Testcase& at(size_t index) const { return *cases_[index]; }
  const TestcaseInfo& info(size_t index) const { return cases_[index]->info(); }

  // Index of the testcase with the given id, or -1.
  int IndexOf(const std::string& id) const;

  // Indices of testcases targeting `feature`.
  std::vector<size_t> IndicesTargeting(Feature feature) const;

 private:
  TestSuite() = default;
  std::vector<std::unique_ptr<Testcase>> cases_;
};

}  // namespace sdc

#endif  // SDC_SRC_TOOLCHAIN_REGISTRY_H_
