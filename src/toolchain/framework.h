// The toolchain framework (Section 2.3): drives testcases against a machine, controlling
// selection, execution order, per-testcase duration, core placement, and the thermal
// environment, and collecting SDC records plus per-testcase op histograms (the Pin-style
// instrumentation of Section 4.1).
//
// Core placement modes:
//  * sequential (default): the plan's duration is split evenly across the cores under test;
//    only the currently tested core is busy, so the package stays relatively cool -- this is
//    the Alibaba baseline behaviour.
//  * simultaneous: every core under test runs the testcase for the full duration at once, so
//    the package heats to its loaded temperature -- Farron's burn-in testing environment
//    (Section 7.1).

#ifndef SDC_SRC_TOOLCHAIN_FRAMEWORK_H_
#define SDC_SRC_TOOLCHAIN_FRAMEWORK_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/fault/machine.h"
#include "src/toolchain/registry.h"
#include "src/toolchain/testcase.h"

namespace sdc {

class EngineContext;
class MetricsRegistry;
class ThreadPool;
class TraceRecorder;

struct TestPlanEntry {
  size_t testcase_index = 0;
  double duration_seconds = 60.0;
};

struct TestRunConfig {
  // Represented iterations per simulated batch (Processor::time_scale).
  double time_scale = 1e5;
  // Utilization imposed on cores not under test (stress tools / colocated load).
  double background_utilization = 0.0;
  // Test every core simultaneously (Farron) instead of one at a time (baseline).
  bool simultaneous_cores = false;
  // Run all cores at full utilization for this long before the first testcase.
  double burn_in_seconds = 0.0;
  // Pin all core temperatures to this value (Celsius) for the whole run; <= 0 disables.
  // Used by the reproducibility experiments that preheat to a target temperature.
  double pin_temperature_celsius = -1.0;
  // Batches are grouped until at least this much raw busy time accumulates before the clock
  // advances; normalizes host-side overhead across kernels of very different sizes.
  double min_batch_busy_seconds = 4e-6;
  // Stop storing (not counting) records past this bound.
  size_t max_records = 200000;
  // Physical cores to test; empty = all.
  std::vector<int> pcores_under_test;
  // Seed for workload-input randomness.
  uint64_t seed = 1;
  // Fan plan entries out across a worker pool. Each entry then runs on a fresh clone of
  // the machine (settled, burn-in applied per entry) with its own forked RNG stream, and
  // results/records merge in plan order -- so the report is bit-identical at any thread
  // count, and the caller's machine is left untouched. false = legacy sequential
  // semantics, where entry N's thermal state carries into entry N+1 on the shared machine.
  bool parallel_plan_entries = false;
  // Worker threads when parallel_plan_entries is set: 0 = hardware concurrency, 1 = the
  // same per-entry-isolated schedule run serially. SDC_THREADS overrides this value.
  int threads = 0;
  // Optional metric sink ("toolchain.*"): per-entry invocation/corruption counters are
  // derived from the merged report in plan order (thread-count invariant); machine-clone
  // costs are wall-clock timers and excluded from that contract (docs/observability.md).
  // Null disables instrumentation.
  MetricsRegistry* metrics = nullptr;
  // Optional trace sink: one "toolchain.entry" sim span per plan entry on the simulated-
  // microseconds clock, derived from the merged report in plan order (thread-count
  // invariant), plus host spans for the whole plan and for per-entry machine clones.
  // Null disables recording (docs/observability.md).
  TraceRecorder* trace = nullptr;
};

struct TestcaseResult {
  std::string testcase_id;
  double duration_seconds = 0.0;
  uint64_t errors = 0;                       // mismatched values observed (uncapped)
  std::vector<uint64_t> errors_per_pcore;    // attribution by tested physical core
  std::array<uint64_t, kOpKindCount> op_histogram{};  // ops executed during this testcase

  bool failed() const { return errors > 0; }
  // Occurrence frequency in errors/minute over the tested duration.
  double OccurrenceFrequencyPerMinute() const {
    return duration_seconds > 0.0 ? static_cast<double>(errors) / duration_seconds * 60.0
                                  : 0.0;
  }
};

struct RunReport {
  std::vector<TestcaseResult> results;
  std::vector<SdcRecord> records;
  double total_wall_seconds = 0.0;

  bool any_error() const;
  uint64_t total_errors() const;
  std::vector<std::string> failed_testcase_ids() const;
};

class TestFramework {
 public:
  // `suite` must outlive the framework.
  explicit TestFramework(const TestSuite* suite) : suite_(suite) {}

  // Executes the plan's testcases on `machine`: in order on the shared machine by
  // default, or across a worker pool (one fresh machine clone per entry) when
  // config.parallel_plan_entries is set. The context-free form constructs a fresh
  // EngineContext when it needs a pool (SDC_THREADS consulted exactly there); the
  // explicit form runs on the caller's context -- its pool supplies the lanes, and its
  // attached sinks back any config sink left null, read once at plan start
  // (src/common/context.h).
  RunReport RunPlan(FaultyMachine& machine, const std::vector<TestPlanEntry>& plan,
                    const TestRunConfig& config) const;
  RunReport RunPlan(FaultyMachine& machine, const std::vector<TestPlanEntry>& plan,
                    const TestRunConfig& config, EngineContext& context) const;

  // Equal-resource plan over the whole suite (the baseline's strategy, Section 7).
  std::vector<TestPlanEntry> EqualPlan(double per_case_seconds) const;

  const TestSuite& suite() const { return *suite_; }

 private:
  void RunEntry(FaultyMachine& machine, const TestPlanEntry& entry,
                const TestRunConfig& config, RunReport& report) const;
  // Shared bodies of the RunPlan overloads; config sinks are already effective (context
  // fallback applied by the caller) and the pool is whichever context supplied it.
  RunReport RunPlanSerial(FaultyMachine& machine, const std::vector<TestPlanEntry>& plan,
                          const TestRunConfig& config) const;
  RunReport RunPlanParallel(const FaultyMachine& machine,
                            const std::vector<TestPlanEntry>& plan,
                            const TestRunConfig& config, ThreadPool& pool) const;

  const TestSuite* suite_;
};

}  // namespace sdc

#endif  // SDC_SRC_TOOLCHAIN_FRAMEWORK_H_
