#include "src/toolchain/framework.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/context.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace sdc {
namespace {

// Brings a machine into the run's starting state: time scale, settled background
// thermals, optional burn-in, optional pinned temperature.
void PrepareMachine(FaultyMachine& machine, const TestRunConfig& config) {
  Processor& cpu = machine.cpu();
  cpu.SetTimeScale(config.time_scale);
  machine.SetAllCoreUtilization(config.background_utilization);
  std::vector<double> utilization(static_cast<size_t>(cpu.spec().physical_cores),
                                  config.background_utilization);
  cpu.thermal().SettleToSteadyState(utilization);
  if (config.burn_in_seconds > 0.0) {
    machine.SetAllCoreUtilization(1.0);
    cpu.AdvanceSeconds(config.burn_in_seconds);
    machine.SetAllCoreUtilization(config.background_utilization);
  }
  if (config.pin_temperature_celsius > 0.0) {
    cpu.thermal().ForceUniform(config.pin_temperature_celsius);
  }
}

// Plan-level metrics from the merged report, walked in plan order so the values (and the
// gauge merge order) match at any thread count. Per-testcase error counters are only
// emitted for failing entries to keep the snapshot's cardinality proportional to the
// corruption actually observed, not to the 633-case suite.
void AccumulatePlanMetrics(const RunReport& report, MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    return;
  }
  MetricsDelta delta;
  for (const TestcaseResult& result : report.results) {
    delta.Add("toolchain.invocations");
    delta.Add("toolchain.errors", result.errors);
    delta.Observe("toolchain.entry_errors", static_cast<double>(result.errors), 0.0, 50.0,
                  10);
    if (result.failed()) {
      delta.Add("toolchain.testcases_failed");
      delta.Add("toolchain.errors." + result.testcase_id, result.errors);
    }
  }
  delta.Add("toolchain.records", report.records.size());
  delta.Set("toolchain.plan_wall_seconds", report.total_wall_seconds);  // simulated clock
  metrics->MergeDelta(delta);
}

// Plan-level sim trace from the merged report, walked in plan order: one span per entry
// on the simulated-microseconds clock, back to back from time 0 -- the same
// report-derived walk as the metrics above, so the toolchain timeline is thread-count
// invariant by the same argument.
void AccumulatePlanTrace(const RunReport& report, TraceRecorder* trace) {
  if (trace == nullptr) {
    return;
  }
  TraceDelta delta;
  double cursor_us = 0.0;
  for (const TestcaseResult& result : report.results) {
    TraceEvent span = MakeTraceSpan("toolchain.entry", "toolchain", kTraceTrackToolchain,
                                    cursor_us, result.duration_seconds * 1e6);
    span.str_args.emplace_back("testcase", result.testcase_id);
    span.num_args.emplace_back("errors", static_cast<double>(result.errors));
    delta.Add(std::move(span));
    cursor_us += result.duration_seconds * 1e6;
  }
  trace->MergeDelta(std::move(delta));
}

}  // namespace

bool RunReport::any_error() const {
  for (const auto& result : results) {
    if (result.failed()) {
      return true;
    }
  }
  return false;
}

uint64_t RunReport::total_errors() const {
  uint64_t total = 0;
  for (const auto& result : results) {
    total += result.errors;
  }
  return total;
}

std::vector<std::string> RunReport::failed_testcase_ids() const {
  std::vector<std::string> ids;
  for (const auto& result : results) {
    if (result.failed()) {
      ids.push_back(result.testcase_id);
    }
  }
  return ids;
}

std::vector<TestPlanEntry> TestFramework::EqualPlan(double per_case_seconds) const {
  std::vector<TestPlanEntry> plan;
  plan.reserve(suite_->size());
  for (size_t i = 0; i < suite_->size(); ++i) {
    plan.push_back({i, per_case_seconds});
  }
  return plan;
}

RunReport TestFramework::RunPlan(FaultyMachine& machine,
                                 const std::vector<TestPlanEntry>& plan,
                                 const TestRunConfig& config) const {
  TraceRecorder::ScopedHostSpan plan_span(config.trace, "toolchain.plan", "toolchain",
                                          kTraceTrackToolchain);
  if (config.parallel_plan_entries && plan.size() > 1) {
    // Context-free parallel plan: a per-call context supplies the pool, so SDC_THREADS is
    // consulted exactly once, here.
    EngineContext context(EngineOptions{.threads = config.threads});
    return RunPlanParallel(machine, plan, config, context.pool());
  }
  return RunPlanSerial(machine, plan, config);
}

RunReport TestFramework::RunPlan(FaultyMachine& machine,
                                 const std::vector<TestPlanEntry>& plan,
                                 const TestRunConfig& config,
                                 EngineContext& context) const {
  // Effective sinks are read from the context once, at plan start; a detach mid-plan
  // cannot drop or double-merge the plan's telemetry.
  TestRunConfig effective = config;
  if (effective.metrics == nullptr) {
    effective.metrics = context.metrics();
  }
  if (effective.trace == nullptr) {
    effective.trace = context.trace();
  }
  TraceRecorder::ScopedHostSpan plan_span(effective.trace, "toolchain.plan", "toolchain",
                                          kTraceTrackToolchain);
  if (effective.parallel_plan_entries && plan.size() > 1) {
    return RunPlanParallel(machine, plan, effective, context.pool());
  }
  return RunPlanSerial(machine, plan, effective);
}

RunReport TestFramework::RunPlanSerial(FaultyMachine& machine,
                                       const std::vector<TestPlanEntry>& plan,
                                       const TestRunConfig& config) const {
  RunReport report;
  Processor& cpu = machine.cpu();
  const double start_seconds = cpu.now_seconds();
  PrepareMachine(machine, config);

  for (const TestPlanEntry& entry : plan) {
    RunEntry(machine, entry, config, report);
  }
  machine.SetAllCoreUtilization(config.background_utilization);
  report.total_wall_seconds = cpu.now_seconds() - start_seconds;
  AccumulatePlanMetrics(report, config.metrics);
  AccumulatePlanTrace(report, config.trace);
  return report;
}

RunReport TestFramework::RunPlanParallel(const FaultyMachine& machine,
                                         const std::vector<TestPlanEntry>& plan,
                                         const TestRunConfig& config,
                                         ThreadPool& pool) const {
  // One fresh clone per entry makes entries fully independent: each starts from the same
  // settled (and, if configured, burnt-in) state with its own injector RNG, so the merged
  // report depends only on (machine, plan, config), never on the worker count. Grain 1:
  // entries are coarse units of work.
  std::vector<RunReport> entry_reports = pool.ParallelMap<RunReport>(
      0, plan.size(), 1, [&](uint64_t entry_index, uint64_t, uint64_t) {
        const auto clone_start = std::chrono::steady_clock::now();
        const double clone_span_start =
            config.trace != nullptr ? config.trace->HostNowSeconds() : 0.0;
        FaultyMachine clone = machine.CloneFresh();
        PrepareMachine(clone, config);
        if (config.trace != nullptr) {
          config.trace->RecordHostSpan("toolchain.clone", "toolchain",
                                       kTraceTrackToolchain, clone_span_start,
                                       config.trace->HostNowSeconds() - clone_span_start);
        }
        if (config.metrics != nullptr) {
          // Clone + settle/burn-in cost of entry isolation: host wall clock, recorded from
          // worker threads, outside the deterministic sections by contract.
          const std::chrono::duration<double> elapsed =
              std::chrono::steady_clock::now() - clone_start;
          config.metrics->Add("toolchain.clones");
          config.metrics->RecordTimerSeconds("toolchain.clone.wall", elapsed.count());
        }
        RunReport entry_report;
        const double start_seconds = clone.cpu().now_seconds();
        RunEntry(clone, plan[entry_index], config, entry_report);
        entry_report.total_wall_seconds = clone.cpu().now_seconds() - start_seconds;
        return entry_report;
      });

  // Merge in plan order; the record cap applies to the merged stream, as in a serial run.
  RunReport report;
  for (RunReport& entry_report : entry_reports) {
    report.total_wall_seconds += entry_report.total_wall_seconds;
    for (TestcaseResult& result : entry_report.results) {
      report.results.push_back(std::move(result));
    }
    for (SdcRecord& record : entry_report.records) {
      if (report.records.size() >= config.max_records) {
        break;
      }
      report.records.push_back(std::move(record));
    }
  }
  AccumulatePlanMetrics(report, config.metrics);
  AccumulatePlanTrace(report, config.trace);
  return report;
}

void TestFramework::RunEntry(FaultyMachine& machine, const TestPlanEntry& entry,
                             const TestRunConfig& config, RunReport& report) const {
  Testcase& testcase = suite_->at(entry.testcase_index);
  const TestcaseInfo& info = testcase.info();
  Processor& cpu = machine.cpu();
  const int smt = cpu.spec().threads_per_core;

  std::vector<int> pcores = config.pcores_under_test;
  if (pcores.empty()) {
    for (int p = 0; p < cpu.spec().physical_cores; ++p) {
      pcores.push_back(p);
    }
  }

  TestcaseResult result;
  result.testcase_id = info.id;
  result.duration_seconds = entry.duration_seconds;
  result.errors_per_pcore.assign(static_cast<size_t>(cpu.spec().physical_cores), 0);
  std::array<uint64_t, kOpKindCount> ops_before{};
  for (int kind = 0; kind < kOpKindCount; ++kind) {
    ops_before[kind] = cpu.total_op_count(static_cast<OpKind>(kind));
  }

  Rng entry_rng = Rng(config.seed).Fork(Mix64(entry.testcase_index * 0x9e37u) ^
                                        Mix64(info.id.size()));
  TestContext context;
  context.machine = &machine;
  context.rng = &entry_rng;
  context.records = &report.records;
  context.max_records = config.max_records;
  context.cpu_id = machine.info().cpu_id;

  if (config.simultaneous_cores) {
    machine.SetAllCoreUtilization(1.0);
  }
  // Each core under test executes the testcase for its share of the entry duration:
  // the full duration when cores run simultaneously, an equal split when sequential.
  const double per_core_seconds =
      config.simultaneous_cores
          ? entry.duration_seconds
          : entry.duration_seconds / static_cast<double>(pcores.size());
  const double wall_scale = config.simultaneous_cores
                                ? 1.0 / static_cast<double>(pcores.size())
                                : 1.0;

  for (size_t core_slot = 0; core_slot < pcores.size(); ++core_slot) {
    const int pcore = pcores[core_slot];
    const int partner = pcores[(core_slot + 1) % pcores.size()];
    context.lcores.clear();
    context.lcores.push_back(pcore * smt);
    if (info.multithreaded) {
      // Consistency tests need a second thread on a different physical core.
      const int partner_pcore =
          partner != pcore ? partner : (pcore + 1) % cpu.spec().physical_cores;
      context.lcores.push_back(partner_pcore * smt);
    }
    if (!config.simultaneous_cores) {
      cpu.SetCoreUtilization(pcore, 1.0);
      if (info.multithreaded) {
        cpu.SetCoreUtilization(cpu.pcore_of(context.lcores[1]), 0.5);
      }
    }
    const uint64_t errors_at_start = context.errors_found;
    double tested_seconds = 0.0;
    while (tested_seconds < per_core_seconds) {
      double busy = 0.0;
      // Group kernel runs until enough busy time accumulates; small kernels would otherwise
      // pay one clock/thermal step per handful of operations.
      do {
        testcase.RunBatch(context);
        double batch_busy = 0.0;
        for (int lcore : context.lcores) {
          batch_busy = std::max(batch_busy, cpu.ConsumeBusySeconds(cpu.pcore_of(lcore)));
        }
        busy += std::max(batch_busy, 1e-9);
      } while (busy < config.min_batch_busy_seconds);
      const double represented = busy * cpu.time_scale();
      tested_seconds += represented;
      cpu.AdvanceSeconds(represented * wall_scale);
      if (config.pin_temperature_celsius > 0.0) {
        cpu.thermal().ForceUniform(config.pin_temperature_celsius);
      }
    }
    result.errors_per_pcore[pcore] += context.errors_found - errors_at_start;
    if (!config.simultaneous_cores) {
      cpu.SetCoreUtilization(pcore, config.background_utilization);
      if (info.multithreaded) {
        cpu.SetCoreUtilization(cpu.pcore_of(context.lcores[1]),
                               config.background_utilization);
      }
    }
  }
  if (config.simultaneous_cores) {
    machine.SetAllCoreUtilization(config.background_utilization);
  }

  result.errors = context.errors_found;
  for (int kind = 0; kind < kOpKindCount; ++kind) {
    result.op_histogram[kind] =
        cpu.total_op_count(static_cast<OpKind>(kind)) - ops_before[kind];
  }
  report.results.push_back(std::move(result));
}

}  // namespace sdc
