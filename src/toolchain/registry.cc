#include "src/toolchain/registry.h"

#include <cstdlib>

namespace sdc {
namespace {

void AppendScalarSweeps(std::vector<std::unique_ptr<Testcase>>& cases,
                        const std::vector<int>& sizes) {
  struct Combo {
    OpKind op;
    DataType type;
  };
  std::vector<Combo> combos;
  const OpKind int_ops[] = {OpKind::kIntAdd, OpKind::kIntSub, OpKind::kIntMul,
                            OpKind::kIntDiv, OpKind::kIntShift};
  const DataType int_types[] = {DataType::kInt16, DataType::kInt32, DataType::kUInt32};
  for (OpKind op : int_ops) {
    for (DataType type : int_types) {
      combos.push_back({op, type});
    }
  }
  const OpKind logic_ops[] = {OpKind::kLogicAnd, OpKind::kLogicOr, OpKind::kLogicXor,
                              OpKind::kPopcount, OpKind::kCompare};
  const DataType logic_types[] = {DataType::kInt32,  DataType::kUInt32, DataType::kBin16,
                                  DataType::kBin32, DataType::kBin64,  DataType::kByte,
                                  DataType::kBit};
  for (OpKind op : logic_ops) {
    for (DataType type : logic_types) {
      combos.push_back({op, type});
    }
  }
  combos.push_back({OpKind::kCrc32Step, DataType::kUInt32});
  combos.push_back({OpKind::kCrc32Step, DataType::kBin32});
  combos.push_back({OpKind::kHashStep, DataType::kBin64});
  combos.push_back({OpKind::kHashStep, DataType::kUInt32});
  const OpKind fp_ops[] = {OpKind::kFpAdd, OpKind::kFpSub, OpKind::kFpMul,
                           OpKind::kFpDiv, OpKind::kFpSqrt, OpKind::kFpFma};
  const DataType fp_types[] = {DataType::kFloat32, DataType::kFloat64, DataType::kFloat80};
  for (OpKind op : fp_ops) {
    for (DataType type : fp_types) {
      combos.push_back({op, type});
    }
  }
  const OpKind math_ops[] = {OpKind::kFpArctan, OpKind::kFpSin, OpKind::kFpLog,
                             OpKind::kFpExp};
  const DataType math_types[] = {DataType::kFloat64, DataType::kFloat80};
  for (OpKind op : math_ops) {
    for (DataType type : math_types) {
      combos.push_back({op, type});
    }
  }
  for (int size : sizes) {
    for (const Combo& combo : combos) {
      cases.push_back(MakeScalarSweepCase(combo.op, combo.type, size));
    }
  }
}

void AppendVectorSweeps(std::vector<std::unique_ptr<Testcase>>& cases) {
  struct Combo {
    OpKind op;
    DataType type;
  };
  const Combo combos[] = {
      {OpKind::kVecAddF32, DataType::kFloat32}, {OpKind::kVecMulF32, DataType::kFloat32},
      {OpKind::kVecFmaF32, DataType::kFloat32}, {OpKind::kVecAddF64, DataType::kFloat64},
      {OpKind::kVecMulF64, DataType::kFloat64}, {OpKind::kVecFmaF64, DataType::kFloat64},
      {OpKind::kVecAddI32, DataType::kInt32},   {OpKind::kVecMulI32, DataType::kInt32},
      {OpKind::kVecShuffle, DataType::kBin32},
  };
  for (const Combo& combo : combos) {
    for (int lanes : {2, 4, 8, 16}) {
      for (int vectors : {32, 128}) {
        cases.push_back(MakeVectorSweepCase(combo.op, combo.type, lanes, vectors));
      }
    }
  }
}

void AppendLibraryCases(std::vector<std::unique_ptr<Testcase>>& cases) {
  for (OpKind op : {OpKind::kFpArctan, OpKind::kFpSin, OpKind::kFpLog, OpKind::kFpExp}) {
    for (DataType type : {DataType::kFloat64, DataType::kFloat80}) {
      for (int points : {32, 64, 256, 1024}) {
        cases.push_back(MakeMathFunctionCase(op, type, points));
      }
    }
  }
  for (bool vectorized : {false, true}) {
    for (int bytes : {64, 256, 1024, 4096, 16384}) {
      cases.push_back(MakeChecksumCase(vectorized, bytes));
    }
  }
  for (int degree : {2, 4, 8, 16}) {
    for (int points : {32, 128, 512}) {
      cases.push_back(MakePolynomialCase(degree, points));
    }
  }
  const int rs_params[][2] = {{4, 2}, {6, 3}, {8, 3}, {10, 4}};
  for (const auto& km : rs_params) {
    for (int shard : {64, 256, 1024}) {
      cases.push_back(MakeErasureCase(km[0], km[1], shard));
    }
  }
  for (OpKind op : {OpKind::kIntAdd, OpKind::kIntMul}) {
    for (int limbs : {2, 4, 8, 16, 32, 64}) {
      cases.push_back(MakeBigIntCase(op, limbs));
    }
  }
  for (int bytes : {32, 64, 256, 1024, 4096}) {
    cases.push_back(MakeStringCase(bytes));
  }
}

void AppendNumericCases(std::vector<std::unique_ptr<Testcase>>& cases) {
  for (int size : {32, 64, 128, 256}) {
    cases.push_back(MakeFftCase(size));
  }
  for (int dimension : {6, 10, 16, 24}) {
    cases.push_back(MakeLuDecompositionCase(dimension));
  }
  for (int cells : {64, 256}) {
    for (int steps : {4, 16}) {
      cases.push_back(MakeStencilCase(cells, steps));
    }
  }
  for (int samples : {128, 512, 2048}) {
    cases.push_back(MakeMonteCarloCase(samples));
  }
  for (int elements : {24, 48, 96}) {
    cases.push_back(MakeSortCheckCase(elements));
  }
  for (int elements : {256, 4096}) {
    for (int queries : {32, 128}) {
      cases.push_back(MakeBinarySearchCase(elements, queries));
    }
  }
}

void AppendDataCases(std::vector<std::unique_ptr<Testcase>>& cases) {
  for (int bytes : {256, 1024, 4096}) {
    cases.push_back(MakeRleCase(bytes));
  }
  for (int samples : {128, 512, 2048}) {
    cases.push_back(MakeHistogramCase(samples));
  }
  for (int values : {64, 256, 1024}) {
    cases.push_back(MakeBitPackCase(values));
  }
  for (int bytes : {48, 192, 768}) {
    cases.push_back(MakeBase64Case(bytes));
  }
  for (int bytes : {64, 256, 1024, 4096}) {
    cases.push_back(MakeMemcmpCase(bytes));
  }
  for (int bytes : {256, 1024, 4096, 16384}) {
    cases.push_back(MakeAdlerChecksumCase(bytes));
  }
  for (int bytes : {256, 1024, 4096, 16384}) {
    cases.push_back(MakeCrc64Case(bytes));
  }
  for (uint64_t stream_seed = 1; stream_seed <= 12; ++stream_seed) {
    cases.push_back(MakeFuzzCase(stream_seed, 160));
  }
}

void AppendAppCases(std::vector<std::unique_ptr<Testcase>>& cases) {
  for (DataType type : {DataType::kFloat32, DataType::kFloat64, DataType::kInt32}) {
    for (int dimension : {4, 8, 16}) {
      for (int lanes : {4, 8}) {
        cases.push_back(MakeMatrixMultiplyCase(type, dimension, lanes));
      }
    }
  }
  for (int block : {256, 512, 1024, 4096}) {
    for (bool vectorized : {false, true}) {
      cases.push_back(MakeStorageServerCase(block, vectorized));
    }
  }
  for (int operations : {16, 32, 64, 128}) {
    cases.push_back(MakeHashMapCase(operations));
  }
  for (int intervals : {32, 64, 128, 256}) {
    cases.push_back(MakeIntegrationCase(intervals));
  }
}

void AppendConsistencyCases(std::vector<std::unique_ptr<Testcase>>& cases) {
  for (int payload : {32, 64, 128, 256, 512, 1024}) {
    for (int rounds : {20, 50}) {
      cases.push_back(MakeCoherenceHandoffCase(payload, rounds));
    }
  }
  for (int words : {4, 16, 64}) {
    for (int rounds : {25, 75}) {
      cases.push_back(MakeMessagePassingCase(words, rounds));
    }
  }
  for (int words : {8, 32}) {
    for (int rounds : {25, 75}) {
      cases.push_back(MakeSeqlockCase(words, rounds));
    }
  }
  for (int increments : {25, 50, 100, 200}) {
    cases.push_back(MakeLockCounterCase(increments));
  }
  for (int rounds : {10, 20, 50, 100}) {
    cases.push_back(MakeTxInvariantCase(rounds));
  }
  for (int accounts : {4, 16}) {
    for (int transfers : {25, 50}) {
      cases.push_back(MakeTxBankCase(accounts, transfers));
    }
  }
}

// Pads the suite to exactly kFullSuiteSize with further scalar-sweep working-set variants
// (distinct sizes keep ids unique and execution profiles distinct).
void PadToFullSize(std::vector<std::unique_ptr<Testcase>>& cases) {
  const OpKind pad_ops[] = {OpKind::kIntAdd,  OpKind::kIntMul,    OpKind::kLogicXor,
                            OpKind::kFpAdd,   OpKind::kFpMul,     OpKind::kFpFma,
                            OpKind::kFpArctan, OpKind::kCrc32Step, OpKind::kHashStep,
                            OpKind::kPopcount};
  const DataType pad_types[] = {DataType::kInt32,   DataType::kUInt32, DataType::kBin32,
                                DataType::kFloat32, DataType::kFloat64, DataType::kFloat64,
                                DataType::kFloat64, DataType::kUInt32, DataType::kBin64,
                                DataType::kBin64};
  // Sizes avoid the base sweeps' {96, 224, 480, 992} so every id stays unique.
  int size = 40;
  size_t combo = 0;
  while (cases.size() < kFullSuiteSize) {
    cases.push_back(MakeScalarSweepCase(pad_ops[combo % 10], pad_types[combo % 10], size));
    ++combo;
    if (combo % 10 == 0) {
      size += 40;
    }
  }
}

}  // namespace

TestSuite TestSuite::BuildFull() {
  TestSuite suite;
  AppendScalarSweeps(suite.cases_, {96, 224, 480, 992});
  AppendVectorSweeps(suite.cases_);
  AppendLibraryCases(suite.cases_);
  AppendAppCases(suite.cases_);
  AppendNumericCases(suite.cases_);
  AppendDataCases(suite.cases_);
  AppendConsistencyCases(suite.cases_);
  if (suite.cases_.size() > kFullSuiteSize) {
    std::abort();  // family parameter lists outgrew the suite; rebalance them
  }
  PadToFullSize(suite.cases_);
  return suite;
}

TestSuite TestSuite::BuildSampled(size_t stride) {
  TestSuite full = BuildFull();
  TestSuite sampled;
  for (size_t i = 0; i < full.cases_.size(); i += stride) {
    sampled.cases_.push_back(std::move(full.cases_[i]));
  }
  return sampled;
}

int TestSuite::IndexOf(const std::string& id) const {
  for (size_t i = 0; i < cases_.size(); ++i) {
    if (cases_[i]->info().id == id) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<size_t> TestSuite::IndicesTargeting(Feature feature) const {
  std::vector<size_t> indices;
  for (size_t i = 0; i < cases_.size(); ++i) {
    if (cases_[i]->info().target == feature) {
      indices.push_back(i);
    }
  }
  return indices;
}

}  // namespace sdc
