// Multi-threaded consistency testcases: cache-coherence handoffs, lock-protected counters,
// and transactional-memory invariants. These are the only tests that can expose
// consistency-type SDCs (Section 4.1); each schedules two logical cores on different
// physical cores with a deterministic interleaving.

#include <algorithm>
#include <string>
#include <vector>

#include "src/toolchain/cases.h"

namespace sdc {
namespace {

// Pads a handoff round with private-cell loads so the store/commit rate lands near the
// calibrated consistency op rate (~1e6/s) instead of the raw scalar rate.
void PadRound(TestContext& context, int lcore, int loads) {
  CoherentBus& bus = context.machine->bus();
  const size_t private_base = FaultyMachine::kSharedCells - 64;
  for (int i = 0; i < loads; ++i) {
    bus.Read(lcore, private_base + static_cast<size_t>(i % 32));
  }
}

class CoherenceHandoffCase : public TestcaseBase {
 public:
  CoherenceHandoffCase(TestcaseInfo info, int payload_bytes, int rounds)
      : TestcaseBase(std::move(info)), payload_words_(std::max(1, payload_bytes / 8)),
        rounds_(rounds) {}

  void RunBatch(TestContext& context) override {
    CoherentBus& bus = context.machine->bus();
    const int producer = context.lcores[0];
    const int consumer = context.lcores[1];
    const size_t checksum_addr = static_cast<size_t>(payload_words_);
    // Warm the consumer's cache so a dropped invalidation leaves observable stale data.
    for (size_t w = 0; w <= checksum_addr; ++w) {
      bus.Read(consumer, w);
    }
    for (int round = 0; round < rounds_; ++round) {
      uint64_t checksum = 0;
      for (int w = 0; w < payload_words_; ++w) {
        const uint64_t value = context.rng->Next();
        checksum ^= value * 0x9e3779b97f4a7c15ull;
        bus.Write(producer, static_cast<size_t>(w), value);
      }
      bus.Write(producer, checksum_addr, checksum);
      PadRound(context, producer, 150);
      // Consumer validates the handoff exactly like the Section 2.2 client/daemon pair.
      uint64_t read_checksum = 0;
      for (int w = 0; w < payload_words_; ++w) {
        read_checksum ^= bus.Read(consumer, static_cast<size_t>(w)) * 0x9e3779b97f4a7c15ull;
      }
      const uint64_t stored_checksum = bus.Read(consumer, checksum_addr);
      PadRound(context, consumer, 150);
      if (read_checksum != stored_checksum) {
        context.RecordConsistency(info_.id, consumer);
        bus.Fence(consumer);  // the application's recovery: refetch everything
      }
    }
  }

 private:
  int payload_words_;
  int rounds_;
};

class LockCounterCase : public TestcaseBase {
 public:
  LockCounterCase(TestcaseInfo info, int increments)
      : TestcaseBase(std::move(info)), increments_(increments) {}

  void RunBatch(TestContext& context) override {
    CoherentBus& bus = context.machine->bus();
    // Cells outside the handoff testcases' payload range; reset per batch since other
    // testcases share the bus.
    const size_t lock_addr = 2100;
    const size_t counter_addr = 2101;
    bus.DirectWrite(lock_addr, 0);
    bus.DirectWrite(counter_addr, 0);
    // Two threads alternate lock-protected increments; a dropped invalidation on the plain
    // counter store makes the peer read a stale value and lose an update.
    for (int i = 0; i < increments_; ++i) {
      const int lcore = context.lcores[i % 2];
      while (!bus.AtomicCas(lcore, lock_addr, 0, 1)) {
      }
      const uint64_t value = bus.Read(lcore, counter_addr);
      bus.Write(lcore, counter_addr, value + 1);
      while (!bus.AtomicCas(lcore, lock_addr, 1, 0)) {
      }
      PadRound(context, lcore, 100);
    }
    const uint64_t final_value = bus.BackingValue(counter_addr);
    const auto expected = static_cast<uint64_t>(increments_);
    if (final_value != expected) {
      const uint64_t lost = expected - std::min(expected, final_value);
      for (uint64_t e = 0; e < std::min<uint64_t>(lost, 16); ++e) {
        context.RecordConsistency(info_.id, context.lcores[0]);
      }
    }
  }

 private:
  int increments_;
};

class TxInvariantCase : public TestcaseBase {
 public:
  TxInvariantCase(TestcaseInfo info, int rounds)
      : TestcaseBase(std::move(info)), rounds_(rounds) {}

  void RunBatch(TestContext& context) override {
    TxMemory& tx = context.machine->txmem();
    const size_t x_addr = 200;
    const size_t y_addr = 201;
    tx.DirectWrite(x_addr, 0);
    tx.DirectWrite(y_addr, 0);
    const int a = context.lcores[0];
    const int b = context.lcores[1];
    uint64_t expected = 0;
    for (int round = 0; round < rounds_; ++round) {
      // t1 (thread a) and t2 (thread b) race on the same two cells; t2 must abort and retry.
      const int t1 = tx.Begin(a);
      const uint64_t x1 = tx.Read(t1, x_addr);
      const int t2 = tx.Begin(b);
      const uint64_t x2 = tx.Read(t2, x_addr);
      const uint64_t y2 = tx.Read(t2, y_addr);
      tx.Write(t2, x_addr, x2 + 1);
      tx.Write(t2, y_addr, y2 + 1);
      tx.Write(t1, x_addr, x1 + 1);
      const uint64_t y1 = tx.Read(t1, y_addr);
      tx.Write(t1, y_addr, y1 + 1);
      tx.Commit(t1);  // first committer wins
      if (!tx.Commit(t2)) {
        // Proper abort: retry against committed state.
        const int retry = tx.Begin(b);
        tx.Write(retry, x_addr, tx.Read(retry, x_addr) + 1);
        tx.Write(retry, y_addr, tx.Read(retry, y_addr) + 1);
        tx.Commit(retry);
      }
      expected += 2;
      PadRound(context, a, 120);
      PadRound(context, b, 120);
      const uint64_t x = tx.DirectRead(x_addr);
      const uint64_t y = tx.DirectRead(y_addr);
      if (x != y || x != expected) {
        context.RecordConsistency(info_.id, b);
        // Resynchronize so one violation is counted once, as an application would after
        // repairing its metadata.
        tx.DirectWrite(x_addr, expected);
        tx.DirectWrite(y_addr, expected);
      }
    }
  }

 private:
  int rounds_;
};

class TxBankCase : public TestcaseBase {
 public:
  TxBankCase(TestcaseInfo info, int accounts, int transfers)
      : TestcaseBase(std::move(info)), accounts_(accounts), transfers_(transfers) {}

  void RunBatch(TestContext& context) override {
    TxMemory& tx = context.machine->txmem();
    const size_t base = 300;
    constexpr uint64_t kInitialBalance = 1000;
    for (int i = 0; i < accounts_; ++i) {
      tx.DirectWrite(base + static_cast<size_t>(i), kInitialBalance);
    }
    const uint64_t total = kInitialBalance * static_cast<uint64_t>(accounts_);
    const int a = context.lcores[0];
    const int b = context.lcores[1];
    for (int i = 0; i < transfers_; ++i) {
      const size_t from = base + context.rng->NextBelow(static_cast<uint64_t>(accounts_));
      size_t to = base + context.rng->NextBelow(static_cast<uint64_t>(accounts_));
      if (to == from) {
        to = base + (to - base + 1) % static_cast<size_t>(accounts_);
      }
      const uint64_t amount = 1 + context.rng->NextBelow(5);
      // Conflicting pair: both transactions touch `from`; the second must retry.
      const int t1 = tx.Begin(a);
      const uint64_t from1 = tx.Read(t1, from);
      const int t2 = tx.Begin(b);
      const uint64_t from2 = tx.Read(t2, from);
      const uint64_t to2 = tx.Read(t2, to);
      tx.Write(t2, from, from2 - amount);
      tx.Write(t2, to, to2 + amount);
      tx.Write(t1, from, from1 - amount);
      tx.Write(t1, to, tx.Read(t1, to) + amount);
      tx.Commit(t1);
      if (!tx.Commit(t2)) {
        const int retry = tx.Begin(b);
        tx.Write(retry, from, tx.Read(retry, from) - amount);
        tx.Write(retry, to, tx.Read(retry, to) + amount);
        tx.Commit(retry);
      }
      PadRound(context, a, 120);
      PadRound(context, b, 120);
      uint64_t sum = 0;
      for (int acct = 0; acct < accounts_; ++acct) {
        sum += tx.DirectRead(base + static_cast<size_t>(acct));
      }
      if (sum != total) {
        context.RecordConsistency(info_.id, b);
        for (int acct = 0; acct < accounts_; ++acct) {
          tx.DirectWrite(base + static_cast<size_t>(acct), kInitialBalance);
        }
      }
    }
  }

 private:
  int accounts_;
  int transfers_;
};

}  // namespace

std::unique_ptr<Testcase> MakeCoherenceHandoffCase(int payload_bytes, int rounds) {
  TestcaseInfo info;
  info.id = "mt.coherence.handoff.b" + std::to_string(payload_bytes) + ".r" +
            std::to_string(rounds);
  info.target = Feature::kCache;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kStore, OpKind::kLoad};
  info.types = {};
  info.multithreaded = true;
  return std::make_unique<CoherenceHandoffCase>(std::move(info), payload_bytes, rounds);
}

std::unique_ptr<Testcase> MakeLockCounterCase(int increments) {
  TestcaseInfo info;
  info.id = "mt.lock.counter.n" + std::to_string(increments);
  info.target = Feature::kCache;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kStore, OpKind::kLoad, OpKind::kAtomicCas};
  info.types = {};
  info.multithreaded = true;
  return std::make_unique<LockCounterCase>(std::move(info), increments);
}

std::unique_ptr<Testcase> MakeTxInvariantCase(int rounds) {
  TestcaseInfo info;
  info.id = "mt.tx.invariant.r" + std::to_string(rounds);
  info.target = Feature::kTxMem;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kTxBegin, OpKind::kTxRead, OpKind::kTxWrite, OpKind::kTxCommit};
  info.types = {};
  info.multithreaded = true;
  return std::make_unique<TxInvariantCase>(std::move(info), rounds);
}

std::unique_ptr<Testcase> MakeTxBankCase(int accounts, int transfers) {
  TestcaseInfo info;
  info.id = "mt.tx.bank.a" + std::to_string(accounts) + ".t" + std::to_string(transfers);
  info.target = Feature::kTxMem;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kTxBegin, OpKind::kTxRead, OpKind::kTxWrite, OpKind::kTxCommit};
  info.types = {};
  info.multithreaded = true;
  return std::make_unique<TxBankCase>(std::move(info), accounts, transfers);
}

}  // namespace sdc
