// Application-logic testcases: matrix pipelines, a storage-server write path, a hash-map
// metadata service, and numerical integration.

#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/integrity/crc32.h"
#include "src/integrity/hash.h"
#include "src/toolchain/cases.h"

namespace sdc {
namespace {

class MatrixMultiplyCase : public TestcaseBase {
 public:
  MatrixMultiplyCase(TestcaseInfo info, DataType type, int dimension, int lanes)
      : TestcaseBase(std::move(info)), type_(type), dimension_(dimension), lanes_(lanes) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    const int n = dimension_;
    std::vector<double> a(static_cast<size_t>(n) * n);
    std::vector<double> b(static_cast<size_t>(n) * n);
    for (auto& value : a) {
      value = context.rng->NextDouble() * 2.0 - 1.0;
    }
    for (auto& value : b) {
      value = context.rng->NextDouble() * 2.0 - 1.0;
    }
    const OpKind op = type_ == DataType::kFloat32   ? OpKind::kVecFmaF32
                      : type_ == DataType::kFloat64 ? OpKind::kVecFmaF64
                                                    : OpKind::kIntMul;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (type_ == DataType::kInt32) {
          int32_t golden = 0;
          int32_t routed = 0;
          for (int k = 0; k < n; ++k) {
            const auto ai = static_cast<int32_t>(a[i * n + k] * 100.0);
            const auto bk = static_cast<int32_t>(b[k * n + j] * 100.0);
            golden += ai * bk;
            routed = cpu.ExecuteI32(lcore, op, routed + ai * bk);
          }
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, type_, BitsOfInt32(golden),
                                      BitsOfInt32(routed));
          }
        } else if (type_ == DataType::kFloat32) {
          float golden = 0.0f;
          float routed = 0.0f;
          for (int k = 0; k < n; ++k) {
            const auto ai = static_cast<float>(a[i * n + k]);
            const auto bk = static_cast<float>(b[k * n + j]);
            golden += ai * bk;
            // Route once per `lanes_` accumulations, mirroring vector-width granularity.
            routed += ai * bk;
            if ((k + 1) % lanes_ == 0 || k + 1 == n) {
              routed = cpu.ExecuteF32(lcore, op, routed);
            }
          }
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, type_, BitsOfFloat(golden),
                                      BitsOfFloat(routed));
          }
        } else {
          double golden = 0.0;
          double routed = 0.0;
          for (int k = 0; k < n; ++k) {
            golden += a[i * n + k] * b[k * n + j];
            routed += a[i * n + k] * b[k * n + j];
            if ((k + 1) % lanes_ == 0 || k + 1 == n) {
              routed = cpu.ExecuteF64(lcore, op, routed);
            }
          }
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, type_, BitsOfDouble(golden),
                                      BitsOfDouble(routed));
          }
        }
      }
    }
  }

 private:
  DataType type_;
  int dimension_;
  int lanes_;
};

class StorageServerCase : public TestcaseBase {
 public:
  StorageServerCase(TestcaseInfo info, int block_bytes, bool vectorized_crc)
      : TestcaseBase(std::move(info)), block_bytes_(block_bytes),
        vectorized_crc_(vectorized_crc) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    // Write path: fill a block, compute its checksum on the processor, "store" both, then
    // verify the stored pair host-side as a reader would (the Section 2.2 incident: a faulty
    // checksum unit makes the service believe good data is corrupt). The block is
    // batch-local: shared testcase objects must stay stateless so parallel plan entries
    // can drive the same case on several machine clones at once.
    std::vector<uint8_t> block(static_cast<size_t>(block_bytes_));
    for (auto& byte : block) {
      byte = static_cast<uint8_t>(context.rng->Next());
    }
    const uint32_t stored_crc = vectorized_crc_
                                    ? Crc32VectorOnProcessor(cpu, lcore, block)
                                    : Crc32OnProcessor(cpu, lcore, block);
    const uint32_t reader_crc = Crc32(block);
    if (stored_crc != reader_crc) {
      context.RecordComputation(info_.id, lcore, DataType::kUInt32,
                                BitsOfUInt32(reader_crc), BitsOfUInt32(stored_crc));
    }
  }

 private:
  int block_bytes_;
  bool vectorized_crc_;
};

class HashMapCase : public TestcaseBase {
 public:
  HashMapCase(TestcaseInfo info, int operations)
      : TestcaseBase(std::move(info)), operations_(operations) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    // Metadata service: keys hashed on the processor at insert and at lookup. A defective
    // hashing path makes the lookup hash disagree with the stored one -- the "assertion
    // failure" incident of Section 2.2.
    std::unordered_map<uint64_t, uint64_t> metadata;
    std::vector<std::array<uint8_t, 16>> keys(static_cast<size_t>(operations_));
    for (int i = 0; i < operations_; ++i) {
      for (auto& byte : keys[i]) {
        byte = static_cast<uint8_t>(context.rng->Next());
      }
      const uint64_t hash = Fnv1a64OnProcessor(cpu, lcore, keys[i]);
      metadata[hash] = static_cast<uint64_t>(i);
    }
    for (int i = 0; i < operations_; ++i) {
      const uint64_t expected_hash = Fnv1a64(keys[i]);
      const uint64_t lookup_hash = Fnv1a64OnProcessor(cpu, lcore, keys[i]);
      if (lookup_hash != expected_hash || !metadata.contains(expected_hash)) {
        context.RecordComputation(info_.id, lcore, DataType::kBin64,
                                  BitsOfRaw(expected_hash, 64),
                                  BitsOfRaw(lookup_hash, 64));
      }
    }
  }

 private:
  int operations_;
};

class IntegrationCase : public TestcaseBase {
 public:
  IntegrationCase(TestcaseInfo info, int intervals)
      : TestcaseBase(std::move(info)), intervals_(intervals) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    const double lo = context.rng->NextDouble() * 2.0;
    const double hi = lo + 1.0 + context.rng->NextDouble();
    const double step = (hi - lo) / intervals_;
    double golden = 0.0;
    double routed = 0.0;
    for (int i = 0; i <= intervals_; ++i) {
      const double x = lo + i * step;
      const double fx = std::sin(x);
      const double weight = (i == 0 || i == intervals_) ? 0.5 : 1.0;
      golden += weight * fx;
      const double fx_routed = cpu.ExecuteF64(lcore, OpKind::kFpSin, fx);
      routed = cpu.ExecuteF64(lcore, OpKind::kFpAdd, routed + weight * fx_routed);
    }
    golden *= step;
    routed *= step;
    if (routed != golden) {
      context.RecordComputation(info_.id, lcore, DataType::kFloat64, BitsOfDouble(golden),
                                BitsOfDouble(routed));
    }
  }

 private:
  int intervals_;
};

}  // namespace

std::unique_ptr<Testcase> MakeMatrixMultiplyCase(DataType type, int dimension, int lanes) {
  TestcaseInfo info;
  info.id = "app.matmul." + DataTypeName(type) + ".n" + std::to_string(dimension) + ".l" +
            std::to_string(lanes);
  info.target = type == DataType::kInt32 ? Feature::kAlu : Feature::kVecUnit;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {type == DataType::kFloat32   ? OpKind::kVecFmaF32
              : type == DataType::kFloat64 ? OpKind::kVecFmaF64
                                           : OpKind::kIntMul};
  info.types = {type};
  return std::make_unique<MatrixMultiplyCase>(std::move(info), type, dimension, lanes);
}

std::unique_ptr<Testcase> MakeStorageServerCase(int block_bytes, bool vectorized_crc) {
  TestcaseInfo info;
  info.id = std::string("app.storage.") + (vectorized_crc ? "veccrc" : "crc") + ".b" +
            std::to_string(block_bytes);
  info.target = vectorized_crc ? Feature::kVecUnit : Feature::kAlu;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = vectorized_crc ? std::vector<OpKind>{OpKind::kVecCrc, OpKind::kCrc32Step}
                            : std::vector<OpKind>{OpKind::kCrc32Step};
  info.types = {DataType::kUInt32};
  return std::make_unique<StorageServerCase>(std::move(info), block_bytes, vectorized_crc);
}

std::unique_ptr<Testcase> MakeHashMapCase(int operations) {
  TestcaseInfo info;
  info.id = "app.hashmap.n" + std::to_string(operations);
  info.target = Feature::kAlu;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kHashStep};
  info.types = {DataType::kBin64};
  return std::make_unique<HashMapCase>(std::move(info), operations);
}

std::unique_ptr<Testcase> MakeIntegrationCase(int intervals) {
  TestcaseInfo info;
  info.id = "app.integrate.sin.n" + std::to_string(intervals);
  info.target = Feature::kFpu;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kFpSin, OpKind::kFpAdd};
  info.types = {DataType::kFloat64};
  return std::make_unique<IntegrationCase>(std::move(info), intervals);
}

}  // namespace sdc
