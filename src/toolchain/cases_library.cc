// Library-call testcases: checksums, math-function chains, polynomial evaluation,
// erasure-coding kernels, big-integer arithmetic, and string manipulation.

#include <cmath>
#include <string>
#include <vector>

#include "src/integrity/crc32.h"
#include "src/integrity/erasure.h"
#include "src/toolchain/cases.h"

namespace sdc {
namespace {

class MathFunctionCase : public TestcaseBase {
 public:
  MathFunctionCase(TestcaseInfo info, OpKind op, DataType type, int points)
      : TestcaseBase(std::move(info)), op_(op), type_(type), points_(points) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    for (int i = 0; i < points_; ++i) {
      const long double x = context.rng->NextDouble() * 8.0L - 4.0L;
      long double golden = 0.0L;
      switch (op_) {
        case OpKind::kFpArctan:
          golden = std::atan(x);
          break;
        case OpKind::kFpSin:
          golden = std::sin(x);
          break;
        case OpKind::kFpLog:
          golden = std::log(std::fabs(x) + 1.0L);
          break;
        case OpKind::kFpExp:
          golden = std::exp(x);
          break;
        default:
          golden = std::atan(x);
          break;
      }
      if (type_ == DataType::kFloat80) {
        const long double routed = cpu.ExecuteF80(lcore, op_, golden);
        if (BitsOfFloat80(routed) != BitsOfFloat80(golden)) {
          context.RecordComputation(info_.id, lcore, type_, BitsOfFloat80(golden),
                                    BitsOfFloat80(routed));
        }
      } else {
        const double golden64 = static_cast<double>(golden);
        const double routed = cpu.ExecuteF64(lcore, op_, golden64);
        if (routed != golden64) {
          context.RecordComputation(info_.id, lcore, DataType::kFloat64,
                                    BitsOfDouble(golden64), BitsOfDouble(routed));
        }
      }
    }
  }

 private:
  OpKind op_;
  DataType type_;
  int points_;
};

class ChecksumCase : public TestcaseBase {
 public:
  ChecksumCase(TestcaseInfo info, bool vectorized, int buffer_bytes)
      : TestcaseBase(std::move(info)), vectorized_(vectorized),
        buffer_bytes_(buffer_bytes) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    // Batch-local buffer: shared testcase objects must stay stateless so parallel plan
    // entries can drive the same case on several machine clones at once.
    std::vector<uint8_t> buffer(static_cast<size_t>(buffer_bytes_));
    for (auto& byte : buffer) {
      byte = static_cast<uint8_t>(context.rng->Next());
    }
    const uint32_t golden = Crc32(buffer);
    const uint32_t routed = vectorized_ ? Crc32VectorOnProcessor(cpu, lcore, buffer)
                                        : Crc32OnProcessor(cpu, lcore, buffer);
    if (routed != golden) {
      context.RecordComputation(info_.id, lcore, DataType::kUInt32, BitsOfUInt32(golden),
                                BitsOfUInt32(routed));
    }
  }

 private:
  bool vectorized_;
  int buffer_bytes_;
};

class PolynomialCase : public TestcaseBase {
 public:
  PolynomialCase(TestcaseInfo info, int degree, int points)
      : TestcaseBase(std::move(info)), degree_(degree), points_(points) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    std::vector<double> coefficients(static_cast<size_t>(degree_ + 1));
    for (auto& c : coefficients) {
      c = context.rng->NextDouble() * 2.0 - 1.0;
    }
    for (int i = 0; i < points_; ++i) {
      const double x = context.rng->NextDouble() * 2.0 - 1.0;
      // Horner's rule, with each FMA result routed; a corrupted step propagates.
      double golden = coefficients[0];
      double routed = coefficients[0];
      for (int d = 1; d <= degree_; ++d) {
        golden = golden * x + coefficients[d];
        routed = cpu.ExecuteF64(lcore, OpKind::kFpFma, routed * x + coefficients[d]);
      }
      if (routed != golden) {
        context.RecordComputation(info_.id, lcore, DataType::kFloat64,
                                  BitsOfDouble(golden), BitsOfDouble(routed));
      }
    }
  }

 private:
  int degree_;
  int points_;
};

class ErasureCase : public TestcaseBase {
 public:
  ErasureCase(TestcaseInfo info, int data_shards, int parity_shards, int shard_bytes)
      : TestcaseBase(std::move(info)), rs_(data_shards, parity_shards),
        shard_bytes_(shard_bytes) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    std::vector<std::vector<uint8_t>> data(static_cast<size_t>(rs_.data_shards()));
    for (auto& shard : data) {
      shard.resize(static_cast<size_t>(shard_bytes_));
      for (auto& byte : shard) {
        byte = static_cast<uint8_t>(context.rng->Next());
      }
    }
    const auto golden = rs_.Encode(data);
    const auto routed = rs_.EncodeOnProcessor(cpu, lcore, data);
    for (size_t p = 0; p < golden.size(); ++p) {
      for (size_t b = 0; b < golden[p].size(); ++b) {
        if (routed[p][b] != golden[p][b]) {
          context.RecordComputation(info_.id, lcore, DataType::kByte,
                                    BitsOfRaw(golden[p][b], 8), BitsOfRaw(routed[p][b], 8));
        }
      }
    }
  }

 private:
  ReedSolomon rs_;
  int shard_bytes_;
};

class BigIntCase : public TestcaseBase {
 public:
  BigIntCase(TestcaseInfo info, OpKind op, int limbs)
      : TestcaseBase(std::move(info)), op_(op), limbs_(limbs) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    std::vector<uint32_t> a(static_cast<size_t>(limbs_));
    std::vector<uint32_t> b(static_cast<size_t>(limbs_));
    for (int i = 0; i < limbs_; ++i) {
      a[i] = static_cast<uint32_t>(context.rng->Next());
      b[i] = static_cast<uint32_t>(context.rng->Next());
    }
    if (op_ == OpKind::kIntAdd) {
      // Multi-limb addition with carry; each limb result is routed.
      uint64_t carry = 0;
      for (int i = 0; i < limbs_; ++i) {
        const uint64_t sum = static_cast<uint64_t>(a[i]) + b[i] + carry;
        const auto golden = static_cast<uint32_t>(sum);
        carry = sum >> 32;
        const uint32_t routed = cpu.ExecuteU32(lcore, OpKind::kIntAdd, golden);
        if (routed != golden) {
          context.RecordComputation(info_.id, lcore, DataType::kUInt32,
                                    BitsOfUInt32(golden), BitsOfUInt32(routed));
        }
      }
    } else {
      // Schoolbook partial products; each 32x32 -> low 32 routed.
      for (int i = 0; i < limbs_; ++i) {
        for (int j = 0; j < limbs_; j += 4) {
          const auto golden =
              static_cast<uint32_t>(static_cast<uint64_t>(a[i]) * b[j]);
          const uint32_t routed = cpu.ExecuteU32(lcore, OpKind::kIntMul, golden);
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, DataType::kUInt32,
                                      BitsOfUInt32(golden), BitsOfUInt32(routed));
          }
        }
      }
    }
  }

 private:
  OpKind op_;
  int limbs_;
};

class StringCase : public TestcaseBase {
 public:
  StringCase(TestcaseInfo info, int bytes)
      : TestcaseBase(std::move(info)), bytes_(bytes) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    // Case-folding-style byte transform: every output byte is routed and checked.
    for (int i = 0; i < bytes_; ++i) {
      const auto input = static_cast<uint8_t>(context.rng->Next());
      const auto key = static_cast<uint8_t>(context.rng->Next());
      const auto golden = static_cast<uint8_t>(input ^ key);
      const auto routed = static_cast<uint8_t>(
          cpu.ExecuteRaw(lcore, OpKind::kLogicXor, golden, DataType::kByte));
      if (routed != golden) {
        context.RecordComputation(info_.id, lcore, DataType::kByte, BitsOfRaw(golden, 8),
                                  BitsOfRaw(routed, 8));
      }
      // Comparison leg (strcmp-style), routed as a compare result.
      const auto cmp_golden = static_cast<int32_t>(input) - static_cast<int32_t>(key);
      const int32_t cmp_routed = cpu.ExecuteI32(lcore, OpKind::kCompare, cmp_golden);
      if (cmp_routed != cmp_golden) {
        context.RecordComputation(info_.id, lcore, DataType::kInt32,
                                  BitsOfInt32(cmp_golden), BitsOfInt32(cmp_routed));
      }
    }
  }

 private:
  int bytes_;
};

}  // namespace

std::unique_ptr<Testcase> MakeMathFunctionCase(OpKind op, DataType type, int points) {
  TestcaseInfo info;
  info.id = "lib.math." + OpKindName(op) + "." + DataTypeName(type) + ".n" +
            std::to_string(points);
  info.target = Feature::kFpu;
  info.style = TestcaseStyle::kLibraryCall;
  info.ops = {op};
  info.types = {type};
  return std::make_unique<MathFunctionCase>(std::move(info), op, type, points);
}

std::unique_ptr<Testcase> MakeChecksumCase(bool vectorized, int buffer_bytes) {
  TestcaseInfo info;
  info.id = std::string("lib.crc32.") + (vectorized ? "vector" : "scalar") + ".b" +
            std::to_string(buffer_bytes);
  info.target = vectorized ? Feature::kVecUnit : Feature::kAlu;
  info.style = TestcaseStyle::kLibraryCall;
  info.ops = vectorized ? std::vector<OpKind>{OpKind::kVecCrc, OpKind::kCrc32Step}
                        : std::vector<OpKind>{OpKind::kCrc32Step};
  info.types = {DataType::kUInt32};
  return std::make_unique<ChecksumCase>(std::move(info), vectorized, buffer_bytes);
}

std::unique_ptr<Testcase> MakePolynomialCase(int degree, int points) {
  TestcaseInfo info;
  info.id = "lib.poly.horner.d" + std::to_string(degree) + ".n" + std::to_string(points);
  info.target = Feature::kFpu;
  info.style = TestcaseStyle::kLibraryCall;
  info.ops = {OpKind::kFpFma};
  info.types = {DataType::kFloat64};
  return std::make_unique<PolynomialCase>(std::move(info), degree, points);
}

std::unique_ptr<Testcase> MakeErasureCase(int data_shards, int parity_shards,
                                          int shard_bytes) {
  TestcaseInfo info;
  info.id = "lib.rs.k" + std::to_string(data_shards) + "m" + std::to_string(parity_shards) +
            ".b" + std::to_string(shard_bytes);
  info.target = Feature::kVecUnit;
  info.style = TestcaseStyle::kLibraryCall;
  info.ops = {OpKind::kVecGf256};
  info.types = {DataType::kByte};
  return std::make_unique<ErasureCase>(std::move(info), data_shards, parity_shards,
                                       shard_bytes);
}

std::unique_ptr<Testcase> MakeBigIntCase(OpKind op, int limbs) {
  TestcaseInfo info;
  info.id = "lib.bigint." + OpKindName(op) + ".limbs" + std::to_string(limbs);
  info.target = Feature::kAlu;
  info.style = TestcaseStyle::kLibraryCall;
  info.ops = {op};
  info.types = {DataType::kUInt32};
  return std::make_unique<BigIntCase>(std::move(info), op, limbs);
}

std::unique_ptr<Testcase> MakeStringCase(int bytes) {
  TestcaseInfo info;
  info.id = "lib.string.transform.b" + std::to_string(bytes);
  info.target = Feature::kAlu;
  info.style = TestcaseStyle::kLibraryCall;
  info.ops = {OpKind::kLogicXor, OpKind::kCompare};
  info.types = {DataType::kByte, DataType::kInt32};
  return std::make_unique<StringCase>(std::move(info), bytes);
}

}  // namespace sdc
