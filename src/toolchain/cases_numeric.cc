// Numerical application kernels: FFT, LU decomposition, stencil iteration, Monte Carlo
// estimation, sorting, and binary search. Each computes a golden result natively, routes
// the datapath through the simulated processor, and checks the routed results -- several
// with realistic error propagation (a corrupted butterfly taints downstream stages).

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/toolchain/cases.h"

namespace sdc {
namespace {

class FftCase : public TestcaseBase {
 public:
  FftCase(TestcaseInfo info, int size) : TestcaseBase(std::move(info)), size_(size) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    std::vector<double> real_golden(static_cast<size_t>(size_));
    std::vector<double> imag_golden(static_cast<size_t>(size_), 0.0);
    for (auto& value : real_golden) {
      value = context.rng->NextDouble() * 2.0 - 1.0;
    }
    std::vector<double> real_routed = real_golden;
    std::vector<double> imag_routed = imag_golden;
    Transform(real_golden, imag_golden, nullptr, 0);
    Transform(real_routed, imag_routed, &cpu, lcore);
    for (int i = 0; i < size_; ++i) {
      if (real_routed[i] != real_golden[i]) {
        context.RecordComputation(info_.id, lcore, DataType::kFloat64,
                                  BitsOfDouble(real_golden[i]),
                                  BitsOfDouble(real_routed[i]));
      }
      if (imag_routed[i] != imag_golden[i]) {
        context.RecordComputation(info_.id, lcore, DataType::kFloat64,
                                  BitsOfDouble(imag_golden[i]),
                                  BitsOfDouble(imag_routed[i]));
      }
    }
  }

 private:
  // Iterative radix-2 Cooley-Tukey. With cpu == nullptr this is the golden reference;
  // otherwise every butterfly output is routed (and corruption propagates onward).
  void Transform(std::vector<double>& real, std::vector<double>& imag, Processor* cpu,
                 int lcore) const {
    const int n = size_;
    for (int i = 1, j = 0; i < n; ++i) {  // bit reversal
      int bit = n >> 1;
      for (; j & bit; bit >>= 1) {
        j ^= bit;
      }
      j ^= bit;
      if (i < j) {
        std::swap(real[i], real[j]);
        std::swap(imag[i], imag[j]);
      }
    }
    for (int length = 2; length <= n; length <<= 1) {
      const double angle = -2.0 * M_PI / length;
      for (int block = 0; block < n; block += length) {
        for (int k = 0; k < length / 2; ++k) {
          const double wr = std::cos(angle * k);
          const double wi = std::sin(angle * k);
          const int top = block + k;
          const int bottom = block + k + length / 2;
          double tr = real[bottom] * wr - imag[bottom] * wi;
          double ti = real[bottom] * wi + imag[bottom] * wr;
          double new_top_r = real[top] + tr;
          double new_top_i = imag[top] + ti;
          double new_bot_r = real[top] - tr;
          double new_bot_i = imag[top] - ti;
          if (cpu != nullptr) {
            new_top_r = cpu->ExecuteF64(lcore, OpKind::kFpFma, new_top_r);
            new_top_i = cpu->ExecuteF64(lcore, OpKind::kFpFma, new_top_i);
            new_bot_r = cpu->ExecuteF64(lcore, OpKind::kFpFma, new_bot_r);
            new_bot_i = cpu->ExecuteF64(lcore, OpKind::kFpFma, new_bot_i);
          }
          real[top] = new_top_r;
          imag[top] = new_top_i;
          real[bottom] = new_bot_r;
          imag[bottom] = new_bot_i;
        }
      }
    }
  }

  int size_;
};

class LuDecompositionCase : public TestcaseBase {
 public:
  LuDecompositionCase(TestcaseInfo info, int dimension)
      : TestcaseBase(std::move(info)), dimension_(dimension) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    const int n = dimension_;
    std::vector<double> matrix(static_cast<size_t>(n) * n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        matrix[i * n + j] = context.rng->NextDouble() * 2.0 - 1.0;
      }
      matrix[i * n + i] += 4.0;  // diagonal dominance: no pivoting needed
    }
    std::vector<double> golden = matrix;
    std::vector<double> routed = matrix;
    Decompose(golden, nullptr, 0);
    Decompose(routed, &cpu, lcore);
    for (int i = 0; i < n * n; ++i) {
      if (routed[i] != golden[i]) {
        context.RecordComputation(info_.id, lcore, DataType::kFloat64,
                                  BitsOfDouble(golden[i]), BitsOfDouble(routed[i]));
      }
    }
  }

 private:
  void Decompose(std::vector<double>& a, Processor* cpu, int lcore) const {
    const int n = dimension_;
    for (int k = 0; k < n; ++k) {
      for (int i = k + 1; i < n; ++i) {
        double factor = a[i * n + k] / a[k * n + k];
        if (cpu != nullptr) {
          factor = cpu->ExecuteF64(lcore, OpKind::kFpDiv, factor);
        }
        a[i * n + k] = factor;
        for (int j = k + 1; j < n; ++j) {
          double updated = a[i * n + j] - factor * a[k * n + j];
          if (cpu != nullptr) {
            updated = cpu->ExecuteF64(lcore, OpKind::kFpFma, updated);
          }
          a[i * n + j] = updated;
        }
      }
    }
  }

  int dimension_;
};

class StencilCase : public TestcaseBase {
 public:
  StencilCase(TestcaseInfo info, int cells, int steps)
      : TestcaseBase(std::move(info)), cells_(cells), steps_(steps) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    std::vector<double> golden(static_cast<size_t>(cells_));
    for (auto& value : golden) {
      value = context.rng->NextDouble();
    }
    std::vector<double> routed = golden;
    std::vector<double> golden_next(golden.size());
    std::vector<double> routed_next(routed.size());
    constexpr double kAlpha = 0.1;
    for (int step = 0; step < steps_; ++step) {
      for (int i = 0; i < cells_; ++i) {
        const int left = i == 0 ? cells_ - 1 : i - 1;
        const int right = i == cells_ - 1 ? 0 : i + 1;
        golden_next[i] =
            golden[i] + kAlpha * (golden[left] - 2.0 * golden[i] + golden[right]);
        const double update =
            routed[i] + kAlpha * (routed[left] - 2.0 * routed[i] + routed[right]);
        routed_next[i] = cpu.ExecuteF64(lcore, OpKind::kFpFma, update);
      }
      golden.swap(golden_next);
      routed.swap(routed_next);
    }
    for (int i = 0; i < cells_; ++i) {
      if (routed[i] != golden[i]) {
        context.RecordComputation(info_.id, lcore, DataType::kFloat64,
                                  BitsOfDouble(golden[i]), BitsOfDouble(routed[i]));
      }
    }
  }

 private:
  int cells_;
  int steps_;
};

class MonteCarloCase : public TestcaseBase {
 public:
  MonteCarloCase(TestcaseInfo info, int samples)
      : TestcaseBase(std::move(info)), samples_(samples) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    // Pi estimation: the distance computation runs on the processor; the host recomputes
    // the golden distance per sample, so any corrupted in/out classification is caught.
    for (int i = 0; i < samples_; ++i) {
      const double x = context.rng->NextDouble();
      const double y = context.rng->NextDouble();
      const double golden = x * x + y * y;
      const double routed = cpu.ExecuteF64(lcore, OpKind::kFpMul, golden);
      if (routed != golden) {
        context.RecordComputation(info_.id, lcore, DataType::kFloat64,
                                  BitsOfDouble(golden), BitsOfDouble(routed));
      }
    }
  }

 private:
  int samples_;
};

class SortCheckCase : public TestcaseBase {
 public:
  SortCheckCase(TestcaseInfo info, int elements)
      : TestcaseBase(std::move(info)), elements_(elements) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    std::vector<int32_t> values(static_cast<size_t>(elements_));
    for (auto& value : values) {
      value = static_cast<int32_t>(context.rng->NextInRange(-1000000, 1000000));
    }
    // Insertion sort whose comparison verdicts run on the processor: a corrupted compare
    // result leaves elements out of order.
    std::vector<int32_t> sorted = values;
    for (int i = 1; i < elements_; ++i) {
      const int32_t key = sorted[i];
      int j = i - 1;
      while (j >= 0) {
        const int32_t golden_cmp = sorted[j] > key ? 1 : 0;
        const int32_t cmp = cpu.ExecuteI32(lcore, OpKind::kCompare, golden_cmp);
        if (cmp == 0) {
          break;
        }
        sorted[j + 1] = sorted[j];
        --j;
      }
      sorted[j + 1] = key;
    }
    // Verify against the host's sort; report one record per misplaced position.
    std::vector<int32_t> golden = values;
    std::sort(golden.begin(), golden.end());
    for (int i = 0; i < elements_; ++i) {
      if (sorted[i] != golden[i]) {
        context.RecordComputation(info_.id, lcore, DataType::kInt32,
                                  BitsOfInt32(golden[i]), BitsOfInt32(sorted[i]));
      }
    }
  }

 private:
  int elements_;
};

class BinarySearchCase : public TestcaseBase {
 public:
  BinarySearchCase(TestcaseInfo info, int elements, int queries)
      : TestcaseBase(std::move(info)), elements_(elements), queries_(queries) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    std::vector<int32_t> values(static_cast<size_t>(elements_));
    for (int i = 0; i < elements_; ++i) {
      values[i] = i * 7;
    }
    for (int q = 0; q < queries_; ++q) {
      const auto target = static_cast<int32_t>(
          context.rng->NextBelow(static_cast<uint64_t>(elements_)) * 7);
      int lo = 0;
      int hi = elements_ - 1;
      int found = -1;
      while (lo <= hi) {
        const int mid = (lo + hi) / 2;
        const int32_t golden_cmp =
            values[mid] < target ? -1 : (values[mid] > target ? 1 : 0);
        const int32_t cmp = cpu.ExecuteI32(lcore, OpKind::kCompare, golden_cmp);
        if (cmp == 0) {
          found = mid;
          break;
        }
        if (cmp < 0) {
          lo = mid + 1;
        } else {
          hi = mid - 1;
        }
      }
      const int golden_index = target / 7;
      if (found != golden_index) {
        context.RecordComputation(info_.id, lcore, DataType::kInt32,
                                  BitsOfInt32(golden_index), BitsOfInt32(found));
      }
    }
  }

 private:
  int elements_;
  int queries_;
};

}  // namespace

std::unique_ptr<Testcase> MakeFftCase(int size) {
  TestcaseInfo info;
  info.id = "app.fft.f64.n" + std::to_string(size);
  info.target = Feature::kFpu;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kFpFma};
  info.types = {DataType::kFloat64};
  return std::make_unique<FftCase>(std::move(info), size);
}

std::unique_ptr<Testcase> MakeLuDecompositionCase(int dimension) {
  TestcaseInfo info;
  info.id = "app.lu.f64.n" + std::to_string(dimension);
  info.target = Feature::kFpu;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kFpDiv, OpKind::kFpFma};
  info.types = {DataType::kFloat64};
  return std::make_unique<LuDecompositionCase>(std::move(info), dimension);
}

std::unique_ptr<Testcase> MakeStencilCase(int cells, int steps) {
  TestcaseInfo info;
  info.id = "app.stencil.heat.n" + std::to_string(cells) + ".s" + std::to_string(steps);
  info.target = Feature::kFpu;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kFpFma};
  info.types = {DataType::kFloat64};
  return std::make_unique<StencilCase>(std::move(info), cells, steps);
}

std::unique_ptr<Testcase> MakeMonteCarloCase(int samples) {
  TestcaseInfo info;
  info.id = "app.montecarlo.pi.n" + std::to_string(samples);
  info.target = Feature::kFpu;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kFpMul};
  info.types = {DataType::kFloat64};
  return std::make_unique<MonteCarloCase>(std::move(info), samples);
}

std::unique_ptr<Testcase> MakeSortCheckCase(int elements) {
  TestcaseInfo info;
  info.id = "app.sort.insertion.n" + std::to_string(elements);
  info.target = Feature::kAlu;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kCompare};
  info.types = {DataType::kInt32};
  return std::make_unique<SortCheckCase>(std::move(info), elements);
}

std::unique_ptr<Testcase> MakeBinarySearchCase(int elements, int queries) {
  TestcaseInfo info;
  info.id = "app.bsearch.n" + std::to_string(elements) + ".q" + std::to_string(queries);
  info.target = Feature::kAlu;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kCompare};
  info.types = {DataType::kInt32};
  return std::make_unique<BinarySearchCase>(std::move(info), elements, queries);
}

}  // namespace sdc
