// The testcase kernel library: parameterized testcase families from which the registry
// builds the full 633-case suite. Families mirror the manufacturer toolchain's range
// (Section 2.3): single-instruction loops, library-call kernels (checksums, math functions,
// erasure coding), and application logic (storage server write path, hash-map metadata,
// matrix pipelines), plus the multi-threaded consistency tests (coherence handoffs, locks,
// transactions) that Section 4.1 notes are the only way to catch consistency-type SDCs.
//
// Every kernel computes golden values natively and routes results through the simulated
// processor, then checks the routed values -- so a healthy machine never reports an error
// and a defective one reports exactly the corruptions its defects inject.

#ifndef SDC_SRC_TOOLCHAIN_CASES_H_
#define SDC_SRC_TOOLCHAIN_CASES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/toolchain/testcase.h"

namespace sdc {

// Base carrying the info block; kernels implement RunBatch.
class TestcaseBase : public Testcase {
 public:
  explicit TestcaseBase(TestcaseInfo info) : info_(std::move(info)) {}
  const TestcaseInfo& info() const override { return info_; }

 protected:
  TestcaseInfo info_;
};

// --- Computation: instruction loops ---

// Tight loop over one scalar op on one datatype (i16/i32/ui32/f32/f64/f80/bin*).
std::unique_ptr<Testcase> MakeScalarSweepCase(OpKind op, DataType type, int elements);

// Tight loop over one vector op: `lanes` results routed per vector instruction.
std::unique_ptr<Testcase> MakeVectorSweepCase(OpKind op, DataType type, int lanes,
                                              int vectors);

// --- Computation: library calls ---

// Math-function evaluation chain (arctan/sin/log/exp) on f64 or f64x.
std::unique_ptr<Testcase> MakeMathFunctionCase(OpKind op, DataType type, int points);

// CRC32 of a buffer; scalar or vector-accelerated datapath.
std::unique_ptr<Testcase> MakeChecksumCase(bool vectorized, int buffer_bytes);

// Horner polynomial evaluation via scalar FMA (f64), with error propagation.
std::unique_ptr<Testcase> MakePolynomialCase(int degree, int points);

// Reed-Solomon parity generation via the vector GF(256) path.
std::unique_ptr<Testcase> MakeErasureCase(int data_shards, int parity_shards,
                                          int shard_bytes);

// Multi-limb ("big integer") add/multiply on uint32 limbs.
std::unique_ptr<Testcase> MakeBigIntCase(OpKind op, int limbs);

// Byte-buffer string manipulation (transform + compare).
std::unique_ptr<Testcase> MakeStringCase(int bytes);

// --- Computation: application logic ---

// Matrix multiply (f32/f64 via vector FMA, i32 via scalar multiply-add).
std::unique_ptr<Testcase> MakeMatrixMultiplyCase(DataType type, int dimension, int lanes);

// Storage-server write path: block + CRC, verify on read-back (the Section 2.2 incident).
std::unique_ptr<Testcase> MakeStorageServerCase(int block_bytes, bool vectorized_crc);

// Hash-map metadata service: insert/lookup with hashing on the processor (Section 2.2).
std::unique_ptr<Testcase> MakeHashMapCase(int operations);

// Numerical integration of sin(x) (trapezoid rule): FPU application mix.
std::unique_ptr<Testcase> MakeIntegrationCase(int intervals);

// --- Computation: numerical applications ---

// Radix-2 complex FFT with routed butterflies (corruption propagates across stages).
std::unique_ptr<Testcase> MakeFftCase(int size);

// LU decomposition (Doolittle, diagonally dominant input) with routed updates.
std::unique_ptr<Testcase> MakeLuDecompositionCase(int dimension);

// 1-D heat-equation stencil iteration with routed cell updates.
std::unique_ptr<Testcase> MakeStencilCase(int cells, int steps);

// Monte Carlo pi estimation: the per-sample distance computation is routed.
std::unique_ptr<Testcase> MakeMonteCarloCase(int samples);

// Insertion sort whose comparison verdicts are routed; sortedness verified host-side.
std::unique_ptr<Testcase> MakeSortCheckCase(int elements);

// Binary search over a sorted array with routed comparisons.
std::unique_ptr<Testcase> MakeBinarySearchCase(int elements, int queries);

// --- Computation: data processing ---

// Run-length encode/decode round trip with routed run counters.
std::unique_ptr<Testcase> MakeRleCase(int bytes);

// Bucketed histogram with routed increments.
std::unique_ptr<Testcase> MakeHistogramCase(int samples);

// Byte packing into 32-bit words via routed shift/or, verified by unpacking.
std::unique_ptr<Testcase> MakeBitPackCase(int values);

// Base64 sextet extraction through the processor.
std::unique_ptr<Testcase> MakeBase64Case(int bytes);

// Chunked memcmp with routed comparison verdicts.
std::unique_ptr<Testcase> MakeMemcmpCase(int bytes);

// Adler-32 checksum of a buffer with routed block sums.
std::unique_ptr<Testcase> MakeAdlerChecksumCase(int bytes);

// CRC-64/ECMA checksum of a buffer with routed block steps.
std::unique_ptr<Testcase> MakeCrc64Case(int bytes);

// Proxy-fuzzing case: a deterministic pseudo-random mix over the scalar/vector op pools
// (SiliFuzz/OpenDCDiag style, Section 6.1), self-checking every routed result.
std::unique_ptr<Testcase> MakeFuzzCase(uint64_t stream_seed, int ops);

// --- Consistency: multi-threaded tests ---

// Flag/data publication (sequence-numbered payload) over the coherent bus.
std::unique_ptr<Testcase> MakeMessagePassingCase(int words, int rounds);

// Seqlock reader/writer: versioned snapshots whose consistency check a dropped
// invalidation silently defeats.
std::unique_ptr<Testcase> MakeSeqlockCase(int words, int rounds);


// Producer/consumer data+checksum handoff over the coherent bus.
std::unique_ptr<Testcase> MakeCoherenceHandoffCase(int payload_bytes, int rounds);

// Spinlock-protected shared counter (atomic CAS lock, plain data accesses).
std::unique_ptr<Testcase> MakeLockCounterCase(int increments);

// Transactional two-cell invariant (x == y) under conflicting transactions.
std::unique_ptr<Testcase> MakeTxInvariantCase(int rounds);

// Transactional transfers conserving a total balance.
std::unique_ptr<Testcase> MakeTxBankCase(int accounts, int transfers);

}  // namespace sdc

#endif  // SDC_SRC_TOOLCHAIN_CASES_H_
