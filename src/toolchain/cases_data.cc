// Data-processing kernels: run-length encoding, histograms, bit packing, base64, and
// chunked memory comparison -- plus the flag/data message-passing consistency test
// (publish-subscribe without checksums, caught by embedded sequence numbers).

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "src/toolchain/cases.h"

namespace sdc {
namespace {

class RleCase : public TestcaseBase {
 public:
  RleCase(TestcaseInfo info, int bytes) : TestcaseBase(std::move(info)), bytes_(bytes) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    // Runs-heavy input so RLE does real work.
    std::vector<uint8_t> input;
    input.reserve(static_cast<size_t>(bytes_));
    while (static_cast<int>(input.size()) < bytes_) {
      const auto value = static_cast<uint8_t>(context.rng->NextBelow(8));
      const auto run = static_cast<int>(context.rng->NextBelow(12)) + 1;
      for (int i = 0; i < run && static_cast<int>(input.size()) < bytes_; ++i) {
        input.push_back(value);
      }
    }
    // Encode: (count, value) pairs; run counts are computed through the processor.
    std::vector<uint8_t> encoded;
    size_t index = 0;
    bool corrupted_encoding = false;
    while (index < input.size()) {
      uint8_t count = 1;
      while (index + count < input.size() && count < 255 &&
             input[index + count] == input[index]) {
        const auto next = static_cast<uint8_t>(count + 1);
        const auto routed = static_cast<uint8_t>(
            cpu.ExecuteRaw(lcore, OpKind::kIntAdd, next, DataType::kByte));
        if (routed != next) {
          context.RecordComputation(info_.id, lcore, DataType::kByte,
                                    BitsOfRaw(next, 8), BitsOfRaw(routed, 8));
          corrupted_encoding = true;
        }
        count = routed == 0 ? next : routed;  // keep making progress even when corrupted
      }
      encoded.push_back(count);
      encoded.push_back(input[index]);
      index += count;
      if (index > input.size()) {
        break;  // a corrupted count overshot the input
      }
    }
    // Decode host-side and verify the round trip (only meaningful when encoding is clean).
    if (!corrupted_encoding) {
      std::vector<uint8_t> decoded;
      for (size_t i = 0; i + 1 < encoded.size(); i += 2) {
        decoded.insert(decoded.end(), encoded[i], encoded[i + 1]);
      }
      if (decoded != input) {
        context.RecordComputation(info_.id, lcore, DataType::kByte, BitsOfRaw(0, 8),
                                  BitsOfRaw(1, 8));
      }
    }
  }

 private:
  int bytes_;
};

class HistogramCase : public TestcaseBase {
 public:
  HistogramCase(TestcaseInfo info, int samples)
      : TestcaseBase(std::move(info)), samples_(samples) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    std::array<int32_t, 16> golden{};
    std::array<int32_t, 16> routed{};
    for (int i = 0; i < samples_; ++i) {
      const auto bucket = static_cast<size_t>(context.rng->NextBelow(16));
      golden[bucket] += 1;
      routed[bucket] = cpu.ExecuteI32(lcore, OpKind::kIntAdd, routed[bucket] + 1);
    }
    for (size_t bucket = 0; bucket < golden.size(); ++bucket) {
      if (routed[bucket] != golden[bucket]) {
        context.RecordComputation(info_.id, lcore, DataType::kInt32,
                                  BitsOfInt32(golden[bucket]),
                                  BitsOfInt32(routed[bucket]));
      }
    }
  }

 private:
  int samples_;
};

class BitPackCase : public TestcaseBase {
 public:
  BitPackCase(TestcaseInfo info, int values)
      : TestcaseBase(std::move(info)), values_(values) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    // Pack 8-bit samples four to a 32-bit word via routed shift+or; unpack host-side.
    for (int i = 0; i < values_; i += 4) {
      uint8_t samples[4];
      uint32_t golden_word = 0;
      for (int k = 0; k < 4; ++k) {
        samples[k] = static_cast<uint8_t>(context.rng->Next());
        golden_word |= static_cast<uint32_t>(samples[k]) << (8 * k);
      }
      const uint64_t routed_word =
          cpu.ExecuteRaw(lcore, OpKind::kIntShift, golden_word, DataType::kBin32);
      if (routed_word != golden_word) {
        context.RecordComputation(info_.id, lcore, DataType::kBin32,
                                  BitsOfRaw(golden_word, 32), BitsOfRaw(routed_word, 32));
        continue;
      }
      for (int k = 0; k < 4; ++k) {
        const auto unpacked = static_cast<uint8_t>(routed_word >> (8 * k));
        if (unpacked != samples[k]) {
          context.RecordComputation(info_.id, lcore, DataType::kByte,
                                    BitsOfRaw(samples[k], 8), BitsOfRaw(unpacked, 8));
        }
      }
    }
  }

 private:
  int values_;
};

class Base64Case : public TestcaseBase {
 public:
  Base64Case(TestcaseInfo info, int bytes) : TestcaseBase(std::move(info)), bytes_(bytes) {}

  void RunBatch(TestContext& context) override {
    static constexpr char kAlphabet[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    std::vector<uint8_t> input(static_cast<size_t>(bytes_));
    for (auto& byte : input) {
      byte = static_cast<uint8_t>(context.rng->Next());
    }
    // Encode 3 bytes -> 4 sextets; each sextet extraction runs on the processor.
    for (size_t i = 0; i + 2 < input.size(); i += 3) {
      const uint32_t group = (static_cast<uint32_t>(input[i]) << 16) |
                             (static_cast<uint32_t>(input[i + 1]) << 8) | input[i + 2];
      for (int k = 3; k >= 0; --k) {
        const auto golden_sextet = static_cast<uint8_t>((group >> (6 * k)) & 0x3f);
        const auto routed_sextet = static_cast<uint8_t>(
            cpu.ExecuteRaw(lcore, OpKind::kLogicAnd, golden_sextet, DataType::kByte));
        if (routed_sextet != golden_sextet ||
            kAlphabet[routed_sextet & 0x3f] != kAlphabet[golden_sextet]) {
          context.RecordComputation(info_.id, lcore, DataType::kByte,
                                    BitsOfRaw(golden_sextet, 8),
                                    BitsOfRaw(routed_sextet, 8));
        }
      }
    }
  }

 private:
  int bytes_;
};

class MemcmpCase : public TestcaseBase {
 public:
  MemcmpCase(TestcaseInfo info, int bytes) : TestcaseBase(std::move(info)), bytes_(bytes) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    std::vector<uint8_t> a(static_cast<size_t>(bytes_));
    for (auto& byte : a) {
      byte = static_cast<uint8_t>(context.rng->Next());
    }
    std::vector<uint8_t> b = a;
    // Flip one byte half of the time: the comparison must find it (or report equal).
    int difference_at = -1;
    if (context.rng->NextBernoulli(0.5)) {
      difference_at = static_cast<int>(context.rng->NextBelow(a.size()));
      b[difference_at] ^= 0x20;
    }
    // Chunked compare: per 8-byte chunk verdict runs on the processor.
    int found_at = -1;
    for (size_t offset = 0; offset < a.size(); offset += 8) {
      const size_t length = std::min<size_t>(8, a.size() - offset);
      const int32_t golden_cmp = std::memcmp(a.data() + offset, b.data() + offset, length);
      const int32_t routed_cmp = cpu.ExecuteI32(lcore, OpKind::kCompare, golden_cmp);
      if (routed_cmp != golden_cmp) {
        context.RecordComputation(info_.id, lcore, DataType::kInt32,
                                  BitsOfInt32(golden_cmp), BitsOfInt32(routed_cmp));
      }
      if (routed_cmp != 0 && found_at < 0) {
        found_at = static_cast<int>(offset);
      }
    }
    const int golden_chunk = difference_at < 0 ? -1 : difference_at / 8 * 8;
    if (found_at != golden_chunk) {
      context.RecordComputation(info_.id, lcore, DataType::kInt32,
                                BitsOfInt32(golden_chunk), BitsOfInt32(found_at));
    }
  }

 private:
  int bytes_;
};


// Pads a round with private-cell loads so consistency-op rates land near the calibrated
// ~1e6/s instead of the raw scalar rate (same role as the handoff cases' padding).
void PadRound(TestContext& context, int lcore, int loads) {
  CoherentBus& bus = context.machine->bus();
  const size_t private_base = FaultyMachine::kSharedCells - 64;
  for (int i = 0; i < loads; ++i) {
    bus.Read(lcore, private_base + static_cast<size_t>(i % 32));
  }
}

// Seqlock reader/writer: the writer marks the version odd, updates the payload, and
// publishes an even version; readers accept a snapshot only when the version is even and
// unchanged across the read. A dropped invalidation lets a reader pair a stale version
// with a partially fresh payload -- an inconsistent snapshot the version check cannot see.
class SeqlockCase : public TestcaseBase {
 public:
  SeqlockCase(TestcaseInfo info, int words, int rounds)
      : TestcaseBase(std::move(info)), words_(words), rounds_(rounds) {}

  void RunBatch(TestContext& context) override {
    CoherentBus& bus = context.machine->bus();
    const int writer = context.lcores[0];
    const int reader = context.lcores[1];
    const size_t base = 1800;  // clear of the other consistency regions
    const size_t version_addr = base + static_cast<size_t>(words_);
    for (size_t w = 0; w <= static_cast<size_t>(words_); ++w) {
      bus.DirectWrite(base + w, 0);
    }
    for (size_t w = 0; w <= static_cast<size_t>(words_); ++w) {
      bus.Read(reader, base + w);  // warm the reader's cache
    }
    for (int round = 1; round <= rounds_; ++round) {
      // Writer: odd version -> payload -> even version.
      bus.Write(writer, version_addr, 2u * round - 1);
      for (int w = 0; w < words_; ++w) {
        bus.Write(writer, base + static_cast<size_t>(w), static_cast<uint64_t>(round));
      }
      bus.Write(writer, version_addr, 2u * round);
      // Reader: versioned snapshot with bounded retries.
      for (int attempt = 0; attempt < 3; ++attempt) {
        const uint64_t before = bus.Read(reader, version_addr);
        if (before % 2 != 0) {
          continue;  // writer in progress (cannot happen in this serialized schedule)
        }
        bool inconsistent = false;
        for (int w = 0; w < words_; ++w) {
          const uint64_t value = bus.Read(reader, base + static_cast<size_t>(w));
          if (value != before / 2) {
            inconsistent = true;
          }
        }
        const uint64_t after = bus.Read(reader, version_addr);
        if (after != before) {
          continue;  // torn by a concurrent write: retry, per the protocol
        }
        if (inconsistent) {
          // The version check accepted a snapshot whose payload disagrees with it.
          context.RecordConsistency(info_.id, reader);
          bus.Fence(reader);
        }
        break;
      }
      PadRound(context, writer, 120);
      PadRound(context, reader, 120);
    }
  }

 private:
  int words_;
  int rounds_;
};

// Flag/data publication: the producer writes a payload then publishes a sequence number;
// the consumer sees the new sequence but (on a defective part) stale payload words.
class MessagePassingCase : public TestcaseBase {
 public:
  MessagePassingCase(TestcaseInfo info, int words, int rounds)
      : TestcaseBase(std::move(info)), words_(words), rounds_(rounds) {}

  void RunBatch(TestContext& context) override {
    CoherentBus& bus = context.machine->bus();
    const int producer = context.lcores[0];
    const int consumer = context.lcores[1];
    const size_t base = 1500;  // clear of the handoff/lock regions
    const size_t flag_addr = base + static_cast<size_t>(words_);
    for (size_t w = 0; w <= static_cast<size_t>(words_); ++w) {
      bus.DirectWrite(base + w, 0);
    }
    // Warm the consumer's cache.
    for (size_t w = 0; w <= static_cast<size_t>(words_); ++w) {
      bus.Read(consumer, base + w);
    }
    for (int round = 1; round <= rounds_; ++round) {
      // Payload words embed the round number, so staleness is directly observable.
      for (int w = 0; w < words_; ++w) {
        bus.Write(producer, base + static_cast<size_t>(w),
                  (static_cast<uint64_t>(round) << 32) | static_cast<uint64_t>(w));
      }
      bus.Write(producer, flag_addr, static_cast<uint64_t>(round));
      // Consumer: wait for the flag, then read the payload.
      const uint64_t seen_flag = bus.Read(consumer, flag_addr);
      bool stale = false;
      for (int w = 0; w < words_; ++w) {
        const uint64_t value = bus.Read(consumer, base + static_cast<size_t>(w));
        if ((value >> 32) != seen_flag) {
          stale = true;
        }
      }
      if (stale) {
        context.RecordConsistency(info_.id, consumer);
        bus.Fence(consumer);
      }
    }
  }

 private:
  int words_;
  int rounds_;
};

}  // namespace

std::unique_ptr<Testcase> MakeRleCase(int bytes) {
  TestcaseInfo info;
  info.id = "app.rle.b" + std::to_string(bytes);
  info.target = Feature::kAlu;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kIntAdd};
  info.types = {DataType::kByte};
  return std::make_unique<RleCase>(std::move(info), bytes);
}

std::unique_ptr<Testcase> MakeHistogramCase(int samples) {
  TestcaseInfo info;
  info.id = "app.histogram.n" + std::to_string(samples);
  info.target = Feature::kAlu;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kIntAdd};
  info.types = {DataType::kInt32};
  return std::make_unique<HistogramCase>(std::move(info), samples);
}

std::unique_ptr<Testcase> MakeBitPackCase(int values) {
  TestcaseInfo info;
  info.id = "lib.bitpack.n" + std::to_string(values);
  info.target = Feature::kAlu;
  info.style = TestcaseStyle::kLibraryCall;
  info.ops = {OpKind::kIntShift};
  info.types = {DataType::kBin32, DataType::kByte};
  return std::make_unique<BitPackCase>(std::move(info), values);
}

std::unique_ptr<Testcase> MakeBase64Case(int bytes) {
  TestcaseInfo info;
  info.id = "lib.base64.b" + std::to_string(bytes);
  info.target = Feature::kAlu;
  info.style = TestcaseStyle::kLibraryCall;
  info.ops = {OpKind::kLogicAnd};
  info.types = {DataType::kByte};
  return std::make_unique<Base64Case>(std::move(info), bytes);
}

std::unique_ptr<Testcase> MakeMemcmpCase(int bytes) {
  TestcaseInfo info;
  info.id = "lib.memcmp.b" + std::to_string(bytes);
  info.target = Feature::kAlu;
  info.style = TestcaseStyle::kLibraryCall;
  info.ops = {OpKind::kCompare};
  info.types = {DataType::kInt32};
  return std::make_unique<MemcmpCase>(std::move(info), bytes);
}


std::unique_ptr<Testcase> MakeSeqlockCase(int words, int rounds) {
  TestcaseInfo info;
  info.id = "mt.coherence.seqlock.w" + std::to_string(words) + ".r" + std::to_string(rounds);
  info.target = Feature::kCache;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kStore, OpKind::kLoad};
  info.types = {};
  info.multithreaded = true;
  return std::make_unique<SeqlockCase>(std::move(info), words, rounds);
}

std::unique_ptr<Testcase> MakeMessagePassingCase(int words, int rounds) {
  TestcaseInfo info;
  info.id = "mt.coherence.msgpass.w" + std::to_string(words) + ".r" + std::to_string(rounds);
  info.target = Feature::kCache;
  info.style = TestcaseStyle::kApplicationLogic;
  info.ops = {OpKind::kStore, OpKind::kLoad};
  info.types = {};
  info.multithreaded = true;
  return std::make_unique<MessagePassingCase>(std::move(info), words, rounds);
}

}  // namespace sdc
