#include "src/toolchain/testcase.h"

namespace sdc {

std::string TestcaseStyleName(TestcaseStyle style) {
  switch (style) {
    case TestcaseStyle::kInstructionLoop:
      return "instruction-loop";
    case TestcaseStyle::kLibraryCall:
      return "library-call";
    case TestcaseStyle::kApplicationLogic:
      return "application-logic";
  }
  return "?";
}

void TestContext::RecordComputation(const std::string& testcase_id, int lcore, DataType type,
                                    const Word128& expected, const Word128& actual) {
  ++errors_found;
  if (records == nullptr || records->size() >= max_records) {
    return;
  }
  SdcRecord record;
  record.testcase_id = testcase_id;
  record.cpu_id = cpu_id;
  record.lcore = lcore;
  record.pcore = machine->cpu().pcore_of(lcore);
  record.sdc_type = SdcType::kComputation;
  record.type = type;
  record.expected = expected;
  record.actual = actual;
  record.temperature = machine->cpu().core_temperature(record.pcore);
  record.time_seconds = machine->cpu().now_seconds();
  records->push_back(std::move(record));
}

void TestContext::RecordConsistency(const std::string& testcase_id, int lcore) {
  ++errors_found;
  if (records == nullptr || records->size() >= max_records) {
    return;
  }
  SdcRecord record;
  record.testcase_id = testcase_id;
  record.cpu_id = cpu_id;
  record.lcore = lcore;
  record.pcore = machine->cpu().pcore_of(lcore);
  record.sdc_type = SdcType::kConsistency;
  record.temperature = machine->cpu().core_temperature(record.pcore);
  record.time_seconds = machine->cpu().now_seconds();
  records->push_back(std::move(record));
}

}  // namespace sdc
