// Instruction-loop testcases: tight loops over a single scalar or vector operation.

#include <bit>
#include <cmath>
#include <string>

#include "src/toolchain/cases.h"

namespace sdc {
namespace {

// Golden scalar results for integer/logic ops. Inputs are derived from the rng; divide
// guards against zero divisors.
int64_t GoldenInt(OpKind op, int64_t a, int64_t b) {
  switch (op) {
    case OpKind::kIntAdd:
      return a + b;
    case OpKind::kIntSub:
      return a - b;
    case OpKind::kIntMul:
      return a * b;
    case OpKind::kIntDiv:
      return a / (b | 1);
    case OpKind::kIntShift:
      return a << (b & 15);
    case OpKind::kLogicAnd:
      return a & b;
    case OpKind::kLogicOr:
      return a | b;
    case OpKind::kLogicXor:
      return a ^ b;
    case OpKind::kPopcount:
      return std::popcount(static_cast<uint64_t>(a));
    case OpKind::kCompare:
      return a < b ? -1 : (a > b ? 1 : 0);
    case OpKind::kHashStep:
      return static_cast<int64_t>((static_cast<uint64_t>(a) ^ static_cast<uint64_t>(b)) *
                                  0x100000001b3ull);
    case OpKind::kCrc32Step:
      return static_cast<int64_t>(
          (static_cast<uint64_t>(a) >> 8) ^ ((static_cast<uint64_t>(a ^ b) & 0xff) * 0x1db7));
    default:
      return a + b;
  }
}

long double GoldenFloat(OpKind op, long double a, long double b) {
  switch (op) {
    case OpKind::kFpAdd:
    case OpKind::kVecAddF32:
    case OpKind::kVecAddF64:
      return a + b;
    case OpKind::kFpSub:
      return a - b;
    case OpKind::kFpMul:
    case OpKind::kVecMulF32:
    case OpKind::kVecMulF64:
      return a * b;
    case OpKind::kFpDiv:
      return a / (b == 0.0L ? 1.0L : b);
    case OpKind::kFpSqrt:
      return std::sqrt(std::fabs(a));
    case OpKind::kFpFma:
    case OpKind::kVecFmaF32:
    case OpKind::kVecFmaF64:
      return a * b + (a - b);
    case OpKind::kFpArctan:
      return std::atan(a);
    case OpKind::kFpSin:
      return std::sin(a);
    case OpKind::kFpLog:
      return std::log(std::fabs(a) + 1.0L);
    case OpKind::kFpExp:
      return std::exp(a / 64.0L);
    default:
      return a + b;
  }
}

class ScalarSweepCase : public TestcaseBase {
 public:
  ScalarSweepCase(TestcaseInfo info, OpKind op, DataType type, int elements)
      : TestcaseBase(std::move(info)), op_(op), type_(type), elements_(elements) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    for (int i = 0; i < elements_; ++i) {
      switch (type_) {
        case DataType::kInt16: {
          const auto a = static_cast<int16_t>(context.rng->NextInRange(-20000, 20000));
          const auto b = static_cast<int16_t>(context.rng->NextInRange(-20000, 20000));
          const auto golden = static_cast<int16_t>(GoldenInt(op_, a, b));
          const int16_t routed = cpu.ExecuteI16(lcore, op_, golden);
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, type_, BitsOfInt16(golden),
                                      BitsOfInt16(routed));
          }
          break;
        }
        case DataType::kInt32: {
          const auto a = static_cast<int32_t>(context.rng->NextInRange(-1000000, 1000000));
          const auto b = static_cast<int32_t>(context.rng->NextInRange(-1000000, 1000000));
          const auto golden = static_cast<int32_t>(GoldenInt(op_, a, b));
          const int32_t routed = cpu.ExecuteI32(lcore, op_, golden);
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, type_, BitsOfInt32(golden),
                                      BitsOfInt32(routed));
          }
          break;
        }
        case DataType::kUInt32: {
          const auto a = static_cast<uint32_t>(context.rng->Next());
          const auto b = static_cast<uint32_t>(context.rng->Next());
          const auto golden = static_cast<uint32_t>(
              GoldenInt(op_, static_cast<int64_t>(a), static_cast<int64_t>(b)));
          const uint32_t routed = cpu.ExecuteU32(lcore, op_, golden);
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, type_, BitsOfUInt32(golden),
                                      BitsOfUInt32(routed));
          }
          break;
        }
        case DataType::kFloat32: {
          const auto a = static_cast<float>(context.rng->NextDouble() * 200.0 - 100.0);
          const auto b = static_cast<float>(context.rng->NextDouble() * 200.0 - 100.0);
          const float golden = static_cast<float>(GoldenFloat(op_, a, b));
          const float routed = cpu.ExecuteF32(lcore, op_, golden);
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, type_, BitsOfFloat(golden),
                                      BitsOfFloat(routed));
          }
          break;
        }
        case DataType::kFloat64: {
          const double a = context.rng->NextDouble() * 200.0 - 100.0;
          const double b = context.rng->NextDouble() * 200.0 - 100.0;
          const double golden = static_cast<double>(GoldenFloat(op_, a, b));
          const double routed = cpu.ExecuteF64(lcore, op_, golden);
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, type_, BitsOfDouble(golden),
                                      BitsOfDouble(routed));
          }
          break;
        }
        case DataType::kFloat80: {
          const long double a = context.rng->NextDouble() * 200.0L - 100.0L;
          const long double b = context.rng->NextDouble() * 200.0L - 100.0L;
          const long double golden = GoldenFloat(op_, a, b);
          const long double routed = cpu.ExecuteF80(lcore, op_, golden);
          if (BitsOfFloat80(routed) != BitsOfFloat80(golden)) {
            context.RecordComputation(info_.id, lcore, type_, BitsOfFloat80(golden),
                                      BitsOfFloat80(routed));
          }
          break;
        }
        default: {  // bit/byte/bin16/bin32/bin64 raw payloads
          const int width = BitWidth(type_);
          const uint64_t mask =
              width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
          const uint64_t a = context.rng->Next() & mask;
          const uint64_t b = context.rng->Next() & mask;
          const uint64_t golden =
              static_cast<uint64_t>(
                  GoldenInt(op_, static_cast<int64_t>(a), static_cast<int64_t>(b))) &
              mask;
          const uint64_t routed = cpu.ExecuteRaw(lcore, op_, golden, type_);
          if (routed != golden) {
            context.RecordComputation(info_.id, lcore, type_, BitsOfRaw(golden, width),
                                      BitsOfRaw(routed, width));
          }
          break;
        }
      }
    }
  }

 private:
  OpKind op_;
  DataType type_;
  int elements_;
};

class VectorSweepCase : public TestcaseBase {
 public:
  VectorSweepCase(TestcaseInfo info, OpKind op, DataType type, int lanes, int vectors)
      : TestcaseBase(std::move(info)), op_(op), type_(type), lanes_(lanes),
        vectors_(vectors) {}

  void RunBatch(TestContext& context) override {
    Processor& cpu = context.cpu();
    const int lcore = context.lcores.front();
    for (int v = 0; v < vectors_; ++v) {
      for (int lane = 0; lane < lanes_; ++lane) {
        switch (type_) {
          case DataType::kFloat32: {
            const auto a = static_cast<float>(context.rng->NextDouble() * 16.0 - 8.0);
            const auto b = static_cast<float>(context.rng->NextDouble() * 16.0 - 8.0);
            const float golden = static_cast<float>(GoldenFloat(op_, a, b));
            const float routed = cpu.ExecuteF32(lcore, op_, golden);
            if (routed != golden) {
              context.RecordComputation(info_.id, lcore, type_, BitsOfFloat(golden),
                                        BitsOfFloat(routed));
            }
            break;
          }
          case DataType::kFloat64: {
            const double a = context.rng->NextDouble() * 16.0 - 8.0;
            const double b = context.rng->NextDouble() * 16.0 - 8.0;
            const double golden = static_cast<double>(GoldenFloat(op_, a, b));
            const double routed = cpu.ExecuteF64(lcore, op_, golden);
            if (routed != golden) {
              context.RecordComputation(info_.id, lcore, type_, BitsOfDouble(golden),
                                        BitsOfDouble(routed));
            }
            break;
          }
          case DataType::kInt32: {
            const auto a = static_cast<int32_t>(context.rng->NextInRange(-30000, 30000));
            const auto b = static_cast<int32_t>(context.rng->NextInRange(-30000, 30000));
            const int32_t golden =
                op_ == OpKind::kVecMulI32 ? a * b : a + b;
            const int32_t routed = cpu.ExecuteI32(lcore, op_, golden);
            if (routed != golden) {
              context.RecordComputation(info_.id, lcore, type_, BitsOfInt32(golden),
                                        BitsOfInt32(routed));
            }
            break;
          }
          default: {  // shuffle-style raw lanes (bin32)
            const uint64_t a = context.rng->Next() & 0xffffffffull;
            const uint64_t golden = ((a << 16) | (a >> 16)) & 0xffffffffull;
            const uint64_t routed = cpu.ExecuteRaw(lcore, op_, golden, DataType::kBin32);
            if (routed != golden) {
              context.RecordComputation(info_.id, lcore, DataType::kBin32,
                                        BitsOfRaw(golden, 32), BitsOfRaw(routed, 32));
            }
            break;
          }
        }
      }
    }
  }

 private:
  OpKind op_;
  DataType type_;
  int lanes_;
  int vectors_;
};

}  // namespace

std::unique_ptr<Testcase> MakeScalarSweepCase(OpKind op, DataType type, int elements) {
  TestcaseInfo info;
  info.id = "loop." + OpKindName(op) + "." + DataTypeName(type) + ".n" +
            std::to_string(elements);
  info.target = FeatureOf(op);
  info.style = TestcaseStyle::kInstructionLoop;
  info.ops = {op};
  info.types = {type};
  return std::make_unique<ScalarSweepCase>(std::move(info), op, type, elements);
}

std::unique_ptr<Testcase> MakeVectorSweepCase(OpKind op, DataType type, int lanes,
                                              int vectors) {
  TestcaseInfo info;
  info.id = "vec." + OpKindName(op) + "." + DataTypeName(type) + ".l" +
            std::to_string(lanes) + ".n" + std::to_string(vectors);
  info.target = Feature::kVecUnit;
  info.style = TestcaseStyle::kInstructionLoop;
  info.ops = {op};
  info.types = {type};
  return std::make_unique<VectorSweepCase>(std::move(info), op, type, lanes, vectors);
}

}  // namespace sdc
