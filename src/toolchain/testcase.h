// Testcase abstraction for the SDC detection toolchain (Section 2.3).
//
// A testcase is a program that simulates a cloud workload and checks its own results. Like
// the manufacturer's toolchain, each testcase targets a processor feature and ranges in
// complexity from a single instruction in a loop, through library-call kernels, to
// application logic. A testcase executes work in *batches*: one batch runs the kernel once
// at operation granularity through the simulated processor (where defects can corrupt it)
// and stands for `Processor::time_scale()` identical iterations of real execution.
//
// Detected mismatches become SdcRecords -- the unit every downstream analysis consumes.

#ifndef SDC_SRC_TOOLCHAIN_TESTCASE_H_
#define SDC_SRC_TOOLCHAIN_TESTCASE_H_

#include <string>
#include <vector>

#include "src/common/bits.h"
#include "src/common/rng.h"
#include "src/fault/defect.h"
#include "src/fault/machine.h"

namespace sdc {

// The paper's three testcase complexity classes (Section 2.3).
enum class TestcaseStyle {
  kInstructionLoop,  // a specific instruction within a loop
  kLibraryCall,      // calls functions in libraries
  kApplicationLogic, // invokes application logic
};

std::string TestcaseStyleName(TestcaseStyle style);

struct TestcaseInfo {
  std::string id;
  Feature target = Feature::kAlu;       // the feature this testcase is designed for
  TestcaseStyle style = TestcaseStyle::kInstructionLoop;
  std::vector<OpKind> ops;              // op kinds the kernel exercises
  std::vector<DataType> types;          // datatypes whose results are checked
  bool multithreaded = false;           // consistency tests need >= 2 cores
};

// One observed silent data corruption.
struct SdcRecord {
  std::string testcase_id;
  std::string cpu_id;
  int pcore = 0;
  int lcore = 0;
  SdcType sdc_type = SdcType::kComputation;
  DataType type = DataType::kInt32;  // computation records only
  Word128 expected;                  // bit image of the correct result (computation only)
  Word128 actual;                    // bit image of the observed result (computation only)
  double temperature = 0.0;          // core temperature at detection
  double time_seconds = 0.0;         // simulated processor clock at detection

  Word128 FlipMask() const { return expected ^ actual; }
};

// Execution environment a batch runs in.
struct TestContext {
  FaultyMachine* machine = nullptr;
  std::vector<int> lcores;             // logical cores assigned to this testcase
  Rng* rng = nullptr;                  // deterministic workload-input randomness
  std::vector<SdcRecord>* records = nullptr;  // sink for detected SDCs (may be capped)
  size_t max_records = SIZE_MAX;       // stop *storing* (not counting) past this many
  uint64_t errors_found = 0;           // all mismatches, stored or not
  std::string cpu_id;

  Processor& cpu() { return machine->cpu(); }

  // Appends a computation SDC record for a mismatch observed on `lcore`.
  void RecordComputation(const std::string& testcase_id, int lcore, DataType type,
                         const Word128& expected, const Word128& actual);
  // Appends a consistency SDC record (no meaningful data image).
  void RecordConsistency(const std::string& testcase_id, int lcore);
};

class Testcase {
 public:
  virtual ~Testcase() = default;

  virtual const TestcaseInfo& info() const = 0;

  // Runs one kernel batch on context.lcores, checking results and recording mismatches.
  virtual void RunBatch(TestContext& context) = 0;
};

}  // namespace sdc

#endif  // SDC_SRC_TOOLCHAIN_TESTCASE_H_
