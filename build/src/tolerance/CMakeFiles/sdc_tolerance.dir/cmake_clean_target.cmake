file(REMOVE_RECURSE
  "libsdc_tolerance.a"
)
