
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tolerance/evaluation.cc" "src/tolerance/CMakeFiles/sdc_tolerance.dir/evaluation.cc.o" "gcc" "src/tolerance/CMakeFiles/sdc_tolerance.dir/evaluation.cc.o.d"
  "/root/repo/src/tolerance/range_detector.cc" "src/tolerance/CMakeFiles/sdc_tolerance.dir/range_detector.cc.o" "gcc" "src/tolerance/CMakeFiles/sdc_tolerance.dir/range_detector.cc.o.d"
  "/root/repo/src/tolerance/redundancy.cc" "src/tolerance/CMakeFiles/sdc_tolerance.dir/redundancy.cc.o" "gcc" "src/tolerance/CMakeFiles/sdc_tolerance.dir/redundancy.cc.o.d"
  "/root/repo/src/tolerance/selective.cc" "src/tolerance/CMakeFiles/sdc_tolerance.dir/selective.cc.o" "gcc" "src/tolerance/CMakeFiles/sdc_tolerance.dir/selective.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sdc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/integrity/CMakeFiles/sdc_integrity.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
