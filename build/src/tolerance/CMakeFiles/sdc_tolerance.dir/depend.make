# Empty dependencies file for sdc_tolerance.
# This may be replaced when dependencies are built.
