file(REMOVE_RECURSE
  "CMakeFiles/sdc_tolerance.dir/evaluation.cc.o"
  "CMakeFiles/sdc_tolerance.dir/evaluation.cc.o.d"
  "CMakeFiles/sdc_tolerance.dir/range_detector.cc.o"
  "CMakeFiles/sdc_tolerance.dir/range_detector.cc.o.d"
  "CMakeFiles/sdc_tolerance.dir/redundancy.cc.o"
  "CMakeFiles/sdc_tolerance.dir/redundancy.cc.o.d"
  "CMakeFiles/sdc_tolerance.dir/selective.cc.o"
  "CMakeFiles/sdc_tolerance.dir/selective.cc.o.d"
  "libsdc_tolerance.a"
  "libsdc_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
