file(REMOVE_RECURSE
  "libsdc_telemetry.a"
)
