# Empty dependencies file for sdc_telemetry.
# This may be replaced when dependencies are built.
