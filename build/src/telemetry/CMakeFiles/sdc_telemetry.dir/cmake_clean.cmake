file(REMOVE_RECURSE
  "CMakeFiles/sdc_telemetry.dir/event_log.cc.o"
  "CMakeFiles/sdc_telemetry.dir/event_log.cc.o.d"
  "libsdc_telemetry.a"
  "libsdc_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
