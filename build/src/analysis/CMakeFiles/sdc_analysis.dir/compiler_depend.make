# Empty compiler generated dependencies file for sdc_analysis.
# This may be replaced when dependencies are built.
