file(REMOVE_RECURSE
  "CMakeFiles/sdc_analysis.dir/bitflip.cc.o"
  "CMakeFiles/sdc_analysis.dir/bitflip.cc.o.d"
  "CMakeFiles/sdc_analysis.dir/patterns.cc.o"
  "CMakeFiles/sdc_analysis.dir/patterns.cc.o.d"
  "CMakeFiles/sdc_analysis.dir/repro.cc.o"
  "CMakeFiles/sdc_analysis.dir/repro.cc.o.d"
  "libsdc_analysis.a"
  "libsdc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
