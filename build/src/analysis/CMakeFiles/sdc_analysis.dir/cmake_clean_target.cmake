file(REMOVE_RECURSE
  "libsdc_analysis.a"
)
