file(REMOVE_RECURSE
  "CMakeFiles/sdc_integrity.dir/adler32.cc.o"
  "CMakeFiles/sdc_integrity.dir/adler32.cc.o.d"
  "CMakeFiles/sdc_integrity.dir/crc32.cc.o"
  "CMakeFiles/sdc_integrity.dir/crc32.cc.o.d"
  "CMakeFiles/sdc_integrity.dir/ecc.cc.o"
  "CMakeFiles/sdc_integrity.dir/ecc.cc.o.d"
  "CMakeFiles/sdc_integrity.dir/erasure.cc.o"
  "CMakeFiles/sdc_integrity.dir/erasure.cc.o.d"
  "CMakeFiles/sdc_integrity.dir/hash.cc.o"
  "CMakeFiles/sdc_integrity.dir/hash.cc.o.d"
  "libsdc_integrity.a"
  "libsdc_integrity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
