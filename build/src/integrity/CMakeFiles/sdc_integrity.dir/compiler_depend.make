# Empty compiler generated dependencies file for sdc_integrity.
# This may be replaced when dependencies are built.
