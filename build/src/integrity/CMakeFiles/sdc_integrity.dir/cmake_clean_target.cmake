file(REMOVE_RECURSE
  "libsdc_integrity.a"
)
