
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/integrity/adler32.cc" "src/integrity/CMakeFiles/sdc_integrity.dir/adler32.cc.o" "gcc" "src/integrity/CMakeFiles/sdc_integrity.dir/adler32.cc.o.d"
  "/root/repo/src/integrity/crc32.cc" "src/integrity/CMakeFiles/sdc_integrity.dir/crc32.cc.o" "gcc" "src/integrity/CMakeFiles/sdc_integrity.dir/crc32.cc.o.d"
  "/root/repo/src/integrity/ecc.cc" "src/integrity/CMakeFiles/sdc_integrity.dir/ecc.cc.o" "gcc" "src/integrity/CMakeFiles/sdc_integrity.dir/ecc.cc.o.d"
  "/root/repo/src/integrity/erasure.cc" "src/integrity/CMakeFiles/sdc_integrity.dir/erasure.cc.o" "gcc" "src/integrity/CMakeFiles/sdc_integrity.dir/erasure.cc.o.d"
  "/root/repo/src/integrity/hash.cc" "src/integrity/CMakeFiles/sdc_integrity.dir/hash.cc.o" "gcc" "src/integrity/CMakeFiles/sdc_integrity.dir/hash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
