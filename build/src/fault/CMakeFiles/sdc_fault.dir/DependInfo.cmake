
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/catalog.cc" "src/fault/CMakeFiles/sdc_fault.dir/catalog.cc.o" "gcc" "src/fault/CMakeFiles/sdc_fault.dir/catalog.cc.o.d"
  "/root/repo/src/fault/defect.cc" "src/fault/CMakeFiles/sdc_fault.dir/defect.cc.o" "gcc" "src/fault/CMakeFiles/sdc_fault.dir/defect.cc.o.d"
  "/root/repo/src/fault/injector.cc" "src/fault/CMakeFiles/sdc_fault.dir/injector.cc.o" "gcc" "src/fault/CMakeFiles/sdc_fault.dir/injector.cc.o.d"
  "/root/repo/src/fault/machine.cc" "src/fault/CMakeFiles/sdc_fault.dir/machine.cc.o" "gcc" "src/fault/CMakeFiles/sdc_fault.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
