file(REMOVE_RECURSE
  "CMakeFiles/sdc_fault.dir/catalog.cc.o"
  "CMakeFiles/sdc_fault.dir/catalog.cc.o.d"
  "CMakeFiles/sdc_fault.dir/defect.cc.o"
  "CMakeFiles/sdc_fault.dir/defect.cc.o.d"
  "CMakeFiles/sdc_fault.dir/injector.cc.o"
  "CMakeFiles/sdc_fault.dir/injector.cc.o.d"
  "CMakeFiles/sdc_fault.dir/machine.cc.o"
  "CMakeFiles/sdc_fault.dir/machine.cc.o.d"
  "libsdc_fault.a"
  "libsdc_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
