file(REMOVE_RECURSE
  "libsdc_fault.a"
)
