# Empty dependencies file for sdc_fault.
# This may be replaced when dependencies are built.
