# Empty compiler generated dependencies file for sdc_toolchain.
# This may be replaced when dependencies are built.
