
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/toolchain/cases_app.cc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_app.cc.o" "gcc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_app.cc.o.d"
  "/root/repo/src/toolchain/cases_consistency.cc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_consistency.cc.o" "gcc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_consistency.cc.o.d"
  "/root/repo/src/toolchain/cases_data.cc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_data.cc.o" "gcc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_data.cc.o.d"
  "/root/repo/src/toolchain/cases_fuzz.cc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_fuzz.cc.o" "gcc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_fuzz.cc.o.d"
  "/root/repo/src/toolchain/cases_library.cc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_library.cc.o" "gcc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_library.cc.o.d"
  "/root/repo/src/toolchain/cases_numeric.cc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_numeric.cc.o" "gcc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_numeric.cc.o.d"
  "/root/repo/src/toolchain/cases_scalar.cc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_scalar.cc.o" "gcc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/cases_scalar.cc.o.d"
  "/root/repo/src/toolchain/framework.cc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/framework.cc.o" "gcc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/framework.cc.o.d"
  "/root/repo/src/toolchain/registry.cc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/registry.cc.o" "gcc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/registry.cc.o.d"
  "/root/repo/src/toolchain/testcase.cc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/testcase.cc.o" "gcc" "src/toolchain/CMakeFiles/sdc_toolchain.dir/testcase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sdc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/integrity/CMakeFiles/sdc_integrity.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
