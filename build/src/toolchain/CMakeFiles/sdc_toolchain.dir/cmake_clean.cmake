file(REMOVE_RECURSE
  "CMakeFiles/sdc_toolchain.dir/cases_app.cc.o"
  "CMakeFiles/sdc_toolchain.dir/cases_app.cc.o.d"
  "CMakeFiles/sdc_toolchain.dir/cases_consistency.cc.o"
  "CMakeFiles/sdc_toolchain.dir/cases_consistency.cc.o.d"
  "CMakeFiles/sdc_toolchain.dir/cases_data.cc.o"
  "CMakeFiles/sdc_toolchain.dir/cases_data.cc.o.d"
  "CMakeFiles/sdc_toolchain.dir/cases_fuzz.cc.o"
  "CMakeFiles/sdc_toolchain.dir/cases_fuzz.cc.o.d"
  "CMakeFiles/sdc_toolchain.dir/cases_library.cc.o"
  "CMakeFiles/sdc_toolchain.dir/cases_library.cc.o.d"
  "CMakeFiles/sdc_toolchain.dir/cases_numeric.cc.o"
  "CMakeFiles/sdc_toolchain.dir/cases_numeric.cc.o.d"
  "CMakeFiles/sdc_toolchain.dir/cases_scalar.cc.o"
  "CMakeFiles/sdc_toolchain.dir/cases_scalar.cc.o.d"
  "CMakeFiles/sdc_toolchain.dir/framework.cc.o"
  "CMakeFiles/sdc_toolchain.dir/framework.cc.o.d"
  "CMakeFiles/sdc_toolchain.dir/registry.cc.o"
  "CMakeFiles/sdc_toolchain.dir/registry.cc.o.d"
  "CMakeFiles/sdc_toolchain.dir/testcase.cc.o"
  "CMakeFiles/sdc_toolchain.dir/testcase.cc.o.d"
  "libsdc_toolchain.a"
  "libsdc_toolchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
