file(REMOVE_RECURSE
  "libsdc_toolchain.a"
)
