file(REMOVE_RECURSE
  "CMakeFiles/sdc_farron.dir/baseline.cc.o"
  "CMakeFiles/sdc_farron.dir/baseline.cc.o.d"
  "CMakeFiles/sdc_farron.dir/boundary.cc.o"
  "CMakeFiles/sdc_farron.dir/boundary.cc.o.d"
  "CMakeFiles/sdc_farron.dir/farron.cc.o"
  "CMakeFiles/sdc_farron.dir/farron.cc.o.d"
  "CMakeFiles/sdc_farron.dir/longitudinal.cc.o"
  "CMakeFiles/sdc_farron.dir/longitudinal.cc.o.d"
  "CMakeFiles/sdc_farron.dir/pool.cc.o"
  "CMakeFiles/sdc_farron.dir/pool.cc.o.d"
  "CMakeFiles/sdc_farron.dir/priorities.cc.o"
  "CMakeFiles/sdc_farron.dir/priorities.cc.o.d"
  "CMakeFiles/sdc_farron.dir/protection.cc.o"
  "CMakeFiles/sdc_farron.dir/protection.cc.o.d"
  "libsdc_farron.a"
  "libsdc_farron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_farron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
