file(REMOVE_RECURSE
  "libsdc_farron.a"
)
