
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/farron/baseline.cc" "src/farron/CMakeFiles/sdc_farron.dir/baseline.cc.o" "gcc" "src/farron/CMakeFiles/sdc_farron.dir/baseline.cc.o.d"
  "/root/repo/src/farron/boundary.cc" "src/farron/CMakeFiles/sdc_farron.dir/boundary.cc.o" "gcc" "src/farron/CMakeFiles/sdc_farron.dir/boundary.cc.o.d"
  "/root/repo/src/farron/farron.cc" "src/farron/CMakeFiles/sdc_farron.dir/farron.cc.o" "gcc" "src/farron/CMakeFiles/sdc_farron.dir/farron.cc.o.d"
  "/root/repo/src/farron/longitudinal.cc" "src/farron/CMakeFiles/sdc_farron.dir/longitudinal.cc.o" "gcc" "src/farron/CMakeFiles/sdc_farron.dir/longitudinal.cc.o.d"
  "/root/repo/src/farron/pool.cc" "src/farron/CMakeFiles/sdc_farron.dir/pool.cc.o" "gcc" "src/farron/CMakeFiles/sdc_farron.dir/pool.cc.o.d"
  "/root/repo/src/farron/priorities.cc" "src/farron/CMakeFiles/sdc_farron.dir/priorities.cc.o" "gcc" "src/farron/CMakeFiles/sdc_farron.dir/priorities.cc.o.d"
  "/root/repo/src/farron/protection.cc" "src/farron/CMakeFiles/sdc_farron.dir/protection.cc.o" "gcc" "src/farron/CMakeFiles/sdc_farron.dir/protection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sdc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/sdc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/toolchain/CMakeFiles/sdc_toolchain.dir/DependInfo.cmake"
  "/root/repo/build/src/integrity/CMakeFiles/sdc_integrity.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
