# Empty compiler generated dependencies file for sdc_farron.
# This may be replaced when dependencies are built.
