file(REMOVE_RECURSE
  "libsdc_report.a"
)
