# Empty compiler generated dependencies file for sdc_report.
# This may be replaced when dependencies are built.
