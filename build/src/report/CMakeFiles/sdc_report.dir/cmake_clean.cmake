file(REMOVE_RECURSE
  "CMakeFiles/sdc_report.dir/exporters.cc.o"
  "CMakeFiles/sdc_report.dir/exporters.cc.o.d"
  "CMakeFiles/sdc_report.dir/json_writer.cc.o"
  "CMakeFiles/sdc_report.dir/json_writer.cc.o.d"
  "libsdc_report.a"
  "libsdc_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
