# Empty compiler generated dependencies file for sdc_sim.
# This may be replaced when dependencies are built.
