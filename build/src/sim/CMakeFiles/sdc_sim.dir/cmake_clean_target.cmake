file(REMOVE_RECURSE
  "libsdc_sim.a"
)
