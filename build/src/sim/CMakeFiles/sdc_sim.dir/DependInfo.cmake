
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/coherence.cc" "src/sim/CMakeFiles/sdc_sim.dir/coherence.cc.o" "gcc" "src/sim/CMakeFiles/sdc_sim.dir/coherence.cc.o.d"
  "/root/repo/src/sim/isa.cc" "src/sim/CMakeFiles/sdc_sim.dir/isa.cc.o" "gcc" "src/sim/CMakeFiles/sdc_sim.dir/isa.cc.o.d"
  "/root/repo/src/sim/processor.cc" "src/sim/CMakeFiles/sdc_sim.dir/processor.cc.o" "gcc" "src/sim/CMakeFiles/sdc_sim.dir/processor.cc.o.d"
  "/root/repo/src/sim/thermal.cc" "src/sim/CMakeFiles/sdc_sim.dir/thermal.cc.o" "gcc" "src/sim/CMakeFiles/sdc_sim.dir/thermal.cc.o.d"
  "/root/repo/src/sim/txmem.cc" "src/sim/CMakeFiles/sdc_sim.dir/txmem.cc.o" "gcc" "src/sim/CMakeFiles/sdc_sim.dir/txmem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
