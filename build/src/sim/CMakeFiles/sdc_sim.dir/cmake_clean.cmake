file(REMOVE_RECURSE
  "CMakeFiles/sdc_sim.dir/coherence.cc.o"
  "CMakeFiles/sdc_sim.dir/coherence.cc.o.d"
  "CMakeFiles/sdc_sim.dir/isa.cc.o"
  "CMakeFiles/sdc_sim.dir/isa.cc.o.d"
  "CMakeFiles/sdc_sim.dir/processor.cc.o"
  "CMakeFiles/sdc_sim.dir/processor.cc.o.d"
  "CMakeFiles/sdc_sim.dir/thermal.cc.o"
  "CMakeFiles/sdc_sim.dir/thermal.cc.o.d"
  "CMakeFiles/sdc_sim.dir/txmem.cc.o"
  "CMakeFiles/sdc_sim.dir/txmem.cc.o.d"
  "libsdc_sim.a"
  "libsdc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
