file(REMOVE_RECURSE
  "CMakeFiles/sdc_fleet.dir/capacity.cc.o"
  "CMakeFiles/sdc_fleet.dir/capacity.cc.o.d"
  "CMakeFiles/sdc_fleet.dir/pipeline.cc.o"
  "CMakeFiles/sdc_fleet.dir/pipeline.cc.o.d"
  "CMakeFiles/sdc_fleet.dir/population.cc.o"
  "CMakeFiles/sdc_fleet.dir/population.cc.o.d"
  "CMakeFiles/sdc_fleet.dir/stats.cc.o"
  "CMakeFiles/sdc_fleet.dir/stats.cc.o.d"
  "libsdc_fleet.a"
  "libsdc_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
