# Empty dependencies file for sdc_fleet.
# This may be replaced when dependencies are built.
