file(REMOVE_RECURSE
  "libsdc_fleet.a"
)
