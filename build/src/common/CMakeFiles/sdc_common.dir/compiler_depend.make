# Empty compiler generated dependencies file for sdc_common.
# This may be replaced when dependencies are built.
