file(REMOVE_RECURSE
  "libsdc_common.a"
)
