file(REMOVE_RECURSE
  "CMakeFiles/sdc_common.dir/bits.cc.o"
  "CMakeFiles/sdc_common.dir/bits.cc.o.d"
  "CMakeFiles/sdc_common.dir/rng.cc.o"
  "CMakeFiles/sdc_common.dir/rng.cc.o.d"
  "CMakeFiles/sdc_common.dir/stats.cc.o"
  "CMakeFiles/sdc_common.dir/stats.cc.o.d"
  "CMakeFiles/sdc_common.dir/table.cc.o"
  "CMakeFiles/sdc_common.dir/table.cc.o.d"
  "libsdc_common.a"
  "libsdc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
