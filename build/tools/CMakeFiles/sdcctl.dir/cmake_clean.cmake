file(REMOVE_RECURSE
  "CMakeFiles/sdcctl.dir/sdcctl.cc.o"
  "CMakeFiles/sdcctl.dir/sdcctl.cc.o.d"
  "sdcctl"
  "sdcctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
