# Empty compiler generated dependencies file for sdcctl.
# This may be replaced when dependencies are built.
