# Empty dependencies file for farron_test.
# This may be replaced when dependencies are built.
