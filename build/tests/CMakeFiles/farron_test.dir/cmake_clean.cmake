file(REMOVE_RECURSE
  "CMakeFiles/farron_test.dir/farron_test.cc.o"
  "CMakeFiles/farron_test.dir/farron_test.cc.o.d"
  "farron_test"
  "farron_test.pdb"
  "farron_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farron_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
