file(REMOVE_RECURSE
  "CMakeFiles/toolchain_test.dir/toolchain_test.cc.o"
  "CMakeFiles/toolchain_test.dir/toolchain_test.cc.o.d"
  "toolchain_test"
  "toolchain_test.pdb"
  "toolchain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
