# Empty compiler generated dependencies file for tolerance_test.
# This may be replaced when dependencies are built.
