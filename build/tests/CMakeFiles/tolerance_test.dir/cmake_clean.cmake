file(REMOVE_RECURSE
  "CMakeFiles/tolerance_test.dir/tolerance_test.cc.o"
  "CMakeFiles/tolerance_test.dir/tolerance_test.cc.o.d"
  "tolerance_test"
  "tolerance_test.pdb"
  "tolerance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tolerance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
