# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/integrity_test[1]_include.cmake")
include("/root/repo/build/tests/toolchain_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/fleet_test[1]_include.cmake")
include("/root/repo/build/tests/farron_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/tolerance_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/capacity_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/longitudinal_test[1]_include.cmake")
