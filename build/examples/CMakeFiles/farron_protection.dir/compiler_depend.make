# Empty compiler generated dependencies file for farron_protection.
# This may be replaced when dependencies are built.
