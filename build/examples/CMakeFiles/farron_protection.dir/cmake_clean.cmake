file(REMOVE_RECURSE
  "CMakeFiles/farron_protection.dir/farron_protection.cpp.o"
  "CMakeFiles/farron_protection.dir/farron_protection.cpp.o.d"
  "farron_protection"
  "farron_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farron_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
