# Empty dependencies file for sdc_forensics.
# This may be replaced when dependencies are built.
