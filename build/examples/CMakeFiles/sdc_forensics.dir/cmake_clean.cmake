file(REMOVE_RECURSE
  "CMakeFiles/sdc_forensics.dir/sdc_forensics.cpp.o"
  "CMakeFiles/sdc_forensics.dir/sdc_forensics.cpp.o.d"
  "sdc_forensics"
  "sdc_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
