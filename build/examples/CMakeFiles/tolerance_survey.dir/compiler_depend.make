# Empty compiler generated dependencies file for tolerance_survey.
# This may be replaced when dependencies are built.
