file(REMOVE_RECURSE
  "CMakeFiles/tolerance_survey.dir/tolerance_survey.cpp.o"
  "CMakeFiles/tolerance_survey.dir/tolerance_survey.cpp.o.d"
  "tolerance_survey"
  "tolerance_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tolerance_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
