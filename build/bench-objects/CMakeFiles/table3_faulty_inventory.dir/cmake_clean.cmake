file(REMOVE_RECURSE
  "../bench/table3_faulty_inventory"
  "../bench/table3_faulty_inventory.pdb"
  "CMakeFiles/table3_faulty_inventory.dir/table3_faulty_inventory.cc.o"
  "CMakeFiles/table3_faulty_inventory.dir/table3_faulty_inventory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_faulty_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
