# Empty dependencies file for table3_faulty_inventory.
# This may be replaced when dependencies are built.
