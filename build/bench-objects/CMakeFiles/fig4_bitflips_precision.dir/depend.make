# Empty dependencies file for fig4_bitflips_precision.
# This may be replaced when dependencies are built.
