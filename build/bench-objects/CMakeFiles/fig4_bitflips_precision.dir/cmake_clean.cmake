file(REMOVE_RECURSE
  "../bench/fig4_bitflips_precision"
  "../bench/fig4_bitflips_precision.pdb"
  "CMakeFiles/fig4_bitflips_precision.dir/fig4_bitflips_precision.cc.o"
  "CMakeFiles/fig4_bitflips_precision.dir/fig4_bitflips_precision.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_bitflips_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
