file(REMOVE_RECURSE
  "../bench/table4_overhead"
  "../bench/table4_overhead.pdb"
  "CMakeFiles/table4_overhead.dir/table4_overhead.cc.o"
  "CMakeFiles/table4_overhead.dir/table4_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
