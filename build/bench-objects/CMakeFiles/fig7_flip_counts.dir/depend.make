# Empty dependencies file for fig7_flip_counts.
# This may be replaced when dependencies are built.
