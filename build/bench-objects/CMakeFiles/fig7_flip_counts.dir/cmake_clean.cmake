file(REMOVE_RECURSE
  "../bench/fig7_flip_counts"
  "../bench/fig7_flip_counts.pdb"
  "CMakeFiles/fig7_flip_counts.dir/fig7_flip_counts.cc.o"
  "CMakeFiles/fig7_flip_counts.dir/fig7_flip_counts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_flip_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
