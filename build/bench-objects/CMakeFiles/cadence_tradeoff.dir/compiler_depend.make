# Empty compiler generated dependencies file for cadence_tradeoff.
# This may be replaced when dependencies are built.
