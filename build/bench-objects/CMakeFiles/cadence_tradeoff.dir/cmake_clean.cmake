file(REMOVE_RECURSE
  "../bench/cadence_tradeoff"
  "../bench/cadence_tradeoff.pdb"
  "CMakeFiles/cadence_tradeoff.dir/cadence_tradeoff.cc.o"
  "CMakeFiles/cadence_tradeoff.dir/cadence_tradeoff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadence_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
