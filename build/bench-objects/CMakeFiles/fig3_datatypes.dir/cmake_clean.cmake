file(REMOVE_RECURSE
  "../bench/fig3_datatypes"
  "../bench/fig3_datatypes.pdb"
  "CMakeFiles/fig3_datatypes.dir/fig3_datatypes.cc.o"
  "CMakeFiles/fig3_datatypes.dir/fig3_datatypes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_datatypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
