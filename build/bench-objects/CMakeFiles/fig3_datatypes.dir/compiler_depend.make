# Empty compiler generated dependencies file for fig3_datatypes.
# This may be replaced when dependencies are built.
