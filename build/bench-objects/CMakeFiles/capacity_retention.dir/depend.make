# Empty dependencies file for capacity_retention.
# This may be replaced when dependencies are built.
