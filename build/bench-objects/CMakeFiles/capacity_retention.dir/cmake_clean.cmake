file(REMOVE_RECURSE
  "../bench/capacity_retention"
  "../bench/capacity_retention.pdb"
  "CMakeFiles/capacity_retention.dir/capacity_retention.cc.o"
  "CMakeFiles/capacity_retention.dir/capacity_retention.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
