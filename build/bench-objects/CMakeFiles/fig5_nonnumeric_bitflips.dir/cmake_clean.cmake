file(REMOVE_RECURSE
  "../bench/fig5_nonnumeric_bitflips"
  "../bench/fig5_nonnumeric_bitflips.pdb"
  "CMakeFiles/fig5_nonnumeric_bitflips.dir/fig5_nonnumeric_bitflips.cc.o"
  "CMakeFiles/fig5_nonnumeric_bitflips.dir/fig5_nonnumeric_bitflips.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_nonnumeric_bitflips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
