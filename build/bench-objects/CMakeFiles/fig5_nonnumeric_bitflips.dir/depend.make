# Empty dependencies file for fig5_nonnumeric_bitflips.
# This may be replaced when dependencies are built.
