# Empty compiler generated dependencies file for obs12_tolerance.
# This may be replaced when dependencies are built.
