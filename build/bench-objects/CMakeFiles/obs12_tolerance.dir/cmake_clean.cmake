file(REMOVE_RECURSE
  "../bench/obs12_tolerance"
  "../bench/obs12_tolerance.pdb"
  "CMakeFiles/obs12_tolerance.dir/obs12_tolerance.cc.o"
  "CMakeFiles/obs12_tolerance.dir/obs12_tolerance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs12_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
