# Empty compiler generated dependencies file for longitudinal_lifecycle.
# This may be replaced when dependencies are built.
