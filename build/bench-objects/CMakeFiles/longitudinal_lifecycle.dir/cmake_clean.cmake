file(REMOVE_RECURSE
  "../bench/longitudinal_lifecycle"
  "../bench/longitudinal_lifecycle.pdb"
  "CMakeFiles/longitudinal_lifecycle.dir/longitudinal_lifecycle.cc.o"
  "CMakeFiles/longitudinal_lifecycle.dir/longitudinal_lifecycle.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longitudinal_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
