file(REMOVE_RECURSE
  "../bench/fig8_temp_frequency"
  "../bench/fig8_temp_frequency.pdb"
  "CMakeFiles/fig8_temp_frequency.dir/fig8_temp_frequency.cc.o"
  "CMakeFiles/fig8_temp_frequency.dir/fig8_temp_frequency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_temp_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
