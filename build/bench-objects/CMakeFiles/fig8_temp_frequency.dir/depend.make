# Empty dependencies file for fig8_temp_frequency.
# This may be replaced when dependencies are built.
