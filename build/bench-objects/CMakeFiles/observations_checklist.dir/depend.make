# Empty dependencies file for observations_checklist.
# This may be replaced when dependencies are built.
