file(REMOVE_RECURSE
  "../bench/observations_checklist"
  "../bench/observations_checklist.pdb"
  "CMakeFiles/observations_checklist.dir/observations_checklist.cc.o"
  "CMakeFiles/observations_checklist.dir/observations_checklist.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observations_checklist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
