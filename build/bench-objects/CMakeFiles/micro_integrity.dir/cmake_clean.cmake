file(REMOVE_RECURSE
  "../bench/micro_integrity"
  "../bench/micro_integrity.pdb"
  "CMakeFiles/micro_integrity.dir/micro_integrity.cc.o"
  "CMakeFiles/micro_integrity.dir/micro_integrity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
