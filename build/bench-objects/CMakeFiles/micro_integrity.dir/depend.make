# Empty dependencies file for micro_integrity.
# This may be replaced when dependencies are built.
