file(REMOVE_RECURSE
  "../bench/obs11_testcase_effectiveness"
  "../bench/obs11_testcase_effectiveness.pdb"
  "CMakeFiles/obs11_testcase_effectiveness.dir/obs11_testcase_effectiveness.cc.o"
  "CMakeFiles/obs11_testcase_effectiveness.dir/obs11_testcase_effectiveness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs11_testcase_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
