# Empty compiler generated dependencies file for obs11_testcase_effectiveness.
# This may be replaced when dependencies are built.
