file(REMOVE_RECURSE
  "../bench/fig9_mintemp_frequency"
  "../bench/fig9_mintemp_frequency.pdb"
  "CMakeFiles/fig9_mintemp_frequency.dir/fig9_mintemp_frequency.cc.o"
  "CMakeFiles/fig9_mintemp_frequency.dir/fig9_mintemp_frequency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_mintemp_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
