# Empty dependencies file for fig9_mintemp_frequency.
# This may be replaced when dependencies are built.
