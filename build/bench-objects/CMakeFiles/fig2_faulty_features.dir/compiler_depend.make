# Empty compiler generated dependencies file for fig2_faulty_features.
# This may be replaced when dependencies are built.
