file(REMOVE_RECURSE
  "../bench/fig2_faulty_features"
  "../bench/fig2_faulty_features.pdb"
  "CMakeFiles/fig2_faulty_features.dir/fig2_faulty_features.cc.o"
  "CMakeFiles/fig2_faulty_features.dir/fig2_faulty_features.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_faulty_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
