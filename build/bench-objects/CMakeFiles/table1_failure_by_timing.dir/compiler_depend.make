# Empty compiler generated dependencies file for table1_failure_by_timing.
# This may be replaced when dependencies are built.
