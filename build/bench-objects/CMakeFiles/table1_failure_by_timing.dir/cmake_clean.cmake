file(REMOVE_RECURSE
  "../bench/table1_failure_by_timing"
  "../bench/table1_failure_by_timing.pdb"
  "CMakeFiles/table1_failure_by_timing.dir/table1_failure_by_timing.cc.o"
  "CMakeFiles/table1_failure_by_timing.dir/table1_failure_by_timing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_failure_by_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
