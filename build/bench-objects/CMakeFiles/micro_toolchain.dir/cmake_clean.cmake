file(REMOVE_RECURSE
  "../bench/micro_toolchain"
  "../bench/micro_toolchain.pdb"
  "CMakeFiles/micro_toolchain.dir/micro_toolchain.cc.o"
  "CMakeFiles/micro_toolchain.dir/micro_toolchain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
