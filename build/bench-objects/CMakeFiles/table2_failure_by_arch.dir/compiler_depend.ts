# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table2_failure_by_arch.
