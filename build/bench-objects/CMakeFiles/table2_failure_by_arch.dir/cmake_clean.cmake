file(REMOVE_RECURSE
  "../bench/table2_failure_by_arch"
  "../bench/table2_failure_by_arch.pdb"
  "CMakeFiles/table2_failure_by_arch.dir/table2_failure_by_arch.cc.o"
  "CMakeFiles/table2_failure_by_arch.dir/table2_failure_by_arch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_failure_by_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
