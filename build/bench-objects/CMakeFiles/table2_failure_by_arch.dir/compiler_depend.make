# Empty compiler generated dependencies file for table2_failure_by_arch.
# This may be replaced when dependencies are built.
