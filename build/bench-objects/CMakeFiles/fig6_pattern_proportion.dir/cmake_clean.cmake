file(REMOVE_RECURSE
  "../bench/fig6_pattern_proportion"
  "../bench/fig6_pattern_proportion.pdb"
  "CMakeFiles/fig6_pattern_proportion.dir/fig6_pattern_proportion.cc.o"
  "CMakeFiles/fig6_pattern_proportion.dir/fig6_pattern_proportion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pattern_proportion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
