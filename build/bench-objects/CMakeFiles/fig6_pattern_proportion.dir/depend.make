# Empty dependencies file for fig6_pattern_proportion.
# This may be replaced when dependencies are built.
