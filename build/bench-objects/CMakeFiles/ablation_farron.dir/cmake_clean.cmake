file(REMOVE_RECURSE
  "../bench/ablation_farron"
  "../bench/ablation_farron.pdb"
  "CMakeFiles/ablation_farron.dir/ablation_farron.cc.o"
  "CMakeFiles/ablation_farron.dir/ablation_farron.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_farron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
