# Empty compiler generated dependencies file for ablation_farron.
# This may be replaced when dependencies are built.
