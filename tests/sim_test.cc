// Unit tests for src/sim: thermal model, processor execution engine, coherent bus, and
// transactional memory -- including the defect hooks via small fake CorruptionHooks.

#include <optional>

#include <gtest/gtest.h>

#include "src/sim/coherence.h"
#include "src/sim/isa.h"
#include "src/sim/processor.h"
#include "src/sim/thermal.h"
#include "src/sim/txmem.h"

namespace sdc {
namespace {

ProcessorSpec SmallSpec() {
  ProcessorSpec spec;
  spec.arch = "M2";
  spec.physical_cores = 4;
  spec.threads_per_core = 2;
  spec.frequency_ghz = 2.5;
  return spec;
}

// --- ISA metadata ---

TEST(IsaTest, EveryOpHasFeatureAndLatency) {
  for (int kind = 0; kind < kOpKindCount; ++kind) {
    const OpKind op = static_cast<OpKind>(kind);
    EXPECT_GE(static_cast<int>(FeatureOf(op)), 0);
    EXPECT_GT(LatencyCycles(op), 0);
    EXPECT_NE(OpKindName(op), "?");
  }
}

TEST(IsaTest, FeatureAssignments) {
  EXPECT_EQ(FeatureOf(OpKind::kIntAdd), Feature::kAlu);
  EXPECT_EQ(FeatureOf(OpKind::kFpArctan), Feature::kFpu);
  EXPECT_EQ(FeatureOf(OpKind::kVecFmaF32), Feature::kVecUnit);
  EXPECT_EQ(FeatureOf(OpKind::kStore), Feature::kCache);
  EXPECT_EQ(FeatureOf(OpKind::kTxCommit), Feature::kTxMem);
}

// --- Thermal model ---

TEST(ThermalTest, IdleSteadyStateNearPaperIdle) {
  // The paper's MIX1 idles around 45C (Section 5); a 16-core package should land there.
  ThermalModel model(16);
  EXPECT_NEAR(model.core_temperature(0), 45.4, 1.0);
  EXPECT_NEAR(model.IdleTemperature(), model.core_temperature(0), 0.5);
}

TEST(ThermalTest, IdleComparableAcrossPackageSizes) {
  ThermalModel small(8);
  ThermalModel large(32);
  EXPECT_NEAR(small.IdleTemperature(), large.IdleTemperature(), 1.0);
}

TEST(ThermalTest, FullLoadReachesPaperRange) {
  // Figure 8 observes testing temperatures up to ~76C.
  ThermalModel model(16);
  model.SettleToSteadyState(std::vector<double>(16, 1.0));
  EXPECT_GT(model.core_temperature(0), 65.0);
  EXPECT_LT(model.core_temperature(0), 85.0);
}

TEST(ThermalTest, BusyNeighboursHeatIdleCore) {
  // Observation 10: a defective core errors only when *other* cores are busy, because the
  // shared cooling raises its temperature.
  ThermalModel model(16);
  std::vector<double> utilization(16, 1.0);
  utilization[0] = 0.0;  // the idle (defective) core
  model.SettleToSteadyState(utilization);
  EXPECT_GT(model.core_temperature(0), model.IdleTemperature() + 10.0);
}

TEST(ThermalTest, MoreBusyNeighboursMeansHotter) {
  ThermalModel few(16);
  ThermalModel many(16);
  std::vector<double> few_busy(16, 0.0);
  std::vector<double> many_busy(16, 0.0);
  for (int i = 1; i <= 4; ++i) {
    few_busy[i] = 1.0;
  }
  for (int i = 1; i <= 12; ++i) {
    many_busy[i] = 1.0;
  }
  few.SettleToSteadyState(few_busy);
  many.SettleToSteadyState(many_busy);
  EXPECT_GT(many.core_temperature(0), few.core_temperature(0) + 3.0);
}

TEST(ThermalTest, AdvanceConvergesToSteadyState) {
  ThermalModel reference(8);
  std::vector<double> utilization(8, 1.0);
  reference.SettleToSteadyState(utilization);
  ThermalModel stepped(8);
  for (int i = 0; i < 600; ++i) {
    stepped.Advance(10.0, utilization);
  }
  EXPECT_NEAR(stepped.core_temperature(3), reference.core_temperature(3), 0.5);
}

TEST(ThermalTest, RemainingHeatDecaysSlowly) {
  // Observation 10's test-order effect: heat from a stressful testcase persists into the
  // next one because the sink cools over minutes, not microseconds.
  ThermalModel model(16);
  model.SettleToSteadyState(std::vector<double>(16, 1.0));
  const double hot = model.core_temperature(0);
  model.Advance(5.0, std::vector<double>(16, 0.0));
  EXPECT_GT(model.core_temperature(0), (hot + model.IdleTemperature()) / 2.0);
  model.Advance(3600.0, std::vector<double>(16, 0.0));
  EXPECT_NEAR(model.core_temperature(0), model.IdleTemperature(), 1.0);
}


TEST(ThermalTest, CoolingBoostLowersTemperatures) {
  ThermalModel model(16);
  std::vector<double> busy(16, 1.0);
  model.SettleToSteadyState(busy);
  const double baseline = model.core_temperature(0);
  model.SetCoolingBoost(2.0);
  model.SettleToSteadyState(busy);
  EXPECT_LT(model.core_temperature(0), baseline - 8.0);
  model.SetCoolingBoost(0.5);  // clamps to 1.0
  EXPECT_DOUBLE_EQ(model.cooling_boost(), 1.0);
}

TEST(ThermalTest, ForceUniformPins) {
  ThermalModel model(4);
  model.ForceUniform(63.5);
  for (int core = 0; core < 4; ++core) {
    EXPECT_DOUBLE_EQ(model.core_temperature(core), 63.5);
  }
  EXPECT_DOUBLE_EQ(model.sink_temperature(), 63.5);
}

// --- Processor ---

TEST(ProcessorTest, ExecuteReturnsGoldenWithoutHook) {
  Processor cpu(SmallSpec());
  EXPECT_EQ(cpu.ExecuteI32(0, OpKind::kIntAdd, 42), 42);
  EXPECT_EQ(cpu.ExecuteF64(1, OpKind::kFpMul, 2.5), 2.5);
  EXPECT_EQ(cpu.ExecuteRaw(2, OpKind::kLogicXor, 0xdeadbeefull, DataType::kBin32),
            0xdeadbeefull);
}

TEST(ProcessorTest, OpCountsAccumulatePerCore) {
  Processor cpu(SmallSpec());
  cpu.ExecuteI32(0, OpKind::kIntAdd, 1);   // pcore 0
  cpu.ExecuteI32(1, OpKind::kIntAdd, 1);   // pcore 0 (SMT sibling)
  cpu.ExecuteI32(2, OpKind::kIntAdd, 1);   // pcore 1
  EXPECT_EQ(cpu.op_count(0, OpKind::kIntAdd), 2u);
  EXPECT_EQ(cpu.op_count(1, OpKind::kIntAdd), 1u);
  EXPECT_EQ(cpu.total_op_count(OpKind::kIntAdd), 3u);
}

TEST(ProcessorTest, BusySecondsMatchLatency) {
  Processor cpu(SmallSpec());
  for (int i = 0; i < 2500; ++i) {
    cpu.ExecuteI32(0, OpKind::kIntAdd, i);  // 1 cycle each at 2.5 GHz
  }
  EXPECT_NEAR(cpu.ConsumeBusySeconds(0), 2500.0 / 2.5e9, 1e-12);
  EXPECT_EQ(cpu.ConsumeBusySeconds(0), 0.0);  // consumed
}

TEST(ProcessorTest, AdvanceUpdatesClockAndIntensity) {
  Processor cpu(SmallSpec());
  cpu.SetTimeScale(1000.0);
  for (int i = 0; i < 1000; ++i) {
    cpu.ExecuteF64(0, OpKind::kFpMul, 1.0);
  }
  cpu.AdvanceSeconds(2.0);
  EXPECT_DOUBLE_EQ(cpu.now_seconds(), 2.0);
  // 1000 ops x 1000 weight / 2 s = 5e5 ops/s, blended at 0.5 into a zero estimate.
  OpContext context = cpu.MakeContext(0, OpKind::kFpMul);
  EXPECT_NEAR(context.op_intensity, 2.5e5, 1e3);
}

TEST(ProcessorTest, ContextCarriesTemperatureAndWeight) {
  Processor cpu(SmallSpec());
  cpu.SetTimeScale(12345.0);
  cpu.SetCoreUtilization(1, 0.7);
  OpContext context = cpu.MakeContext(2, OpKind::kStore);  // lcore 2 -> pcore 1
  EXPECT_EQ(context.pcore, 1);
  EXPECT_DOUBLE_EQ(context.weight, 12345.0);
  EXPECT_DOUBLE_EQ(context.utilization, 0.7);
  EXPECT_NEAR(context.temperature, cpu.core_temperature(1), 1e-9);
}

// A hook that corrupts every computational op by flipping bit 0, and fires consistency
// faults on demand.
class FlipHook : public CorruptionHook {
 public:
  std::optional<Word128> OnExecute(const OpContext&, const Word128& golden) override {
    Word128 corrupted = golden;
    corrupted.FlipBit(0);
    return corrupted;
  }
  bool OnCoherenceFault(const OpContext&) override { return coherence_fault; }
  bool OnTxFault(const OpContext&) override { return tx_fault; }

  bool coherence_fault = false;
  bool tx_fault = false;
};

TEST(ProcessorTest, HookCorruptsResults) {
  Processor cpu(SmallSpec());
  FlipHook hook;
  cpu.SetCorruptionHook(&hook);
  EXPECT_EQ(cpu.ExecuteI32(0, OpKind::kIntAdd, 4), 5);
  cpu.SetCorruptionHook(nullptr);
  EXPECT_EQ(cpu.ExecuteI32(0, OpKind::kIntAdd, 4), 4);
}

// --- Coherent bus ---

TEST(CoherenceTest, WriteInvalidatesRemoteCopies) {
  Processor cpu(SmallSpec());
  CoherentBus bus(cpu, 64);
  bus.Write(0, 7, 111);          // pcore 0 writes
  EXPECT_EQ(bus.Read(2, 7), 111u);  // pcore 1 reads and caches
  bus.Write(0, 7, 222);
  EXPECT_EQ(bus.Read(2, 7), 222u);  // invalidation forces a refetch
}

TEST(CoherenceTest, DroppedInvalidationLeavesStaleData) {
  Processor cpu(SmallSpec());
  FlipHook hook;
  cpu.SetCorruptionHook(&hook);
  CoherentBus bus(cpu, 64);
  bus.Write(0, 3, 10);
  EXPECT_EQ(bus.Read(2, 3), 10u);  // consumer caches the value
  hook.coherence_fault = true;
  bus.Write(0, 3, 20);             // invalidation silently dropped
  EXPECT_EQ(bus.Read(2, 3), 10u);  // stale!
  EXPECT_EQ(bus.BackingValue(3), 20u);
  bus.Fence(2);
  EXPECT_EQ(bus.Read(2, 3), 20u);  // refetch recovers
}

TEST(CoherenceTest, WriterAlwaysSeesOwnWrite) {
  Processor cpu(SmallSpec());
  FlipHook hook;
  hook.coherence_fault = true;
  cpu.SetCorruptionHook(&hook);
  CoherentBus bus(cpu, 64);
  bus.Write(0, 5, 42);
  EXPECT_EQ(bus.Read(0, 5), 42u);
}

TEST(CoherenceTest, AtomicCasSemantica) {
  Processor cpu(SmallSpec());
  CoherentBus bus(cpu, 64);
  EXPECT_TRUE(bus.AtomicCas(0, 9, 0, 1));
  EXPECT_FALSE(bus.AtomicCas(2, 9, 0, 1));  // already 1
  EXPECT_TRUE(bus.AtomicCas(2, 9, 1, 0));
  EXPECT_EQ(bus.BackingValue(9), 0u);
}

TEST(CoherenceTest, AtomicCasInvalidatesStaleCopies) {
  Processor cpu(SmallSpec());
  FlipHook hook;
  cpu.SetCorruptionHook(&hook);
  CoherentBus bus(cpu, 64);
  bus.Write(0, 4, 1);
  EXPECT_EQ(bus.Read(2, 4), 1u);  // cached on pcore 1
  hook.coherence_fault = true;
  bus.Write(0, 4, 2);             // stale copy survives
  hook.coherence_fault = false;
  EXPECT_TRUE(bus.AtomicCas(0, 4, 2, 3));
  EXPECT_EQ(bus.Read(2, 4), 3u);  // atomics always invalidate
}

TEST(CoherenceTest, DirectWriteResetsEverywhere) {
  Processor cpu(SmallSpec());
  CoherentBus bus(cpu, 64);
  bus.Write(0, 2, 5);
  EXPECT_EQ(bus.Read(2, 2), 5u);
  bus.DirectWrite(2, 0);
  EXPECT_EQ(bus.Read(2, 2), 0u);
  EXPECT_EQ(bus.Read(0, 2), 0u);
}

// --- Transactional memory ---

TEST(TxMemTest, CommitAppliesWrites) {
  Processor cpu(SmallSpec());
  TxMemory tx(cpu, 64);
  const int handle = tx.Begin(0);
  tx.Write(handle, 1, 99);
  EXPECT_TRUE(tx.Commit(handle));
  EXPECT_EQ(tx.DirectRead(1), 99u);
}

TEST(TxMemTest, ReadOwnWrite) {
  Processor cpu(SmallSpec());
  TxMemory tx(cpu, 64);
  const int handle = tx.Begin(0);
  tx.Write(handle, 1, 7);
  EXPECT_EQ(tx.Read(handle, 1), 7u);
  tx.Abort(handle);
  EXPECT_EQ(tx.DirectRead(1), 0u);  // abort discards
}

TEST(TxMemTest, ConflictForcesAbort) {
  Processor cpu(SmallSpec());
  TxMemory tx(cpu, 64);
  const int t1 = tx.Begin(0);
  const uint64_t v1 = tx.Read(t1, 5);
  const int t2 = tx.Begin(2);
  tx.Write(t2, 5, 100);
  EXPECT_TRUE(tx.Commit(t2));
  tx.Write(t1, 5, v1 + 1);
  EXPECT_FALSE(tx.Commit(t1));  // t1 read cell 5 before t2's commit
  EXPECT_EQ(tx.DirectRead(5), 100u);
}

TEST(TxMemTest, NonConflictingTransactionsBothCommit) {
  Processor cpu(SmallSpec());
  TxMemory tx(cpu, 64);
  const int t1 = tx.Begin(0);
  const int t2 = tx.Begin(2);
  tx.Write(t1, 1, 11);
  tx.Write(t2, 2, 22);
  EXPECT_TRUE(tx.Commit(t1));
  EXPECT_TRUE(tx.Commit(t2));
  EXPECT_EQ(tx.DirectRead(1), 11u);
  EXPECT_EQ(tx.DirectRead(2), 22u);
}

TEST(TxMemTest, DefectSkipsValidationAndViolatesIsolation) {
  Processor cpu(SmallSpec());
  FlipHook hook;
  hook.tx_fault = true;
  cpu.SetCorruptionHook(&hook);
  TxMemory tx(cpu, 64);
  const int t1 = tx.Begin(0);
  const uint64_t stale = tx.Read(t1, 5);
  const int t2 = tx.Begin(2);
  tx.Write(t2, 5, 50);
  EXPECT_TRUE(tx.Commit(t2));
  tx.Write(t1, 5, stale + 1);
  EXPECT_TRUE(tx.Commit(t1));  // should abort, silently commits
  EXPECT_EQ(tx.isolation_violations(), 1u);
  EXPECT_EQ(tx.DirectRead(5), 1u);  // t2's update lost
}

TEST(TxMemTest, ResetClearsState) {
  Processor cpu(SmallSpec());
  TxMemory tx(cpu, 16);
  const int handle = tx.Begin(0);
  tx.Write(handle, 3, 9);
  EXPECT_TRUE(tx.Commit(handle));
  tx.Reset();
  EXPECT_EQ(tx.DirectRead(3), 0u);
  EXPECT_EQ(tx.isolation_violations(), 0u);
}

}  // namespace
}  // namespace sdc
